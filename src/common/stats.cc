#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace elsa {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double q)
{
    ELSA_CHECK(!values.empty(), "percentile of empty vector");
    ELSA_CHECK(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]: " << q);
    std::sort(values.begin(), values.end());
    if (values.size() == 1) {
        return values.front();
    }
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
geomean(const std::vector<double>& values)
{
    ELSA_CHECK(!values.empty(), "geomean of empty vector");
    double log_sum = 0.0;
    for (const double v : values) {
        ELSA_CHECK(v > 0.0, "geomean requires positive values, got " << v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace elsa
