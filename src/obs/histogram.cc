#include "obs/histogram.h"

#include <algorithm>

#include "common/logging.h"

namespace elsa::obs {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    ELSA_CHECK(edges_.size() >= 2,
               "histogram needs >= 2 edges, got " << edges_.size());
    ELSA_CHECK(std::is_sorted(edges_.begin(), edges_.end())
                   && std::adjacent_find(edges_.begin(), edges_.end())
                          == edges_.end(),
               "histogram edges must be strictly ascending");
    counts_.assign(edges_.size() - 1, 0);
}

Histogram::Histogram(const Histogram& other)
{
    std::lock_guard<std::mutex> lk(other.m_);
    edges_ = other.edges_;
    counts_ = other.counts_;
    underflow_ = other.underflow_;
    overflow_ = other.overflow_;
    count_ = other.count_;
    sum_ = other.sum_;
}

Histogram&
Histogram::operator=(const Histogram& other)
{
    if (this == &other) {
        return *this;
    }
    // Consistent-order double lock via scoped_lock (deadlock-free).
    std::scoped_lock lk(m_, other.m_);
    edges_ = other.edges_;
    counts_ = other.counts_;
    underflow_ = other.underflow_;
    overflow_ = other.overflow_;
    count_ = other.count_;
    sum_ = other.sum_;
    return *this;
}

Histogram
Histogram::linear(double lo, double hi, std::size_t num_buckets)
{
    ELSA_CHECK(num_buckets > 0, "histogram needs >= 1 bucket");
    ELSA_CHECK(hi > lo, "histogram range [" << lo << ", " << hi
                                            << ") is empty");
    std::vector<double> edges(num_buckets + 1);
    const double width = (hi - lo) / static_cast<double>(num_buckets);
    for (std::size_t i = 0; i <= num_buckets; ++i) {
        edges[i] = lo + width * static_cast<double>(i);
    }
    // Guard against floating-point drift on the last edge.
    edges.back() = hi;
    return Histogram(std::move(edges));
}

void
Histogram::add(double x)
{
    std::lock_guard<std::mutex> lk(m_);
    ++count_;
    sum_ += x;
    if (x < edges_.front()) {
        ++underflow_;
        return;
    }
    if (x >= edges_.back()) {
        ++overflow_;
        return;
    }
    // First edge greater than x; its predecessor opens the bucket.
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    const std::size_t bucket =
        static_cast<std::size_t>(it - edges_.begin()) - 1;
    ++counts_[bucket];
}

std::size_t
Histogram::bucketCount(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(m_);
    ELSA_CHECK(i < counts_.size(), "histogram bucket " << i
                                                       << " out of range");
    return counts_[i];
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lk(m_);
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
}

} // namespace elsa::obs
