#include "common/args.h"

#include <cstdlib>
#include <string_view>

#include "common/logging.h"

namespace elsa {

ArgParser::ArgParser(int argc, const char* const* argv,
                     const std::set<std::string>& known_flags)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        ELSA_CHECK(arg.starts_with("--"),
                   "expected --flag, got: " << arg);
        arg = arg.substr(2);
        std::string value = "1"; // Boolean switch default.
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        } else if (i + 1 < argc
                   && !std::string_view(argv[i + 1]).starts_with(
                       "--")) {
            value = argv[++i];
        }
        ELSA_CHECK(known_flags.count(arg) == 1,
                   "unknown flag: --" << arg);
        values_[arg] = value;
    }
}

bool
ArgParser::has(const std::string& flag) const
{
    return values_.count(flag) == 1;
}

std::string
ArgParser::get(const std::string& flag,
               const std::string& fallback) const
{
    const auto it = values_.find(flag);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
ArgParser::getInt(const std::string& flag, std::int64_t fallback) const
{
    const auto it = values_.find(flag);
    if (it == values_.end()) {
        return fallback;
    }
    char* end = nullptr;
    const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
    // end == c_str() means nothing was consumed (empty string or no
    // leading digits); strtoll would otherwise yield a silent 0.
    ELSA_CHECK(end != it->second.c_str() && end != nullptr
                   && *end == '\0',
               "flag --" << flag << " expects an integer, got '"
                         << it->second << "'");
    return parsed;
}

double
ArgParser::getDouble(const std::string& flag, double fallback) const
{
    const auto it = values_.find(flag);
    if (it == values_.end()) {
        return fallback;
    }
    char* end = nullptr;
    const double parsed = std::strtod(it->second.c_str(), &end);
    ELSA_CHECK(end != it->second.c_str() && end != nullptr
                   && *end == '\0',
               "flag --" << flag << " expects a number, got '"
                         << it->second << "'");
    return parsed;
}

} // namespace elsa
