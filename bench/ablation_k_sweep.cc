/**
 * @file
 * EXP-AB4: ablation of the hash width k on the end task
 * (Section IV-E, "Choice of Hash Length k").
 *
 * The paper argues k = d works well as long as k is not too small
 * (e.g. < 16): higher k estimates angles better (fewer false
 * positives/negatives in candidate selection) but costs more hash
 * computation, key-hash storage, and candidate-selection area. This
 * bench runs the full approximate attention on a BERT-like workload
 * across k and reports candidate fraction, attention-mass recall,
 * hash cost, and key-hash SRAM bytes.
 */

#include <cstdio>
#include <memory>

#include "attention/metrics.h"
#include "attention/threshold.h"
#include "bench_common.h"
#include "common/rng.h"
#include "energy/area_power.h"
#include "lsh/batched.h"
#include "lsh/calibration.h"
#include "workload/generator.h"
#include "workload/model.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"manifest"});
    bench::printHeader(
        "Ablation: hash width k (end-to-end candidate selection)",
        "BERT-like sublayer, n = 384; k < 64 uses a dense "
        "orthogonal projection, k >= 64 batched Kronecker.");

    const std::size_t n = 384;
    const std::size_t d = 64;
    QkvGenerator gen(bertLarge(), 31);
    const AttentionInput train = gen.generate(11, 3, n, 100);
    const AttentionInput input = gen.generate(11, 3, n, 0);

    ThresholdLearner learner(1.0);
    learner.observe(train.query, train.key);
    const double threshold = learner.threshold();

    std::printf("\np = 1, learned threshold t = %.3f\n", threshold);
    std::printf("\n%-6s %10s %12s %12s %12s %12s\n", "k",
                "theta_bias", "candidates", "mass recall",
                "mults/hash", "hash SRAM");

    Rng rng(17);
    obs::RunManifest manifest = bench::makeBenchManifest(
        "ablation_k_sweep", bench::standardSystemConfig());
    for (const std::size_t k : {8u, 16u, 32u, 64u, 128u, 256u}) {
        std::shared_ptr<const SrpHasher> hasher;
        if (k < d) {
            hasher = std::make_shared<DenseSrpHasher>(
                DenseSrpHasher::makeRandom(k, d, rng));
        } else {
            hasher = std::make_shared<BatchedKroneckerHasher>(
                BatchedKroneckerHasher::makeRandom(k, d, 3, rng,
                                                   true));
        }
        BiasCalibrationOptions options;
        options.num_pairs = 4000;
        options.num_hashers = 2;
        const double bias = calibrateThetaBias(d, k, rng, options);
        ApproxSelfAttention engine(hasher, bias);

        const auto candidates =
            engine.candidatesForAll(input, threshold);
        std::size_t total = 0;
        for (const auto& c : candidates) {
            total += c.size();
        }
        const double recall = attentionMassRecall(input, candidates);
        std::printf("%-6zu %10.3f %11.1f%% %12.4f %12zu %9zu B\n", k,
                    bias,
                    100.0 * static_cast<double>(total) / (n * n),
                    recall, hasher->multiplicationsPerHash(),
                    keyHashMemoryBytes(n, k));
        std::fflush(stdout);
        if (k == 64) {
            manifest.set("metrics", "candidate_fraction_k64",
                         static_cast<double>(total) / (n * n));
            manifest.set("metrics", "mass_recall_k64", recall);
            manifest.set("metrics", "theta_bias_k64", bias);
        }
    }

    std::printf("\nReading the table: small k inflates the "
                "estimator noise -- the bias correction must\ngrow, "
                "which over-selects candidates without improving "
                "recall. Past k = d = 64 the\nrecall gain is modest "
                "while hash cost and SRAM grow linearly: the paper's "
                "k = d\nchoice sits at the knee.\n");
    bench::emitBenchSummary(manifest, args);
    return 0;
}
