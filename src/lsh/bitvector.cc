#include "lsh/bitvector.h"

#include "common/bits.h"
#include "common/logging.h"

namespace elsa {

HashValue::HashValue(std::size_t bits)
    : bits_(bits), words_((bits + 63) / 64, 0)
{
}

void
HashValue::setBit(std::size_t i, bool value)
{
    ELSA_ASSERT(i < bits_, "bit index " << i << " out of " << bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (value) {
        words_[i / 64] |= mask;
    } else {
        words_[i / 64] &= ~mask;
    }
}

bool
HashValue::bit(std::size_t i) const
{
    ELSA_ASSERT(i < bits_, "bit index " << i << " out of " << bits_);
    return (words_[i / 64] >> (i % 64)) & 1;
}

int
HashValue::popcount() const
{
    int count = 0;
    for (const auto word : words_) {
        count += popcount64(word);
    }
    return count;
}

int
hammingDistance(const HashValue& a, const HashValue& b)
{
    ELSA_CHECK(a.bits() == b.bits(),
               "hamming distance between different widths: " << a.bits()
                                                             << " vs "
                                                             << b.bits());
    int distance = 0;
    for (std::size_t w = 0; w < a.words().size(); ++w) {
        distance += popcount64(a.words()[w] ^ b.words()[w]);
    }
    return distance;
}

} // namespace elsa
