/**
 * @file
 * Tests for blocked (windowed) long-sequence attention: window
 * arithmetic, per-window equivalence with exact attention, threshold
 * learning, and the approximate path.
 */

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "attention/blocked.h"
#include "common/rng.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "tensor/ops.h"
#include "workload/generator.h"

namespace elsa {
namespace {

AttentionInput
longInput(std::size_t n, std::uint64_t seed = 3)
{
    QkvGenerator gen(bertLarge(), seed);
    return gen.generate(8, 2, n, 0);
}

std::shared_ptr<const SrpHasher>
makeHasher()
{
    Rng rng(5);
    return std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng));
}

TEST(BlockedTest, WindowRangesCoverSequence)
{
    BlockedSelfAttention blocked({128});
    const auto ranges = blocked.windows(300);
    ASSERT_EQ(ranges.size(), 3u);
    EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 128}));
    EXPECT_EQ(ranges[1],
              (std::pair<std::size_t, std::size_t>{128, 256}));
    EXPECT_EQ(ranges[2],
              (std::pair<std::size_t, std::size_t>{256, 300}));
}

TEST(BlockedTest, ExactWindowingEqualsSingleWindowWhenSmall)
{
    const AttentionInput input = longInput(96);
    BlockedSelfAttention blocked({512});
    const BlockedAttentionResult result = blocked.forward(input);
    EXPECT_EQ(result.num_windows, 1u);
    EXPECT_LT(maxAbsDiff(result.output, exactAttention(input)), 1e-5);
    EXPECT_EQ(result.window_macs, exactAttentionMacs(96, 64));
}

TEST(BlockedTest, EachWindowMatchesStandaloneExactAttention)
{
    const AttentionInput input = longInput(256);
    BlockedSelfAttention blocked({100});
    const BlockedAttentionResult result = blocked.forward(input);
    EXPECT_EQ(result.num_windows, 3u);
    // Check window 1 ([100, 200)) against a manual slice.
    AttentionInput window;
    window.query = Matrix(100, 64);
    window.key = Matrix(100, 64);
    window.value = Matrix(100, 64);
    for (std::size_t r = 0; r < 100; ++r) {
        for (std::size_t c = 0; c < 64; ++c) {
            window.query(r, c) = input.query(100 + r, c);
            window.key(r, c) = input.key(100 + r, c);
            window.value(r, c) = input.value(100 + r, c);
        }
    }
    const Matrix expected = exactAttention(window);
    for (std::size_t r = 0; r < 100; ++r) {
        for (std::size_t c = 0; c < 64; ++c) {
            ASSERT_NEAR(result.output(100 + r, c), expected(r, c),
                        1e-5);
        }
    }
}

TEST(BlockedTest, WindowMacsShrinkQuadratically)
{
    const AttentionInput input = longInput(512);
    const BlockedAttentionResult whole =
        BlockedSelfAttention({512}).forward(input);
    const BlockedAttentionResult halves =
        BlockedSelfAttention({256}).forward(input);
    // Two windows of n/2 cost half of one window of n.
    EXPECT_EQ(halves.window_macs, whole.window_macs / 2);
}

TEST(BlockedTest, ApproxPathWithAllCandidatesMatchesExact)
{
    const AttentionInput input = longInput(200);
    BlockedSelfAttention blocked({128});
    ApproxSelfAttention engine(makeHasher(), kThetaBias64);
    const std::vector<double> open(
        2, -std::numeric_limits<double>::infinity());
    const BlockedAttentionResult approx =
        blocked.forwardApprox(input, engine, open);
    const BlockedAttentionResult exact = blocked.forward(input);
    EXPECT_LT(maxAbsDiff(approx.output, exact.output), 1e-3);
    EXPECT_DOUBLE_EQ(approx.mean_candidate_fraction, 1.0);
}

TEST(BlockedTest, LearnedThresholdsFilterPerWindow)
{
    const AttentionInput train = longInput(384, 11);
    const AttentionInput eval = longInput(384, 12);
    BlockedSelfAttention blocked({128});
    ApproxSelfAttention engine(makeHasher(), kThetaBias64);

    std::vector<ThresholdLearner> learners;
    blocked.learnThresholds(train, 1.0, learners);
    ASSERT_EQ(learners.size(), 3u);
    std::vector<double> thresholds;
    for (const auto& learner : learners) {
        EXPECT_GT(learner.sampleCount(), 0u);
        thresholds.push_back(learner.threshold());
    }
    const BlockedAttentionResult result =
        blocked.forwardApprox(eval, engine, thresholds);
    EXPECT_LT(result.mean_candidate_fraction, 1.0);
    EXPECT_GT(result.mean_candidate_fraction, 0.02);
    // Output stays close to the blocked-exact reference.
    const BlockedAttentionResult exact = blocked.forward(eval);
    const double rel = frobeniusDiff(result.output, exact.output)
                       / frobeniusNorm(exact.output);
    EXPECT_LT(rel, 0.5);
}

TEST(BlockedTest, ThresholdCountValidated)
{
    const AttentionInput input = longInput(300);
    BlockedSelfAttention blocked({128});
    ApproxSelfAttention engine(makeHasher(), kThetaBias64);
    EXPECT_THROW(blocked.forwardApprox(input, engine, {0.1}), Error);
}

TEST(BlockedTest, RejectsZeroWindow)
{
    EXPECT_THROW(BlockedSelfAttention({0}), Error);
}

} // namespace
} // namespace elsa
