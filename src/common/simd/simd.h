#ifndef ELSA_COMMON_SIMD_SIMD_H_
#define ELSA_COMMON_SIMD_SIMD_H_

/**
 * @file
 * Runtime-dispatched SIMD kernels for the functional hot path.
 *
 * Every sweep and every simulated query pays wall-clock for three
 * integer/compare kernels: XOR+popcount Hamming distance over packed
 * hash words, population counts, and sign extraction (SRP's
 * sign(proj) bit packing). This layer provides a scalar baseline
 * (std::popcount) plus AVX2 and NEON specializations behind a
 * dispatch table selected exactly once at startup.
 *
 * Dispatch contract (the determinism safety net relies on it):
 *
 *  - every kernel is BIT-IDENTICAL across implementations. All three
 *    operations are integer XOR/popcount/shift work or exact IEEE
 *    comparisons (x >= 0 with NaN -> false), so no floating-point
 *    rounding can diverge between ISAs;
 *  - the active table is chosen once, from the CPU's capabilities
 *    and the optional ELSA_SIMD override (scalar|avx2|neon), and
 *    never changes afterwards. Because outputs are bit-identical,
 *    the choice can never leak into metrics, stats, traces, or any
 *    simulated result;
 *  - raw intrinsics live only under src/common/simd/ (enforced by
 *    the elsa-lint `no-raw-intrinsics` rule); the rest of the tree
 *    consumes these function pointers.
 *
 * See docs/PERFORMANCE.md for the measured throughput and how the
 * kernel_throughput bench entry tracks it.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace elsa::simd {

/** Instruction-set level of a kernel table. */
enum class SimdLevel
{
    kScalar,
    kAvx2,
    kNeon,
};

/**
 * One complete kernel implementation. All pointers are always
 * non-null; all kernels accept zero-length inputs.
 *
 * Packed-word convention (shared with HashValue/HashMatrix): bit i
 * of a row lives in word i/64 at bit position i%64, and the unused
 * tail bits of the last word are zero.
 */
struct KernelTable
{
    SimdLevel level;

    /** Human-readable level name ("scalar", "avx2", "neon"). */
    const char* name;

    /**
     * out[r] = popcount(query XOR keys[r]) for r in [0, num_rows).
     * Rows are contiguous: row r starts at keys + r * words_per_row;
     * query holds words_per_row words.
     */
    void (*hamming_batch)(const std::uint64_t* query,
                          const std::uint64_t* keys,
                          std::size_t words_per_row,
                          std::size_t num_rows, std::uint32_t* out);

    /** Total population count of n words. */
    int (*popcount_words)(const std::uint64_t* words, std::size_t n);

    /**
     * Pack sign bits of n floats: bit i of out = (v[i] >= 0), NaN
     * packing to 0. Writes ceil(n/64) words; tail bits are zeroed.
     */
    void (*sign_pack_f32)(const float* v, std::size_t n,
                          std::uint64_t* out);

    /** Double-precision variant of sign_pack_f32. */
    void (*sign_pack_f64)(const double* v, std::size_t n,
                          std::uint64_t* out);
};

/** The portable baseline (always available). */
const KernelTable& scalarKernels();

/**
 * The AVX2 table, or null when the binary was not built with the
 * AVX2 kernels or this CPU does not support AVX2.
 */
const KernelTable* avx2KernelsOrNull();

/** The NEON table, or null when not built for an ARM NEON target. */
const KernelTable* neonKernelsOrNull();

/** Table for an explicit level, or null when unavailable. */
const KernelTable* kernelsFor(SimdLevel level);

/** Levels usable in this process, scalar first. */
std::vector<SimdLevel> availableLevels();

/** Name of a level ("scalar", "avx2", "neon"). */
const char* levelName(SimdLevel level);

/**
 * Resolve a dispatch override string to a level. Null or empty
 * selects the best available level (highest ISA the CPU supports);
 * "scalar", "avx2", or "neon" force that level and fail loudly when
 * it is unknown or unavailable on this machine.
 */
SimdLevel resolveLevel(const char* override_value);

/**
 * The active kernel table. Selected once, on first use, from the
 * CPU's capabilities and the ELSA_SIMD environment override; stable
 * for the lifetime of the process.
 */
const KernelTable& kernels();

/** Level of the active table. */
SimdLevel activeLevel();

} // namespace elsa::simd

#endif // ELSA_COMMON_SIMD_SIMD_H_
