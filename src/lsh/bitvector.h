#ifndef ELSA_LSH_BITVECTOR_H_
#define ELSA_LSH_BITVECTOR_H_

/**
 * @file
 * Packed k-bit hash values (binary embeddings) and Hamming distance.
 *
 * A HashValue is the k-bit binary embedding of a query or key vector
 * (Section III-B). Bits are packed into 64-bit words so the Hamming
 * distance is a handful of XORs and popcounts -- the exact operation
 * the candidate selection module's k-bit XOR unit and adder perform.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace elsa {

/** Packed fixed-width bit vector. */
class HashValue
{
  public:
    /** Empty (zero-bit) value. */
    HashValue() = default;

    /** All-zero value with the given number of bits. */
    explicit HashValue(std::size_t bits);

    /** Number of bits. */
    std::size_t bits() const { return bits_; }

    /** Set bit i to the given value. */
    void setBit(std::size_t i, bool value);

    /** Read bit i. */
    bool bit(std::size_t i) const;

    /** Number of set bits. */
    int popcount() const;

    /** Packed words (little-endian bit order within each word). */
    const std::vector<std::uint64_t>& words() const { return words_; }

    bool operator==(const HashValue&) const = default;

  private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

/**
 * Hamming distance between two equal-width hash values.
 * This is the hardware's k-bit XOR followed by a population count.
 */
int hammingDistance(const HashValue& a, const HashValue& b);

} // namespace elsa

#endif // ELSA_LSH_BITVECTOR_H_
