/**
 * @file
 * Unit tests of the work-stealing thread pool (common/parallel.h):
 * index coverage, map ordering, nesting (including nesting under a
 * std::call_once cell, the combination that deadlocks a naive
 * stealing loop), exception propagation, and the global-pool
 * configuration knobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace elsa {
namespace {

TEST(ParallelTest, CoversEveryIndexExactlyOnce)
{
    for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        for (const std::size_t n : {0u, 1u, 5u, 64u, 1000u}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(n, [&](std::size_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " n=" << n
                    << " i=" << i;
            }
        }
    }
}

TEST(ParallelTest, MapPlacesResultsAtTheirIndex)
{
    ThreadPool pool(4);
    const std::vector<std::size_t> out =
        pool.parallelMap<std::size_t>(
            257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], i * i);
    }
}

TEST(ParallelTest, SingleThreadPoolRunsInline)
{
    // ThreadPool(1) must execute on the calling thread (slot 0).
    ThreadPool pool(1);
    bool all_slot_zero = true;
    pool.parallelFor(32, [&](std::size_t) {
        all_slot_zero =
            all_slot_zero && ThreadPool::currentSlot() == 0;
    });
    EXPECT_TRUE(all_slot_zero);
}

TEST(ParallelTest, CurrentSlotIndexesPerWorkerState)
{
    ThreadPool pool(4);
    // Per-slot scratch sized threads() must never be indexed out of
    // bounds, even with nested fan-out.
    std::vector<std::atomic<int>> scratch(pool.threads());
    pool.parallelFor(64, [&](std::size_t) {
        const std::size_t slot = ThreadPool::currentSlot();
        ASSERT_LT(slot, scratch.size());
        scratch[slot].fetch_add(1, std::memory_order_relaxed);
        pool.parallelFor(8, [&](std::size_t) {
            ASSERT_LT(ThreadPool::currentSlot(), scratch.size());
        });
    });
    int total = 0;
    for (const auto& c : scratch) {
        total += c.load();
    }
    EXPECT_EQ(total, 64);
}

TEST(ParallelTest, NestedParallelForCompletes)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(16, [&](std::size_t outer) {
        pool.parallelFor(100, [&](std::size_t inner) {
            sum.fetch_add(outer * 100 + inner,
                          std::memory_order_relaxed);
        });
    });
    // sum over outer in [0,16) of (outer*100*100 + sum(0..99))
    std::size_t expected = 0;
    for (std::size_t outer = 0; outer < 16; ++outer) {
        expected += outer * 100 * 100 + 99 * 100 / 2;
    }
    EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelTest, NestingUnderCallOnceDoesNotDeadlock)
{
    // Regression test: tasks that fill shared once-cells, where the
    // fill itself fans out on the same pool (the elsa_bench
    // mode-cache shape). A joining thread that steals an unrelated
    // outer task would re-enter the active call_once on its own
    // stack and deadlock; the pool must only run the joined job's
    // chunks while waiting.
    ThreadPool pool(4);
    struct Cell
    {
        std::once_flag once;
        std::size_t value = 0;
    };
    Cell cells[2];
    std::atomic<std::size_t> reads{0};
    pool.parallelFor(16, [&](std::size_t i) {
        Cell& cell = cells[i % 2];
        std::call_once(cell.once, [&] {
            std::atomic<std::size_t> sum{0};
            pool.parallelFor(64, [&](std::size_t j) {
                sum.fetch_add(j, std::memory_order_relaxed);
            });
            cell.value = sum.load();
        });
        EXPECT_EQ(cell.value, 63u * 64u / 2u);
        reads.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(reads.load(), 16u);
}

TEST(ParallelTest, FirstExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(128,
                         [&](std::size_t i) {
                             if (i == 37) {
                                 throw std::runtime_error("i=37");
                             }
                         }),
        std::runtime_error);
    // The pool stays usable after a failed job.
    std::atomic<std::size_t> count{0};
    pool.parallelFor(64, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 64u);
}

TEST(ParallelTest, GlobalThreadOverride)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    EXPECT_EQ(ThreadPool::global().threads(), 3u);
    std::atomic<std::size_t> count{0};
    parallelFor(50, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 50u);

    // Restore the environment/hardware default for other tests.
    ThreadPool::setGlobalThreads(0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
}

} // namespace
} // namespace elsa
