#ifndef ELSA_ELSA_ELSA_H_
#define ELSA_ELSA_ELSA_H_

/**
 * @file
 * High-level entry point of the ELSA library.
 *
 * Elsa bundles the pieces a user needs to run approximate
 * self-attention on their own Q/K/V matrices:
 *
 *   elsa::Elsa engine(64);                       // d = k = 64
 *   double t = engine.learnThreshold(q, k, 1.0); // p = 1
 *   auto result = engine.approxAttention(q, k, v, t);
 *
 * For reproducing the paper's evaluation (simulator, baselines,
 * energy), see elsa/system.h.
 */

#include <cstdint>
#include <memory>

#include "attention/approx.h"
#include "attention/exact.h"
#include "attention/threshold.h"
#include "tensor/matrix.h"

namespace elsa {

/** Facade over the approximate self-attention algorithm. */
class Elsa
{
  public:
    /**
     * Build an engine for embedding dimension d (k = d hash bits).
     *
     * @param d    Embedding dimension; must be a perfect cube for the
     *             default three-way Kronecker hasher (64 in all the
     *             paper's models).
     * @param seed Seed of the random orthogonal hash matrices.
     */
    explicit Elsa(std::size_t d, std::uint64_t seed = 0x1234);

    /** Embedding dimension d. */
    std::size_t dim() const { return d_; }

    /** Hash width k. */
    std::size_t hashBits() const;

    /** The angle-correction bias in use. */
    double thetaBias() const { return theta_bias_; }

    /** Exact self-attention O = softmax(Q K^T) V. */
    Matrix attention(const Matrix& query, const Matrix& key,
                     const Matrix& value) const;

    /**
     * Learn the candidate-selection threshold for the given degree of
     * approximation p from one (or more, by calling repeatedly on a
     * ThresholdLearner) training invocation.
     */
    double learnThreshold(const Matrix& query, const Matrix& key,
                          double p) const;

    /** Approximate self-attention with a learned threshold. */
    ApproxAttentionResult approxAttention(const Matrix& query,
                                          const Matrix& key,
                                          const Matrix& value,
                                          double threshold) const;

    /** The underlying engine, for advanced use. */
    const ApproxSelfAttention& engine() const { return *engine_; }

    /** The shared SRP hasher. */
    std::shared_ptr<const SrpHasher> hasher() const { return hasher_; }

  private:
    std::size_t d_;
    double theta_bias_;
    std::shared_ptr<const SrpHasher> hasher_;
    std::unique_ptr<ApproxSelfAttention> engine_;
};

} // namespace elsa

#endif // ELSA_ELSA_ELSA_H_
