/**
 * @file
 * EXP-AB3: pipeline design-space exploration (Section IV-D).
 *
 * Sweeps the pipeline parameters (P_a, P_c, m_h, m_o, queue depth)
 * on a fixed workload and reports per-query cycles, verifying the
 * paper's balance analysis: a query takes
 * max(3 d^(4/3)/m_h, n/(P_a P_c), c_bank, d/m_o) cycles, so modules
 * other than the attention computation should not bottleneck.
 */

#include <cstdio>
#include <limits>

#include "bench_common.h"
#include "common/args.h"
#include "common/rng.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "sim/accelerator.h"
#include "sim/pipeline_model.h"
#include "sim/report.h"
#include "workload/generator.h"
#include "workload/workload.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"manifest"});
    bench::printHeader(
        "Ablation: pipeline design space (P_a, P_c, m_h, m_o)",
        "Cycle-level simulation of one BERT-like invocation across "
        "pipeline configurations.");

    // A representative invocation with a learned threshold.
    WorkloadRunner runner({bertLarge(), race()});
    const auto invocations = runner.simInvocations(1.0, 1, 1);
    const SimInvocation& inv = invocations.front();
    std::printf("\nworkload: BERT/RACE sublayer (%zu real tokens), "
                "p = 1 threshold = %.3f\n",
                inv.n_real, inv.threshold);

    Rng rng(3);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng, true));

    struct Config
    {
        std::size_t pa, pc, mh, mo, qd;
    };
    const Config configs[] = {
        {1, 8, 64, 8, 4},   // the paper's single-bank example
        {2, 8, 128, 8, 4},  //
        {4, 4, 256, 16, 4}, // fewer selection modules
        {4, 8, 256, 16, 4}, // the paper's evaluation config
        {4, 16, 256, 16, 4},// more selection modules
        {8, 8, 256, 32, 4}, // more banks
        {4, 8, 256, 16, 1}, // shallow queues
        {4, 8, 64, 4, 4},   // starved hash/division units
    };

    std::printf("\n%-26s %10s %10s %10s %8s %8s  %s\n", "config",
                "preproc", "exec", "cyc/query", "stalls",
                "vs exact", "limiting module");

    // Exact (no-approximation) reference on the paper configuration.
    const double base_exec = [&] {
        Accelerator accel(SimConfig::paperConfig(), hasher,
                          kThetaBias64);
        const RunResult base = accel.run(
            inv.input, -std::numeric_limits<double>::infinity());
        return static_cast<double>(base.execute_cycles);
    }();

    obs::RunManifest manifest = bench::makeBenchManifest(
        "ablation_pipeline_dse", bench::standardSystemConfig());
    for (const auto& c : configs) {
        SimConfig sim = SimConfig::paperConfig();
        sim.pa = c.pa;
        sim.pc = c.pc;
        sim.mh = c.mh;
        sim.mo = c.mo;
        sim.queue_depth = c.qd;
        sim.attribute_stalls = true;
        Accelerator accel(sim, hasher, kThetaBias64);

        const RunResult run = accel.run(inv.input, inv.threshold);
        const BottleneckReport bottleneck = computeBottleneck(run);
        char label[64];
        std::snprintf(label, sizeof(label),
                      "Pa=%zu Pc=%-2zu mh=%-3zu mo=%-2zu qd=%zu",
                      c.pa, c.pc, c.mh, c.mo, c.qd);
        std::printf("%-26s %10zu %10zu %10.1f %8zu %7.2fx  %s "
                    "(%.0f%%)\n",
                    label, run.preprocess_cycles, run.execute_cycles,
                    static_cast<double>(run.execute_cycles)
                        / static_cast<double>(inv.n_real),
                    run.stall_cycles,
                    base_exec
                        / static_cast<double>(run.execute_cycles),
                    attributedModuleName(bottleneck.limiting),
                    100.0 * bottleneck.busy_fraction);
        std::fflush(stdout);
        if (c.pa == 4 && c.pc == 8 && c.mh == 256 && c.mo == 16
            && c.qd == 4) {
            manifest.set("metrics", "paper_config_execute_cycles",
                         run.execute_cycles);
            manifest.set("metrics", "paper_config_stall_cycles",
                         run.stall_cycles);
            manifest.set("metrics", "paper_config_limiting_module",
                         attributedModuleName(bottleneck.limiting));
            manifest.set("metrics", "paper_config_limiting_busy",
                         bottleneck.busy_fraction);
        }
    }

    std::printf("\nPipeline floors at n = %zu (paper Section IV-D):\n",
                inv.n_real);
    const SimConfig paper = SimConfig::paperConfig();
    std::printf("  hash/query   : %zu cycles\n",
                hashCyclesPerVector(paper));
    std::printf("  candidate scan: %zu cycles\n",
                candidateScanCycles(paper, inv.n_real));
    std::printf("  division     : %zu cycles\n",
                divisionCyclesPerQuery(paper));
    std::printf("  -> max exact-mode speedup %.1fx; approximate "
                "speedup is min(n/c, %.1f)\n",
                maxPipelineSpeedup(paper, inv.n_real),
                maxPipelineSpeedup(paper, inv.n_real));
    bench::emitBenchSummary(manifest, args);
    return 0;
}
