#ifndef ELSA_LSH_BATCHED_H_
#define ELSA_LSH_BATCHED_H_

/**
 * @file
 * Batched SRP hashing for k > d (Section IV-E, "Choice of Hash
 * Length k").
 *
 * A single orthogonal projection can produce at most d orthogonal
 * hyperplanes. When more hash bits are wanted, the paper (following
 * super-bit LSH) uses *batches* of orthogonal vectors: each batch is
 * an independent orthogonal projection, and the hash bits of all
 * batches are concatenated. BatchedKroneckerHasher builds each batch
 * from the fast Kronecker structure, so hashing k = B*d bits costs
 * B * 3 d^(4/3) multiplications.
 */

#include <cstddef>
#include <vector>

#include "lsh/srp.h"

namespace elsa {

class Rng;

/** Concatenation of independent Kronecker SRP hashers (k = B * d). */
class BatchedKroneckerHasher : public SrpHasher
{
  public:
    /**
     * Construct from existing per-batch hashers; all batches must
     * share the same input dimension.
     */
    explicit BatchedKroneckerHasher(
        std::vector<KroneckerSrpHasher> batches);

    /**
     * Random batched hasher producing k bits for d-dimensional
     * inputs; k must be a multiple of d.
     *
     * @param quantize_factors Quantize factors to the S0.5 hardware
     *        format.
     */
    static BatchedKroneckerHasher makeRandom(std::size_t k,
                                             std::size_t d,
                                             std::size_t num_factors,
                                             Rng& rng,
                                             bool quantize_factors
                                             = false);

    using SrpHasher::hash;
    HashValue hash(const float* x) const override;
    void hashInto(const float* x, std::uint64_t* out,
                  HashScratch& scratch) const override;
    std::size_t dim() const override;
    std::size_t bits() const override;
    std::size_t multiplicationsPerHash() const override;
    Matrix denseProjection() const override;

    std::size_t numBatches() const { return batches_.size(); }

  private:
    std::vector<KroneckerSrpHasher> batches_;
};

} // namespace elsa

#endif // ELSA_LSH_BATCHED_H_
