#include "baselines/gpu_model.h"

#include "common/logging.h"

namespace elsa {

namespace {

/** FLOPs of one self-attention op (one head): 2 MACs-per-FLOP over
 *  the two n^2 d matrix multiplications, plus the softmax. */
double
attentionFlops(std::size_t n, std::size_t d)
{
    const double nn = static_cast<double>(n) * static_cast<double>(n);
    return 4.0 * nn * static_cast<double>(d) + 5.0 * nn;
}

} // namespace

double
GpuModel::attentionEfficiency(const ModelConfig& model)
{
    // Calibration constants (see header). The NLP implementations
    // differ (HuggingFace vs FairSeq vs the Google ALBERT repo),
    // which the paper cites as the source of cross-model speedup
    // differences; the recommenders run tiny kernels with poor
    // utilization.
    if (model.name == "BERT") {
        return 0.08;
    }
    if (model.name == "RoBERTa") {
        return 0.095;
    }
    if (model.name == "ALBERT") {
        return 0.06;
    }
    if (model.name == "SASRec") {
        return 0.10;
    }
    if (model.name == "BERT4Rec") {
        return 0.08;
    }
    return 0.09;
}

double
GpuModel::gemmEfficiency(const ModelConfig& model)
{
    return model.is_nlp ? 0.65 : 0.15;
}

double
GpuModel::attentionSecondsPerOp(const ModelConfig& model,
                                std::size_t n) const
{
    ELSA_CHECK(n > 0, "sequence length must be positive");
    return attentionFlops(n, model.head_dim)
           / (kPeakFlops * attentionEfficiency(model));
}

LayerRuntime
GpuModel::layerRuntime(const ModelConfig& model, std::size_t n,
                       double seq_scale, double ffn_scale) const
{
    ELSA_CHECK(seq_scale > 0.0 && ffn_scale > 0.0,
               "scales must be positive");
    const double ns = static_cast<double>(n) * seq_scale;
    const double h = static_cast<double>(model.hidden_dim);
    const double heads = static_cast<double>(model.num_heads);
    const double d = static_cast<double>(model.head_dim);
    const double ffn = static_cast<double>(model.ffn_dim) * ffn_scale;

    LayerRuntime runtime;
    // Self-attention proper: per head 4 n^2 d + softmax FLOPs.
    runtime.attention_s = heads * (4.0 * ns * ns * d + 5.0 * ns * ns)
                          / (kPeakFlops * attentionEfficiency(model));
    // Q/K/V/output projections: four h x h GEMMs over n tokens.
    runtime.projection_s = 8.0 * ns * h * h
                           / (kPeakFlops * gemmEfficiency(model));
    // FFN: two GEMMs h -> ffn -> h.
    runtime.ffn_s = 4.0 * ns * h * ffn
                    / (kPeakFlops * gemmEfficiency(model));
    return runtime;
}

double
GpuModel::attentionOpsPerSecond(const ModelConfig& model,
                                std::size_t n) const
{
    return 1.0 / attentionSecondsPerOp(model, n);
}

double
GpuModel::attentionEnergyPerOp(const ModelConfig& model,
                               std::size_t n) const
{
    return attentionSecondsPerOp(model, n) * kMeasuredPowerW;
}

} // namespace elsa
