#ifndef ELSA_COMMON_CSV_H_
#define ELSA_COMMON_CSV_H_

/**
 * @file
 * Minimal CSV writer for the benchmark harness.
 *
 * The figure-reproduction benches print human-readable tables; with
 * --csv <path> they additionally emit machine-readable series for
 * plotting. The writer handles quoting (commas, quotes, newlines)
 * per RFC 4180.
 */

#include <fstream>
#include <string>
#include <vector>

namespace elsa {

/** Streams rows of fields to a CSV file. */
class CsvWriter
{
  public:
    /** Open (truncate) the file; raises elsa::Error on failure. */
    explicit CsvWriter(const std::string& path);

    /** Write one row; fields are quoted as needed. */
    void writeRow(const std::vector<std::string>& fields);

    /** Convenience: header row. */
    void writeHeader(const std::vector<std::string>& columns);

    /** Number of rows written (including the header). */
    std::size_t rowsWritten() const { return rows_; }

    /** Quote a field per RFC 4180 (exposed for tests). */
    static std::string escape(const std::string& field);

  private:
    std::ofstream out_;
    std::size_t rows_ = 0;
};

/** Format a double with fixed precision for CSV fields. */
std::string csvNumber(double value, int precision = 6);

} // namespace elsa

#endif // ELSA_COMMON_CSV_H_
