#include "sim/array.h"

#include <algorithm>

#include "common/logging.h"

namespace elsa {

AcceleratorArray::AcceleratorArray(SimConfig config,
                                   std::size_t num_accelerators,
                                   std::shared_ptr<const SrpHasher> hasher,
                                   double theta_bias,
                                   SchedulingPolicy policy)
    : num_accelerators_(num_accelerators),
      accelerator_(config, std::move(hasher), theta_bias),
      policy_(policy)
{
    ELSA_CHECK(num_accelerators > 0, "array needs >= 1 accelerator");
}

void
AcceleratorArray::attachObservability(obs::StatsRegistry* stats,
                                      obs::TraceWriter* trace,
                                      const std::string& prefix)
{
    accelerator_.attachStats(stats, prefix);
    accelerator_.attachTrace(trace);
}

ArrayRunResult
AcceleratorArray::run(const std::vector<const AttentionInput*>& inputs,
                      const std::vector<double>& thresholds) const
{
    ELSA_CHECK(inputs.size() == thresholds.size(),
               "inputs/thresholds size mismatch");
    ArrayRunResult result;
    result.num_invocations = inputs.size();

    // Greedy least-loaded scheduling; accelerators are identical so
    // only the load vector matters.
    std::vector<std::size_t> load(num_accelerators_, 0);
    double fraction_sum = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        ELSA_CHECK(inputs[i] != nullptr, "null input " << i);
        const RunResult run_result =
            accelerator_.run(*inputs[i], thresholds[i]);
        const std::size_t cycles = run_result.totalCycles();
        result.total_cycles += cycles;
        result.total_preprocess_cycles += run_result.preprocess_cycles;
        result.activity.merge(run_result.activity);
        result.stall_breakdown.merge(run_result.stall_breakdown);
        fraction_sum += run_result.candidateFraction();

        if (policy_ == SchedulingPolicy::kLeastLoaded) {
            auto least = std::min_element(load.begin(), load.end());
            *least += cycles;
        } else {
            load[i % num_accelerators_] += cycles;
        }
    }
    result.makespan_cycles = *std::max_element(load.begin(), load.end());
    result.mean_candidate_fraction =
        inputs.empty() ? 0.0
                       : fraction_sum
                             / static_cast<double>(inputs.size());
    return result;
}

} // namespace elsa
