/**
 * @file
 * EXP-F10: reproduces Fig. 10 of the paper -- for each model-dataset
 * combination, the portion of selected candidates (bars in the paper)
 * and the end-to-end accuracy-loss estimate (lines) across the degree
 * of approximation p.
 *
 * Paper reference points: sub-1% loss while inspecting < 40% of the
 * entities (p = 1) for most combinations; sub-2% loss at ~26% of the
 * entities on average (p = 2).
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/args.h"
#include "common/csv.h"
#include "common/stats.h"
#include "workload/workload.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"csv", "manifest"});
    std::unique_ptr<CsvWriter> csv;
    if (args.has("csv")) {
        csv = std::make_unique<CsvWriter>(args.get("csv"));
        csv->writeHeader({"workload", "p", "candidate_fraction",
                          "estimated_loss_pct"});
    }
    bench::printHeader(
        "Fig. 10: candidate portion and accuracy vs hyperparameter p",
        "Per workload: candidate fraction (bars) and estimated "
        "accuracy loss (lines).");

    WorkloadEvalOptions options;
    options.max_sublayers = 6;
    options.num_eval_inputs = 3;
    options.num_train_inputs = 3;

    const std::vector<double> p_grid = {0.5, 1.0, 2.0, 4.0, 8.0};

    std::printf("\n%-18s", "workload");
    for (const double p : p_grid) {
        std::printf("        p=%-4.1f", p);
    }
    std::printf("\n%-18s", "");
    for (std::size_t i = 0; i < p_grid.size(); ++i) {
        std::printf("   cand%%  loss%%");
    }
    std::printf("\n");

    RunningStat cand_at_p1;
    RunningStat loss_at_p1;
    RunningStat cand_at_p2;
    RunningStat loss_at_p2;
    for (const auto& spec : evaluationWorkloads()) {
        WorkloadRunner runner(spec);
        std::printf("%-18s", spec.label().c_str());
        for (const double p : p_grid) {
            const WorkloadEvaluation eval = runner.evaluate(p, options);
            std::printf("  %5.1f  %5.2f",
                        100.0 * eval.mean_candidate_fraction,
                        eval.estimated_loss_pct);
            if (csv != nullptr) {
                csv->writeRow({spec.label(), csvNumber(p, 2),
                               csvNumber(eval.mean_candidate_fraction),
                               csvNumber(eval.estimated_loss_pct)});
            }
            if (p == 1.0) {
                cand_at_p1.add(eval.mean_candidate_fraction);
                loss_at_p1.add(eval.estimated_loss_pct);
            }
            if (p == 2.0) {
                cand_at_p2.add(eval.mean_candidate_fraction);
                loss_at_p2.add(eval.estimated_loss_pct);
            }
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\nSummary: p=1 -> %.1f%% candidates, %.2f%% loss "
                "(paper: <40%%, sub-1%% for most)\n",
                100.0 * cand_at_p1.mean(), loss_at_p1.mean());
    std::printf("         p=2 -> %.1f%% candidates, %.2f%% loss "
                "(paper: ~26%% avg, sub-2%%)\n",
                100.0 * cand_at_p2.mean(), loss_at_p2.mean());

    obs::RunManifest manifest = bench::makeBenchManifest(
        "fig10_accuracy_vs_p", bench::standardSystemConfig());
    manifest.set("metrics", "workloads",
                 evaluationWorkloads().size());
    manifest.set("metrics", "candidate_fraction_mean_p1",
                 cand_at_p1.mean());
    manifest.set("metrics", "estimated_loss_pct_mean_p1",
                 loss_at_p1.mean());
    manifest.set("metrics", "candidate_fraction_mean_p2",
                 cand_at_p2.mean());
    manifest.set("metrics", "estimated_loss_pct_mean_p2",
                 loss_at_p2.mean());
    bench::emitBenchSummary(manifest, args);
    return 0;
}
