#include "serve_overload.h"

#include <cstdio>

#include "serve/scenario.h"

namespace elsa::bench {

std::vector<double>
serveOverloadLoads()
{
    return {0.6, 1.0, 2.0};
}

std::string
loadLabel(double load)
{
    const int whole = static_cast<int>(load);
    const int tenths =
        static_cast<int>(load * 10.0 + 0.5) - whole * 10;
    char buf[32];
    std::snprintf(buf, sizeof buf, "load%dp%d", whole, tenths);
    return buf;
}

ServeOverloadResult
runServeOverloadSweep(bool quick)
{
    ServeOverloadResult sweep;
    for (const double load : serveOverloadLoads()) {
        for (const bool degraded : {false, true}) {
            ServeOverloadCell cell;
            cell.load = load;
            cell.degraded = degraded;
            cell.label = loadLabel(load)
                         + (degraded ? std::string("_degraded")
                                     : std::string("_static"));
            const ServeConfig config =
                overloadScenario(load, degraded, quick);
            cell.deadline_cycles = config.deadline_cycles;
            cell.result = ServeEngine(config).run();
            sweep.cells.push_back(std::move(cell));
        }
    }
    return sweep;
}

void
addServeOverloadMetrics(obs::RunManifest& manifest,
                        const ServeOverloadResult& result)
{
    for (const ServeOverloadCell& cell : result.cells) {
        const ServeResult& r = cell.result;
        manifest.set("metrics", cell.label + "_goodput_qps",
                     r.goodput_qps);
        manifest.set("metrics", cell.label + "_shed_rate",
                     r.shed_rate);
        manifest.set("metrics", cell.label + "_deadline_miss_rate",
                     r.deadline_miss_rate);
        manifest.set("metrics", cell.label + "_p99_latency_cycles",
                     r.latency.count() > 0 ? r.latency.quantile(0.99)
                                           : 0.0);
        manifest.set("metrics", cell.label + "_completed",
                     static_cast<std::size_t>(r.completed));
        manifest.set("metrics", cell.label + "_shed",
                     static_cast<std::size_t>(r.shed));
        manifest.set("metrics", cell.label + "_retry_attempts",
                     static_cast<std::size_t>(r.retry_attempts));
    }
    if (!result.cells.empty()) {
        manifest.set("metrics", "slo_deadline_cycles",
                     static_cast<std::size_t>(
                         result.cells.front().deadline_cycles));
    }
}

std::string
formatServeOverloadTable(const ServeOverloadResult& result)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "  %-16s %6s %6s %6s %6s %10s %9s %9s %8s\n",
                  "cell", "offer", "comp", "shed", "retry",
                  "goodput/s", "shedrate", "p99_cyc", "slo_cyc");
    out += line;
    for (const ServeOverloadCell& cell : result.cells) {
        const ServeResult& r = cell.result;
        std::snprintf(
            line, sizeof line,
            "  %-16s %6llu %6llu %6llu %6llu %10.0f %9.3f %9.0f "
            "%8llu\n",
            cell.label.c_str(),
            static_cast<unsigned long long>(r.offered),
            static_cast<unsigned long long>(r.completed),
            static_cast<unsigned long long>(r.shed),
            static_cast<unsigned long long>(r.retry_attempts),
            r.goodput_qps, r.shed_rate,
            r.latency.count() > 0 ? r.latency.quantile(0.99) : 0.0,
            static_cast<unsigned long long>(cell.deadline_cycles));
        out += line;
    }
    return out;
}

} // namespace elsa::bench
