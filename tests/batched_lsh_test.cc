/**
 * @file
 * Tests for the batched (k > d) Kronecker SRP hasher (Section IV-E,
 * "Choice of Hash Length k"): structure, estimator quality, and the
 * interaction with the approximate attention engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "attention/approx.h"
#include "common/rng.h"
#include "common/stats.h"
#include "lsh/angle.h"
#include "lsh/batched.h"
#include "lsh/calibration.h"
#include "tensor/ops.h"

namespace elsa {
namespace {

TEST(BatchedHasherTest, BitsAndCost)
{
    Rng rng(1);
    const auto hasher =
        BatchedKroneckerHasher::makeRandom(192, 64, 3, rng);
    EXPECT_EQ(hasher.dim(), 64u);
    EXPECT_EQ(hasher.bits(), 192u);
    EXPECT_EQ(hasher.numBatches(), 3u);
    // Cost = 3 batches x 3 d^(4/3) = 3 * 768.
    EXPECT_EQ(hasher.multiplicationsPerHash(), 3u * 768u);
}

TEST(BatchedHasherTest, RejectsNonMultipleK)
{
    Rng rng(2);
    EXPECT_THROW(BatchedKroneckerHasher::makeRandom(100, 64, 3, rng),
                 Error);
}

TEST(BatchedHasherTest, ConcatenationMatchesPerBatchHashes)
{
    Rng rng(3);
    const auto hasher =
        BatchedKroneckerHasher::makeRandom(128, 64, 3, rng);
    const Matrix dense = hasher.denseProjection();
    ASSERT_EQ(dense.rows(), 128u);
    std::vector<float> x(64);
    for (auto& v : x) {
        v = static_cast<float>(rng.gaussian());
    }
    const HashValue h = hasher.hash(x.data());
    for (std::size_t i = 0; i < 128; ++i) {
        const double proj = dot(dense.row(i), x.data(), 64);
        EXPECT_EQ(h.bit(i), proj >= 0.0) << "bit " << i;
    }
}

TEST(BatchedHasherTest, MoreBitsReduceEstimatorError)
{
    Rng rng(4);
    const auto k64 = BatchedKroneckerHasher::makeRandom(64, 64, 3, rng);
    const auto k256 =
        BatchedKroneckerHasher::makeRandom(256, 64, 3, rng);
    RunningStat err64;
    RunningStat err256;
    std::vector<float> x(64);
    std::vector<float> y(64);
    for (int i = 0; i < 2000; ++i) {
        for (std::size_t c = 0; c < 64; ++c) {
            x[c] = static_cast<float>(rng.gaussian());
            y[c] = static_cast<float>(rng.gaussian());
        }
        const double cosine = dot(x.data(), y.data(), 64)
                              / (l2Norm(x.data(), 64)
                                 * l2Norm(y.data(), 64));
        const double truth = std::acos(std::clamp(cosine, -1.0, 1.0));
        const double e64 =
            estimateAngle(hammingDistance(k64.hash(x.data()),
                                          k64.hash(y.data())),
                          64)
            - truth;
        const double e256 =
            estimateAngle(hammingDistance(k256.hash(x.data()),
                                          k256.hash(y.data())),
                          256)
            - truth;
        err64.add(e64 * e64);
        err256.add(e256 * e256);
    }
    EXPECT_LT(err256.mean(), err64.mean());
}

TEST(BatchedHasherTest, WorksWithApproxAttentionEngine)
{
    Rng rng(5);
    auto hasher = std::make_shared<BatchedKroneckerHasher>(
        BatchedKroneckerHasher::makeRandom(128, 64, 3, rng, true));
    BiasCalibrationOptions options;
    options.num_pairs = 2000;
    options.num_hashers = 2;
    const double bias = calibrateThetaBias(64, 128, rng, options);
    ApproxSelfAttention engine(hasher, bias);
    EXPECT_EQ(engine.hashBits(), 128u);
    EXPECT_EQ(engine.cosineLut().size(), 129u);

    AttentionInput input;
    input.query = Matrix(32, 64);
    input.key = Matrix(32, 64);
    input.value = Matrix(32, 64);
    input.query.fillGaussian(rng);
    input.key.fillGaussian(rng);
    input.value.fillGaussian(rng);
    const auto result = engine.run(input, 0.2);
    EXPECT_EQ(result.output.rows(), 32u);
    EXPECT_EQ(result.stats.candidates_per_query.size(), 32u);
}

} // namespace
} // namespace elsa
