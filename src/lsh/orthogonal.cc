#include "lsh/orthogonal.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"

namespace elsa {

void
modifiedGramSchmidt(Matrix& m)
{
    ELSA_CHECK(m.rows() <= m.cols(),
               "Gram-Schmidt requires rows <= cols, got " << m.rows()
                                                          << "x"
                                                          << m.cols());
    const std::size_t d = m.cols();
    for (std::size_t i = 0; i < m.rows(); ++i) {
        float* vi = m.row(i);
        const double norm = l2Norm(vi, d);
        ELSA_CHECK(norm > 1e-12,
                   "Gram-Schmidt hit a (near-)dependent row " << i);
        for (std::size_t c = 0; c < d; ++c) {
            vi[c] = static_cast<float>(vi[c] / norm);
        }
        // Modified variant: immediately remove the i-th component from
        // every later row (numerically stabler than classical GS).
        for (std::size_t j = i + 1; j < m.rows(); ++j) {
            float* vj = m.row(j);
            const double proj = dot(vi, vj, d);
            for (std::size_t c = 0; c < d; ++c) {
                vj[c] = static_cast<float>(vj[c] - proj * vi[c]);
            }
        }
    }
}

Matrix
randomOrthogonalProjection(std::size_t k, std::size_t d, Rng& rng)
{
    ELSA_CHECK(k > 0 && d > 0, "projection dims must be positive");
    Matrix out(k, d);
    std::size_t produced = 0;
    while (produced < k) {
        const std::size_t batch = std::min(d, k - produced);
        Matrix block(batch, d);
        block.fillGaussian(rng);
        modifiedGramSchmidt(block);
        for (std::size_t r = 0; r < batch; ++r) {
            std::copy(block.row(r), block.row(r) + d,
                      out.row(produced + r));
        }
        produced += batch;
    }
    return out;
}

Matrix
randomOrthogonalSquare(std::size_t s, Rng& rng)
{
    return randomOrthogonalProjection(s, s, rng);
}

double
orthonormalityError(const Matrix& m)
{
    const std::size_t r = m.rows();
    double worst = 0.0;
    for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < r; ++j) {
            const double g = dot(m.row(i), m.row(j), m.cols());
            const double expected = (i == j) ? 1.0 : 0.0;
            worst = std::max(worst, std::abs(g - expected));
        }
    }
    return worst;
}

} // namespace elsa
