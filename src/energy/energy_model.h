#ifndef ELSA_ENERGY_ENERGY_MODEL_H_
#define ELSA_ENERGY_ENERGY_MODEL_H_

/**
 * @file
 * Energy accounting for the ELSA accelerator (Fig. 13 of the paper).
 *
 * Dynamic energy of a module group = its Table I dynamic power times
 * the group's *equivalent full-utilization active cycles* (e.g. two
 * of the four attention computation modules busy for C cycles count
 * as 0.5 * C); static energy = static power times total elapsed
 * cycles. The cycle-level simulator produces the activity counters.
 */

#include <array>
#include <cstddef>

#include "energy/area_power.h"

namespace elsa {

/** Per-module-group activity, in full-utilization cycle equivalents. */
class ActivityCounters
{
  public:
    /** Add active cycles for a module group. */
    void add(HwModule module, double cycles);

    /** Accumulated active cycles of a module group. */
    double get(HwModule module) const;

    /** Merge another counter set into this one. */
    void merge(const ActivityCounters& other);

  private:
    static std::size_t index(HwModule module);
    std::array<double, 9> active_{};
};

/** Energy of one run, split by module group. */
struct EnergyBreakdown
{
    /** Per-module energy in microjoules, indexed like allHwModules(). */
    std::array<double, 9> module_uj{};

    /** Total energy in microjoules. */
    double totalUj() const;

    /** Energy of a single module group. */
    double moduleUj(HwModule module) const;

    /** Hash + norm + candidate selection (the approximation logic). */
    double approximationLogicUj() const;

    /** Attention computation + output division. */
    double attentionComputeUj() const;

    /** Key hash + key norm SRAM (internal memories). */
    double internalMemoryUj() const;

    /** Key/value + query/output SRAM (external memories). */
    double externalMemoryUj() const;

    EnergyBreakdown& operator+=(const EnergyBreakdown& other);
};

/** Power-scaling factors for non-paper pipeline configurations. */
struct PowerScaling
{
    /** Factor per module group, indexed like allHwModules(). */
    std::array<double, 9> factor{1, 1, 1, 1, 1, 1, 1, 1, 1};

    /**
     * Scaling for a pipeline configuration relative to the Table I
     * synthesis point (P_a = 4, P_c = 8, m_h = 256, m_o = 16):
     * module power grows linearly with its multiplier / instance
     * count. SRAM power is capacity-bound and kept fixed.
     */
    static PowerScaling forPipeline(std::size_t pa, std::size_t pc,
                                    std::size_t mh, std::size_t mo);
};

/** Converts activity counters into energy using Table I powers. */
class EnergyModel
{
  public:
    /** @param frequency_ghz Accelerator clock; the paper uses 1 GHz. */
    explicit EnergyModel(double frequency_ghz = 1.0);

    /** Model with per-module power scaling (design-space studies). */
    EnergyModel(double frequency_ghz, const PowerScaling& scaling);

    /**
     * Energy of a run.
     *
     * @param activity     Per-module-group active cycles.
     * @param total_cycles Elapsed cycles (for static power).
     */
    EnergyBreakdown compute(const ActivityCounters& activity,
                            double total_cycles) const;

    /** Elapsed seconds for a cycle count at this clock. */
    double cyclesToSeconds(double cycles) const;

  private:
    double frequency_ghz_;
    PowerScaling scaling_;
};

} // namespace elsa

#endif // ELSA_ENERGY_ENERGY_MODEL_H_
