#include "lsh/srp.h"

#include <cmath>

#include "common/rng.h"
#include "fixed/fixed_point.h"
#include "lsh/orthogonal.h"
#include "obs/profile.h"
#include "tensor/ops.h"

namespace elsa {

namespace {

/** sign(x) per the paper: 1 if x >= 0, else 0. */
bool
signBit(double x)
{
    return x >= 0.0;
}

} // namespace

HashValue
SrpHasher::hash(const std::vector<float>& x) const
{
    ELSA_CHECK(x.size() == dim(),
               "hash input size " << x.size() << " != d = " << dim());
    return hash(x.data());
}

std::vector<HashValue>
SrpHasher::hashRows(const Matrix& m) const
{
    ELSA_CHECK(m.cols() == dim(),
               "hashRows input has " << m.cols() << " cols, d = " << dim());
    ELSA_PROF_SCOPE("lsh.hash_rows");
    std::vector<HashValue> hashes;
    hashes.reserve(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        hashes.push_back(hash(m.row(r)));
    }
    return hashes;
}

// --- DenseSrpHasher --------------------------------------------------

DenseSrpHasher::DenseSrpHasher(Matrix projection)
    : projection_(std::move(projection))
{
    ELSA_CHECK(projection_.rows() > 0 && projection_.cols() > 0,
               "empty projection matrix");
}

DenseSrpHasher
DenseSrpHasher::makeRandom(std::size_t k, std::size_t d, Rng& rng)
{
    return DenseSrpHasher(randomOrthogonalProjection(k, d, rng));
}

HashValue
DenseSrpHasher::hash(const float* x) const
{
    HashValue h(bits());
    for (std::size_t i = 0; i < bits(); ++i) {
        h.setBit(i, signBit(dot(projection_.row(i), x, dim())));
    }
    return h;
}

std::size_t
DenseSrpHasher::multiplicationsPerHash() const
{
    return bits() * dim();
}

// --- KroneckerSrpHasher ----------------------------------------------

KroneckerSrpHasher::KroneckerSrpHasher(std::vector<Matrix> factors)
    : factors_(std::move(factors))
{
    ELSA_CHECK(!factors_.empty(), "KroneckerSrpHasher needs >= 1 factor");
    factor_size_ = factors_.front().rows();
    dim_ = 1;
    for (const auto& f : factors_) {
        ELSA_CHECK(f.rows() == factor_size_ && f.cols() == factor_size_,
                   "Kronecker factors must all be square of equal size; "
                   "got " << f.rows() << "x" << f.cols() << " vs s = "
                          << factor_size_);
        dim_ *= factor_size_;
    }
}

KroneckerSrpHasher
KroneckerSrpHasher::makeRandom(std::size_t d, std::size_t num_factors,
                               Rng& rng, bool quantize_factors)
{
    ELSA_CHECK(num_factors >= 1, "need at least one Kronecker factor");
    const double root = std::pow(static_cast<double>(d),
                                 1.0 / static_cast<double>(num_factors));
    const auto s = static_cast<std::size_t>(std::lround(root));
    std::size_t check = 1;
    for (std::size_t i = 0; i < num_factors; ++i) {
        check *= s;
    }
    ELSA_CHECK(check == d,
               "d = " << d << " is not a perfect " << num_factors
                      << "-th power");
    std::vector<Matrix> factors;
    factors.reserve(num_factors);
    for (std::size_t i = 0; i < num_factors; ++i) {
        Matrix f = randomOrthogonalSquare(s, rng);
        if (quantize_factors) {
            f = quantizeProjectionMatrix(f);
        }
        factors.push_back(std::move(f));
    }
    return KroneckerSrpHasher(std::move(factors));
}

std::vector<float>
KroneckerSrpHasher::project(const float* x) const
{
    const std::size_t s = factor_size_;
    const std::size_t m = factors_.size();
    std::vector<float> buf(x, x + dim_);
    std::vector<float> tmp(dim_);
    // Contract one tensor mode per factor. Viewing x as an order-m
    // tensor with every mode of extent s, mode t has stride s^(m-1-t)
    // in row-major order; contracting A_t over mode t costs d*s
    // multiplications, for m*d*s total (Section III-C).
    std::size_t stride = dim_ / s; // stride of mode 0
    for (std::size_t t = 0; t < m; ++t) {
        const Matrix& a = factors_[t];
        const std::size_t block = s * stride;
        for (std::size_t base = 0; base < dim_; base += block) {
            for (std::size_t inner = 0; inner < stride; ++inner) {
                const std::size_t offset = base + inner;
                for (std::size_t j = 0; j < s; ++j) {
                    double acc = 0.0;
                    for (std::size_t i = 0; i < s; ++i) {
                        acc += static_cast<double>(a(j, i))
                               * static_cast<double>(
                                   buf[offset + i * stride]);
                    }
                    tmp[offset + j * stride] = static_cast<float>(acc);
                }
            }
        }
        buf.swap(tmp);
        stride /= s;
    }
    return buf;
}

HashValue
KroneckerSrpHasher::hash(const float* x) const
{
    const std::vector<float> projected = project(x);
    HashValue h(dim_);
    for (std::size_t i = 0; i < dim_; ++i) {
        h.setBit(i, signBit(projected[i]));
    }
    return h;
}

std::size_t
KroneckerSrpHasher::multiplicationsPerHash() const
{
    return factors_.size() * dim_ * factor_size_;
}

Matrix
KroneckerSrpHasher::denseProjection() const
{
    Matrix acc = factors_.front();
    for (std::size_t i = 1; i < factors_.size(); ++i) {
        acc = kronecker(acc, factors_[i]);
    }
    return acc;
}

// --- Quantization ----------------------------------------------------

Matrix
quantizeProjectionMatrix(const Matrix& m)
{
    Matrix out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.rows(); ++i) {
        for (std::size_t j = 0; j < m.cols(); ++j) {
            out(i, j) = static_cast<float>(
                quantize<0, 5>(static_cast<double>(m(i, j))));
        }
    }
    return out;
}

} // namespace elsa
