#ifndef ELSA_SERVE_ENGINE_H_
#define ELSA_SERVE_ENGINE_H_

/**
 * @file
 * Deterministic event-driven request serving engine on top of
 * AcceleratorArray (docs/SERVING.md).
 *
 * The engine separates *what a request costs* from *when it runs*:
 *
 *  - A service catalog maps every (request class, fidelity level)
 *    pair to its measured service time by running the class's
 *    attention input through the accelerator array once per level
 *    (fault-free, at the level's learned threshold). The catalog is
 *    real simulated hardware cost, not a synthetic distribution.
 *  - A serial event loop replays the arrival trace against
 *    `num_accelerators` servers: bounded admission queue with a
 *    configurable full-queue policy, per-request deadlines (missed
 *    in queue = shed, missed in service = SLO violation),
 *    detected-fault escalation to bounded retries with exponential
 *    backoff, and a graceful-degradation controller stepping the
 *    fidelity `p` down ServeConfig's ladder under sustained
 *    overload and back up on recovery.
 *
 * The loop is serial and integer-cycle-domain, the catalog is
 * deterministic, and all randomness forks off ServeConfig::seed, so
 * every count, digest, and artifact is byte-identical at any thread
 * count and SIMD level.
 *
 * Accounting obeys two exact conservation invariants:
 *
 *     offered  == admitted  + rejected
 *     admitted == completed + shed + failed
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/digest.h"
#include "serve/arrival.h"
#include "serve/config.h"

namespace elsa {

/** One (class, level) entry of the service catalog. */
struct ServiceCatalogEntry
{
    std::size_t class_index = 0;
    std::size_t level = 0;

    /** The fidelity `p` of the level. */
    double p = 0.0;

    /** Learned candidate threshold at this (class, p). */
    double threshold = 0.0;

    /** Fault-free service time of one request, in cycles. */
    std::uint64_t service_cycles = 0;
};

/** Dwell accounting of one fidelity level. */
struct ServeLevelStats
{
    /** The level's fidelity `p`. */
    double p = 0.0;

    /** Cycles the controller sat at the level; over all levels the
     *  dwells sum to ServeResult::span_cycles exactly. */
    std::uint64_t dwell_cycles = 0;

    /** Times the controller entered the level (level 0 starts
     *  entered). */
    std::uint64_t entries = 0;

    /** Requests dispatched into service at the level. */
    std::uint64_t dispatched = 0;
};

/** Full accounting of one serve run. */
struct ServeResult
{
    // ---- Request-count conservation ----
    std::uint64_t offered = 0;   ///< Arrivals generated.
    std::uint64_t admitted = 0;  ///< Entered the admission queue.
    std::uint64_t rejected = 0;  ///< Turned away at admission.
    std::uint64_t completed = 0; ///< Finished service.
    std::uint64_t shed = 0;      ///< Dropped after admission.
    std::uint64_t failed = 0;    ///< Exhausted retry attempts.

    /** Shed breakdown: displaced by a tail-drop admission. */
    std::uint64_t shed_queue_drop = 0;

    /** Shed breakdown: deadline expired while queued. */
    std::uint64_t shed_deadline = 0;

    /** Completed, but past the deadline (SLO violations). */
    std::uint64_t slo_violations = 0;

    // ---- Retry path ----
    std::uint64_t retry_attempts = 0;       ///< Re-executions.
    std::uint64_t retry_backoff_cycles = 0; ///< Total backoff spent.
    std::uint64_t faulty_attempts = 0;      ///< Detected-fault runs.

    // ---- Degradation controller ----
    std::uint64_t degradation_transitions = 0;
    std::vector<ServeLevelStats> levels;

    /** Cycle of the last engine event (span of the run; dwell times
     *  sum to it). */
    std::uint64_t span_cycles = 0;

    /** End-to-end latency (arrival to completion) of every
     *  completed request, in cycles. */
    obs::QuantileDigest latency;

    /** Total admission-queue wait of every completed request. */
    obs::QuantileDigest queue_wait;

    // ---- Derived SLO metrics (docs/SERVING.md glossary) ----
    double goodput_qps = 0.0;         ///< In-deadline completions/s.
    double shed_rate = 0.0;           ///< shed / offered.
    double deadline_miss_rate = 0.0;  ///< (shed+failed+viol)/offered.

    bool conservesOffered() const
    {
        return offered == admitted + rejected;
    }
    bool conservesAdmitted() const
    {
        return admitted == completed + shed + failed;
    }
};

/**
 * The serving engine. Construction builds the service catalog (the
 * expensive part -- real accelerator runs); run() replays the
 * arrival trace through the event loop, which is cheap and can be
 * repeated.
 */
class ServeEngine
{
  public:
    /** Validates the configuration and builds the catalog. */
    explicit ServeEngine(ServeConfig config);

    const ServeConfig& config() const { return config_; }

    /** (class, level)-major catalog (level varies fastest). */
    const std::vector<ServiceCatalogEntry>& catalog() const
    {
        return catalog_;
    }

    /** Catalog entry of a (class, level) pair. */
    const ServiceCatalogEntry&
    catalogEntry(std::size_t class_index, std::size_t level) const;

    /** Run the event loop over the full arrival trace. */
    ServeResult run() const;

  private:
    ServeConfig config_;
    std::vector<ServiceCatalogEntry> catalog_;
};

} // namespace elsa

#endif // ELSA_SERVE_ENGINE_H_
