#ifndef ELSA_FAULT_FAULT_H_
#define ELSA_FAULT_FAULT_H_

/**
 * @file
 * Deterministic fault-injection and recovery model for the simulated
 * ELSA accelerator (see docs/ROBUSTNESS.md).
 *
 * The paper's accelerator stores its working set in banked SRAMs
 * (Section IV-B/C) and computes through an aggressively quantized
 * datapath (Section IV-E); the baseline simulator models both as
 * perfect. This subsystem makes hardware error representable:
 *
 *  - a FaultPlan samples bit flips at a configurable bit-error rate
 *    into the simulated memories (key hash memory, key norm memory,
 *    key/value banks, and the exponent/reciprocal LUT tables of
 *    src/fixed/units.cc), deterministically from a seed via
 *    common/rng -- the plan depends only on (config, geometry), so
 *    runs are bit-reproducible at any thread count (the contract of
 *    docs/PARALLELISM.md);
 *  - a protection model (none / parity-detect / SECDED-correct)
 *    classifies every flipped word as silent (corrupt data flows
 *    through), detected (a modeled re-fetch repairs the word and
 *    charges stall cycles, surfaced as the `fault_retry` stall
 *    cause), or corrected (repaired in line, no timing cost);
 *  - FaultCounts carries the bookkeeping under the hard conservation
 *    invariant  injected == silent + detected + corrected  (checked
 *    by tests/fault_test.cc and scripts/check_metrics.py).
 *
 * Everything here is pure bookkeeping over a sampled plan; applying
 * the silent flips to simulator state is the simulator's job
 * (sim/accelerator.cc), using the bit-flip helpers at the bottom of
 * this header so value perturbation stays bit-faithful to the
 * hardware number formats.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace elsa {

class HashValue;

/** SRAM/LUT protection scheme modeled for every fault target. */
enum class ProtectionMode
{
    /** No protection: every flip silently corrupts data. */
    kNone = 0,
    /** Per-word parity bit: detects odd flip counts, corrects none. */
    kParityDetect,
    /** SECDED ECC: corrects single flips, detects double flips. */
    kSecdedCorrect,
};

/** Stable name ("none", "parity", "secded"). */
const char* protectionModeName(ProtectionMode mode);

/** Inverse of protectionModeName; raises elsa::Error on unknown. */
ProtectionMode protectionModeFromName(const std::string& name);

/** Fault-injection section of SimConfig. Off by default: with
 *  enabled == false the simulator's outputs are byte-identical to a
 *  build without the fault subsystem (regression-tested). */
struct FaultConfig
{
    /** Master switch; nothing below matters while false. */
    bool enabled = false;

    /** Per-bit flip probability per run, in [0, 1]. */
    double bit_error_rate = 0.0;

    /** Protection scheme applied to every injected memory. */
    ProtectionMode protection = ProtectionMode::kNone;

    /** Seed of the fault plan's private rng stream. */
    // elsa-lint: allow(config-validation-coverage): every 64-bit seed is a valid stream id; there is no invalid value to reject
    std::uint64_t seed = 0xe15afa017ULL;

    /** Stall cycles charged per detected-fault re-fetch. */
    std::size_t retry_cycles = 20;

    /** Include the exponent/reciprocal LUT tables as targets. */
    bool inject_lut = true;

    /** Raise elsa::Error (naming the offending field) when invalid. */
    void validate() const;
};

/** The simulated memories faults are injected into. */
enum class FaultTarget
{
    kKeyHashMemory = 0,
    kKeyNormMemory,
    kKeyValueMemory,
    kLutTables,
};

inline constexpr std::size_t kNumFaultTargets = 4;

/** All targets, in enum order. */
const std::vector<FaultTarget>& allFaultTargets();

/** Stable metric-path segment ("key_hash_memory", ...). */
const char* faultTargetName(FaultTarget target);

/**
 * Word/bit geometry of the injectable memories for one run. A "word"
 * is the protection granularity (one parity/SECDED codeword):
 * one k-bit hash, one 8-bit norm, one 9-bit S5.3 key/value element,
 * or one LUT entry (its 5 mantissa fraction bits).
 */
struct FaultGeometry
{
    /** Sequence length n (rows of the hash/norm/key/value memories). */
    std::size_t n = 0;

    /** Hash width k in bits. */
    std::size_t k = 64;

    /** Embedding dimension d. */
    std::size_t d = 64;

    /** LUT entries exposed as fault targets (exp + reciprocal). */
    std::size_t lut_words = 0;

    /** Words of one target. */
    std::size_t words(FaultTarget target) const;

    /** Protected bits per word of one target. */
    std::size_t bitsPerWord(FaultTarget target) const;

    /** Total injectable bits over all targets. */
    std::size_t totalBits() const;
};

/** How the protection model resolved one faulted word. */
enum class FaultOutcome
{
    /** Undetected: the flipped bits corrupt the stored value. */
    kSilent = 0,
    /** Detected but uncorrectable: a re-fetch repairs the word and
     *  charges FaultConfig::retry_cycles of pipeline stall. */
    kDetected,
    /** Corrected in line (SECDED single-bit); no timing cost. */
    kCorrected,
};

/** One faulted word: where, which bits, and how it resolved. */
struct WordFault
{
    FaultTarget target = FaultTarget::kKeyHashMemory;

    /** Word index within the target (see FaultGeometry). */
    std::uint32_t word = 0;

    /** Flipped bit positions within the word, ascending. */
    std::vector<std::uint8_t> bits;

    FaultOutcome outcome = FaultOutcome::kSilent;
};

/** Aggregate fault bookkeeping of one plan (unit: bit flips, except
 *  the word-granular retry_events). */
struct FaultCounts
{
    /** Total injected bit flips. */
    std::uint64_t injected = 0;

    /** Flips that corrupt data (== injected - detected - corrected). */
    std::uint64_t silent = 0;

    /** Flips repaired through a modeled re-fetch. */
    std::uint64_t detected = 0;

    /** Flips corrected in line by SECDED. */
    std::uint64_t corrected = 0;

    /** Words whose detection triggered a re-fetch. */
    std::uint64_t retry_events = 0;

    /** Injected flips per target, indexed by FaultTarget. */
    std::uint64_t injected_per_target[kNumFaultTargets] = {};

    /** The conservation invariant of the classification. */
    bool conserves() const
    {
        return injected == silent + detected + corrected;
    }

    void merge(const FaultCounts& other);
};

/**
 * Classify one word's flip count under a protection mode:
 * none -> silent; parity -> detected when odd, silent when even;
 * SECDED -> corrected (1), detected (2), silent/miscorrected (>= 3).
 */
FaultOutcome classifyWordFault(ProtectionMode protection,
                               std::size_t num_flips);

/**
 * The deterministic set of bit flips of one run. Built purely from
 * (FaultConfig, FaultGeometry): two plans with equal inputs are
 * equal, regardless of thread count or call site.
 */
class FaultPlan
{
  public:
    /** Empty plan (fault injection off). */
    FaultPlan() = default;

    /**
     * Sample and classify a plan. Flip positions are drawn with
     * geometric gap sampling over each target's flat bit space (cost
     * O(#flips), not O(#bits)) from an Rng forked per target off
     * config.seed.
     */
    static FaultPlan build(const FaultConfig& config,
                           const FaultGeometry& geometry);

    /** Faulted words in (target, word) order. */
    const std::vector<WordFault>& faults() const { return faults_; }

    const FaultCounts& counts() const { return counts_; }

    /** Total re-fetch stall cycles this plan charges. */
    std::uint64_t retryStallCycles(const FaultConfig& config) const
    {
        return counts_.retry_events
               * static_cast<std::uint64_t>(config.retry_cycles);
    }

  private:
    std::vector<WordFault> faults_;
    FaultCounts counts_;
};

/** Per-run fault summary carried in RunResult. */
struct FaultReport
{
    /** True when injection ran (FaultConfig::enabled && BER > 0). */
    bool enabled = false;

    FaultCounts counts;

    /** Pipeline stall cycles charged for detected-fault re-fetches
     *  (included in RunResult::execute_cycles). */
    std::uint64_t retry_stall_cycles = 0;

    void merge(const FaultReport& other);
};

// --- Bit-faithful value perturbation helpers -------------------------

/**
 * Flip bit `bit` of a fixed-point value's two's-complement storage
 * (width 1 + int_bits + frac_bits, bit 0 = LSB of the fraction) and
 * return the perturbed real value. The result is always within the
 * format's range, so re-quantization cannot mask the flip.
 */
double flipFixedPointBit(double value, int int_bits, int frac_bits,
                         int bit);

/** Flip bit `bit` (0..4) of the 5-fraction-bit mantissa a LUT entry
 *  is stored with, preserving sign and exponent. */
double flipLutFractionBit(double value, int bit);

/** Flip one bit of a packed hash value in place. */
void flipHashBit(HashValue& hash, std::size_t bit);

} // namespace elsa

#endif // ELSA_FAULT_FAULT_H_
