// elsa-lint-pretend: src/fault/bad_unordered.cc
// Known-bad fixture: hash containers in result-affecting code, where
// iteration order could leak into metrics or traces.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace elsa {

int
badAggregate()
{
    std::unordered_map<std::string, int> per_module;
    std::unordered_set<int> seen;
    per_module["attention"] = 1;
    seen.insert(7);
    int sum = 0;
    for (const auto& [name, count] : per_module) {
        sum += static_cast<int>(name.size()) + count;
    }
    return sum + static_cast<int>(seen.size());
}

} // namespace elsa
