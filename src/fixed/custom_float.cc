#include "fixed/custom_float.h"

#include <cmath>

#include "common/logging.h"
#include "fixed/saturation.h"

namespace elsa {

double
CustomFloatFormat::maxMagnitude() const
{
    // Largest exponent (all-ones reserved would be the IEEE convention;
    // the ELSA unit does not need infinities, so we use the full range).
    const int max_exp = (1 << exponent_bits) - 1 - bias();
    const double max_mantissa =
        2.0 - std::ldexp(1.0, -fraction_bits); // 1.111...1b
    return std::ldexp(max_mantissa, max_exp);
}

double
CustomFloatFormat::minNormal() const
{
    return std::ldexp(1.0, -bias());
}

double
quantizeToCustomFloat(double value, const CustomFloatFormat& format)
{
    if (value == 0.0 || !std::isfinite(value)) {
        if (!std::isfinite(value)) {
            noteCustomFloatSaturation();
            return std::copysign(format.maxMagnitude(), value);
        }
        return 0.0;
    }
    const double magnitude = std::abs(value);
    if (magnitude >= format.maxMagnitude()) {
        // Exactly maxMagnitude is representable, not clipped.
        if (magnitude > format.maxMagnitude()) {
            noteCustomFloatSaturation();
        }
        return std::copysign(format.maxMagnitude(), value);
    }
    if (magnitude < format.minNormal()) {
        // Flush to zero; the ELSA pipeline has no subnormal support.
        return 0.0;
    }
    int exp = 0;
    const double mantissa = std::frexp(magnitude, &exp); // in [0.5, 1)
    // Normalize mantissa to [1, 2) with exponent exp - 1.
    const double m = mantissa * 2.0;
    const double scale = std::ldexp(1.0, format.fraction_bits);
    const double rounded = std::nearbyint((m - 1.0) * scale) / scale + 1.0;
    return std::copysign(std::ldexp(rounded, exp - 1), value);
}

CustomFloat
CustomFloat::fromReal(double value, const CustomFloatFormat& format)
{
    CustomFloat cf;
    cf.format_ = format;
    cf.value_ = quantizeToCustomFloat(value, format);
    return cf;
}

CustomFloat
CustomFloat::add(const CustomFloat& other) const
{
    return fromReal(value_ + other.value_, format_);
}

CustomFloat
CustomFloat::mul(const CustomFloat& other) const
{
    return fromReal(value_ * other.value_, format_);
}

} // namespace elsa
