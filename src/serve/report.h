#ifndef ELSA_SERVE_REPORT_H_
#define ELSA_SERVE_REPORT_H_

/**
 * @file
 * Publication of serve results: `serve.*` registry metrics and the
 * serve.json artifact (schema in docs/SERVING.md and the metric
 * tables of docs/OBSERVABILITY.md).
 */

#include <ostream>
#include <string>

#include "obs/registry.h"
#include "serve/engine.h"

namespace elsa {

/**
 * Publish one serve run into a stats registry under `prefix`
 * (default "serve"). Count metrics accumulate; the derived SLO
 * rates (goodput_qps, shed_rate, deadline_miss_rate) are gauges of
 * the latest published run. The two latency digests receive one
 * sample per completed request, so their counts equal the completed
 * counter exactly (checked by scripts/check_metrics.py).
 */
void publishServeStats(const ServeResult& result,
                       obs::StatsRegistry& registry,
                       const std::string& prefix = "serve");

/**
 * Write the serve.json artifact: configuration echo, the full
 * request accounting with both conservation invariants spelled out,
 * per-level degradation dwell, latency/queue-wait digests, and the
 * derived SLO metrics. Deterministic byte-for-byte for a given
 * (config, result).
 */
void writeServeJson(std::ostream& os, const ServeConfig& config,
                    const ServeResult& result, bool pretty = true);

} // namespace elsa

#endif // ELSA_SERVE_REPORT_H_
