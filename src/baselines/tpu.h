#ifndef ELSA_BASELINES_TPU_H_
#define ELSA_BASELINES_TPU_H_

/**
 * @file
 * Google Cloud TPUv2 analytic model (Section V-E).
 *
 * The paper runs ALBERT on TPUv2 and compares iso-peak-FLOPS
 * normalized throughput: TPUv2 peaks at 180 TFLOPS bf16, assumed
 * 45 TFLOPS FP32-equivalent (footnote 4), and the normalization
 * divides the measured TPU throughput by 45/13 (twelve ELSA
 * accelerators peak at ~13 TOPS). The paper's measurement:
 * peak-normalized TPU throughput is 5.5x / 6.7x / 5.4x the GPU's
 * on ALBERT SQuADv1.1 / SQuADv2.0 / RACE. This model reproduces
 * those ratios on top of the GPU model (a documented calibration,
 * not a measurement -- see DESIGN.md).
 */

#include <cstddef>
#include <string>

#include "workload/model.h"

namespace elsa {

/** Analytic TPUv2 model, calibrated relative to the GPU model. */
class TpuModel
{
  public:
    /** Peak bf16 throughput (FLOP/s). */
    static constexpr double kPeakBf16Flops = 180e12;

    /** Assumed FP32-equivalent peak (FLOP/s), per footnote 4. */
    static constexpr double kPeakFp32Flops = 45e12;

    /**
     * Peak-FLOPS-normalized TPU-vs-GPU attention throughput ratio for
     * an ALBERT workload (5.5 / 6.7 / 5.4 for SQuADv1.1 / v2.0 /
     * RACE; 5.5 elsewhere).
     */
    static double normalizedGpuRatio(const DatasetSpec& dataset);

    /**
     * Self-attention throughput (ops/second, one head per op) at
     * padded length n, already iso-peak-FLOPS normalized to the
     * 13 TOPS ELSA reference as the paper does.
     */
    double normalizedAttentionOpsPerSecond(const ModelConfig& model,
                                           const DatasetSpec& dataset)
        const;
};

} // namespace elsa

#endif // ELSA_BASELINES_TPU_H_
