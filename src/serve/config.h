#ifndef ELSA_SERVE_CONFIG_H_
#define ELSA_SERVE_CONFIG_H_

/**
 * @file
 * Configuration of the request serving engine (docs/SERVING.md).
 *
 * The serving layer models what a deployed ELSA array lives or dies
 * by: traffic. A seeded open-loop arrival process offers mixed-model,
 * mixed-length requests to a bounded admission queue in front of the
 * accelerator array; requests carry deadlines, detected memory
 * faults escalate to bounded request-level retries, and a
 * graceful-degradation controller steps the approximation fidelity
 * `p` down a configured ladder under sustained overload (shedding
 * fidelity before shedding traffic -- the knob Section V-C of the
 * paper exposes).
 *
 * Everything is deterministic: arrivals, class mixes, and fault
 * plans derive from `seed` through forked common/rng streams, and
 * the engine's event loop is serial, so every serve artifact is
 * byte-identical at any thread count and SIMD level.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"
#include "workload/model.h"

namespace elsa {

/** What happens to an arrival when the admission queue is full. */
enum class AdmissionPolicy
{
    /**
     * The arriving request is rejected before admission (classic
     * reject-on-full; it counts as `rejected`, never `admitted`).
     */
    kRejectOnFull = 0,

    /**
     * The arriving request is admitted and the *oldest* queued
     * request is shed in its favor (the newcomer has the most
     * deadline headroom left; the displaced request counts as
     * `admitted` then `shed`).
     */
    kTailDrop,
};

/** Stable name ("reject_on_full", "tail_drop"). */
const char* admissionPolicyName(AdmissionPolicy policy);

/** One phase of the repeating arrival-rate modulation schedule. */
struct ArrivalPhase
{
    /** Length of the phase in cycles; the schedule repeats. */
    std::size_t duration_cycles = 1;

    /** Arrival-rate multiplier while the phase is active (> 1 =
     *  burst, < 1 = lull; models bursty/diurnal traffic). */
    double rate_multiplier = 1.0;
};

/** Open-loop arrival process (Poisson-like, cycle domain). */
struct ArrivalConfig
{
    /**
     * Mean cycles between arrivals at rate multiplier 1. Gaps are
     * exponential (memoryless), so the process is Poisson within
     * each phase. Must be positive (the arrival rate is its
     * reciprocal).
     */
    double mean_interarrival_cycles = 2000.0;

    /**
     * Optional repeating phase schedule modulating the rate over
     * time; empty = a flat Poisson process.
     */
    std::vector<ArrivalPhase> phases;
};

/** One request class of the offered traffic mix. */
struct RequestClassConfig
{
    /** Model whose attention inputs this class issues. */
    ModelConfig model = bertLarge();

    /** Real-token sequence length n of the class's requests. */
    std::size_t sequence_length = 128;

    /** Relative sampling weight within the mix. */
    double weight = 1.0;
};

/** Request-level retry policy for detected-fault attempts. */
struct RetryConfig
{
    /** Attempts per request (first try included); >= 1. */
    std::size_t max_attempts = 3;

    /** Backoff before retry r is base * 2^(r-1) cycles ... */
    std::size_t backoff_base_cycles = 256;

    /** ... capped at this many cycles. */
    std::size_t backoff_cap_cycles = 4096;
};

/** Graceful fidelity degradation under sustained overload. */
struct DegradationConfig
{
    /** Master switch; with false the engine serves at base_p only. */
    bool enabled = false;

    /**
     * Fidelity ladder: strictly increasing `p` values beyond
     * ServeConfig::base_p. Level 0 is base_p; level i (>= 1) serves
     * at ladder[i-1]. Higher p = fewer candidates = faster service
     * at lower fidelity (Section V-C). Must be non-empty when
     * enabled.
     */
    std::vector<double> ladder;

    /** Step down (degrade) when the queue-occupancy EWMA exceeds
     *  this fraction of queue_capacity. */
    double queue_high_watermark = 0.75;

    /** Step up (recover) only when the occupancy EWMA is below. */
    double queue_low_watermark = 0.25;

    /** Step down when the deadline-miss EWMA exceeds this. */
    double miss_high_watermark = 0.25;

    /** Step up only when the miss EWMA is below this. */
    double miss_low_watermark = 0.05;

    /** EWMA smoothing factor in (0, 1]; applied per engine event. */
    double ewma_alpha = 0.05;

    /** Minimum cycles between controller level changes
     *  (hysteresis dwell); >= 1. */
    std::size_t min_dwell_cycles = 4096;
};

/** Configuration of one ServeEngine run; see file comment. */
struct ServeConfig
{
    /** Per-accelerator pipeline configuration. `sim.fault` is the
     *  request-level fault model: detected faults escalate to
     *  retries (docs/SERVING.md); catalog timing runs are always
     *  fault-free. */
    SimConfig sim = SimConfig::paperConfig();

    /** Servers (accelerators) requests are dispatched onto. */
    std::size_t num_accelerators = 4;

    /** Requests offered by the arrival process. */
    std::size_t num_requests = 256;

    /** Fidelity `p` of normal (undegraded) operation. */
    double base_p = 2.0;

    /** Queue-full behavior. */
    AdmissionPolicy admission = AdmissionPolicy::kRejectOnFull;

    /** Admission-queue bound; >= 1. Retries re-enter exempt from
     *  the bound (they were already admitted). */
    std::size_t queue_capacity = 16;

    /** Per-request deadline, relative to arrival. Exceeded in queue
     *  = shed; exceeded in service = SLO violation. */
    std::size_t deadline_cycles = 60000;

    /**
     * Deadline-aware dispatch: also shed a queued request when, at
     * dispatch time, even starting it immediately could not finish
     * it by its deadline (now + expected service > deadline). A
     * hopeless request has effectively exceeded its deadline in
     * queue; serving it anyway would burn a server to produce a
     * guaranteed SLO violation. With false, only requests whose
     * deadline already passed are shed at dispatch, and late
     * completions count as SLO violations instead.
     */
    bool deadline_aware_dispatch = true;

    ArrivalConfig arrival;

    /** Offered traffic mix; must be non-empty. */
    std::vector<RequestClassConfig> classes = {RequestClassConfig{}};

    RetryConfig retry;

    DegradationConfig degradation;

    /** Master seed of the arrival / class / fault streams. */
    // elsa-lint: allow(config-validation-coverage): every 64-bit seed is a valid stream id; there is no invalid value to reject
    std::uint64_t seed = 0x5e12e5ee;

    /** Total fidelity levels (1 + ladder size when enabled). */
    std::size_t numLevels() const
    {
        return 1 + (degradation.enabled ? degradation.ladder.size()
                                        : 0);
    }

    /** The `p` served at a controller level. */
    double levelP(std::size_t level) const
    {
        return level == 0 ? base_p : degradation.ladder[level - 1];
    }

    /** Raise elsa::Error unless consistent; every message names the
     *  offending field (tests/config_validation_test.cc). */
    void validate() const;
};

} // namespace elsa

#endif // ELSA_SERVE_CONFIG_H_
