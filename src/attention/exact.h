#ifndef ELSA_ATTENTION_EXACT_H_
#define ELSA_ATTENTION_EXACT_H_

/**
 * @file
 * Exact self-attention (Section II-A): O = softmax(Q K^T) V.
 *
 * This is the reference implementation every approximation in the
 * repository is measured against, and also the functional model of the
 * "no approximation" (ELSA-base) datapath when given quantized inputs.
 */

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace elsa {

/** Inputs of one self-attention operation: n x d each. */
struct AttentionInput
{
    Matrix query;
    Matrix key;
    Matrix value;

    /** Number of entities n. */
    std::size_t n() const { return query.rows(); }

    /** Embedding dimension d. */
    std::size_t d() const { return query.cols(); }

    /** Validate that all three matrices agree in shape. */
    void validate() const;
};

/** Options of the exact attention computation. */
struct ExactAttentionOptions
{
    /**
     * Scale applied to the attention scores before softmax. The
     * paper's description uses unscaled dot products (scaled variants
     * divide by sqrt(d)); 1.0 reproduces the paper.
     */
    double score_scale = 1.0;

    /**
     * Causal (autoregressive) masking: query i attends only keys
     * j <= i, as in the GPT-style text-generation workloads the
     * paper cites (n = 800-1024, Section IV-E).
     */
    bool causal = false;
};

/** Compute O = softmax(scale * Q K^T) V; O is n x d. */
Matrix exactAttention(const AttentionInput& input,
                      const ExactAttentionOptions& options = {});

/**
 * Exact attention that also returns the softmax-normalized score
 * matrix S' (n x n), used by the threshold learner and the fidelity
 * metrics.
 */
struct ExactAttentionTrace
{
    Matrix output;
    /**
     * scores[i][j] = softmax-normalized attention of query i on key
     * j. Row i has n entries, or i + 1 in causal mode.
     */
    std::vector<std::vector<double>> scores;
    /** raw_scores[i][j] = Q_i . K_j before softmax. */
    std::vector<std::vector<double>> raw_scores;
};

ExactAttentionTrace exactAttentionTrace(const AttentionInput& input,
                                        const ExactAttentionOptions&
                                            options = {});

/**
 * Multiply-accumulate count of the exact computation: n^2 d for
 * Q K^T plus n^2 d for S' V (Section II-B).
 */
std::size_t exactAttentionMacs(std::size_t n, std::size_t d);

} // namespace elsa

#endif // ELSA_ATTENTION_EXACT_H_
