/**
 * @file
 * Negative-path coverage of configuration validation: every
 * inconsistent SimConfig / FaultConfig combination is rejected by
 * validate() with an elsa::Error whose message names the offending
 * field, so a misconfigured run dies with an actionable one-liner
 * instead of corrupting a simulation.
 */

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "attention/blocked.h"
#include "common/logging.h"
#include "elsa/system.h"
#include "fault/fault.h"
#include "serve/config.h"
#include "sim/config.h"
#include "sim/host.h"
#include "workload/model.h"

namespace elsa {
namespace {

/** Run fn, require an elsa::Error, and return its message. */
template <typename Fn>
std::string
errorMessage(Fn&& fn)
{
    try {
        fn();
    } catch (const Error& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected elsa::Error, got no exception";
    return {};
}

TEST(ConfigValidationTest, DefaultAndPaperConfigsAreValid)
{
    EXPECT_NO_THROW(SimConfig{}.validate());
    EXPECT_NO_THROW(SimConfig::paperConfig().validate());
}

TEST(ConfigValidationTest, EachInvalidFieldIsNamedInTheError)
{
    struct Case
    {
        const char* field; // Must appear in the error message.
        void (*corrupt)(SimConfig&);
    };
    const Case cases[] = {
        {"d", [](SimConfig& c) { c.d = 0; }},
        {"k", [](SimConfig& c) { c.k = 0; }},
        {"pa", [](SimConfig& c) { c.pa = 0; }},
        {"pc", [](SimConfig& c) { c.pc = 0; }},
        {"mh", [](SimConfig& c) { c.mh = 0; }},
        {"mo", [](SimConfig& c) { c.mo = 0; }},
        {"num_hash_factors",
         [](SimConfig& c) { c.num_hash_factors = 0; }},
        {"queue_depth", [](SimConfig& c) { c.queue_depth = 0; }},
        {"frequency_ghz",
         [](SimConfig& c) { c.frequency_ghz = 0.0; }},
        {"frequency_ghz",
         [](SimConfig& c) {
             c.frequency_ghz =
                 std::numeric_limits<double>::quiet_NaN();
         }},
        {"frequency_ghz",
         [](SimConfig& c) {
             c.frequency_ghz =
                 std::numeric_limits<double>::infinity();
         }},
        {"telemetry.bin_width_cycles",
         [](SimConfig& c) { c.telemetry.bin_width_cycles = 0; }},
        {"telemetry.enabled requires attribute_stalls",
         [](SimConfig& c) {
             c.telemetry.enabled = true;
             c.attribute_stalls = false;
         }},
        {"query_spans.exemplar_count",
         [](SimConfig& c) { c.query_spans.exemplar_count = 0; }},
        {"attention_pipeline_latency",
         [](SimConfig& c) {
             // Zero is legal (fully overlapped hand-off); only an
             // implausible depth is rejected.
             c.attention_pipeline_latency = 1u << 20;
         }},
    };
    for (const Case& test_case : cases) {
        SimConfig config;
        test_case.corrupt(config);
        const std::string message =
            errorMessage([&] { config.validate(); });
        EXPECT_NE(message.find(test_case.field), std::string::npos)
            << "error for field '" << test_case.field
            << "' does not name it: " << message;
    }
}

TEST(ConfigValidationTest, TelemetryWithAttributionIsValid)
{
    SimConfig config;
    config.attribute_stalls = true;
    config.telemetry.enabled = true;
    EXPECT_NO_THROW(config.validate());
    config.telemetry.bin_width_cycles = 1; // Smallest legal bin.
    EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidationTest, RejectsNonKroneckerDimension)
{
    SimConfig config;
    config.d = 60; // Not a perfect cube (num_hash_factors = 3).
    const std::string message =
        errorMessage([&] { config.validate(); });
    EXPECT_NE(message.find("d = 60"), std::string::npos) << message;
    EXPECT_NE(message.find("Kronecker"), std::string::npos) << message;
}

TEST(ConfigValidationTest, EachInvalidFaultFieldIsNamed)
{
    struct Case
    {
        const char* field;
        void (*corrupt)(FaultConfig&);
    };
    const Case cases[] = {
        {"fault.bit_error_rate",
         [](FaultConfig& f) { f.bit_error_rate = -0.5; }},
        {"fault.bit_error_rate",
         [](FaultConfig& f) { f.bit_error_rate = 1.5; }},
        {"fault.bit_error_rate",
         [](FaultConfig& f) {
             f.bit_error_rate =
                 std::numeric_limits<double>::quiet_NaN();
         }},
        {"fault.retry_cycles",
         [](FaultConfig& f) { f.retry_cycles = 0; }},
        {"fault.protection",
         [](FaultConfig& f) {
             f.protection = static_cast<ProtectionMode>(42);
         }},
    };
    for (const Case& test_case : cases) {
        // Both directly and through the SimConfig it is embedded in.
        FaultConfig fault;
        test_case.corrupt(fault);
        const std::string direct =
            errorMessage([&] { fault.validate(); });
        EXPECT_NE(direct.find(test_case.field), std::string::npos)
            << "error for field '" << test_case.field
            << "' does not name it: " << direct;

        SimConfig config;
        config.fault = fault;
        const std::string nested =
            errorMessage([&] { config.validate(); });
        EXPECT_NE(nested.find(test_case.field), std::string::npos)
            << nested;
    }
}

TEST(ConfigValidationTest, FaultInjectionRequiresQuantization)
{
    SimConfig config;
    config.fault.enabled = true;
    config.model_quantization = false;
    const std::string message =
        errorMessage([&] { config.validate(); });
    EXPECT_NE(message.find("fault.enabled"), std::string::npos)
        << message;
    EXPECT_NE(message.find("model_quantization"), std::string::npos)
        << message;

    // The same combination is fine once quantization is on.
    config.model_quantization = true;
    EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidationTest, BlockedAttentionWindowIsValidated)
{
    EXPECT_NO_THROW(BlockedAttentionConfig{}.validate());
    BlockedAttentionConfig config;
    config.window = 0;
    const std::string message =
        errorMessage([&] { config.validate(); });
    EXPECT_NE(message.find("window"), std::string::npos) << message;
}

TEST(ConfigValidationTest, EachInvalidHostFieldIsNamed)
{
    EXPECT_NO_THROW(HostInterfaceConfig{}.validate());
    {
        HostInterfaceConfig config;
        config.copy_bytes_per_cycle = 0;
        const std::string message =
            errorMessage([&] { config.validate(); });
        EXPECT_NE(message.find("copy_bytes_per_cycle"),
                  std::string::npos)
            << message;
    }
    {
        // command_cycles = 0 is the ideal zero-overhead host and
        // stays legal; only an implausible magnitude is rejected.
        HostInterfaceConfig config;
        config.command_cycles = 0;
        EXPECT_NO_THROW(config.validate());
        config.command_cycles = 2000000;
        const std::string message =
            errorMessage([&] { config.validate(); });
        EXPECT_NE(message.find("command_cycles"), std::string::npos)
            << message;
    }
}

TEST(ConfigValidationTest, EachInvalidModelFieldIsNamed)
{
    struct Case
    {
        const char* field; // Must appear in the error message.
        void (*corrupt)(ModelConfig&);
    };
    const Case cases[] = {
        {"model.name", [](ModelConfig& m) { m.name.clear(); }},
        {"model.num_layers",
         [](ModelConfig& m) { m.num_layers = 0; }},
        {"model.num_heads", [](ModelConfig& m) { m.num_heads = 0; }},
        {"model.head_dim", [](ModelConfig& m) { m.head_dim = 0; }},
        {"model.hidden_dim",
         [](ModelConfig& m) { m.hidden_dim = 0; }},
        {"model.ffn_dim", [](ModelConfig& m) { m.ffn_dim = 0; }},
    };
    for (const Case& test_case : cases) {
        ModelConfig model = bertLarge();
        EXPECT_NO_THROW(model.validate());
        test_case.corrupt(model);
        const std::string message =
            errorMessage([&] { model.validate(); });
        EXPECT_NE(message.find(test_case.field), std::string::npos)
            << "error for field '" << test_case.field
            << "' does not name it: " << message;
    }
}

TEST(ConfigValidationTest, EachInvalidSystemFieldIsNamed)
{
    struct Case
    {
        const char* field; // Must appear in the error message.
        void (*corrupt)(SystemConfig&);
    };
    const Case cases[] = {
        {"num_accelerators",
         [](SystemConfig& c) { c.num_accelerators = 0; }},
        {"sim_inputs", [](SystemConfig& c) { c.sim_inputs = 0; }},
        {"sim_sublayers",
         [](SystemConfig& c) { c.sim_sublayers = 0; }},
        {"eval.num_train_inputs",
         [](SystemConfig& c) { c.eval.num_train_inputs = 0; }},
        {"eval.num_eval_inputs",
         [](SystemConfig& c) { c.eval.num_eval_inputs = 0; }},
        {"eval.max_sublayers",
         [](SystemConfig& c) { c.eval.max_sublayers = 0; }},
    };
    for (const Case& test_case : cases) {
        SystemConfig config;
        EXPECT_NO_THROW(config.validate());
        test_case.corrupt(config);
        const std::string message =
            errorMessage([&] { config.validate(); });
        EXPECT_NE(message.find(test_case.field), std::string::npos)
            << "error for field '" << test_case.field
            << "' does not name it: " << message;
    }
}

TEST(ConfigValidationTest, DefaultServeConfigIsValid)
{
    EXPECT_NO_THROW(ServeConfig{}.validate());
}

TEST(ConfigValidationTest, EachInvalidServeFieldIsNamed)
{
    struct Case
    {
        const char* field; // Must appear in the error message.
        void (*corrupt)(ServeConfig&);
    };
    const Case cases[] = {
        {"num_accelerators",
         [](ServeConfig& c) { c.num_accelerators = 0; }},
        {"num_requests", [](ServeConfig& c) { c.num_requests = 0; }},
        {"base_p", [](ServeConfig& c) { c.base_p = -1.0; }},
        {"base_p",
         [](ServeConfig& c) {
             c.base_p = std::numeric_limits<double>::infinity();
         }},
        {"queue_capacity",
         [](ServeConfig& c) { c.queue_capacity = 0; }},
        {"deadline_cycles",
         [](ServeConfig& c) { c.deadline_cycles = 0; }},
        {"arrival.mean_interarrival_cycles",
         [](ServeConfig& c) {
             c.arrival.mean_interarrival_cycles = 0.0;
         }},
        {"arrival.mean_interarrival_cycles",
         [](ServeConfig& c) {
             c.arrival.mean_interarrival_cycles =
                 std::numeric_limits<double>::quiet_NaN();
         }},
        {"arrival.phases duration_cycles",
         [](ServeConfig& c) {
             c.arrival.phases = {{0, 1.0}};
         }},
        {"arrival.phases rate_multiplier",
         [](ServeConfig& c) {
             c.arrival.phases = {{100, -2.0}};
         }},
        {"classes",
         [](ServeConfig& c) { c.classes.clear(); }},
        {"classes sequence_length",
         [](ServeConfig& c) {
             c.classes[0].sequence_length = 0;
         }},
        {"classes weight",
         [](ServeConfig& c) { c.classes[0].weight = 0.0; }},
        {"classes model head_dim",
         [](ServeConfig& c) { c.classes[0].model.head_dim = 32; }},
        {"retry.max_attempts",
         [](ServeConfig& c) { c.retry.max_attempts = 0; }},
        {"retry.backoff_base_cycles",
         [](ServeConfig& c) { c.retry.backoff_base_cycles = 0; }},
        {"retry.backoff_cap_cycles",
         [](ServeConfig& c) {
             c.retry.backoff_base_cycles = 512;
             c.retry.backoff_cap_cycles = 256;
         }},
        {"degradation.ladder must be non-empty",
         [](ServeConfig& c) {
             c.degradation.enabled = true;
             c.degradation.ladder.clear();
         }},
        {"degradation.ladder entries",
         [](ServeConfig& c) {
             c.degradation.ladder = {-4.0};
         }},
        {"degradation.ladder must be strictly increasing",
         [](ServeConfig& c) {
             c.base_p = 2.0;
             c.degradation.ladder = {4.0, 3.0};
         }},
        {"degradation.ladder must be strictly increasing",
         [](ServeConfig& c) {
             // A disabled-but-configured ladder is still validated.
             c.degradation.enabled = false;
             c.base_p = 8.0;
             c.degradation.ladder = {4.0};
         }},
        {"degradation.queue_high_watermark",
         [](ServeConfig& c) {
             c.degradation.queue_high_watermark = 1.5;
         }},
        {"degradation.queue_low_watermark",
         [](ServeConfig& c) {
             c.degradation.queue_low_watermark = 0.9;
             c.degradation.queue_high_watermark = 0.8;
         }},
        {"degradation.miss_high_watermark",
         [](ServeConfig& c) {
             c.degradation.miss_high_watermark = 0.0;
         }},
        {"degradation.miss_low_watermark",
         [](ServeConfig& c) {
             c.degradation.miss_low_watermark = 0.5;
             c.degradation.miss_high_watermark = 0.25;
         }},
        {"degradation.ewma_alpha",
         [](ServeConfig& c) { c.degradation.ewma_alpha = 0.0; }},
        {"degradation.ewma_alpha",
         [](ServeConfig& c) { c.degradation.ewma_alpha = 1.5; }},
        {"degradation.min_dwell_cycles",
         [](ServeConfig& c) {
             c.degradation.min_dwell_cycles = 0;
         }},
    };
    for (const Case& test_case : cases) {
        ServeConfig config;
        test_case.corrupt(config);
        const std::string message =
            errorMessage([&] { config.validate(); });
        EXPECT_NE(message.find(test_case.field), std::string::npos)
            << "error for field '" << test_case.field
            << "' does not name it: " << message;
    }
}

TEST(ConfigValidationTest, ServeConfigValidatesEmbeddedSimConfig)
{
    ServeConfig config;
    config.sim.k = 0; // Invalid through the embedded SimConfig.
    const std::string message =
        errorMessage([&] { config.validate(); });
    EXPECT_NE(message.find("k"), std::string::npos) << message;
}

TEST(ConfigValidationTest, AdmissionPolicyNamesAreStable)
{
    EXPECT_STREQ(admissionPolicyName(AdmissionPolicy::kRejectOnFull),
                 "reject_on_full");
    EXPECT_STREQ(admissionPolicyName(AdmissionPolicy::kTailDrop),
                 "tail_drop");
}

TEST(ConfigValidationTest, ProtectionModeNamesRoundTrip)
{
    for (const ProtectionMode mode :
         {ProtectionMode::kNone, ProtectionMode::kParityDetect,
          ProtectionMode::kSecdedCorrect}) {
        EXPECT_EQ(protectionModeFromName(protectionModeName(mode)),
                  mode);
    }
    const std::string message = errorMessage(
        [] { protectionModeFromName("hamming"); });
    EXPECT_NE(message.find("hamming"), std::string::npos) << message;
}

} // namespace
} // namespace elsa
