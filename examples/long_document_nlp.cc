/**
 * @file
 * Long-document NLP scenario (the paper's motivating use case).
 *
 * Models like BERT cap self-attention at 512 tokens because the cost
 * grows quadratically; ELSA's approximation makes longer contexts
 * affordable. This example runs a RACE-style reading-comprehension
 * workload (n = 512) through the full stack: threshold learning on a
 * training input, cycle-level simulation of the accelerator in every
 * operating mode, and a comparison against the V100 GPU and the
 * ideal accelerator.
 */

#include <cstdio>
#include <limits>
#include <memory>

#include "attention/metrics.h"
#include "baselines/gpu_model.h"
#include "baselines/ideal.h"
#include "common/rng.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "sim/accelerator.h"
#include "workload/generator.h"
#include "workload/workload.h"

int
main()
{
    using namespace elsa;

    const WorkloadSpec spec{bertLarge(), race()};
    std::printf("Long-document NLP: %s, n = %zu tokens, d = %zu\n\n",
                spec.label().c_str(), spec.dataset.padded_length,
                spec.model.head_dim);

    // One mid-stack attention head on a full-length document.
    const std::size_t n = spec.dataset.padded_length;
    QkvGenerator generator(spec.model, /*master_seed=*/21);
    const AttentionInput train = generator.generate(12, 4, n, 100);
    const AttentionInput input = generator.generate(12, 4, n, 0);

    // Build the hardware stack: quantized Kronecker hash matrices,
    // the published theta_bias, the paper's pipeline configuration.
    Rng rng(77);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(spec.model.head_dim, 3, rng,
                                       /*quantize_factors=*/true));
    const SimConfig config = SimConfig::paperConfig();
    Accelerator accelerator(config, hasher, kThetaBias64);
    ApproxSelfAttention engine(hasher, kThetaBias64);

    const GpuModel gpu;
    const IdealAccelerator ideal;
    const double gpu_us =
        gpu.attentionSecondsPerOp(spec.model, n) * 1e6;
    const double ideal_us =
        ideal.secondsPerOp(n, spec.model.head_dim) * 1e6;
    std::printf("V100 GPU (padded)     : %8.2f us/op\n", gpu_us);
    std::printf("ideal accel (528 mul) : %8.2f us/op\n\n", ideal_us);

    // Throughput comparisons use the paper's 12-accelerator array
    // (batch-level parallelism); latency is per accelerator.
    constexpr double kArray = 12.0;
    std::printf("%-8s %10s %12s %12s %14s %10s\n", "p",
                "candidates", "cycles/op", "us/op",
                "tput vs GPU", "recall");
    for (const double p : {0.0, 0.5, 1.0, 2.0, 4.0}) {
        double threshold = -std::numeric_limits<double>::infinity();
        if (p > 0.0) {
            ThresholdLearner learner(p);
            learner.observe(train.query, train.key);
            threshold = learner.threshold();
        }
        const RunResult run = accelerator.run(input, threshold);
        const double us =
            static_cast<double>(run.totalCycles())
            / (config.frequency_ghz * 1e3);
        const auto candidates =
            engine.candidatesForAll(input, threshold);
        const double recall = attentionMassRecall(input, candidates);
        std::printf("%-8.1f %9.1f%% %12zu %12.2f %13.1fx %10.4f\n",
                    p, 100.0 * run.candidateFraction(),
                    run.totalCycles(), us, kArray * gpu_us / us,
                    recall);
    }

    std::printf("\nTwelve exact (p = 0) accelerators already beat "
                "the GPU by ~12x at full n = 512\n(no padding to "
                "skip here); the approximation multiplies that by "
                "another 2-5x by\ntouching only the keys that "
                "matter -- what makes longer-than-512-token "
                "attention\npractical.\n");
    return 0;
}
