// elsa-lint-pretend: src/sim/bad_error_message.cc
// Known-bad fixture: a validation check whose message names no
// field of the config it validates.
#include "common/logging.h"

namespace elsa {

struct AnonymousErrorConfig
{
    int window = 1;

    void validate() const;
};

void
AnonymousErrorConfig::validate() const
{
    ELSA_CHECK(window > 0, "must be positive");  // BAD: which field?
}

} // namespace elsa
