#ifndef ELSA_OBS_HISTOGRAM_H_
#define ELSA_OBS_HISTOGRAM_H_

/**
 * @file
 * Fixed-bucket histogram for the stats registry.
 *
 * Buckets are defined by an ascending edge vector e_0 < ... < e_m:
 * bucket i counts observations in [e_i, e_{i+1}); values below e_0
 * land in the underflow count and values >= e_m in the overflow
 * count, so no observation is ever dropped silently (gem5's
 * distribution stats behave the same way).
 */

#include <cstddef>
#include <mutex>
#include <vector>

namespace elsa::obs {

/**
 * Counting histogram with explicit, half-open buckets. add() and the
 * readers take a small internal lock, so concurrent recording from
 * pool workers is safe (the reader sees a consistent snapshot).
 */
class Histogram
{
  public:
    /** @param edges Ascending bucket edges; needs >= 2 entries. */
    explicit Histogram(std::vector<double> edges);

    /** Copies edges and counts (the lock is never shared). */
    Histogram(const Histogram& other);
    Histogram& operator=(const Histogram& other);

    /** Evenly spaced buckets covering [lo, hi). */
    static Histogram linear(double lo, double hi,
                            std::size_t num_buckets);

    /** Record one observation. */
    void add(double x);

    /** Observations recorded (including under/overflow). */
    std::size_t count() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return count_;
    }

    /** Number of buckets (edges().size() - 1). */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Count of bucket i, i.e. observations in [e_i, e_{i+1}). */
    std::size_t bucketCount(std::size_t i) const;

    /** Observations below the first edge. */
    std::size_t underflow() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return underflow_;
    }

    /** Observations at or above the last edge. */
    std::size_t overflow() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return overflow_;
    }

    /** Bucket edges; immutable after construction, so lock-free. */
    const std::vector<double>& edges() const { return edges_; }

    /**
     * Estimated q-quantile, q in [0, 1]; fatal when empty. The
     * rank is interpolated linearly *within* its bucket (values are
     * assumed uniform over [e_i, e_{i+1})). Underflow mass is
     * pinned to the first edge and overflow mass to the last edge,
     * so quantiles falling there are clamped to the histogram's
     * range rather than extrapolated.
     */
    double quantile(double q) const;

    /** Sum of all observations (for mean reconstruction). */
    double sum() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return sum_;
    }

    /** Clear all counts; the bucket edges are kept. */
    void reset();

  private:
    /** Guards every count; edges_ are immutable post-construction. */
    mutable std::mutex m_;
    std::vector<double> edges_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t count_ = 0;
    double sum_ = 0.0;
};

} // namespace elsa::obs

#endif // ELSA_OBS_HISTOGRAM_H_
