#ifndef ELSA_SIM_HOST_H_
#define ELSA_SIM_HOST_H_

/**
 * @file
 * Host-integration model (Section IV-B).
 *
 * The ELSA accelerator is a functional unit attached to a host (CPU,
 * GPU, or NN accelerator). The host issues a command with n and the
 * Q/K/V matrix locations, the accelerator runs, writes the output
 * matrix, and notifies the host. Two integration styles exist:
 *
 *  - pass-by-reference: the matrices stay in the host's scratchpad
 *    (e.g. GPU shared memory) and the accelerator reads them in
 *    place -- only the command round trip is paid;
 *  - copy-in/copy-out: the matrices are staged into the accelerator's
 *    own SRAMs over an on-chip link of finite bandwidth.
 *
 * The model yields the per-invocation host overhead in cycles so the
 * evaluation can show that pass-by-reference keeps the overhead
 * negligible while naive copying erodes the speedup at small n.
 */

#include <cstddef>

#include "sim/config.h"

namespace elsa {

/** How the host shares the Q/K/V/O matrices with the accelerator. */
enum class HostTransferMode
{
    kPassByReference, ///< Accelerator reads host scratchpad in place.
    kCopy,            ///< Matrices staged over the on-chip link.
};

/** Host-interface parameters. */
struct HostInterfaceConfig
{
    HostTransferMode mode = HostTransferMode::kPassByReference;

    /** Command issue + completion notification round trip (cycles). */
    std::size_t command_cycles = 100;

    /** On-chip link bandwidth for kCopy, bytes per cycle. */
    std::size_t copy_bytes_per_cycle = 64;

    void validate() const;
};

/** Per-invocation host overhead model. */
class HostInterface
{
  public:
    explicit HostInterface(HostInterfaceConfig config);

    const HostInterfaceConfig& config() const { return config_; }

    /**
     * Bytes moved per invocation in kCopy mode: Q, K, V in and O out,
     * each n x d at 9 bits per element (the matrix SRAM format).
     */
    std::size_t transferBytes(std::size_t n, std::size_t d) const;

    /** Host overhead cycles added to one self-attention invocation. */
    std::size_t overheadCycles(std::size_t n, std::size_t d) const;

    /**
     * Fraction of the total invocation time spent on host overhead,
     * given the accelerator's compute cycles for that invocation.
     */
    double overheadFraction(std::size_t n, std::size_t d,
                            std::size_t compute_cycles) const;

  private:
    HostInterfaceConfig config_;
};

} // namespace elsa

#endif // ELSA_SIM_HOST_H_
