#ifndef ELSA_ENERGY_AREA_POWER_H_
#define ELSA_ENERGY_AREA_POWER_H_

/**
 * @file
 * Area and (peak) power characteristics of the ELSA accelerator,
 * transcribed from Table I of the paper (TSMC 40 nm, 1 GHz,
 * n = 512, d = 64, P_a = 4, P_c = 8, m_h = 256, m_o = 16).
 *
 * These numbers are the paper's synthesis results and serve as the
 * energy model's per-module power database; DESIGN.md records this
 * as a data substitution for RTL synthesis.
 */

#include <string>
#include <vector>

namespace elsa {

/** The hardware modules Table I itemizes. */
enum class HwModule
{
    kHashComputation,   ///< Hash computation module (m_h = 256).
    kNormComputation,   ///< Norm computation module.
    kCandidateSelection,///< 32x candidate selection modules.
    kAttentionCompute,  ///< 4x attention computation modules.
    kOutputDivision,    ///< Output division module (m_o = 16).
    kKeyHashMemory,     ///< Key hash SRAM (4 KB).
    kKeyNormMemory,     ///< Key norm SRAM (512 B).
    kKeyValueMemory,    ///< External key + value SRAM (36 KB each).
    kQueryOutputMemory, ///< External query + output SRAM (36 KB each).
};

/** All modules, in Table I order. */
const std::vector<HwModule>& allHwModules();

/** Area/power record of one module. */
struct ModuleAreaPower
{
    HwModule module;
    std::string name;
    /** Area / power of ONE instance as Table I lists it. */
    double area_mm2 = 0.0;
    double dynamic_power_mw = 0.0;
    double static_power_mw = 0.0;
    /** True for the external on-chip memory modules. */
    bool external = false;
    /**
     * Instances per accelerator: the "36KB ea." memory rows cover
     * two memories each (key + value, query + output).
     */
    int count = 1;

    double totalAreaMm2() const { return area_mm2 * count; }
    double totalDynamicMw() const { return dynamic_power_mw * count; }
    double totalStaticMw() const { return static_power_mw * count; }
};

/** Table I record of the given module. */
const ModuleAreaPower& moduleAreaPower(HwModule module);

/** Human-readable module name. */
const char* hwModuleName(HwModule module);

/**
 * Stable metric-path segment of a module ("hash_computation",
 * "candidate_selection", ...) for hierarchical stats names like
 * `sim.accel0.hash_computation.active_cycles`.
 */
const char* hwModuleMetricName(HwModule module);

/** Aggregate characteristics of one ELSA accelerator. */
struct AcceleratorAreaPower
{
    double core_area_mm2 = 0.0;
    double external_area_mm2 = 0.0;
    double core_dynamic_mw = 0.0;
    double core_static_mw = 0.0;
    double external_dynamic_mw = 0.0;
    double external_static_mw = 0.0;

    double totalAreaMm2() const
    {
        return core_area_mm2 + external_area_mm2;
    }
    double totalPeakPowerMw() const
    {
        return core_dynamic_mw + core_static_mw + external_dynamic_mw
               + external_static_mw;
    }
};

/** Sum of Table I over a single accelerator. */
AcceleratorAreaPower singleAcceleratorAreaPower();

/**
 * Key SRAM sizing formulas (Section IV-C (3)): the key hash memory
 * needs n*k/8 bytes and the key norm memory n bytes (8-bit norms).
 */
std::size_t keyHashMemoryBytes(std::size_t n, std::size_t k);
std::size_t keyNormMemoryBytes(std::size_t n);

/**
 * Input/output matrix SRAM bytes: n x d elements of 9 bits each,
 * rounded up to whole bytes per matrix (Section IV-C: ~36 KB at
 * n = 512, d = 64).
 */
std::size_t matrixMemoryBytes(std::size_t n, std::size_t d);

} // namespace elsa

#endif // ELSA_ENERGY_AREA_POWER_H_
