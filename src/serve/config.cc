#include "serve/config.h"

#include <cmath>

#include "common/logging.h"

namespace elsa {

const char*
admissionPolicyName(AdmissionPolicy policy)
{
    switch (policy) {
    case AdmissionPolicy::kRejectOnFull:
        return "reject_on_full";
    case AdmissionPolicy::kTailDrop:
        return "tail_drop";
    }
    ELSA_PANIC("invalid AdmissionPolicy "
               << static_cast<int>(policy));
}

void
ServeConfig::validate() const
{
    sim.validate();
    ELSA_CHECK(num_accelerators >= 1,
               "num_accelerators must be >= 1");
    ELSA_CHECK(num_requests >= 1, "num_requests must be >= 1");
    ELSA_CHECK(std::isfinite(base_p) && base_p >= 0.0,
               "base_p must be finite and >= 0, got " << base_p);
    ELSA_CHECK(queue_capacity >= 1, "queue_capacity must be >= 1");
    ELSA_CHECK(deadline_cycles >= 1, "deadline_cycles must be >= 1");

    // The arrival rate is 1 / mean_interarrival_cycles, so "arrival
    // rate > 0" means a positive finite mean gap.
    ELSA_CHECK(std::isfinite(arrival.mean_interarrival_cycles)
                   && arrival.mean_interarrival_cycles > 0.0,
               "arrival.mean_interarrival_cycles must be positive "
               "and finite, got "
                   << arrival.mean_interarrival_cycles);
    for (const ArrivalPhase& phase : arrival.phases) {
        ELSA_CHECK(phase.duration_cycles >= 1,
                   "arrival.phases duration_cycles must be >= 1");
        ELSA_CHECK(std::isfinite(phase.rate_multiplier)
                       && phase.rate_multiplier > 0.0,
                   "arrival.phases rate_multiplier must be positive "
                   "and finite, got "
                       << phase.rate_multiplier);
    }

    ELSA_CHECK(!classes.empty(), "classes must be non-empty");
    for (const RequestClassConfig& cls : classes) {
        cls.model.validate();
        ELSA_CHECK(cls.sequence_length >= 1,
                   "classes sequence_length must be >= 1");
        ELSA_CHECK(std::isfinite(cls.weight) && cls.weight > 0.0,
                   "classes weight must be positive and finite, got "
                       << cls.weight);
        // Every class runs on the same accelerator geometry; the
        // engine shares one hasher across the mix.
        ELSA_CHECK(cls.model.head_dim == sim.d,
                   "classes model head_dim ("
                       << cls.model.head_dim
                       << ") must equal sim.d (" << sim.d << ")");
    }

    ELSA_CHECK(retry.max_attempts >= 1,
               "retry.max_attempts must be >= 1");
    ELSA_CHECK(retry.backoff_base_cycles >= 1,
               "retry.backoff_base_cycles must be >= 1");
    ELSA_CHECK(retry.backoff_cap_cycles >= retry.backoff_base_cycles,
               "retry.backoff_cap_cycles ("
                   << retry.backoff_cap_cycles
                   << ") must be >= retry.backoff_base_cycles ("
                   << retry.backoff_base_cycles << ")");

    ELSA_CHECK(!degradation.enabled || !degradation.ladder.empty(),
               "degradation.ladder must be non-empty when "
               "degradation.enabled");
    // The ladder is validated whenever present so a disabled-but-
    // configured ladder cannot silently hold garbage.
    double prev = base_p;
    for (double p : degradation.ladder) {
        ELSA_CHECK(std::isfinite(p) && p > 0.0,
                   "degradation.ladder entries must be positive and "
                   "finite, got "
                       << p);
        ELSA_CHECK(p > prev,
                   "degradation.ladder must be strictly increasing "
                   "from base_p ("
                       << base_p << "), got " << p << " after "
                       << prev);
        prev = p;
    }
    ELSA_CHECK(degradation.queue_high_watermark > 0.0
                   && degradation.queue_high_watermark <= 1.0,
               "degradation.queue_high_watermark must be in (0, 1], "
               "got "
                   << degradation.queue_high_watermark);
    ELSA_CHECK(degradation.queue_low_watermark >= 0.0
                   && degradation.queue_low_watermark
                          < degradation.queue_high_watermark,
               "degradation.queue_low_watermark ("
                   << degradation.queue_low_watermark
                   << ") must be in [0, queue_high_watermark)");
    ELSA_CHECK(degradation.miss_high_watermark > 0.0
                   && degradation.miss_high_watermark <= 1.0,
               "degradation.miss_high_watermark must be in (0, 1], "
               "got "
                   << degradation.miss_high_watermark);
    ELSA_CHECK(degradation.miss_low_watermark >= 0.0
                   && degradation.miss_low_watermark
                          < degradation.miss_high_watermark,
               "degradation.miss_low_watermark ("
                   << degradation.miss_low_watermark
                   << ") must be in [0, miss_high_watermark)");
    ELSA_CHECK(degradation.ewma_alpha > 0.0
                   && degradation.ewma_alpha <= 1.0,
               "degradation.ewma_alpha must be in (0, 1], got "
                   << degradation.ewma_alpha);
    ELSA_CHECK(degradation.min_dwell_cycles >= 1,
               "degradation.min_dwell_cycles must be >= 1");
}

} // namespace elsa
