#ifndef ELSA_SIM_ARRAY_H_
#define ELSA_SIM_ARRAY_H_

/**
 * @file
 * Batch-level parallelism across multiple ELSA accelerators
 * (Section IV-D: "the whole ELSA accelerators can be replicated to
 * exploit batch-level parallelism; our evaluation utilizes a set of
 * twelve ELSA accelerators").
 *
 * Self-attention operations of a batch are independent, so the array
 * schedules each invocation onto the least-loaded accelerator and
 * the batch completes at the makespan.
 *
 * The host simulation exploits the same independence: invocations
 * fan out over the process-wide thread pool (common/parallel.h) and
 * the per-invocation results are reduced in invocation-index order,
 * so cycle counts, stall attribution, published stats, and merged
 * traces are bit-identical to a serial run at any thread count (the
 * determinism contract of docs/PARALLELISM.md, regression-tested by
 * tests/parallel_determinism_test.cc).
 */

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/accelerator.h"

namespace elsa {

/** Summary of running a batch of invocations on the array. */
struct ArrayRunResult
{
    /** Completion time of the batch (max over accelerators). */
    std::size_t makespan_cycles = 0;

    /** Sum of per-invocation cycles (work, not wall time). */
    std::size_t total_cycles = 0;

    /** Sum of per-invocation preprocessing cycles. */
    std::size_t total_preprocess_cycles = 0;

    /** Number of invocations executed. */
    std::size_t num_invocations = 0;

    /** Merged per-module activity of all invocations. */
    ActivityCounters activity;

    /**
     * Merged stall-cause breakdown of all invocations; all-zero
     * unless SimConfig::attribute_stalls is set. Conservation holds
     * against total_cycles (the sum over invocations).
     */
    StallBreakdown stall_breakdown;

    /**
     * Merged fault-injection summary of all invocations
     * (fault/fault.h); enabled == false with all-zero counts unless
     * SimConfig::fault injected.
     */
    FaultReport fault;

    /**
     * Merged cycle-domain telemetry of all invocations, folded in
     * invocation-index order (so the bins are bit-identical at any
     * thread count); null unless SimConfig::telemetry.enabled.
     */
    std::shared_ptr<obs::TimeSeries> telemetry;

    /**
     * Merged per-query lifecycle spans of all invocations, folded in
     * invocation-index order with records re-tagged by invocation
     * index (so spans.json is byte-identical at any thread count);
     * null unless SimConfig::query_spans.enabled.
     */
    std::shared_ptr<obs::QuerySpanSet> spans;

    /** Summed FixedPoint saturations; zero unless
     *  SimConfig::count_saturations is set. */
    std::uint64_t fixed_saturations = 0;

    /** Summed CustomFloat saturations (same gating). */
    std::uint64_t cfloat_saturations = 0;

    /** Mean candidate fraction over invocations. */
    double mean_candidate_fraction = 0.0;

    /** Mean per-invocation latency in cycles. */
    double meanLatencyCycles() const
    {
        return num_invocations == 0
                   ? 0.0
                   : static_cast<double>(total_cycles)
                         / static_cast<double>(num_invocations);
    }
};

/** How batch invocations are assigned to accelerators. */
enum class SchedulingPolicy
{
    /** Each invocation goes to the currently least-loaded unit. */
    kLeastLoaded,
    /** Invocation i goes to unit i mod num_accelerators. */
    kRoundRobin,
};

/** An array of identical ELSA accelerators. */
class AcceleratorArray
{
  public:
    /**
     * @param config           Per-accelerator configuration.
     * @param num_accelerators Replication factor (12 in the paper).
     * @param hasher           Shared SRP hasher.
     * @param theta_bias       Angle correction bias.
     * @param policy           Batch scheduling policy.
     */
    AcceleratorArray(SimConfig config, std::size_t num_accelerators,
                     std::shared_ptr<const SrpHasher> hasher,
                     double theta_bias,
                     SchedulingPolicy policy
                     = SchedulingPolicy::kLeastLoaded);

    std::size_t size() const { return num_accelerators_; }
    const Accelerator& accelerator() const { return accelerator_; }

    /**
     * Attach observability sinks. The batch is timed on identical
     * accelerator clones, so the counters accumulate the whole batch
     * under `prefix`; publication happens during the ordered
     * reduction of run(), never concurrently.
     */
    void attachObservability(obs::StatsRegistry* stats,
                             obs::TraceWriter* trace,
                             const std::string& prefix = "sim.accel0");

    /**
     * Run a batch: invocation i uses thresholds[i]. Outputs are
     * discarded (only timing/energy summaries are kept); use
     * Accelerator::run directly when the output matrix is needed.
     */
    ArrayRunResult
    run(const std::vector<const AttentionInput*>& inputs,
        const std::vector<double>& thresholds) const;

  private:
    std::size_t num_accelerators_;
    Accelerator accelerator_;
    SchedulingPolicy policy_;

    /** Observability sinks (non-owning; see attachObservability). */
    obs::StatsRegistry* stats_ = nullptr;
    obs::TraceWriter* trace_ = nullptr;
    std::string stats_prefix_ = "sim.accel0";

    /**
     * Per-worker accelerator clones reused across run() calls. A
     * serving workload (src/serve/) calls run() once per catalog
     * request, so rebuilding the clone set every call dominated
     * short-batch cost; the set is cached and rebuilt only when the
     * pool size changes. Clones are pure functions of
     * (input, threshold), so reuse cannot change any result. Guarded
     * by clone_mutex_: a concurrent run() (nested parallelism) that
     * loses the try-lock falls back to a local clone set, and traced
     * runs always use local clones (tracing re-attaches sinks, which
     * would mutate the shared set mid-flight).
     */
    mutable std::mutex clone_mutex_;
    mutable std::vector<Accelerator> clone_cache_;
};

} // namespace elsa

#endif // ELSA_SIM_ARRAY_H_
