/**
 * @file
 * Tests of the deterministic fault-injection subsystem
 * (fault/fault.h, docs/ROBUSTNESS.md):
 *
 *  - FaultPlan determinism and the classification conservation
 *    invariant (injected == silent + detected + corrected);
 *  - the protection models' classification table;
 *  - bit-faithful value perturbation helpers;
 *  - byte-identical simulator results with injection disabled, and
 *    no fault/saturation counters in the stats dump;
 *  - the retry timing model (parity pays exactly the modeled
 *    re-fetch bubble, SECDED repairs for free);
 *  - the extended stall-conservation invariant with fault_retry;
 *  - thread-count invariance of a faulted batch;
 *  - the silent-saturation counters (zero on a nominal workload,
 *    counting verified at the unit level).
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "fixed/custom_float.h"
#include "fixed/fixed_point.h"
#include "fixed/saturation.h"
#include "lsh/bitvector.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "obs/registry.h"
#include "sim/accelerator.h"
#include "sim/array.h"
#include "workload/generator.h"
#include "workload/model.h"

namespace elsa {
namespace {

FaultGeometry
testGeometry(std::size_t n = 64)
{
    FaultGeometry geometry;
    geometry.n = n;
    geometry.k = 64;
    geometry.d = 64;
    geometry.lut_words = 64;
    return geometry;
}

FaultConfig
testFaultConfig(double ber, ProtectionMode protection)
{
    FaultConfig config;
    config.enabled = true;
    config.bit_error_rate = ber;
    config.protection = protection;
    return config;
}

AttentionInput
testInput(std::size_t n, std::uint32_t input_id)
{
    QkvGenerator gen(bertLarge(), 77);
    return gen.generate(0, 0, n, input_id);
}

std::shared_ptr<const KroneckerSrpHasher>
testHasher()
{
    Rng rng(9);
    return std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng, true));
}

// ---- FaultPlan -----------------------------------------------------

TEST(FaultPlanTest, IsDeterministicAndConserves)
{
    const FaultConfig config =
        testFaultConfig(1e-3, ProtectionMode::kParityDetect);
    const FaultGeometry geometry = testGeometry();
    const FaultPlan a = FaultPlan::build(config, geometry);
    const FaultPlan b = FaultPlan::build(config, geometry);

    ASSERT_EQ(a.faults().size(), b.faults().size());
    for (std::size_t i = 0; i < a.faults().size(); ++i) {
        EXPECT_EQ(a.faults()[i].target, b.faults()[i].target);
        EXPECT_EQ(a.faults()[i].word, b.faults()[i].word);
        EXPECT_EQ(a.faults()[i].bits, b.faults()[i].bits);
        EXPECT_EQ(a.faults()[i].outcome, b.faults()[i].outcome);
    }

    const FaultCounts& counts = a.counts();
    EXPECT_GT(counts.injected, 0u);
    EXPECT_TRUE(counts.conserves());
    std::uint64_t per_target_sum = 0;
    for (std::size_t t = 0; t < kNumFaultTargets; ++t) {
        per_target_sum += counts.injected_per_target[t];
    }
    EXPECT_EQ(per_target_sum, counts.injected);
    EXPECT_EQ(a.retryStallCycles(config),
              counts.retry_events
                  * static_cast<std::uint64_t>(config.retry_cycles));
}

TEST(FaultPlanTest, DifferentSeedsGiveDifferentPlans)
{
    FaultConfig config =
        testFaultConfig(1e-3, ProtectionMode::kNone);
    const FaultPlan a = FaultPlan::build(config, testGeometry());
    config.seed ^= 0x1234;
    const FaultPlan b = FaultPlan::build(config, testGeometry());
    // Equal-length plans at the same BER are possible; equal
    // positions throughout are (astronomically) not.
    bool identical = a.faults().size() == b.faults().size();
    if (identical) {
        for (std::size_t i = 0; i < a.faults().size(); ++i) {
            identical = identical
                        && a.faults()[i].word == b.faults()[i].word
                        && a.faults()[i].bits == b.faults()[i].bits;
        }
    }
    EXPECT_FALSE(identical);
}

TEST(FaultPlanTest, ZeroRateAndUnitRateExtremes)
{
    const FaultGeometry geometry = testGeometry(8);
    const FaultPlan none = FaultPlan::build(
        testFaultConfig(0.0, ProtectionMode::kNone), geometry);
    EXPECT_TRUE(none.faults().empty());
    EXPECT_EQ(none.counts().injected, 0u);

    const FaultPlan all = FaultPlan::build(
        testFaultConfig(1.0, ProtectionMode::kNone), geometry);
    EXPECT_EQ(all.counts().injected, geometry.totalBits());
}

TEST(FaultPlanTest, RespectsInjectLutSwitch)
{
    FaultConfig config = testFaultConfig(1.0, ProtectionMode::kNone);
    config.inject_lut = false;
    const FaultGeometry geometry = testGeometry(8);
    const FaultPlan plan = FaultPlan::build(config, geometry);
    const std::size_t lut = static_cast<std::size_t>(
        FaultTarget::kLutTables);
    EXPECT_EQ(plan.counts().injected_per_target[lut], 0u);
    EXPECT_EQ(plan.counts().injected,
              geometry.totalBits()
                  - geometry.words(FaultTarget::kLutTables)
                        * geometry.bitsPerWord(
                            FaultTarget::kLutTables));
}

// ---- Protection classification -------------------------------------

TEST(FaultClassifyTest, MatchesTheProtectionTable)
{
    using enum FaultOutcome;
    // No protection: everything is silent.
    for (std::size_t flips = 1; flips <= 4; ++flips) {
        EXPECT_EQ(classifyWordFault(ProtectionMode::kNone, flips),
                  kSilent);
    }
    // Parity: odd weights detected, even weights slip through.
    EXPECT_EQ(classifyWordFault(ProtectionMode::kParityDetect, 1),
              kDetected);
    EXPECT_EQ(classifyWordFault(ProtectionMode::kParityDetect, 2),
              kSilent);
    EXPECT_EQ(classifyWordFault(ProtectionMode::kParityDetect, 3),
              kDetected);
    EXPECT_EQ(classifyWordFault(ProtectionMode::kParityDetect, 4),
              kSilent);
    // SECDED: correct one, detect two, miscorrect beyond.
    EXPECT_EQ(classifyWordFault(ProtectionMode::kSecdedCorrect, 1),
              kCorrected);
    EXPECT_EQ(classifyWordFault(ProtectionMode::kSecdedCorrect, 2),
              kDetected);
    EXPECT_EQ(classifyWordFault(ProtectionMode::kSecdedCorrect, 3),
              kSilent);
}

// ---- Bit-flip helpers ----------------------------------------------

TEST(FaultFlipTest, FixedPointFlipIsAnInRangeInvolution)
{
    for (const double value : {0.0, 1.25, -3.875, 31.875, -32.0}) {
        for (int bit = 0; bit < 9; ++bit) {
            const double flipped =
                flipFixedPointBit(value, 5, 3, bit);
            EXPECT_NE(flipped, value);
            EXPECT_LE(flipped, InputFixed::maxReal());
            EXPECT_GE(flipped, InputFixed::minReal());
            // Flipping the same bit again restores the value.
            EXPECT_EQ(flipFixedPointBit(flipped, 5, 3, bit), value);
        }
    }
    // Sign-bit flip of zero lands at the format minimum.
    EXPECT_EQ(flipFixedPointBit(0.0, 5, 3, 8),
              InputFixed::minReal());
}

TEST(FaultFlipTest, LutFractionFlipIsAnInvolution)
{
    // LUT entries are nonzero with exactly 5 mantissa fraction bits
    // (units.cc roundMantissa); these mirror that population.
    for (const double value : {1.0, 0.71875, 0.03125, 2.5}) {
        for (int bit = 0; bit < 5; ++bit) {
            const double flipped = flipLutFractionBit(value, bit);
            EXPECT_EQ(flipLutFractionBit(flipped, bit), value)
                << "value " << value << " bit " << bit;
        }
    }
    // Values outside that population are an internal-invariant break.
    EXPECT_THROW((void)flipLutFractionBit(0.0, 3), Error);
    EXPECT_THROW((void)flipLutFractionBit(0.0312, 3), Error);
}

TEST(FaultFlipTest, HashFlipTogglesExactlyOneBit)
{
    HashValue hash(64);
    hash.setBit(3, true);
    flipHashBit(hash, 3);
    EXPECT_FALSE(hash.bit(3));
    flipHashBit(hash, 3);
    EXPECT_TRUE(hash.bit(3));
    flipHashBit(hash, 60);
    EXPECT_TRUE(hash.bit(60));
}

// ---- Simulator integration -----------------------------------------

/** Two runs must agree on every output byte and every cycle. */
void
expectIdenticalRuns(const RunResult& a, const RunResult& b)
{
    ASSERT_EQ(a.output.rows(), b.output.rows());
    ASSERT_EQ(a.output.cols(), b.output.cols());
    EXPECT_EQ(std::memcmp(a.output.data(), b.output.data(),
                          a.output.rows() * a.output.cols()
                              * sizeof(float)),
              0);
    EXPECT_EQ(a.preprocess_cycles, b.preprocess_cycles);
    EXPECT_EQ(a.execute_cycles, b.execute_cycles);
    EXPECT_EQ(a.candidates_per_query, b.candidates_per_query);
}

TEST(FaultSimTest, DisabledInjectionIsByteIdentical)
{
    const std::size_t n = 48;
    const AttentionInput input = testInput(n, 0);
    const auto hasher = testHasher();

    SimConfig pristine = SimConfig::paperConfig();
    pristine.attribute_stalls = true;

    // Same config with every fault knob turned but the master switch
    // off: results must be byte-identical to the pristine config.
    SimConfig armed = pristine;
    armed.fault.bit_error_rate = 0.25;
    armed.fault.protection = ProtectionMode::kParityDetect;
    armed.fault.seed = 1;
    armed.fault.enabled = false;

    const Accelerator a(pristine, hasher, kThetaBias64);
    const Accelerator b(armed, hasher, kThetaBias64);
    const RunResult run_a = a.run(input, 0.25);
    const RunResult run_b = b.run(input, 0.25);
    expectIdenticalRuns(run_a, run_b);
    EXPECT_FALSE(run_a.fault.enabled);
    EXPECT_EQ(run_b.fault.counts.injected, 0u);

    // No fault / saturation / fault_retry counters may appear in the
    // stats dump of a fault-free run (byte-identity of the dump).
    obs::StatsRegistry registry;
    Accelerator published(pristine, hasher, kThetaBias64);
    published.attachStats(&registry, "sim.accel0");
    (void)published.run(input, 0.25);
    EXPECT_THROW((void)registry.counterValue("sim.accel0.fault.injected"),
                 Error);
    EXPECT_THROW((void)registry.counterValue("sim.accel0.fixed.saturations"),
                 Error);
    EXPECT_THROW((void)registry.counterValue(
                     "sim.accel0.stall.hash_computation."
                     "fault_retry_cycles"),
                 Error);
}

TEST(FaultSimTest, ParityPaysExactlyTheRetryBubble)
{
    const std::size_t n = 48;
    const AttentionInput input = testInput(n, 1);
    const auto hasher = testHasher();

    SimConfig config = SimConfig::paperConfig();
    const Accelerator pristine(config, hasher, kThetaBias64);
    const RunResult base = pristine.run(input, 0.25);

    // Parity detects every fault in this regime (single-bit words at
    // low BER), so data stays pristine: identical output, identical
    // timing plus exactly retry_events x retry_cycles of bubble.
    config.fault = testFaultConfig(1e-3,
                                   ProtectionMode::kParityDetect);
    const Accelerator parity(config, hasher, kThetaBias64);
    const RunResult guarded = parity.run(input, 0.25);
    ASSERT_TRUE(guarded.fault.enabled);
    ASSERT_GT(guarded.fault.counts.injected, 0u);
    EXPECT_EQ(guarded.fault.counts.silent, 0u);
    EXPECT_EQ(std::memcmp(base.output.data(), guarded.output.data(),
                          base.output.rows() * base.output.cols()
                              * sizeof(float)),
              0);
    EXPECT_EQ(guarded.execute_cycles,
              base.execute_cycles
                  + guarded.fault.retry_stall_cycles);
    EXPECT_EQ(guarded.fault.retry_stall_cycles,
              guarded.fault.counts.retry_events
                  * config.fault.retry_cycles);

    // SECDED corrects the same plan in line: pristine data, no cost.
    config.fault.protection = ProtectionMode::kSecdedCorrect;
    const Accelerator secded(config, hasher, kThetaBias64);
    const RunResult corrected = secded.run(input, 0.25);
    EXPECT_EQ(corrected.fault.counts.silent, 0u);
    EXPECT_EQ(corrected.fault.counts.detected, 0u);
    EXPECT_EQ(corrected.fault.retry_stall_cycles, 0u);
    expectIdenticalRuns(base, corrected);
}

TEST(FaultSimTest, UnprotectedFlipsPerturbTheOutput)
{
    const std::size_t n = 48;
    const AttentionInput input = testInput(n, 2);
    const auto hasher = testHasher();

    SimConfig config = SimConfig::paperConfig();
    const Accelerator pristine(config, hasher, kThetaBias64);
    const RunResult base = pristine.run(input, 0.25);

    config.fault = testFaultConfig(1e-3, ProtectionMode::kNone);
    const Accelerator faulty(config, hasher, kThetaBias64);
    const RunResult run = faulty.run(input, 0.25);
    ASSERT_GT(run.fault.counts.silent, 0u);
    EXPECT_NE(std::memcmp(base.output.data(), run.output.data(),
                          base.output.rows() * base.output.cols()
                              * sizeof(float)),
              0);
}

TEST(FaultSimTest, StallConservationHoldsWithFaultRetry)
{
    const std::size_t n = 40;
    const AttentionInput input = testInput(n, 3);
    const auto hasher = testHasher();

    SimConfig config = SimConfig::paperConfig();
    config.attribute_stalls = true;
    config.fault = testFaultConfig(1e-3,
                                   ProtectionMode::kParityDetect);
    const Accelerator accel(config, hasher, kThetaBias64);
    const RunResult run = accel.run(input, 0.25);
    ASSERT_GT(run.fault.counts.retry_events, 0u);
    EXPECT_TRUE(
        run.stall_breakdown.conserves(run.totalCycles(), config));
    // The bubble freezes the whole pipeline: every module class
    // carries lanes x bubble of fault_retry lane cycles.
    for (const AttributedModule module : allAttributedModules()) {
        EXPECT_EQ(run.stall_breakdown.get(module,
                                          StallCause::kFaultRetry),
                  attributedModuleLanes(module, config)
                      * run.fault.retry_stall_cycles);
    }
}

TEST(FaultSimTest, BatchResultsAreThreadCountInvariant)
{
    const std::size_t n = 32;
    const auto hasher = testHasher();
    std::vector<AttentionInput> inputs;
    for (std::uint32_t i = 0; i < 6; ++i) {
        inputs.push_back(testInput(n, i));
    }
    std::vector<const AttentionInput*> input_ptrs;
    for (const AttentionInput& input : inputs) {
        input_ptrs.push_back(&input);
    }
    const std::vector<double> thresholds(inputs.size(), 0.25);

    SimConfig config = SimConfig::paperConfig();
    config.attribute_stalls = true;
    config.count_saturations = true;
    config.fault = testFaultConfig(1e-3,
                                   ProtectionMode::kParityDetect);

    std::vector<ArrayRunResult> results;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        const AcceleratorArray array(config, 12, hasher,
                                     kThetaBias64);
        results.push_back(array.run(input_ptrs, thresholds));
    }
    ThreadPool::setGlobalThreads(1);
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].total_cycles, results[0].total_cycles);
        EXPECT_EQ(results[i].makespan_cycles,
                  results[0].makespan_cycles);
        EXPECT_EQ(results[i].fault.counts.injected,
                  results[0].fault.counts.injected);
        EXPECT_EQ(results[i].fault.counts.silent,
                  results[0].fault.counts.silent);
        EXPECT_EQ(results[i].fault.counts.detected,
                  results[0].fault.counts.detected);
        EXPECT_EQ(results[i].fault.counts.corrected,
                  results[0].fault.counts.corrected);
        EXPECT_EQ(results[i].fault.retry_stall_cycles,
                  results[0].fault.retry_stall_cycles);
        EXPECT_EQ(results[i].fixed_saturations,
                  results[0].fixed_saturations);
        EXPECT_EQ(results[i].cfloat_saturations,
                  results[0].cfloat_saturations);
    }
    EXPECT_GT(results[0].fault.counts.injected, 0u);
}

// ---- Saturation counters -------------------------------------------

TEST(SaturationTest, NominalWorkloadSaturatesNowhere)
{
    // The quantization ranges were sized for the workload regime
    // (S5.3 inputs, S4.3 norms): a nominal BERT-style run must not
    // clip anywhere, and this pins that down.
    const AttentionInput input = testInput(64, 0);
    SimConfig config = SimConfig::paperConfig();
    config.count_saturations = true;
    const Accelerator accel(config, testHasher(), kThetaBias64);
    const RunResult run = accel.run(input, 0.25);
    EXPECT_TRUE(run.saturations_counted);
    EXPECT_EQ(run.fixed_saturations, 0u);
    EXPECT_EQ(run.cfloat_saturations, 0u);
}

TEST(SaturationTest, HookCountsClampsAndOverflows)
{
    SaturationCounters counters;
    {
        SaturationScope scope(&counters);
        (void)InputFixed::fromReal(1000.0);  // Clamps to maxReal.
        (void)InputFixed::fromReal(-1000.0); // Clamps to minReal.
        (void)InputFixed::fromReal(1.5);     // In range: no count.
        (void)InputFixed::fromRaw(InputFixed::kRawMax + 1);
        (void)quantizeToCustomFloat(1e300);
        (void)quantizeToCustomFloat(
            std::numeric_limits<double>::infinity());
        (void)quantizeToCustomFloat(0.5); // Representable: no count.
    }
    EXPECT_EQ(counters.fixed, 3u);
    EXPECT_EQ(counters.cfloat, 2u);

    // Detached again: nothing counts.
    (void)InputFixed::fromReal(1000.0);
    EXPECT_EQ(counters.fixed, 3u);
}

} // namespace
} // namespace elsa
