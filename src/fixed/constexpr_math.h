#ifndef ELSA_FIXED_CONSTEXPR_MATH_H_
#define ELSA_FIXED_CONSTEXPR_MATH_H_

/**
 * @file
 * Constant-evaluation-capable math for the number formats.
 *
 * FixedPoint and CustomFloat are constexpr so compile-time tests can
 * pin Q-format widths, rounding behaviour, and saturation bounds in
 * static_assert (tests/fixed_test.cc). The libm calls the formats
 * previously made (nearbyint, ldexp, frexp, copysign) are not
 * constexpr in C++20, so each helper here branches on
 * std::is_constant_evaluated(): during constant evaluation it runs
 * an exact pure-C++ equivalent; at run time it calls the very std
 * function the formats called before, keeping the runtime datapath
 * bit-identical to earlier releases. Every operation involved is
 * exact (scaling by powers of two, comparisons, the 2^52 rounding
 * trick), so the two paths cannot diverge on any finite input; the
 * cross-path agreement is additionally pinned by runtime tests.
 */

#include <cmath>
#include <type_traits>

namespace elsa::fixed_detail {

/** Largest finite double; for the constant-evaluable isFinite. */
inline constexpr double kDoubleMax = 1.7976931348623157e308;

/** std::isfinite, usable in constant evaluation. */
constexpr bool
isFinite(double x)
{
    if (std::is_constant_evaluated()) {
        return x == x && x <= kDoubleMax && x >= -kDoubleMax;
    }
    return std::isfinite(x);
}

/** std::fabs, usable in constant evaluation. */
constexpr double
absValue(double x)
{
    if (std::is_constant_evaluated()) {
        return x < 0.0 ? -x : x;
    }
    return std::fabs(x);
}

/**
 * std::copysign, usable in constant evaluation. The compile-time
 * branch cannot inspect the sign bit of NaN or -0.0 and treats both
 * as positive; every call site passes a finite nonzero sign or is
 * runtime-only on such inputs.
 */
constexpr double
copySign(double magnitude, double sign)
{
    if (std::is_constant_evaluated()) {
        return sign < 0.0 ? -magnitude : magnitude;
    }
    return std::copysign(magnitude, sign);
}

/** std::ldexp (x * 2^e), usable in constant evaluation. Exact: a
 *  power-of-two scale changes only the exponent field. */
constexpr double
scaleByPow2(double x, int e)
{
    if (std::is_constant_evaluated()) {
        while (e > 0) {
            x *= 2.0;
            --e;
        }
        while (e < 0) {
            x *= 0.5;
            ++e;
        }
        return x;
    }
    return std::ldexp(x, e);
}

/**
 * std::frexp for a positive finite normal magnitude, usable in
 * constant evaluation: returns the fraction in [0.5, 1) and stores
 * the binary exponent so that magnitude == fraction * 2^exponent.
 */
constexpr double
normalizedFraction(double magnitude, int& exponent)
{
    if (std::is_constant_evaluated()) {
        exponent = 0;
        while (magnitude >= 1.0) {
            magnitude *= 0.5;
            ++exponent;
        }
        while (magnitude < 0.5) {
            magnitude *= 2.0;
            --exponent;
        }
        return magnitude;
    }
    return std::frexp(magnitude, &exponent);
}

/**
 * Round to nearest integer, ties to even -- the semantics of
 * std::nearbyint in the default rounding mode. Used unconditionally
 * at run time too: the 2^52 add/subtract trick rides the FPU's own
 * ties-to-even rounding, so it is identical to nearbyint by
 * construction (and cheaper than the libm call).
 */
constexpr double
roundTiesToEven(double x)
{
    constexpr double kTwo52 = 4503599627370496.0; // 2^52
    if (!(x < kTwo52 && x > -kTwo52)) {
        return x; // already integral (or NaN/inf): nothing to round
    }
    return x >= 0.0 ? (x + kTwo52) - kTwo52 : (x - kTwo52) + kTwo52;
}

} // namespace elsa::fixed_detail

#endif // ELSA_FIXED_CONSTEXPR_MATH_H_
