/**
 * @file
 * ARM NEON kernel specializations, the AArch64 counterpart of
 * kernels_avx2.cc and the only NEON-intrinsics site in the tree
 * (elsa-lint: no-raw-intrinsics). NEON is baseline on AArch64, so
 * unlike AVX2 there is no runtime CPU check: if the compiler defined
 * __ARM_NEON the table is available, otherwise this TU compiles to
 * the null stub.
 *
 * CNT (vcntq_u8) counts bits per byte; ADDV folds the byte counts.
 * All operations are integer or exact IEEE >= comparisons, so
 * results are bit-identical to the scalar table by construction.
 */

#include "common/simd/simd.h"

#if defined(__ARM_NEON)

#include <arm_neon.h>

namespace elsa::simd {

namespace {

/** Total popcount of a 128-bit vector. */
inline std::uint32_t
popcount128(uint8x16_t v)
{
    return vaddvq_u8(vcntq_u8(v));
}

void
hammingBatchNeon(const std::uint64_t* query, const std::uint64_t* keys,
                 std::size_t words_per_row, std::size_t num_rows,
                 std::uint32_t* out)
{
    for (std::size_t r = 0; r < num_rows; ++r) {
        const std::uint64_t* row = keys + r * words_per_row;
        std::uint32_t distance = 0;
        std::size_t w = 0;
        for (; w + 2 <= words_per_row; w += 2) {
            const uint64x2_t qv = vld1q_u64(query + w);
            const uint64x2_t kv = vld1q_u64(row + w);
            distance += popcount128(
                vreinterpretq_u8_u64(veorq_u64(qv, kv)));
        }
        for (; w < words_per_row; ++w) {
            distance += static_cast<std::uint32_t>(
                __builtin_popcountll(query[w] ^ row[w]));
        }
        out[r] = distance;
    }
}

int
popcountWordsNeon(const std::uint64_t* words, std::size_t n)
{
    std::uint32_t count = 0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        count += popcount128(vreinterpretq_u8_u64(vld1q_u64(words + i)));
    }
    for (; i < n; ++i) {
        count += static_cast<std::uint32_t>(
            __builtin_popcountll(words[i]));
    }
    return static_cast<int>(count);
}

/**
 * Sign packing via FCMGE against zero: lane i is all-ones when
 * v[i] >= 0 (NaN compares false, -0.0 true), matching the scalar
 * `v >= 0` exactly; the masked lane bits are OR-folded into the
 * output word.
 */
void
signPackF32Neon(const float* v, std::size_t n, std::uint64_t* out)
{
    const float32x4_t zero = vdupq_n_f32(0.0f);
    const std::size_t words = (n + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
        out[w] = 0;
    }
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t ge = vcgeq_f32(vld1q_f32(v + i), zero);
        const uint32x4_t lane_bits = {1u, 2u, 4u, 8u};
        const std::uint32_t mask =
            vaddvq_u32(vandq_u32(ge, lane_bits));
        out[i / 64] |= static_cast<std::uint64_t>(mask) << (i % 64);
    }
    for (; i < n; ++i) {
        if (v[i] >= 0.0f) {
            out[i / 64] |= std::uint64_t{1} << (i % 64);
        }
    }
}

void
signPackF64Neon(const double* v, std::size_t n, std::uint64_t* out)
{
    const float64x2_t zero = vdupq_n_f64(0.0);
    const std::size_t words = (n + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
        out[w] = 0;
    }
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t ge = vcgeq_f64(vld1q_f64(v + i), zero);
        const uint64x2_t lane_bits = {1u, 2u};
        const std::uint64_t mask =
            vaddvq_u64(vandq_u64(ge, lane_bits));
        out[i / 64] |= mask << (i % 64);
    }
    for (; i < n; ++i) {
        if (v[i] >= 0.0) {
            out[i / 64] |= std::uint64_t{1} << (i % 64);
        }
    }
}

const KernelTable kNeonTable = {
    SimdLevel::kNeon,  "neon",         hammingBatchNeon,
    popcountWordsNeon, signPackF32Neon, signPackF64Neon,
};

} // namespace

const KernelTable*
neonKernelsOrNull()
{
    return &kNeonTable;
}

} // namespace elsa::simd

#else // !defined(__ARM_NEON)

namespace elsa::simd {

const KernelTable*
neonKernelsOrNull()
{
    return nullptr;
}

} // namespace elsa::simd

#endif // defined(__ARM_NEON)
