#include "elsa/system.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/stats.h"
#include "sim/pipeline_model.h"

namespace elsa {

void
SystemConfig::validate() const
{
    sim.validate();
    ELSA_CHECK(num_accelerators >= 1,
               "num_accelerators must be >= 1");
    ELSA_CHECK(sim_inputs >= 1, "sim_inputs must be >= 1");
    ELSA_CHECK(sim_sublayers >= 1, "sim_sublayers must be >= 1");
    ELSA_CHECK(eval.num_train_inputs >= 1,
               "eval.num_train_inputs must be >= 1");
    ELSA_CHECK(eval.num_eval_inputs >= 1,
               "eval.num_eval_inputs must be >= 1");
    ELSA_CHECK(eval.max_sublayers >= 1,
               "eval.max_sublayers must be >= 1");
}

ElsaSystem::ElsaSystem(WorkloadSpec spec, SystemConfig config,
                       std::uint64_t seed)
    : spec_(std::move(spec)),
      config_(config),
      seed_(seed),
      runner_(spec_, seed)
{
    config_.validate();
    ELSA_CHECK(config_.sim.d == spec_.model.head_dim,
               "sim d " << config_.sim.d << " != model head dim "
                        << spec_.model.head_dim);
}

void
ElsaSystem::attachObservability(obs::StatsRegistry* stats,
                                obs::TraceWriter* trace,
                                std::string prefix)
{
    stats_ = stats;
    trace_ = trace;
    stats_prefix_ = std::move(prefix);
}

const WorkloadEvaluation&
ElsaSystem::fidelityAt(double p)
{
    // The mutex only guards the map structure; the (address-stable)
    // cell is filled through its once_flag so concurrent callers of
    // the same p block on call_once, not on each other's evaluate().
    FidelityCell* cell = nullptr;
    {
        std::lock_guard<std::mutex> lk(fidelity_m_);
        cell = &fidelity_cache_[p];
    }
    std::call_once(cell->once, [&] {
        cell->value = runner_.evaluate(p, config_.eval);
    });
    return cell->value;
}

double
ElsaSystem::chooseP(ApproxMode mode)
{
    if (mode == ApproxMode::kBase) {
        return 0.0;
    }
    // Warm the cache for the whole grid concurrently; the serial
    // scan below then reads only cached values. WorkloadRunner::
    // evaluate is const and derives its RNGs from (seed, p), so each
    // grid point's evaluation is independent of every other.
    const std::vector<double>& grid = WorkloadRunner::standardPGrid();
    parallelFor(grid.size(),
                [&](std::size_t i) { fidelityAt(grid[i]); });

    const double bound = accuracyLossBound(spec_.model, mode);
    double best = 0.0;
    for (const double p : grid) {
        if (fidelityAt(p).estimated_loss_pct <= bound) {
            best = std::max(best, p);
        }
    }
    return best;
}

ModeReport
ElsaSystem::simulateAtP(ApproxMode mode, double p)
{
    ModeReport report;
    report.mode = mode;
    report.p = p;
    if (p > 0.0) {
        report.estimated_loss_pct = fidelityAt(p).estimated_loss_pct;
    }

    // Materialize invocations and run them on the accelerator array.
    const std::vector<SimInvocation> invocations = runner_.simInvocations(
        p, config_.sim_inputs, config_.sim_sublayers, config_.eval);
    ELSA_CHECK(!invocations.empty(), "no invocations to simulate");

    AcceleratorArray array(config_.sim, config_.num_accelerators,
                           runner_.engine().hasher(),
                           runner_.engine().cosineLut().thetaBias());
    if (stats_ != nullptr || trace_ != nullptr) {
        array.attachObservability(stats_, trace_, stats_prefix_);
    }

    std::vector<const AttentionInput*> inputs;
    std::vector<double> thresholds;
    inputs.reserve(invocations.size());
    for (const auto& inv : invocations) {
        inputs.push_back(&inv.input);
        thresholds.push_back(inv.threshold);
    }
    const ArrayRunResult run = array.run(inputs, thresholds);
    report.stall_breakdown = run.stall_breakdown;
    report.simulated_cycles = run.total_cycles;

    const double freq_hz = config_.sim.frequency_ghz * 1e9;
    const double mean_cycles = run.meanLatencyCycles();
    report.candidate_fraction = run.mean_candidate_fraction;
    report.elsa_latency_s = mean_cycles / freq_hz;
    report.preprocess_fraction =
        run.total_cycles > 0
            ? static_cast<double>(run.total_preprocess_cycles)
                  / static_cast<double>(run.total_cycles)
            : 0.0;
    // Steady state: every accelerator retires one op per mean-op
    // time.
    report.elsa_ops_per_second =
        static_cast<double>(config_.num_accelerators) * freq_hz
        / mean_cycles;

    // --- GPU comparison (padded length) ---
    const GpuModel gpu;
    report.gpu_ops_per_second = gpu.attentionOpsPerSecond(
        spec_.model, spec_.dataset.padded_length);
    report.throughput_vs_gpu =
        report.elsa_ops_per_second / report.gpu_ops_per_second;

    // --- Ideal-accelerator comparison (real tokens, no padding) ---
    const IdealAccelerator ideal;
    RunningStat ideal_latency;
    for (const auto& inv : invocations) {
        ideal_latency.add(
            ideal.secondsPerOp(inv.n_real, spec_.model.head_dim));
    }
    report.latency_vs_ideal = report.elsa_latency_s
                              / ideal_latency.mean();

    // --- Energy (Fig. 13) ---
    const EnergyModel energy_model(config_.sim.frequency_ghz);
    EnergyBreakdown total = energy_model.compute(
        run.activity, static_cast<double>(run.total_cycles));
    const double inv_count =
        static_cast<double>(invocations.size());
    for (auto& uj : total.module_uj) {
        uj /= inv_count;
    }
    report.energy_breakdown = total;
    report.elsa_energy_per_op_uj = total.totalUj();

    const double gpu_energy_uj = gpu.attentionEnergyPerOp(
                                     spec_.model,
                                     spec_.dataset.padded_length)
                                 * 1e6;
    report.energy_eff_vs_gpu =
        gpu_energy_uj / report.elsa_energy_per_op_uj;
    return report;
}

ModeReport
ElsaSystem::evaluateMode(ApproxMode mode)
{
    const double p = chooseP(mode);
    return simulateAtP(mode, p);
}

std::vector<ModeReport>
ElsaSystem::evaluateAllModes()
{
    std::vector<ModeReport> reports;
    for (const ApproxMode mode :
         {ApproxMode::kBase, ApproxMode::kConservative,
          ApproxMode::kModerate, ApproxMode::kAggressive}) {
        reports.push_back(evaluateMode(mode));
    }
    return reports;
}

} // namespace elsa
