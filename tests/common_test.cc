/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, bit helpers,
 * and error reporting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bits.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"

namespace elsa {
namespace {

TEST(LoggingTest, FatalRaisesElsaError)
{
    EXPECT_THROW(ELSA_FATAL("boom"), Error);
}

TEST(LoggingTest, CheckPassesOnTrueCondition)
{
    EXPECT_NO_THROW(ELSA_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(LoggingTest, CheckThrowsWithContext)
{
    try {
        ELSA_CHECK(false, "the message " << 42);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("the message 42"), std::string::npos);
        EXPECT_NE(what.find("common_test.cc"), std::string::npos);
    }
}

TEST(LoggingTest, AssertThrowsPanic)
{
    try {
        ELSA_ASSERT(false, "invariant");
        FAIL() << "expected Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("panic"),
                  std::string::npos);
    }
}

TEST(RngTest, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) {
        sum += rng.uniform();
    }
    EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound)
{
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(17);
        ASSERT_LT(v, 17u);
        seen.insert(v);
    }
    // All 17 residues should appear in 1000 draws.
    EXPECT_EQ(seen.size(), 17u);
}

TEST(RngTest, UniformIntRejectsZeroBound)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniformInt(0), Error);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal)
{
    Rng rng(17);
    RunningStat stat;
    for (int i = 0; i < 200000; ++i) {
        stat.add(rng.gaussian());
    }
    EXPECT_NEAR(stat.mean(), 0.0, 0.02);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(RngTest, GaussianWithParameters)
{
    Rng rng(19);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i) {
        stat.add(rng.gaussian(5.0, 2.0));
    }
    EXPECT_NEAR(stat.mean(), 5.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng parent(23);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic)
{
    Rng parent(23);
    Rng a = parent.fork(5);
    Rng b = Rng(23).fork(5);
    EXPECT_EQ(a.next(), b.next());
}

TEST(RunningStatTest, EmptyStat)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue)
{
    RunningStat stat;
    stat.add(3.5);
    EXPECT_EQ(stat.count(), 1u);
    EXPECT_DOUBLE_EQ(stat.mean(), 3.5);
    EXPECT_DOUBLE_EQ(stat.min(), 3.5);
    EXPECT_DOUBLE_EQ(stat.max(), 3.5);
    EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, KnownSequence)
{
    RunningStat stat;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stat.add(v);
    }
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    // Unbiased sample variance of the classic example = 32/7.
    EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(PercentileTest, MedianOfOddCount)
{
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenValues)
{
    // Sorted: 1 2 3 4; q=0.5 -> position 1.5 -> 2.5.
    EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(PercentileTest, Extremes)
{
    const std::vector<double> v = {5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, EightiethPercentile)
{
    // 0..10 inclusive; 80th percentile at position 8.
    std::vector<double> v;
    for (int i = 0; i <= 10; ++i) {
        v.push_back(static_cast<double>(i));
    }
    EXPECT_DOUBLE_EQ(percentile(v, 0.8), 8.0);
}

TEST(PercentileTest, RejectsEmptyAndBadQ)
{
    EXPECT_THROW(percentile({}, 0.5), Error);
    EXPECT_THROW(percentile({1.0}, -0.1), Error);
    EXPECT_THROW(percentile({1.0}, 1.1), Error);
}

TEST(GeomeanTest, KnownValues)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-12);
}

TEST(GeomeanTest, RejectsEmptyAndNonPositive)
{
    EXPECT_THROW(geomean({}), Error);
    EXPECT_THROW(geomean({1.0, 0.0}), Error);
    EXPECT_THROW(geomean({1.0, -2.0}), Error);
}

TEST(BitsTest, Popcount64)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(0xFFFFFFFFFFFFFFFFULL), 64);
    EXPECT_EQ(popcount64(0xAAAAAAAAAAAAAAAAULL), 32);
}

TEST(BitsTest, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(768, 256), 3u);
}

TEST(BitsTest, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
}

} // namespace
} // namespace elsa
