#ifndef ELSA_OBS_MANIFEST_H_
#define ELSA_OBS_MANIFEST_H_

/**
 * @file
 * Run manifest: one JSON document that makes a simulator/bench run
 * reproducible and comparable after the fact -- which binary, which
 * build (git describe, compiler, build type), which configuration,
 * which seed, and the headline metrics. Every bench binary emits one
 * through bench/bench_common.h; docs/OBSERVABILITY.md documents the
 * schema.
 *
 * The manifest is deliberately flat: named sections of ordered
 * key/value scalars. Anything richer (per-query series, histograms)
 * belongs in the stats dump or the trace, not here.
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace elsa::obs {

/** Build provenance baked in at compile time. */
struct BuildInfo
{
    /** `git describe --always --dirty` at configure time. */
    std::string git_describe;
    /** CMake build type (Release, Debug, ...). */
    std::string build_type;
    /** Compiler version string (__VERSION__). */
    std::string compiler;
};

/** The build info of this binary. */
BuildInfo buildInfo();

/** Ordered named sections of scalar key/value pairs; see file doc. */
class RunManifest
{
  public:
    /**
     * @param artifact What this run produces, e.g. "fig11a_throughput"
     *                 or "quickstart".
     */
    explicit RunManifest(std::string artifact);

    const std::string& artifact() const { return artifact_; }

    /** Set a scalar in a section (created on first use, in order). */
    void set(const std::string& section, const std::string& key,
             const std::string& value);
    void set(const std::string& section, const std::string& key,
             const char* value);
    void set(const std::string& section, const std::string& key,
             double value);
    void set(const std::string& section, const std::string& key,
             std::int64_t value);
    void set(const std::string& section, const std::string& key,
             std::size_t value);
    void set(const std::string& section, const std::string& key,
             bool value);

    /** Record the build provenance under a "build" section. */
    void addBuildInfo();

    /**
     * Serialize as JSON: {"artifact": ..., "schema_version": 1,
     * "<section>": {...}, ...}. With pretty=false the document is a
     * single line (the BENCH_*.json format).
     */
    void writeJson(std::ostream& os, bool pretty = true) const;

    /** writeJson() to a string. */
    std::string toJson(bool pretty = true) const;

    /** Write to a file; raises elsa::Error on I/O failure. */
    void writeFile(const std::string& path, bool pretty = true) const;

  private:
    struct Value
    {
        enum class Kind
        {
            kString,
            kNumber,
            kInteger,
            kBool,
        };
        Kind kind = Kind::kString;
        std::string string_value;
        double number_value = 0.0;
        std::int64_t int_value = 0;
        bool bool_value = false;
    };

    using Section = std::vector<std::pair<std::string, Value>>;

    Section& section(const std::string& name);
    void setValue(const std::string& section_name,
                  const std::string& key, Value value);

    std::string artifact_;
    std::vector<std::pair<std::string, Section>> sections_;
};

} // namespace elsa::obs

#endif // ELSA_OBS_MANIFEST_H_
