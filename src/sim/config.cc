#include "sim/config.h"

#include <cmath>

#include "common/logging.h"

namespace elsa {

void
SimConfig::validate() const
{
    ELSA_CHECK(d > 0, "d must be positive");
    ELSA_CHECK(k > 0, "k must be positive");
    ELSA_CHECK(pa > 0, "pa must be positive");
    ELSA_CHECK(pc > 0, "pc must be positive");
    ELSA_CHECK(mh > 0, "mh must be positive");
    ELSA_CHECK(mo > 0, "mo must be positive");
    ELSA_CHECK(num_hash_factors >= 1, "num_hash_factors must be >= 1");
    ELSA_CHECK(queue_depth >= 1, "queue_depth must be >= 1");
    // Zero is meaningful (a fully overlapped hand-off); the bound
    // catches values that could not be a hand-off bubble depth.
    ELSA_CHECK(attention_pipeline_latency <= 4096,
               "attention_pipeline_latency "
                   << attention_pipeline_latency
                   << " is implausibly deep (> 4096)");
    ELSA_CHECK(std::isfinite(frequency_ghz) && frequency_ghz > 0.0,
               "frequency_ghz must be positive and finite, got "
                   << frequency_ghz);
    fault.validate();
    // Fault injection perturbs the stored hardware number formats
    // (S5.3 / S4.3 / LUT mantissas), which only exist when the
    // functional model applies them.
    ELSA_CHECK(!fault.enabled || model_quantization,
               "fault.enabled requires model_quantization: bit flips are "
               "defined on the quantized storage formats");
    ELSA_CHECK(telemetry.bin_width_cycles >= 1,
               "telemetry.bin_width_cycles must be >= 1");
    // Telemetry bins are the stall attribution spread over time;
    // without attribution there is nothing to record.
    ELSA_CHECK(!telemetry.enabled || attribute_stalls,
               "telemetry.enabled requires attribute_stalls: the "
               "time-series channels are binned stall attribution");
    ELSA_CHECK(query_spans.exemplar_count >= 1,
               "query_spans.exemplar_count must be >= 1");
    // The span decomposition reuses the stall-attribution arithmetic;
    // recording spans without attribution would let the two views of
    // the same cycles drift apart.
    ELSA_CHECK(!query_spans.enabled || attribute_stalls,
               "query_spans.enabled requires attribute_stalls: the "
               "per-stage decomposition is derived from it");
    // d must be a perfect num_hash_factors-th power for the
    // Kronecker-structured hash matrices.
    const double root = std::pow(static_cast<double>(d),
                                 1.0 / static_cast<double>(
                                     num_hash_factors));
    const auto s = static_cast<std::size_t>(std::lround(root));
    std::size_t check = 1;
    for (std::size_t i = 0; i < num_hash_factors; ++i) {
        check *= s;
    }
    ELSA_CHECK(check == d,
               "d = " << d << " is not a perfect " << num_hash_factors
                      << "-th power, required by the Kronecker hash");
}

SimConfig
SimConfig::paperConfig()
{
    return SimConfig{}; // Defaults are the paper's configuration.
}

} // namespace elsa
