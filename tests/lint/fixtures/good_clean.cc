// elsa-lint-pretend: src/sim/good_clean.cc
// Known-good fixture: deterministic code using the sanctioned
// patterns. Must produce zero findings, pinning the false-positive
// floor of every rule.
#include <map>
#include <string>

#include "fixed/fixed_point.h"
#include "obs/registry.h"
#include "sim/stall.h"

namespace elsa {

const char*
goodStallName(StallCause cause)
{
    switch (cause) {
      case StallCause::kBusy: return "busy";
      case StallCause::kStarved: return "starved";
      case StallCause::kBackpressured: return "backpressured";
      case StallCause::kBankConflict: return "bank_conflict";
      case StallCause::kDrained: return "drained";
      case StallCause::kFaultRetry: return "fault_retry";
    }
    return "unreachable";
}

double
goodDatapath(obs::StatsRegistry& registry, const std::string& prefix,
             double x)
{
    std::map<std::string, int> ordered; // deterministic iteration
    ordered["queries"] = 1;
    registry.counter(prefix + ".cycles.total").add(1.0);
    const InputFixed q = InputFixed::fromReal(x);
    return q.toReal() + static_cast<double>(ordered.size());
}

} // namespace elsa
