#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace elsa {

Matrix
matmul(const Matrix& a, const Matrix& b)
{
    ELSA_CHECK(a.cols() == b.rows(),
               "matmul shape mismatch: " << a.rows() << "x" << a.cols()
                                         << " * " << b.rows() << "x"
                                         << b.cols());
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const float aik = a(i, k);
            if (aik == 0.0f) {
                continue;
            }
            const float* brow = b.row(k);
            float* crow = c.row(i);
            for (std::size_t j = 0; j < b.cols(); ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
    return c;
}

Matrix
matmulTransposedB(const Matrix& a, const Matrix& b)
{
    ELSA_CHECK(a.cols() == b.cols(),
               "matmulTransposedB shape mismatch: " << a.rows() << "x"
                                                    << a.cols() << " * ("
                                                    << b.rows() << "x"
                                                    << b.cols() << ")^T");
    Matrix c(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.rows(); ++j) {
            c(i, j) = static_cast<float>(dot(a.row(i), b.row(j), a.cols()));
        }
    }
    return c;
}

Matrix
transpose(const Matrix& a)
{
    Matrix t(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            t(j, i) = a(i, j);
        }
    }
    return t;
}

Matrix
kronecker(const Matrix& a, const Matrix& b)
{
    Matrix k(a.rows() * b.rows(), a.cols() * b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            const float aij = a(i, j);
            for (std::size_t p = 0; p < b.rows(); ++p) {
                for (std::size_t q = 0; q < b.cols(); ++q) {
                    k(i * b.rows() + p, j * b.cols() + q) = aij * b(p, q);
                }
            }
        }
    }
    return k;
}

double
dot(const float* x, const float* y, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    }
    return acc;
}

double
l2Norm(const float* x, std::size_t n)
{
    return std::sqrt(dot(x, x, n));
}

std::vector<double>
l2NormRows(const Matrix& m)
{
    std::vector<double> norms(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        norms[r] = std::sqrt(dot(m.row(r), m.row(r), m.cols()));
    }
    return norms;
}

void
softmaxInPlace(std::vector<double>& row)
{
    ELSA_CHECK(!row.empty(), "softmax of empty row");
    const double max_val = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (auto& v : row) {
        v = std::exp(v - max_val);
        sum += v;
    }
    for (auto& v : row) {
        v /= sum;
    }
}

std::vector<double>
softmax(const std::vector<double>& row)
{
    std::vector<double> out = row;
    softmaxInPlace(out);
    return out;
}

Matrix
reshapeToMatrix(const std::vector<float>& x, std::size_t r, std::size_t c)
{
    ELSA_CHECK(x.size() == r * c,
               "reshape size mismatch: " << x.size() << " != " << r << "x"
                                         << c);
    return Matrix(r, c, x);
}

std::vector<float>
flatten(const Matrix& m)
{
    return std::vector<float>(m.data(), m.data() + m.size());
}

double
maxAbsDiff(const Matrix& a, const Matrix& b)
{
    ELSA_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "maxAbsDiff shape mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        worst = std::max(
            worst, std::abs(static_cast<double>(a.data()[i])
                            - static_cast<double>(b.data()[i])));
    }
    return worst;
}

double
frobeniusDiff(const Matrix& a, const Matrix& b)
{
    ELSA_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "frobeniusDiff shape mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a.data()[i])
                         - static_cast<double>(b.data()[i]);
        acc += d * d;
    }
    return std::sqrt(acc);
}

double
frobeniusNorm(const Matrix& a)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        acc += static_cast<double>(a.data()[i])
               * static_cast<double>(a.data()[i]);
    }
    return std::sqrt(acc);
}

} // namespace elsa
