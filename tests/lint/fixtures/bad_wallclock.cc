// elsa-lint-pretend: src/sim/bad_wallclock.cc
// Known-bad fixture: every banned nondeterminism source in result-
// affecting code. Each marked line must raise no-wallclock.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace elsa {

double
badSeed()
{
    auto t0 = std::chrono::steady_clock::now();              // BAD
    auto t1 = std::chrono::high_resolution_clock::now();     // BAD
    std::time_t stamp = time(nullptr);                       // BAD
    int r = std::rand();                                     // BAD
    std::random_device entropy;                              // BAD
    const char* env = std::getenv("ELSA_SECRET_KNOB");       // BAD
    (void)t0;
    (void)t1;
    (void)env;
    return static_cast<double>(stamp) + r + entropy();
}

} // namespace elsa
