#ifndef ELSA_OBS_PROFILE_H_
#define ELSA_OBS_PROFILE_H_

/**
 * @file
 * Scoped wall-clock profiling hooks for the host-side software path
 * (SRP hashing, norm computation, threshold learning -- the parts of
 * ELSA that run on the host rather than in the cycle simulator).
 *
 *     void SrpHasher::hashRows(...) {
 *         ELSA_PROF_SCOPE("lsh.hash_rows");
 *         ...
 *     }
 *
 * Each scope feeds a Distribution named `host.<scope>.seconds` in
 * the global StatsRegistry. Profiling is off by default: a disabled
 * scope costs a single branch on a cached flag and takes no clock
 * reading, so the hooks can live in hot paths permanently. Enable
 * with ELSA_PROF=1 in the environment or setProfilingEnabled(true).
 *
 * Wall-clock numbers are for finding host-side hot spots; they are
 * intentionally kept out of the simulated-cycle statistics.
 */

#include <chrono>

namespace elsa::obs {

/** True when ELSA_PROF_SCOPE timers record. Cached from ELSA_PROF. */
bool profilingEnabled();

/** Override the ELSA_PROF environment setting. */
void setProfilingEnabled(bool enabled);

/** RAII timer behind ELSA_PROF_SCOPE; use the macro, not this. */
class ScopedTimer
{
  public:
    /** @param scope Metric infix; must outlive the timer (literal). */
    explicit ScopedTimer(const char* scope)
        : scope_(scope), active_(profilingEnabled())
    {
        if (active_) {
            // elsa-lint: allow(no-wallclock): host profiling measures real elapsed time by definition; feeds only host.* metrics, never simulated results
            start_ = std::chrono::steady_clock::now();
        }
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer()
    {
        if (active_) {
            record();
        }
    }

  private:
    /** Out-of-line slow path: clock read + registry update. */
    void record() const;

    const char* scope_;
    bool active_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace elsa::obs

#define ELSA_PROF_CONCAT2(a, b) a##b
#define ELSA_PROF_CONCAT(a, b) ELSA_PROF_CONCAT2(a, b)

/** Time this lexical scope into host.<name>.seconds when enabled. */
#define ELSA_PROF_SCOPE(name)                                               \
    ::elsa::obs::ScopedTimer ELSA_PROF_CONCAT(elsa_prof_scope_,             \
                                              __LINE__)(name)

#endif // ELSA_OBS_PROFILE_H_
