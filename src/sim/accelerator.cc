#include "sim/accelerator.h"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <string>

#include "common/bits.h"
#include "fault/fault.h"
#include "fixed/saturation.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/candidate_stage.h"
#include "sim/pipeline_model.h"
#include "sim/report.h"

namespace elsa {

namespace {

/** Trace thread ids: fixed module lanes, then one lane per bank. */
constexpr std::uint32_t kTidHash = 0;
constexpr std::uint32_t kTidNorm = 1;
constexpr std::uint32_t kTidDivision = 2;
constexpr std::uint32_t kTidBank0 = 3;

/** "q<i> <suffix>" without operator+ chains (GCC 12 -Wrestrict). */
std::string
queryEventName(std::size_t query, const char* suffix)
{
    std::string name = "q";
    name += std::to_string(query);
    name += ' ';
    name += suffix;
    return name;
}

/** "stall.<module>.<cause>" counter-track name. */
std::string
stallTrackName(AttributedModule module, StallCause cause)
{
    std::string name = "stall.";
    name += attributedModuleMetricName(module);
    name += '.';
    name += stallCauseMetricName(cause);
    return name;
}

/**
 * Trace timestamps of one query's span flow events (hash start, the
 * critical bank's scan start, division start). Buffered during the
 * query loop so only the exemplar queries chosen at finalize() emit
 * flow arrows into the trace.
 */
struct SpanFlowPoint
{
    std::uint64_t hash_ts = 0;
    std::uint64_t scan_ts = 0;
    std::uint64_t div_ts = 0;
    std::uint32_t bank = 0;
};

/** Per-bank inputs to the stall attribution of one query. */
struct BankAttribution
{
    bool active = false;
    std::uint64_t cycles = 0;
    std::uint64_t grants = 0;
    std::uint64_t scan = 0;
    std::uint64_t conflict = 0;
    std::uint64_t drained = 0;
};

/**
 * Apply a plan's silent faults to the preprocessed state. Detected
 * words are repaired by the modeled re-fetch (their cost is charged
 * as fault_retry stall cycles) and corrected words are repaired in
 * line, so only silent faults perturb values. LUT faults corrupt
 * per-run copies of the units; the model's pristine units are never
 * touched (Accelerator::run is const and shared across threads).
 */
void
applySilentFaults(const FaultPlan& plan, FunctionalContext& ctx,
                  const FunctionalModel& functional)
{
    const std::size_t n = ctx.input.n();
    const std::size_t d = ctx.input.d();
    std::shared_ptr<ExpUnit> exp_copy;
    std::shared_ptr<ReciprocalUnit> recip_copy;
    for (const WordFault& fault : plan.faults()) {
        if (fault.outcome != FaultOutcome::kSilent) {
            continue;
        }
        switch (fault.target) {
        case FaultTarget::kKeyHashMemory: {
            ELSA_ASSERT(fault.word < n, "hash fault word out of range");
            for (const std::uint8_t bit : fault.bits) {
                ctx.key_hashes.flipBit(fault.word, bit);
            }
            break;
        }
        case FaultTarget::kKeyNormMemory: {
            ELSA_ASSERT(fault.word < n, "norm fault word out of range");
            double norm = ctx.key_norms[fault.word];
            for (const std::uint8_t bit : fault.bits) {
                norm = flipFixedPointBit(norm, 4, 3, bit);
            }
            // max_norm stays pristine: the hardware computes it into a
            // register as norms stream in, before SRAM faults strike.
            ctx.key_norms[fault.word] = norm;
            break;
        }
        case FaultTarget::kKeyValueMemory: {
            // Words [0, n*d) are the key matrix, [n*d, 2*n*d) the
            // value matrix, row-major, one S5.3 element per word.
            ELSA_ASSERT(fault.word < 2 * n * d,
                        "key/value fault word out of range");
            const std::size_t element = fault.word % (n * d);
            Matrix& m = fault.word < n * d ? ctx.input.key
                                           : ctx.input.value;
            float* row = m.row(element / d);
            double value = static_cast<double>(row[element % d]);
            for (const std::uint8_t bit : fault.bits) {
                value = flipFixedPointBit(value, 5, 3, bit);
            }
            row[element % d] = static_cast<float>(value);
            break;
        }
        case FaultTarget::kLutTables: {
            // Words [0, 32) are the exp LUT, [32, 64) the reciprocal
            // LUT; corrupt a lazily-made copy of the affected unit.
            const int word = static_cast<int>(fault.word);
            if (word < ExpUnit::kLutSize) {
                if (!exp_copy) {
                    exp_copy = std::make_shared<ExpUnit>(
                        functional.expUnit());
                }
                double entry = exp_copy->lutEntry(word);
                for (const std::uint8_t bit : fault.bits) {
                    entry = flipLutFractionBit(entry, bit);
                }
                exp_copy->corruptEntry(word, entry);
            } else {
                const int index = word - ExpUnit::kLutSize;
                if (!recip_copy) {
                    recip_copy = std::make_shared<ReciprocalUnit>(
                        functional.reciprocalUnit());
                }
                double entry = recip_copy->lutEntry(index);
                for (const std::uint8_t bit : fault.bits) {
                    entry = flipLutFractionBit(entry, bit);
                }
                recip_copy->corruptEntry(index, entry);
            }
            break;
        }
        }
    }
    ctx.faulted_exp = std::move(exp_copy);
    ctx.faulted_recip = std::move(recip_copy);
}

} // namespace

double
RunResult::candidateFraction() const
{
    if (candidates_per_query.empty()) {
        return 0.0;
    }
    std::size_t total = 0;
    for (const auto c : candidates_per_query) {
        total += c;
    }
    const double n = static_cast<double>(candidates_per_query.size());
    return static_cast<double>(total) / (n * n);
}

Accelerator::Accelerator(SimConfig config,
                         std::shared_ptr<const SrpHasher> hasher,
                         double theta_bias)
    : config_(config),
      functional_(config, std::move(hasher), theta_bias)
{
    config_.validate();
}

void
Accelerator::attachStats(obs::StatsRegistry* registry,
                         std::string prefix)
{
    stats_ = registry;
    stats_prefix_ = std::move(prefix);
}

void
Accelerator::attachTrace(obs::TraceWriter* trace, std::uint32_t pid)
{
    trace_ = trace;
    trace_pid_ = pid;
    if (trace_ == nullptr || !trace_->enabled()) {
        return;
    }
    std::string process = "elsa.accel";
    process += std::to_string(trace_pid_);
    trace_->processName(trace_pid_, process);
    trace_->threadName(trace_pid_, kTidHash, "hash computation");
    trace_->threadName(trace_pid_, kTidNorm, "norm computation");
    trace_->threadName(trace_pid_, kTidDivision, "output division");
    for (std::size_t b = 0; b < config_.pa; ++b) {
        std::string lane = "bank ";
        lane += std::to_string(b);
        lane += " (candidate scan + attention)";
        trace_->threadName(trace_pid_,
                           kTidBank0 + static_cast<std::uint32_t>(b),
                           lane);
    }
}

RunResult
Accelerator::run(const AttentionInput& input, double threshold) const
{
    input.validate();
    const std::size_t n = input.n();
    const std::size_t d = config_.d;
    const std::size_t pa = config_.pa;
    const std::size_t keys_per_bank = ceilDiv(n, pa);

    RunResult result;
    result.output = Matrix(n, d);
    result.candidates_per_query.resize(n);
    if (config_.collect_query_trace) {
        result.query_candidates.resize(n);
    }

    // Pipeline tracing is opt-in twice over (config flag + attached
    // writer) and, when off, costs exactly this branch per run.
    const bool tracing =
        config_.emit_trace && trace_ != nullptr && trace_->enabled();

    // Datapath saturation counting (fixed/saturation.h): a counter
    // struct is attached to this thread for the run's duration; with
    // the flag off the hook stays detached and counts nothing.
    SaturationCounters saturation;
    std::optional<SaturationScope> saturation_scope;
    if (config_.count_saturations) {
        saturation_scope.emplace(&saturation);
    }

    // ---- Preprocessing phase (Section IV-C (2)) ----
    FunctionalContext ctx = functional_.preprocess(input);

    // ---- Fault injection (fault/fault.h, docs/ROBUSTNESS.md) ----
    // The plan depends only on (config, geometry), never on execution
    // order, so faulted runs are bit-reproducible at any thread
    // count. Faults strike the SRAMs after preprocessing fills them.
    if (config_.fault.enabled && config_.fault.bit_error_rate > 0.0) {
        FaultGeometry geometry;
        geometry.n = n;
        geometry.k = config_.k;
        geometry.d = config_.d;
        geometry.lut_words =
            ExpUnit::kLutSize + ReciprocalUnit::kLutSize;
        const FaultPlan plan =
            FaultPlan::build(config_.fault, geometry);
        applySilentFaults(plan, ctx, functional_);
        result.fault.enabled = true;
        result.fault.counts = plan.counts();
        result.fault.retry_stall_cycles =
            plan.retryStallCycles(config_.fault);
    }
    const std::size_t hash_per_vec = hashCyclesPerVector(config_);
    result.preprocess_cycles = preprocessingCycles(config_, n);

    // ---- Telemetry time series (obs/timeseries.h) ----
    // Opt-in binned recording of the same quantities attribution and
    // the energy model already compute, spread over cycle bins. The
    // helpers below are the single source of the arithmetic, so the
    // bins conserve against the totals exactly; when telemetry is
    // off (the default), ts stays null and they reduce to the plain
    // accumulators.
    obs::TimeSeries* ts = nullptr;
    std::array<std::array<std::size_t, kNumStallCauses>,
               kNumAttributedModules>
        stall_ch{};
    std::array<std::size_t, 9> activity_ch{};
    std::size_t queue_ch = 0;
    std::size_t queries_ch = 0;
    if (config_.telemetry.enabled) {
        result.telemetry = std::make_shared<obs::TimeSeries>(
            config_.telemetry.bin_width_cycles);
        ts = result.telemetry.get();
        for (const AttributedModule module : allAttributedModules()) {
            for (const StallCause cause : allStallCauses()) {
                // Mirror the stats gating: fault_retry channels only
                // exist when fault injection can make them nonzero.
                if (cause == StallCause::kFaultRetry
                    && !config_.fault.enabled) {
                    continue;
                }
                stall_ch[static_cast<std::size_t>(module)]
                        [static_cast<std::size_t>(cause)] =
                    ts->channel(stallTrackName(module, cause));
            }
        }
        for (const HwModule module : allHwModules()) {
            std::string name = "activity.";
            name += hwModuleMetricName(module);
            activity_ch[static_cast<std::size_t>(module)] =
                ts->channel(name);
        }
        queue_ch = ts->channel("queue.occupancy_cycles");
        queries_ch = ts->channel("queries.completed");
    }

    // ---- Per-query lifecycle spans (obs/span.h) ----
    // Opt-in exact decomposition of every query's end-to-end cycles
    // into per-stage queue-wait / service / stall components; like
    // attribution and telemetry it is post-hoc arithmetic that never
    // perturbs the simulated timing, and when off (the default) the
    // pointer stays null and nothing is allocated or published.
    obs::QuerySpanSet* spans = nullptr;
    if (config_.query_spans.enabled) {
        std::vector<std::string> stage_names;
        std::vector<std::string> cause_names;
        for (const AttributedModule module : allAttributedModules()) {
            stage_names.emplace_back(
                attributedModuleMetricName(module));
        }
        for (const StallCause cause : allStallCauses()) {
            cause_names.emplace_back(stallCauseMetricName(cause));
        }
        result.spans = std::make_shared<obs::QuerySpanSet>(
            std::move(stage_names), std::move(cause_names));
        spans = result.spans.get();
    }
    std::vector<SpanFlowPoint> span_flow;

    const auto attributeSpan =
        [&result, ts, &stall_ch](AttributedModule module,
                                 StallCause cause,
                                 std::uint64_t lane_cycles,
                                 std::uint64_t begin,
                                 std::uint64_t end) {
            result.stall_breakdown.add(module, cause, lane_cycles);
            if (ts != nullptr) {
                ts->addSpread(
                    stall_ch[static_cast<std::size_t>(module)]
                            [static_cast<std::size_t>(cause)],
                    begin, end, lane_cycles);
            }
        };
    const auto addActivity =
        [&result, ts, &activity_ch](HwModule module, double cycles,
                                    std::uint64_t begin,
                                    std::uint64_t end) {
            result.activity.add(module, cycles);
            if (ts != nullptr) {
                ts->addSpreadReal(
                    activity_ch[static_cast<std::size_t>(module)],
                    begin, end, cycles);
            }
        };
    const std::uint64_t pre_end = result.preprocess_cycles;

    // Hash module: n key hashes + the first query hash.
    addActivity(HwModule::kHashComputation,
                static_cast<double>(hash_per_vec * (n + 1)), 0,
                pre_end);
    // Norm module and the attention multipliers it borrows: one key
    // dot product per attention module per cycle.
    const double norm_cycles =
        static_cast<double>(ceilDiv(n, pa));
    addActivity(HwModule::kNormComputation, static_cast<double>(n),
                0, pre_end);
    addActivity(HwModule::kAttentionCompute, norm_cycles, 0, pre_end);
    // SRAM traffic of the preprocessing phase: key/value reads for
    // hashing and norms, key hash/norm writes.
    addActivity(HwModule::kKeyValueMemory, norm_cycles, 0, pre_end);
    addActivity(HwModule::kKeyHashMemory,
                static_cast<double>(n) / (pa * config_.pc), 0,
                pre_end);
    addActivity(HwModule::kKeyNormMemory,
                static_cast<double>(n) / (pa * config_.pc), 0,
                pre_end);

    if (tracing) {
        trace_->completeEvent("preprocess: hash keys+q0", "preprocess",
                              trace_pid_, kTidHash, 0,
                              result.preprocess_cycles);
        trace_->completeEvent("preprocess: key norms", "preprocess",
                              trace_pid_, kTidNorm, 0,
                              static_cast<std::uint64_t>(norm_cycles));
    }

    // ---- Stall attribution of the preprocessing phase ----
    // Attribution is post-hoc arithmetic over already-simulated
    // quantities (see sim/stall.h); with the flag off this whole
    // layer costs one branch per run plus one per query.
    const bool attribute = config_.attribute_stalls;
    StallBreakdown& causes = result.stall_breakdown;
    if (attribute) {
        const std::uint64_t pre = result.preprocess_cycles;
        // Hash module: n key hashes + the first query hash; any
        // remainder of the phase it sits on a finished hash waiting
        // for execution to start draining its buffer.
        const std::uint64_t hash_busy =
            static_cast<std::uint64_t>(hash_per_vec) * (n + 1);
        attributeSpan(AttributedModule::kHash, StallCause::kBusy,
                      hash_busy, 0, pre);
        attributeSpan(AttributedModule::kHash,
                      StallCause::kBackpressured, pre - hash_busy, 0,
                      pre);
        // Norm module: occupied until its pipeline drains, then done
        // for the whole run.
        const std::uint64_t norm_busy =
            static_cast<std::uint64_t>(ceilDiv(n, pa))
            + config_.attention_pipeline_latency;
        attributeSpan(AttributedModule::kNorm, StallCause::kBusy,
                      norm_busy, 0, pre);
        attributeSpan(AttributedModule::kNorm, StallCause::kDrained,
                      pre - norm_busy, 0, pre);
        // The attention multipliers compute one key dot product per
        // key for the norms; otherwise the execution-phase modules
        // wait for the first query.
        attributeSpan(AttributedModule::kAttention, StallCause::kBusy,
                      n, 0, pre);
        attributeSpan(AttributedModule::kAttention,
                      StallCause::kStarved,
                      static_cast<std::uint64_t>(pa) * pre - n, 0,
                      pre);
        attributeSpan(AttributedModule::kCandidateSelection,
                      StallCause::kStarved,
                      static_cast<std::uint64_t>(pa * config_.pc)
                          * pre,
                      0, pre);
        attributeSpan(AttributedModule::kArbitration,
                      StallCause::kStarved,
                      static_cast<std::uint64_t>(pa) * pre, 0, pre);
        attributeSpan(AttributedModule::kOutputDivision,
                      StallCause::kStarved, pre, 0, pre);
    }
    // Per-bank attribution inputs, reused across queries; cumulative
    // counters already emitted to the trace (for delta detection).
    std::vector<BankAttribution> bank_attr(attribute ? pa : 0);
    StallBreakdown traced_causes;

    // ---- Execution phase ----
    const std::size_t division_cycles = divisionCyclesPerQuery(config_);
    std::size_t exec_cycles = 0;
    // Pipeline-time cursor: start of the current query's interval
    // (feeds both trace timestamps and telemetry spans).
    std::uint64_t cursor = result.preprocess_cycles;

    std::vector<std::vector<std::uint32_t>> bank_grants(pa);
    // The previous query's interval bounds this query's span
    // queue-wait (its hash overlapped that interval).
    std::size_t prev_interval = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const HashView query_hash = ctx.query_hashes[i];

        std::size_t total_candidates = 0;
        std::size_t max_bank_cycles = 0;
        std::size_t query_stalls = 0;
        std::size_t query_occupancy = 0;
        double scanned_keys = 0.0;
        // Critical bank of the span decomposition: the bank holding
        // max_bank_cycles open (ties -> lowest index).
        std::size_t crit_bank = 0;
        std::size_t crit_keys = 0;
        std::size_t crit_scan_done = 0;
        for (std::size_t b = 0; b < pa; ++b) {
            const std::size_t begin = b * keys_per_bank;
            const std::size_t end =
                std::min(n, begin + keys_per_bank);
            bank_grants[b].clear();
            if (attribute) {
                bank_attr[b] = BankAttribution{};
            }
            if (begin >= end) {
                continue;
            }
            const std::vector<bool> hits = functional_.bankHits(
                ctx, query_hash, begin, end, threshold);
            const BankQueryTrace trace =
                simulateBankQuery(hits, config_);
            for (const auto local : trace.grant_order) {
                bank_grants[b].push_back(
                    static_cast<std::uint32_t>(begin + local));
            }
            total_candidates += trace.grant_order.size();
            result.stall_cycles += trace.stall_cycles;
            query_stalls += trace.stall_cycles;
            query_occupancy += trace.queue_occupancy_cycles;
            scanned_keys += static_cast<double>(trace.scan_cycles);
            if (spans != nullptr && trace.cycles > max_bank_cycles) {
                crit_bank = b;
                crit_keys = end - begin;
                crit_scan_done = trace.scan_done_cycle;
            }
            max_bank_cycles = std::max(max_bank_cycles, trace.cycles);
            if (attribute) {
                bank_attr[b] = {true, trace.cycles,
                                trace.grant_order.size(),
                                trace.scan_cycles, trace.stall_cycles,
                                trace.drained_module_cycles};
            }
            if (tracing) {
                trace_->completeEvent(
                    queryEventName(i, "scan"), "execute", trace_pid_,
                    kTidBank0 + static_cast<std::uint32_t>(b), cursor,
                    trace.cycles);
            }
        }

        bool used_fallback = false;
        std::uint32_t fallback_bank = 0;
        if (total_candidates == 0) {
            // Fallback: use the key with the highest approximate
            // similarity so the output row stays defined.
            ++result.empty_selections;
            used_fallback = true;
            const std::uint32_t best = functional_.bestKey(ctx,
                                                           query_hash);
            fallback_bank =
                static_cast<std::uint32_t>(best / keys_per_bank);
            bank_grants[fallback_bank].push_back(best);
            total_candidates = 1;
        }
        result.candidates_per_query[i] = total_candidates;
        if (config_.collect_query_trace) {
            std::vector<std::uint32_t>& ids = result.query_candidates[i];
            for (std::size_t b = 0; b < pa; ++b) {
                ids.insert(ids.end(), bank_grants[b].begin(),
                           bank_grants[b].end());
            }
        }

        // Pipeline interval of this query (Fig. 9): the banked scan
        // plus attention drain, the (overlapped) hash of the next
        // query, and the (overlapped) division of the previous one.
        const std::size_t bank_time =
            max_bank_cycles + config_.attention_pipeline_latency;
        const std::size_t interval =
            std::max({bank_time, hash_per_vec, division_cycles});
        exec_cycles += interval;

        // ---- Per-query span record ----
        // Exact telescoping decomposition of the query's lifecycle
        // [entry, exit): its hash overlaps the previous interval
        // (entry = that interval's start; query 0 hashes at the end
        // of preprocessing), the critical bank's scan splits into
        // minimum scan time plus backpressure delay plus arbiter
        // drain-out, attention adds its hand-off latency, and the
        // division lands in the next interval. Each component is the
        // gap between two pipeline timestamps, so the integer sum
        // equals exit - entry exactly (asserted in obs/span.h).
        if (spans != nullptr) {
            const std::size_t base_scan =
                ceilDiv(crit_keys, config_.pc);
            obs::QuerySpanRecord record;
            record.query = i;
            record.entry_cycle =
                i == 0 ? static_cast<std::uint64_t>(
                             result.preprocess_cycles - hash_per_vec)
                       : cursor - prev_interval;
            record.exit_cycle = cursor + interval + division_cycles;
            record.tag = crit_bank;
            record.stages.resize(kNumAttributedModules);
            for (obs::StageSpan& stage : record.stages) {
                stage.stall.assign(kNumStallCauses, 0);
            }
            record.stages[static_cast<std::size_t>(
                              AttributedModule::kHash)]
                .service = hash_per_vec;
            obs::StageSpan& select =
                record.stages[static_cast<std::size_t>(
                    AttributedModule::kCandidateSelection)];
            select.queue_wait =
                i == 0 ? 0 : prev_interval - hash_per_vec;
            select.service = base_scan;
            select.stall[static_cast<std::size_t>(
                StallCause::kBankConflict)] =
                crit_scan_done - base_scan;
            record.stages[static_cast<std::size_t>(
                              AttributedModule::kArbitration)]
                .service = max_bank_cycles - crit_scan_done;
            record.stages[static_cast<std::size_t>(
                              AttributedModule::kAttention)]
                .service = config_.attention_pipeline_latency;
            obs::StageSpan& division =
                record.stages[static_cast<std::size_t>(
                    AttributedModule::kOutputDivision)];
            division.queue_wait = interval - bank_time;
            division.service = division_cycles;
            if (tracing) {
                span_flow.push_back(
                    {record.entry_cycle, cursor, cursor + interval,
                     static_cast<std::uint32_t>(crit_bank)});
            }
            spans->addRecord(std::move(record));
        }

        if (attribute) {
            const std::uint64_t iv = interval;
            const std::uint64_t iv_end = cursor + iv;
            const std::uint64_t latency =
                config_.attention_pipeline_latency;
            // Hash module: overlaps the next query's hash, then waits
            // for the slower stage holding the interval open; after
            // the last query there is nothing left to hash.
            if (i + 1 < n) {
                attributeSpan(AttributedModule::kHash,
                              StallCause::kBusy, hash_per_vec,
                              cursor, iv_end);
                attributeSpan(AttributedModule::kHash,
                              StallCause::kBackpressured,
                              iv - hash_per_vec, cursor, iv_end);
            } else {
                attributeSpan(AttributedModule::kHash,
                              StallCause::kDrained, iv, cursor,
                              iv_end);
            }
            // Norm module: all of its work happened in preprocessing.
            attributeSpan(AttributedModule::kNorm,
                          StallCause::kDrained, iv, cursor, iv_end);
            for (std::size_t b = 0; b < pa; ++b) {
                const BankAttribution& bank = bank_attr[b];
                if (!bank.active) {
                    attributeSpan(AttributedModule::kCandidateSelection,
                                  StallCause::kStarved,
                                  config_.pc * iv, cursor, iv_end);
                    attributeSpan(AttributedModule::kArbitration,
                                  StallCause::kStarved, iv, cursor,
                                  iv_end);
                    attributeSpan(AttributedModule::kAttention,
                                  StallCause::kStarved, iv, cursor,
                                  iv_end);
                    continue;
                }
                // Candidate modules: scanning is work, a full queue
                // is a bank conflict (P_c modules vs one grant port),
                // done-scanning-while-queues-drain is drain-out, and
                // after the bank finishes it waits for the next query
                // gated by the slowest bank.
                attributeSpan(AttributedModule::kCandidateSelection,
                              StallCause::kBusy, bank.scan, cursor,
                              iv_end);
                attributeSpan(AttributedModule::kCandidateSelection,
                              StallCause::kBankConflict,
                              bank.conflict, cursor, iv_end);
                attributeSpan(AttributedModule::kCandidateSelection,
                              StallCause::kDrained, bank.drained,
                              cursor, iv_end);
                attributeSpan(AttributedModule::kCandidateSelection,
                              StallCause::kStarved,
                              config_.pc * (iv - bank.cycles),
                              cursor, iv_end);
                // Arbiter: one grant per cycle when any queue holds a
                // candidate; otherwise it waits on the scanners.
                attributeSpan(AttributedModule::kArbitration,
                              StallCause::kBusy, bank.grants, cursor,
                              iv_end);
                attributeSpan(AttributedModule::kArbitration,
                              StallCause::kStarved, iv - bank.grants,
                              cursor, iv_end);
                // Attention module: one granted candidate per cycle
                // plus the pipeline drain hand-off.
                const std::uint64_t attention_busy =
                    bank.grants > 0 ? bank.grants + latency
                                    : bank.grants;
                attributeSpan(AttributedModule::kAttention,
                              StallCause::kBusy, attention_busy,
                              cursor, iv_end);
                attributeSpan(AttributedModule::kAttention,
                              StallCause::kStarved,
                              iv - attention_busy, cursor, iv_end);
            }
            // Output division: works on the previous query's row; the
            // first interval has nothing to divide yet.
            if (i == 0) {
                attributeSpan(AttributedModule::kOutputDivision,
                              StallCause::kStarved, iv, cursor,
                              iv_end);
            } else {
                attributeSpan(AttributedModule::kOutputDivision,
                              StallCause::kBusy, division_cycles,
                              cursor, iv_end);
                attributeSpan(AttributedModule::kOutputDivision,
                              StallCause::kStarved,
                              iv - division_cycles, cursor, iv_end);
            }
        }

        // Telemetry-only channels: queue depth integral over the
        // interval and a completion mark in the interval's last bin.
        if (ts != nullptr) {
            ts->addSpread(queue_ch, cursor, cursor + interval,
                          query_occupancy);
            const std::uint64_t last =
                interval > 0 ? cursor + interval - 1 : cursor;
            ts->addAt(queries_ch, last, 1.0);
        }

        if (tracing) {
            if (used_fallback) {
                trace_->instantEvent("fallback", trace_pid_,
                                     kTidBank0 + fallback_bank,
                                     cursor);
            }
            if (i + 1 < n) {
                // The next query's hash overlaps this interval.
                trace_->completeEvent(queryEventName(i + 1, "hash"),
                                      "execute", trace_pid_, kTidHash,
                                      cursor, hash_per_vec);
            }
            // This query's output division drains during the next
            // interval (or the tail after the last query).
            trace_->completeEvent(queryEventName(i, "divide"),
                                  "execute", trace_pid_, kTidDivision,
                                  cursor + interval, division_cycles);
            trace_->counterEvent("candidates", trace_pid_, cursor,
                                 static_cast<double>(total_candidates));
            trace_->counterEvent("stall cycles", trace_pid_, cursor,
                                 static_cast<double>(query_stalls));
            // Cumulative per-lane cause counters, one Perfetto track
            // per (module, cause); emitted only on change to bound
            // the event count.
            if (attribute) {
                for (const AttributedModule module :
                     allAttributedModules()) {
                    for (const StallCause cause : allStallCauses()) {
                        const std::uint64_t now =
                            causes.get(module, cause);
                        if (now == traced_causes.get(module, cause)) {
                            continue;
                        }
                        trace_->counterEvent(
                            stallTrackName(module, cause), trace_pid_,
                            cursor + interval,
                            static_cast<double>(now));
                    }
                }
                traced_causes = causes;
            }
        }

        if (config_.collect_query_trace) {
            result.query_trace.push_back(
                {i, interval, max_bank_cycles, total_candidates,
                 query_stalls, used_fallback});
        }

        // Activity: candidate modules and the hash/norm SRAMs they
        // read run for the scanned keys; the attention modules and
        // the key/value SRAM run one cycle per granted candidate.
        const std::uint64_t iv_end = cursor + interval;
        const double group_scan = scanned_keys
                                  / static_cast<double>(pa * config_.pc);
        addActivity(HwModule::kCandidateSelection, group_scan, cursor,
                    iv_end);
        addActivity(HwModule::kKeyHashMemory, group_scan, cursor,
                    iv_end);
        addActivity(HwModule::kKeyNormMemory, group_scan, cursor,
                    iv_end);
        const double attention_cycles =
            static_cast<double>(total_candidates)
            / static_cast<double>(pa);
        addActivity(HwModule::kAttentionCompute, attention_cycles,
                    cursor, iv_end);
        addActivity(HwModule::kKeyValueMemory, attention_cycles,
                    cursor, iv_end);
        addActivity(HwModule::kOutputDivision,
                    static_cast<double>(division_cycles), cursor,
                    iv_end);
        // Query read + output write traffic.
        addActivity(HwModule::kQueryOutputMemory,
                    1.0 + static_cast<double>(division_cycles),
                    cursor, iv_end);
        // The hash module computes the next query's hash during this
        // interval.
        if (i + 1 < n) {
            addActivity(HwModule::kHashComputation,
                        static_cast<double>(hash_per_vec), cursor,
                        iv_end);
        }

        // ---- Functional output ----
        const QueryOutput out =
            functional_.computeQueryOutput(ctx, i, bank_grants);
        std::copy(out.row.begin(), out.row.end(), result.output.row(i));

        cursor += interval;
        prev_interval = interval;
    }

    // Tail: the last query's output division drains after the loop.
    result.execute_cycles = exec_cycles + division_cycles;

    // Detected faults freeze the whole pipeline while their words are
    // re-fetched: one global bubble of retry_events x retry_cycles,
    // conservatively serialized (no overlap with useful work), and
    // charged to every module as fault_retry lane cycles below. Zero
    // whenever SimConfig::fault is disabled.
    const std::uint64_t retry_bubble = result.fault.retry_stall_cycles;
    result.execute_cycles += static_cast<std::size_t>(retry_bubble);

    if (attribute) {
        // Everything but the divider has finished when the tail
        // starts (the cursor sits at the end of the last interval).
        const std::uint64_t tail = division_cycles;
        const std::uint64_t tail_end = cursor + tail;
        attributeSpan(AttributedModule::kOutputDivision,
                      StallCause::kBusy, tail, cursor, tail_end);
        attributeSpan(AttributedModule::kHash, StallCause::kDrained,
                      tail, cursor, tail_end);
        attributeSpan(AttributedModule::kNorm, StallCause::kDrained,
                      tail, cursor, tail_end);
        attributeSpan(AttributedModule::kCandidateSelection,
                      StallCause::kDrained,
                      static_cast<std::uint64_t>(pa * config_.pc)
                          * tail,
                      cursor, tail_end);
        attributeSpan(AttributedModule::kArbitration,
                      StallCause::kDrained,
                      static_cast<std::uint64_t>(pa) * tail, cursor,
                      tail_end);
        attributeSpan(AttributedModule::kAttention,
                      StallCause::kDrained,
                      static_cast<std::uint64_t>(pa) * tail, cursor,
                      tail_end);
        if (retry_bubble > 0) {
            for (const AttributedModule module :
                 allAttributedModules()) {
                attributeSpan(module, StallCause::kFaultRetry,
                              attributedModuleLanes(module, config_)
                                  * retry_bubble,
                              tail_end, tail_end + retry_bubble);
            }
        }
        // The hard conservation invariant of sim/stall.h; also
        // enforced (in every build type) by the attribution tests.
        ELSA_DASSERT(causes.conserves(result.totalCycles(), config_),
                     "stall-cause lane cycles do not sum to "
                         << result.totalCycles() << " total cycles");
    }

    if (spans != nullptr) {
        // The global retry bubble extends the last query's lifetime;
        // charge it where the run-level counters charge it too.
        if (retry_bubble > 0 && n > 0) {
            spans->addStallToLast(
                static_cast<std::size_t>(
                    AttributedModule::kOutputDivision),
                static_cast<std::size_t>(StallCause::kFaultRetry),
                retry_bubble);
        }
        spans->finalize(config_.query_spans.exemplar_count,
                        result.totalCycles());
        if (tracing) {
            // Flow arrows link each exemplar query's stages across
            // the trace lanes: hash -> critical-bank scan ->
            // division. The id is unique per (accelerator, query) so
            // arrays sharing one writer never cross-link.
            for (const obs::QuerySpanRecord& record :
                 spans->records()) {
                const SpanFlowPoint& fp = span_flow[record.query];
                const std::uint64_t id =
                    (static_cast<std::uint64_t>(trace_pid_) << 32)
                    | record.query;
                trace_->flowEvent("query span", "span", trace_pid_,
                                  kTidHash, fp.hash_ts, id, 's');
                trace_->flowEvent("query span", "span", trace_pid_,
                                  kTidBank0 + fp.bank, fp.scan_ts, id,
                                  't');
                trace_->flowEvent("query span", "span", trace_pid_,
                                  kTidDivision, fp.div_ts, id, 'f');
            }
        }
    }

    if (config_.count_saturations) {
        result.saturations_counted = true;
        result.fixed_saturations = saturation.fixed;
        result.cfloat_saturations = saturation.cfloat;
    }

    // Publish to the attached registry after the timing is final, so
    // instrumentation can never perturb the simulated cycle counts.
    if (stats_ != nullptr) {
        publishRunStats(result, *stats_, stats_prefix_);
    }
    return result;
}

} // namespace elsa
