#ifndef ELSA_SIM_CANDIDATE_STAGE_H_
#define ELSA_SIM_CANDIDATE_STAGE_H_

/**
 * @file
 * Cycle-accurate model of one bank's candidate selection stage
 * (Section IV-C (1)).
 *
 * Per bank, P_c fully-pipelined candidate selection modules each
 * process one key per cycle (module m handles the bank's keys with
 * local index congruent to m modulo P_c). A module that finds a
 * candidate pushes the key id into its finite output queue; when the
 * queue is full the module stalls. An arbiter with the
 * longest-queue-first policy forwards one candidate per cycle to the
 * bank's attention computation module.
 *
 * The stage finishes when every module has scanned all of its keys
 * and every queue has drained; the attention module then needs its
 * pipeline-drain latency on top (accounted by the Accelerator).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/config.h"

namespace elsa {

/** Result of simulating one (query, bank) candidate scan. */
struct BankQueryTrace
{
    /** Cycles until the scan completed and all queues drained. */
    std::size_t cycles = 0;

    /** Key ids (bank-local) in the order the arbiter granted them. */
    std::vector<std::uint32_t> grant_order;

    /** Total module-cycles lost to queue backpressure. */
    std::size_t stall_cycles = 0;

    /** Cycles the P_c modules spent scanning (for energy). */
    std::size_t scan_cycles = 0;

    /**
     * Cycle at which every module had scanned its last key (queues
     * may still be draining). Bounded by
     * ceil(keys / P_c) <= scan_done_cycle <= cycles; the slack over
     * the lower bound is backpressure delay, which the per-query
     * span decomposition charges as bank_conflict stall.
     */
    std::size_t scan_done_cycle = 0;

    /**
     * Module-cycles spent done-scanning while the bank's queues
     * drained out (the tail where a module has no keys left but the
     * arbiter is still emptying queues). Together with the above:
     * scan_cycles + stall_cycles + drained_module_cycles
     *   == P_c * cycles, exactly -- every module is in exactly one
     * state each bank cycle (the stall-attribution invariant).
     */
    std::size_t drained_module_cycles = 0;

    /**
     * Time integral of the bank's total output-queue occupancy:
     * the sum over bank cycles of entries queued at the end of the
     * cycle (occupancy-cycles). Divided by `cycles` this is the
     * mean queue depth; the telemetry layer bins it over time
     * (`queue.occupancy_cycles` channel).
     */
    std::size_t queue_occupancy_cycles = 0;
};

/**
 * Simulate the candidate selection stage of one bank for one query.
 *
 * @param hits   hits[j] is true when the bank's j-th key passes the
 *               threshold filter (selected as a candidate).
 * @param config Pipeline configuration (uses pc and queue_depth).
 */
BankQueryTrace simulateBankQuery(const std::vector<bool>& hits,
                                 const SimConfig& config);

} // namespace elsa

#endif // ELSA_SIM_CANDIDATE_STAGE_H_
