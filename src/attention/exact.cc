#include "attention/exact.h"

#include <cmath>

#include "tensor/ops.h"

namespace elsa {

void
AttentionInput::validate() const
{
    ELSA_CHECK(query.rows() == key.rows() && key.rows() == value.rows(),
               "Q/K/V row counts differ: " << query.rows() << "/"
                                           << key.rows() << "/"
                                           << value.rows());
    ELSA_CHECK(query.cols() == key.cols() && key.cols() == value.cols(),
               "Q/K/V column counts differ: " << query.cols() << "/"
                                              << key.cols() << "/"
                                              << value.cols());
    ELSA_CHECK(query.rows() > 0 && query.cols() > 0,
               "query/key/value matrices are empty");
}

Matrix
exactAttention(const AttentionInput& input,
               const ExactAttentionOptions& options)
{
    input.validate();
    const std::size_t n = input.n();
    const std::size_t d = input.d();
    Matrix output(n, d);
    std::vector<double> row;
    for (std::size_t i = 0; i < n; ++i) {
        const float* q = input.query.row(i);
        // Causal mode restricts query i to keys 0..i.
        const std::size_t limit = options.causal ? i + 1 : n;
        row.assign(limit, 0.0);
        for (std::size_t j = 0; j < limit; ++j) {
            row[j] = options.score_scale
                     * dot(q, input.key.row(j), d);
        }
        softmaxInPlace(row);
        float* out = output.row(i);
        for (std::size_t j = 0; j < limit; ++j) {
            const double w = row[j];
            const float* v = input.value.row(j);
            for (std::size_t c = 0; c < d; ++c) {
                out[c] += static_cast<float>(w * v[c]);
            }
        }
    }
    return output;
}

ExactAttentionTrace
exactAttentionTrace(const AttentionInput& input,
                    const ExactAttentionOptions& options)
{
    input.validate();
    const std::size_t n = input.n();
    const std::size_t d = input.d();
    ExactAttentionTrace trace;
    trace.output = Matrix(n, d);
    trace.scores.resize(n);
    trace.raw_scores.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float* q = input.query.row(i);
        const std::size_t limit = options.causal ? i + 1 : n;
        auto& raw = trace.raw_scores[i];
        raw.resize(limit);
        for (std::size_t j = 0; j < limit; ++j) {
            raw[j] = options.score_scale * dot(q, input.key.row(j), d);
        }
        trace.scores[i] = softmax(raw);
        float* out = trace.output.row(i);
        for (std::size_t j = 0; j < limit; ++j) {
            const double w = trace.scores[i][j];
            const float* v = input.value.row(j);
            for (std::size_t c = 0; c < d; ++c) {
                out[c] += static_cast<float>(w * v[c]);
            }
        }
    }
    return trace;
}

std::size_t
exactAttentionMacs(std::size_t n, std::size_t d)
{
    return 2 * n * n * d;
}

} // namespace elsa
