#ifndef ELSA_COMMON_RNG_H_
#define ELSA_COMMON_RNG_H_

/**
 * @file
 * Deterministic random number generation for ELSA.
 *
 * All randomness in the library flows through Rng so that every
 * experiment is exactly reproducible from a seed. The generator is
 * xoshiro256** seeded through splitmix64, which is fast, passes the
 * standard statistical batteries, and is trivially portable.
 */

#include <cstdint>
#include <vector>

namespace elsa {

/** Deterministic pseudo-random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Standard normal variate (Box-Muller with caching). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Vector of n standard normal variates. */
    std::vector<double> gaussianVector(std::size_t n);

    /**
     * Fork an independent child stream.
     *
     * Deriving per-layer / per-head streams from a parent keeps the
     * experiments reproducible no matter how many values each child
     * consumes.
     *
     * @param stream_id Identifier mixed into the child's seed.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::uint64_t state_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
    std::uint64_t seed_;
};

} // namespace elsa

#endif // ELSA_COMMON_RNG_H_
