#ifndef ELSA_SIM_REPORT_H_
#define ELSA_SIM_REPORT_H_

/**
 * @file
 * Post-run reporting utilities for the cycle-level simulator, built
 * on the observability layer: RunResult -> StatsRegistry publishing,
 * per-module utilization, per-query trace CSV export, and summary
 * statistics (the role a stats dump plays in a full-system
 * simulator).
 *
 * publishRunStats() is the single RunResult -> metrics mapping; the
 * utilization report and the JSON stats dump both read from it, so
 * the numbers in `stats.json` and in formatUtilization() can never
 * drift apart.
 */

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "obs/registry.h"
#include "sim/accelerator.h"

namespace elsa {

/**
 * Publish one run's counters into a stats registry under the given
 * prefix (e.g. "sim.accel0"):
 *
 *   <prefix>.cycles.{preprocess,execute,total}      counters
 *   <prefix>.<module>.active_cycles                 counters
 *   <prefix>.candidate.{stalls,fallbacks,selected}  counters
 *   <prefix>.invocations                            counter
 *   <prefix>.query.interval_cycles                  distribution*
 *   <prefix>.query.candidate_fraction               histogram*
 *
 * (* only when the run recorded a per-query trace.) Counters
 * accumulate across calls so an AcceleratorArray batch lands in one
 * coherent set of totals.
 */
void publishRunStats(const RunResult& result,
                     obs::StatsRegistry& registry,
                     const std::string& prefix);

/** Per-module utilization (active cycles / total cycles). */
struct UtilizationReport
{
    /** Utilization in [0, 1] per module, indexed like allHwModules(). */
    std::vector<double> utilization;

    UtilizationReport()
        : utilization(allHwModules().size(), 0.0)
    {
    }

    double get(HwModule module) const
    {
        return utilization[static_cast<std::size_t>(module)];
    }
};

/**
 * Compute per-module utilization from a run result. Implemented on
 * top of publishRunStats(): the run is published into a scratch
 * registry and the utilization derived from the dumped counters.
 */
UtilizationReport computeUtilization(const RunResult& result);

/**
 * Utilization from already-published registry counters: reads
 * <prefix>.<module>.active_cycles / <prefix>.cycles.total.
 */
UtilizationReport
utilizationFromRegistry(const obs::StatsRegistry& registry,
                        const std::string& prefix);

/** Render a human-readable utilization summary. */
std::string formatUtilization(const UtilizationReport& report);

/**
 * Write per-query trace records as CSV
 * (query,interval,bank,candidates,stalls,fallback).
 */
void writeQueryTraceCsv(std::ostream& os,
                        const std::vector<QueryTraceRecord>& records);

/**
 * Summary statistics over the per-query records: mean/max interval,
 * mean candidates, total stalls, fallback count.
 */
struct QueryTraceSummary
{
    double mean_interval = 0.0;
    std::size_t max_interval = 0;
    double mean_candidates = 0.0;
    std::size_t total_stalls = 0;
    std::size_t fallbacks = 0;
};

QueryTraceSummary
summarizeQueryTrace(const std::vector<QueryTraceRecord>& records);

} // namespace elsa

#endif // ELSA_SIM_REPORT_H_
