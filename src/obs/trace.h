#ifndef ELSA_OBS_TRACE_H_
#define ELSA_OBS_TRACE_H_

/**
 * @file
 * Structured event tracer emitting Chrome trace_event JSON.
 *
 * The simulator maps its pipeline onto the trace model as
 *   pid = accelerator instance, tid = pipeline module
 * and emits complete ("X") events for module busy intervals plus
 * counter ("C") events for per-query quantities, with the simulated
 * cycle count as the microsecond timestamp (1 cycle = 1 us of trace
 * time at the paper's 1 GHz clock this is a pure unit relabeling).
 * The resulting file opens directly in chrome://tracing or
 * https://ui.perfetto.dev.
 *
 * Format reference: the "Trace Event Format" document of the
 * Chromium project (JSON Object Format: {"traceEvents": [...]}).
 *
 * A default-constructed TraceWriter is disabled; every emit method
 * is a no-op that costs one branch, so call sites can stay
 * unconditional. The writer buffers events and serializes on
 * close()/destruction.
 *
 * A writer is intentionally NOT internally synchronized: concurrent
 * emitters would interleave events nondeterministically. The
 * parallel simulator instead records each invocation into its own
 * memoryBuffer() writer and merges the buffers into the attached
 * writer in invocation-index order with appendFrom(), which makes
 * the flushed event sequence identical to a serial run at any
 * thread count (see docs/PARALLELISM.md).
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace elsa::obs {

/** Buffered Chrome trace_event JSON writer; see file comment. */
class TraceWriter
{
  public:
    /** Disabled writer: every emit call is a cheap no-op. */
    TraceWriter() = default;

    /** Enabled writer serializing to the given file on close(). */
    explicit TraceWriter(std::string path);

    /**
     * Enabled writer that only buffers in memory: close() discards
     * instead of serializing. Used as a per-invocation shard whose
     * events are later appendFrom()-merged into a file-backed
     * writer in a deterministic order.
     */
    static TraceWriter memoryBuffer();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Moves the buffer; the source is left disabled and empty. */
    TraceWriter(TraceWriter&& other) noexcept;
    TraceWriter& operator=(TraceWriter&& other) noexcept;

    /** Serializes and closes if the writer is enabled and open. */
    ~TraceWriter();

    /** True when events are being recorded. */
    bool enabled() const { return enabled_; }

    /** Number of buffered events (metadata included). */
    std::size_t eventCount() const { return events_.size(); }

    /** Process (accelerator) display name: metadata event "M". */
    void processName(std::uint32_t pid, const std::string& name);

    /** Thread (pipeline module) display name: metadata event "M". */
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string& name);

    /**
     * Complete event ("X"): the module `tid` of accelerator `pid`
     * was busy with `name` during [ts_cycles, ts_cycles + dur_cycles).
     * Zero-duration events are widened to 1 so they stay visible.
     */
    void completeEvent(const std::string& name,
                       const std::string& category, std::uint32_t pid,
                       std::uint32_t tid, std::uint64_t ts_cycles,
                       std::uint64_t dur_cycles);

    /** Counter event ("C"): a named per-pid time series sample. */
    void counterEvent(const std::string& name, std::uint32_t pid,
                      std::uint64_t ts_cycles, double value);

    /**
     * Instant event ("i", scope "t"): a point annotation on a module
     * timeline (e.g. the no-candidate fallback firing).
     */
    void instantEvent(const std::string& name, std::uint32_t pid,
                      std::uint32_t tid, std::uint64_t ts_cycles);

    /**
     * Flow event linking points on different timelines into one
     * arrow chain (Chrome trace phases 's' = start, 't' = step,
     * 'f' = finish). Events sharing `id` form one flow; the per-query
     * span exemplars use this to draw each query's path from the
     * hash unit through its critical bank to output division.
     * `phase` must be one of 's', 't', 'f'.
     */
    void flowEvent(const std::string& name, const std::string& category,
                   std::uint32_t pid, std::uint32_t tid,
                   std::uint64_t ts_cycles, std::uint64_t id,
                   char phase);

    /**
     * Append another writer's buffered events to this one, in their
     * recorded order. Metadata ('M') events are skipped when
     * skip_metadata is set (the receiving writer emitted its own
     * process/thread names on attach). No-op when this writer is
     * disabled. Must be called from one thread at a time -- the
     * parallel reduction appends shards serially in invocation
     * order, which is what keeps the merged trace deterministic.
     */
    void appendFrom(const TraceWriter& other, bool skip_metadata);

    /**
     * Serialize {"traceEvents": [...]} to the path and disable the
     * writer. Raises elsa::Error when the file cannot be written.
     * No-op when already closed or never enabled. A memoryBuffer()
     * writer just disables and drops its events.
     */
    void close();

    /** Serialize the buffered events to an arbitrary stream. */
    void writeJson(std::ostream& os) const;

  private:
    struct Event
    {
        char phase = 'X';
        std::string name;
        std::string category;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        std::uint64_t ts = 0;
        std::uint64_t dur = 0;
        /** Flow-chain id ('s'/'t'/'f' events only). */
        std::uint64_t id = 0;
        double counter_value = 0.0;
        /** Metadata argument ("name" for process/thread names). */
        std::string meta;
    };

    bool enabled_ = false;
    std::string path_;
    std::vector<Event> events_;
};

} // namespace elsa::obs

#endif // ELSA_OBS_TRACE_H_
