/**
 * @file
 * EXP-AB5: threshold selection vs sorted top-k (the alternative
 * Section III-E rejects).
 *
 * At matched candidate budgets this compares, per scheme:
 *  - the softmax-mass recall (selection quality);
 *  - the per-query selection operations a hardware implementation
 *    would need (one compare per key for the threshold scheme,
 *    n log2 n sorting steps for top-k).
 *
 * Expected shape: hash-based top-k buys a little recall at a fixed
 * budget (it adapts the cutoff per query) but costs ~log2 n more
 * operations and, as the paper argues, does not pipeline at one key
 * per cycle in hardware -- while the oracle top-k shows how little
 * headroom is left above the threshold scheme.
 */

#include <cstdio>
#include <memory>

#include "attention/metrics.h"
#include "attention/threshold.h"
#include "attention/topk.h"
#include "bench_common.h"
#include "common/rng.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "workload/generator.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"manifest"});
    bench::printHeader(
        "Ablation: threshold vs sorted top-k candidate selection",
        "BERT-like sublayer, n = 384; budgets matched to the "
        "threshold scheme's candidate counts.");

    const std::size_t n = 384;
    QkvGenerator gen(bertLarge(), 71);
    const AttentionInput train = gen.generate(11, 3, n, 100);
    const AttentionInput input = gen.generate(11, 3, n, 0);

    Rng rng(5);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng, true));
    ApproxSelfAttention engine(hasher, kThetaBias64);
    TopKSelector selector(engine);

    std::printf("\n%-6s %8s | %10s %10s %10s | %14s %14s\n", "p",
                "budget", "threshold", "hash topk", "oracle",
                "thresh ops/q", "sort ops/q");
    obs::RunManifest manifest = bench::makeBenchManifest(
        "ablation_topk_vs_threshold", bench::standardSystemConfig());
    for (const double p : {0.5, 1.0, 2.0, 4.0}) {
        ThresholdLearner learner(p);
        learner.observe(train.query, train.key);
        const double t = learner.threshold();

        const auto threshold_lists = engine.candidatesForAll(input, t);
        std::size_t total = 0;
        for (const auto& list : threshold_lists) {
            total += list.size();
        }
        const std::size_t budget =
            std::max<std::size_t>(1, total / n);

        const auto topk_lists = selector.select(input, budget);
        const auto oracle_lists =
            TopKSelector::selectOracle(input, budget);

        const double threshold_recall =
            attentionMassRecall(input, threshold_lists);
        const double topk_recall =
            attentionMassRecall(input, topk_lists);
        std::printf("%-6.1f %8zu | %10.4f %10.4f %10.4f | %14zu "
                    "%14.0f\n",
                    p, budget, threshold_recall, topk_recall,
                    attentionMassRecall(input, oracle_lists), n,
                    TopKSelector::sortOpsPerQuery(n));
        std::fflush(stdout);
        if (p == 1.0) {
            manifest.set("metrics", "threshold_recall_p1",
                         threshold_recall);
            manifest.set("metrics", "topk_recall_p1", topk_recall);
        }
    }

    std::printf("\nThe threshold scheme stays within a few points of "
                "hash-based top-k at ~%0.flog2(n) = %.0fx\nfewer "
                "selection operations, and hardware-wise it is one "
                "parallel compare per key --\nexactly the paper's "
                "argument for rejecting sorting.\n",
                1.0, TopKSelector::sortOpsPerQuery(n) / n);
    bench::emitBenchSummary(manifest, args);
    return 0;
}
