/**
 * @file
 * EXP-EXT1 (extension): long-sequence attention with windowed ELSA.
 *
 * The paper motivates ELSA with the 512-token cap of today's models
 * (Section I) and notes compatibility with long-sequence
 * decompositions (Section V-E). This bench quantifies the combined
 * effect: sequences of N = 512..4096 tokens processed as 512-token
 * windows, each window simulated on the ELSA accelerator at the
 * conservative operating point, against (a) full N^2 attention on
 * the GPU and (b) windowed attention on the GPU.
 */

#include <cstdio>
#include <limits>
#include <memory>

#include "attention/blocked.h"
#include "baselines/gpu_model.h"
#include "bench_common.h"
#include "common/rng.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "sim/accelerator.h"
#include "workload/generator.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"manifest"});
    bench::printHeader(
        "Extension: windowed ELSA on long sequences",
        "512-token windows; ELSA at p = 1; GPU full-N^2 and windowed "
        "baselines. 12 accelerators.");

    const std::size_t window = 512;
    const ModelConfig model = bertLarge();
    QkvGenerator gen(model, 77);
    Rng rng(9);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng, true));
    Accelerator accel(SimConfig::paperConfig(), hasher, kThetaBias64);
    ApproxSelfAttention engine(hasher, kThetaBias64);
    BlockedSelfAttention blocked({window});
    const GpuModel gpu;

    std::printf("\n%-7s %14s %14s %14s %12s %12s\n", "N",
                "GPU full(us)", "GPU windowed", "ELSA windowed",
                "vs full", "candidates");
    obs::RunManifest manifest = bench::makeBenchManifest(
        "ext_long_sequence", bench::standardSystemConfig());
    for (const std::size_t n : {512u, 1024u, 2048u, 4096u}) {
        // Generate the long sequence as window-sized independent
        // segments (each its own attention context).
        const AttentionInput train = gen.generate(10, 0, n, 100);
        const AttentionInput input = gen.generate(10, 0, n, 0);

        std::vector<ThresholdLearner> learners;
        blocked.learnThresholds(train, 1.0, learners);

        double elsa_cycles = 0.0;
        double fraction_sum = 0.0;
        const auto ranges = blocked.windows(n);
        for (std::size_t w = 0; w < ranges.size(); ++w) {
            AttentionInput seg;
            const std::size_t rows =
                ranges[w].second - ranges[w].first;
            seg.query = Matrix(rows, 64);
            seg.key = Matrix(rows, 64);
            seg.value = Matrix(rows, 64);
            for (std::size_t r = 0; r < rows; ++r) {
                for (std::size_t c = 0; c < 64; ++c) {
                    seg.query(r, c) =
                        input.query(ranges[w].first + r, c);
                    seg.key(r, c) = input.key(ranges[w].first + r, c);
                    seg.value(r, c) =
                        input.value(ranges[w].first + r, c);
                }
            }
            const RunResult run =
                accel.run(seg, learners[w].threshold());
            elsa_cycles += static_cast<double>(run.totalCycles());
            fraction_sum += run.candidateFraction();
        }
        // Windows distribute across the 12 accelerators.
        const double elsa_us = elsa_cycles / 12.0 / 1e3;

        const double gpu_full_us =
            gpu.attentionSecondsPerOp(model, n) * 1e6;
        const double gpu_windowed_us =
            static_cast<double>(ranges.size())
            * gpu.attentionSecondsPerOp(model, window) * 1e6;

        std::printf("%-7zu %14.1f %14.1f %14.1f %11.1fx %11.1f%%\n",
                    n, gpu_full_us, gpu_windowed_us, elsa_us,
                    gpu_full_us / elsa_us,
                    100.0 * fraction_sum
                        / static_cast<double>(ranges.size()));
        std::fflush(stdout);
        manifest.set("metrics",
                     "speedup_vs_gpu_full_n" + std::to_string(n),
                     gpu_full_us / elsa_us);
    }

    std::printf("\nFull N^2 attention grows quadratically; windowing "
                "makes it linear in N, and ELSA\ntakes another "
                "order of magnitude off each window -- together they "
                "make 4096-token\nattention cheaper than 512-token "
                "attention on the GPU.\n");
    bench::emitBenchSummary(manifest, args);
    return 0;
}
