#include "obs/timeseries.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/registry.h"

namespace elsa::obs {

TimeSeries::TimeSeries(std::uint64_t bin_width_cycles)
    : bin_width_(bin_width_cycles)
{
    ELSA_CHECK(bin_width_ >= 1,
               "time-series bin width must be >= 1 cycle");
}

std::size_t
TimeSeries::channel(const std::string& name)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        return it->second;
    }
    ELSA_CHECK(isValidMetricName(name),
               "invalid channel name '"
                   << name
                   << "' (want dot-separated [a-z0-9_] segments)");
    const std::size_t id = names_.size();
    index_.emplace(name, id);
    names_.push_back(name);
    bins_.emplace_back();
    return id;
}

std::vector<double>&
TimeSeries::binsFor(std::size_t ch, std::uint64_t last_cycle)
{
    ELSA_CHECK(ch < bins_.size(),
               "channel id " << ch << " out of range");
    const std::size_t need =
        static_cast<std::size_t>(last_cycle / bin_width_) + 1;
    std::vector<double>& bins = bins_[ch];
    if (bins.size() < need) {
        bins.resize(need, 0.0);
    }
    num_bins_ = std::max(num_bins_, need);
    return bins;
}

void
TimeSeries::addSpread(std::size_t ch, std::uint64_t begin,
                      std::uint64_t end, std::uint64_t value)
{
    if (value == 0) {
        return;
    }
    if (end <= begin) {
        addAt(ch, begin, static_cast<double>(value));
        return;
    }
    const std::uint64_t range = end - begin;
    std::vector<double>& bins = binsFor(ch, end - 1);
    // Telescoped cumulative rounding: bins hold integer deltas of
    // floor(value * elapsed / range), so they sum exactly to value.
    std::uint64_t prev = 0;
    for (std::uint64_t b = begin / bin_width_;
         b <= (end - 1) / bin_width_; ++b) {
        const std::uint64_t seg_end =
            std::min<std::uint64_t>(end, (b + 1) * bin_width_);
        const unsigned __int128 scaled =
            static_cast<unsigned __int128>(value)
            * (seg_end - begin);
        const std::uint64_t cum =
            static_cast<std::uint64_t>(scaled / range);
        bins[static_cast<std::size_t>(b)] +=
            static_cast<double>(cum - prev);
        prev = cum;
    }
}

void
TimeSeries::addSpreadReal(std::size_t ch, std::uint64_t begin,
                          std::uint64_t end, double value)
{
    if (value == 0.0) {
        return;
    }
    if (end <= begin) {
        addAt(ch, begin, value);
        return;
    }
    const double range = static_cast<double>(end - begin);
    std::vector<double>& bins = binsFor(ch, end - 1);
    double prev = 0.0;
    for (std::uint64_t b = begin / bin_width_;
         b <= (end - 1) / bin_width_; ++b) {
        const std::uint64_t seg_end =
            std::min<std::uint64_t>(end, (b + 1) * bin_width_);
        const double cum =
            value * static_cast<double>(seg_end - begin) / range;
        bins[static_cast<std::size_t>(b)] += cum - prev;
        prev = cum;
    }
}

void
TimeSeries::addAt(std::size_t ch, std::uint64_t cycle, double value)
{
    std::vector<double>& bins = binsFor(ch, cycle);
    bins[static_cast<std::size_t>(cycle / bin_width_)] += value;
}

void
TimeSeries::merge(const TimeSeries& other)
{
    ELSA_CHECK(bin_width_ == other.bin_width_,
               "cannot merge time series with bin widths "
                   << bin_width_ << " and " << other.bin_width_);
    for (const auto& [name, oid] : other.index_) {
        const std::size_t ch = channel(name);
        const std::vector<double>& src = other.bins_[oid];
        std::vector<double>& dst = bins_[ch];
        if (dst.size() < src.size()) {
            dst.resize(src.size(), 0.0);
        }
        for (std::size_t i = 0; i < src.size(); ++i) {
            dst[i] += src[i];
        }
    }
    num_bins_ = std::max(num_bins_, other.num_bins_);
}

std::vector<std::string>
TimeSeries::channelNames() const
{
    std::vector<std::string> out;
    out.reserve(index_.size());
    for (const auto& [name, id] : index_) {
        (void)id;
        out.push_back(name);
    }
    return out;
}

bool
TimeSeries::hasChannel(const std::string& name) const
{
    return index_.find(name) != index_.end();
}

const std::vector<double>&
TimeSeries::channelBins(const std::string& name) const
{
    const auto it = index_.find(name);
    ELSA_CHECK(it != index_.end(),
               "unknown time-series channel '" << name << "'");
    return bins_[it->second];
}

double
TimeSeries::channelTotal(const std::string& name) const
{
    const std::vector<double>& bins = channelBins(name);
    double total = 0.0;
    for (const double v : bins) {
        total += v;
    }
    return total;
}

} // namespace elsa::obs
