/**
 * @file
 * Accelerator design-space exploration with the cycle-level
 * simulator.
 *
 * An architect sizing an ELSA-style accelerator must balance the
 * pipeline (Section IV-D): candidate selection parallelism (P_c),
 * attention-module banks (P_a), hash multipliers (m_h), and division
 * multipliers (m_o). This example sweeps those knobs on a fixed
 * workload, reports per-query cycles and where the bottleneck sits,
 * and estimates each design's energy per operation -- the loop a
 * real design study would run.
 */

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "energy/energy_model.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "sim/accelerator.h"
#include "sim/pipeline_model.h"
#include "workload/workload.h"

namespace {

using namespace elsa;

/** Which stage bounds the pipeline for a given config/candidates. */
const char*
bottleneck(const SimConfig& config, std::size_t n, double mean_c_bank)
{
    const double hash = static_cast<double>(hashCyclesPerVector(config));
    const double scan =
        static_cast<double>(candidateScanCycles(config, n));
    const double div =
        static_cast<double>(divisionCyclesPerQuery(config));
    const double attn =
        mean_c_bank
        + static_cast<double>(config.attention_pipeline_latency);
    if (attn >= hash && attn >= scan && attn >= div) {
        return "attention";
    }
    if (scan >= hash && scan >= div) {
        return "cand-scan";
    }
    if (hash >= div) {
        return "hash";
    }
    return "division";
}

} // namespace

int
main()
{
    using namespace elsa;

    // Fixed workload: one BERT/RACE invocation at p = 1.
    WorkloadRunner runner({bertLarge(), race()});
    const auto invocations = runner.simInvocations(1.0, 1, 1);
    const SimInvocation& inv = invocations.front();
    std::printf("Design-space exploration on %s (n = %zu real "
                "tokens, p = 1)\n\n",
                runner.spec().label().c_str(), inv.n_real);

    Rng rng(5);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng, true));

    std::printf("%-28s %9s %10s %10s %10s %-10s\n", "configuration",
                "cyc/query", "exec (us)", "stalls", "E/op (uJ)",
                "bottleneck");

    struct Design
    {
        const char* label;
        std::size_t pa, pc, mh, mo;
    };
    const Design designs[] = {
        {"tiny     (1,4,64,4)", 1, 4, 64, 4},
        {"small    (2,8,128,8)", 2, 8, 128, 8},
        {"paper    (4,8,256,16)", 4, 8, 256, 16},
        {"wide-sel (4,16,256,16)", 4, 16, 256, 16},
        {"8 banks  (8,8,512,32)", 8, 8, 512, 32},
        {"16 banks (16,8,512,32)", 16, 8, 512, 32},
    };

    for (const auto& d : designs) {
        SimConfig config = SimConfig::paperConfig();
        config.pa = d.pa;
        config.pc = d.pc;
        config.mh = d.mh;
        config.mo = d.mo;
        Accelerator accel(config, hasher, kThetaBias64);
        const RunResult run = accel.run(inv.input, inv.threshold);

        const double cyc_per_query =
            static_cast<double>(run.execute_cycles)
            / static_cast<double>(inv.n_real);
        double total_cands = 0.0;
        for (const auto c : run.candidates_per_query) {
            total_cands += static_cast<double>(c);
        }
        const double mean_c_bank =
            total_cands
            / (static_cast<double>(inv.n_real)
               * static_cast<double>(config.pa));
        // Scale the Table I powers to this design point: a design
        // with twice the multipliers burns roughly twice the power.
        const EnergyModel energy(
            1.0, PowerScaling::forPipeline(d.pa, d.pc, d.mh, d.mo));
        const EnergyBreakdown e = energy.compute(
            run.activity, static_cast<double>(run.totalCycles()));
        std::printf("%-28s %9.1f %10.2f %10zu %10.3f %-10s\n",
                    d.label, cyc_per_query,
                    static_cast<double>(run.totalCycles()) / 1e3,
                    run.stall_cycles, e.totalUj(),
                    bottleneck(config, inv.n_real, mean_c_bank));
    }

    std::printf("\nReading the table: under-provisioned designs "
                "stall on queue backpressure; beyond\nthe paper's "
                "P_a = 4 point, more banks keep shaving cycles until "
                "the candidate scan\nor hash unit becomes the floor "
                "(the balance rule of Section IV-D), while dynamic\n"
                "energy stays roughly flat -- the same candidates are "
                "processed, just faster.\n");
    return 0;
}
