#ifndef ELSA_SIM_REPORT_H_
#define ELSA_SIM_REPORT_H_

/**
 * @file
 * Post-run reporting utilities for the cycle-level simulator, built
 * on the observability layer: RunResult -> StatsRegistry publishing,
 * per-module utilization, per-query trace CSV export, and summary
 * statistics (the role a stats dump plays in a full-system
 * simulator).
 *
 * publishRunStats() is the single RunResult -> metrics mapping; the
 * utilization report and the JSON stats dump both read from it, so
 * the numbers in `stats.json` and in formatUtilization() can never
 * drift apart.
 */

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "sim/accelerator.h"

namespace elsa::obs {
class QuerySpanSet;
class RunManifest;
} // namespace elsa::obs

namespace elsa {

/**
 * Publish one run's counters into a stats registry under the given
 * prefix (e.g. "sim.accel0"):
 *
 *   <prefix>.cycles.{preprocess,execute,total}      counters
 *   <prefix>.<module>.active_cycles                 counters
 *   <prefix>.candidate.{stalls,fallbacks,selected}  counters
 *   <prefix>.invocations                            counter
 *   <prefix>.stall.<module>.<cause>_cycles          counters**
 *   <prefix>.stall.<module>.lane_cycles             counters**
 *   <prefix>.query.interval_cycles                  distribution*
 *   <prefix>.query.candidate_fraction               histogram*
 *   <prefix>.latency.cycles_digest                  digest***
 *   <prefix>.query.interval_cycles_digest           digest***
 *   <prefix>.span.<module>.{queue_wait,service,stall}_cycles ****
 *   <prefix>.span.<module>.{queue_wait,service,stall}_digest ****
 *   <prefix>.span.query.total_cycles_digest         digest****
 *
 * (* only when the run recorded a per-query trace; ** only when
 * SimConfig::attribute_stalls produced a breakdown -- causes are
 * busy / starved / backpressured / bank_conflict / drained over the
 * six attributed module classes of sim/stall.h, and the cause sum
 * equals lane_cycles exactly; *** only when the run carried
 * telemetry, so telemetry-off dumps stay byte-identical -- the
 * interval digest additionally needs a per-query trace; **** only
 * when the run carried spans (SimConfig::query_spans), derived from
 * the per-query span totals/digests over every query of the run.)
 * Counters accumulate across calls so an AcceleratorArray batch
 * lands in one coherent set of totals.
 */
void publishRunStats(const RunResult& result,
                     obs::StatsRegistry& registry,
                     const std::string& prefix);

/**
 * Serialize one run's (or batch's) cycle-domain telemetry as the
 * `telemetry.json` document of docs/OBSERVABILITY.md: bin width and
 * channel arrays from `series`, totals and latency digests read
 * back from `registry` under `prefix`, and per-bin energy derived
 * from the `activity.*` channels through the energy model at
 * `config`'s clock. When `query_trace` is non-null its raw
 * per-query intervals are embedded (capped) so report tooling can
 * draw a latency histogram with the digest percentiles overlaid.
 *
 * The stall-channel bin sums equal the corresponding
 * `<prefix>.stall.*` counters exactly (integer conservation;
 * enforced by scripts/check_metrics.py and tests/telemetry_test.cc).
 */
void writeTelemetryJson(std::ostream& os,
                        const obs::TimeSeries& series,
                        const obs::StatsRegistry& registry,
                        const std::string& prefix,
                        const SimConfig& config,
                        const std::vector<QueryTraceRecord>*
                            query_trace = nullptr);

/**
 * The `<prefix>.span.<module>.<field>` metric name of one per-query
 * span component (see publishRunStats above). The single place that
 * composes span metric names, so the grammar and the documented name
 * set stay checkable by tools/lint/elsa_lint.py (field literals at
 * call sites must appear in docs/OBSERVABILITY.md).
 */
std::string spanMetricName(const std::string& prefix,
                           AttributedModule module, const char* field);

/**
 * Serialize finalized per-query lifecycle spans as the `spans.json`
 * document of docs/OBSERVABILITY.md: stage/cause name tables,
 * per-invocation roll-ups, exact per-stage component totals,
 * per-stage streaming digests over every query, and the retained
 * exemplar records (K slowest + one per latency decile) with their
 * full queue-wait / service / stall-by-cause decomposition.
 *
 * Invariants carried by the document (validated by
 * scripts/check_metrics.py and tests/span_test.cc): every exemplar's
 * component sum equals its end-to-end cycles exactly, and the
 * per-stage totals reconcile against the `<prefix>.stall.*` counters
 * of stats.json. Serialization is deterministic, so the bytes are
 * identical at any thread count.
 */
void writeSpansJson(std::ostream& os, const obs::QuerySpanSet& spans,
                    const std::string& prefix,
                    const SimConfig& config);

/** Per-module utilization (active cycles / total cycles). */
struct UtilizationReport
{
    /** Utilization in [0, 1] per module, indexed like allHwModules(). */
    std::vector<double> utilization;

    UtilizationReport()
        : utilization(allHwModules().size(), 0.0)
    {
    }

    double get(HwModule module) const
    {
        return utilization[static_cast<std::size_t>(module)];
    }
};

/**
 * Compute per-module utilization from a run result. Implemented on
 * top of publishRunStats(): the run is published into a scratch
 * registry and the utilization derived from the dumped counters.
 */
UtilizationReport computeUtilization(const RunResult& result);

/**
 * Utilization from already-published registry counters: reads
 * <prefix>.<module>.active_cycles / <prefix>.cycles.total.
 */
UtilizationReport
utilizationFromRegistry(const obs::StatsRegistry& registry,
                        const std::string& prefix);

/** Render a human-readable utilization summary. */
std::string formatUtilization(const UtilizationReport& report);

/**
 * Which pipeline module limits this run, and by how much.
 *
 * The limiting module is the attributed module class with the
 * highest busy fraction (busy lane cycles / its total lane cycles):
 * in a pipeline whose interval is the max over stage times, the
 * stage closest to fully busy is the one every other stage waits
 * for. `headroom` (1 - busy fraction) is how much faster the run
 * could get before that module saturates -- speeding up anything
 * else first is wasted effort (the Fig. 11 / Section IV-D argument).
 */
struct BottleneckReport
{
    /** False when the run carried no attribution data. */
    bool valid = false;

    /** The limiting module (highest busy fraction). */
    AttributedModule limiting = AttributedModule::kAttention;

    /** Busy fraction of the limiting module, in [0, 1]. */
    double busy_fraction = 0.0;

    /** 1 - busy_fraction of the limiting module. */
    double headroom = 1.0;

    /** Busy fraction per module, indexed by AttributedModule. */
    std::array<double, kNumAttributedModules> module_busy_fraction{};

    /** Dominant idle cause per module (ties -> lowest enum value). */
    std::array<StallCause, kNumAttributedModules> dominant_idle_cause{};
};

/** Derive the bottleneck report from an attributed breakdown. */
BottleneckReport computeBottleneck(const StallBreakdown& breakdown);

/** Convenience overload reading RunResult::stall_breakdown. */
BottleneckReport computeBottleneck(const RunResult& result);

/** Render a human-readable bottleneck summary. */
std::string formatBottleneckReport(const BottleneckReport& report);

/**
 * Write the standard observability bundle into `dir` (created if
 * missing): stats.json + stats.csv (registry dumps), telemetry.json
 * (when the result carries telemetry), spans.json (when it carries
 * spans), and manifest.json. The caller seeds `manifest` with its
 * tool name, build info, and config section; this helper appends the
 * shared metrics / utilization / bottleneck sections so quickstart's
 * --obs-dir and elsa_bench's --report emit the same layout from one
 * implementation. Returns the bottleneck report for callers that
 * print it. Trace files are the caller's business (only quickstart
 * records one).
 */
BottleneckReport writeObsBundle(const std::string& dir,
                                const obs::StatsRegistry& registry,
                                const RunResult& result,
                                const SimConfig& config,
                                obs::RunManifest& manifest,
                                const std::string& prefix
                                = "sim.accel0");

/**
 * Write per-query trace records as CSV
 * (query,interval,bank,candidates,stalls,fallback).
 */
void writeQueryTraceCsv(std::ostream& os,
                        const std::vector<QueryTraceRecord>& records);

/**
 * Summary statistics over the per-query records: mean/max interval,
 * mean candidates, total stalls, fallback count.
 */
struct QueryTraceSummary
{
    double mean_interval = 0.0;
    std::size_t max_interval = 0;
    double mean_candidates = 0.0;
    std::size_t total_stalls = 0;
    std::size_t fallbacks = 0;
};

QueryTraceSummary
summarizeQueryTrace(const std::vector<QueryTraceRecord>& records);

} // namespace elsa

#endif // ELSA_SIM_REPORT_H_
