#include "fixed/units.h"

#include <cmath>

#include "common/logging.h"

namespace elsa {

namespace {

/** Round a value to p fraction bits of mantissa precision. */
double
roundMantissa(double value, int p)
{
    if (value == 0.0) {
        return 0.0;
    }
    int exp = 0;
    const double mantissa = std::frexp(std::abs(value), &exp) * 2.0;
    const double scale = std::ldexp(1.0, p);
    const double rounded = std::nearbyint((mantissa - 1.0) * scale) / scale
                           + 1.0;
    return std::copysign(std::ldexp(rounded, exp - 1), value);
}

} // namespace

// --- ExpUnit ---------------------------------------------------------

ExpUnit::ExpUnit()
{
    // 2^(i/32), each entry stored with 5 fraction bits, exactly the
    // contents of the hardware table.
    for (int i = 0; i < kLutSize; ++i) {
        lut_[i] = roundMantissa(
            std::exp2(static_cast<double>(i) / kLutSize), 5);
    }
}

double
ExpUnit::lutEntry(int index) const
{
    ELSA_CHECK(index >= 0 && index < kLutSize,
               "exp LUT index out of range: " << index);
    return lut_[index];
}

void
ExpUnit::corruptEntry(int index, double value)
{
    ELSA_CHECK(index >= 0 && index < kLutSize,
               "exp LUT index out of range: " << index);
    lut_[index] = value;
}

double
ExpUnit::compute(double x) const
{
    // e^x = 2^y with y = x * log2(e).
    const double y = x * 1.4426950408889634; // log2(e)
    const double floor_y = std::floor(y);
    const double frac_y = y - floor_y;
    // The hardware truncates frac(y) to 5 bits to index the LUT.
    int index = static_cast<int>(frac_y * kLutSize);
    if (index >= kLutSize) {
        index = kLutSize - 1;
    }
    const double result = std::ldexp(lut_[index],
                                     static_cast<int>(floor_y));
    return quantizeToCustomFloat(result, kElsaFloatFormat);
}

// --- ReciprocalUnit --------------------------------------------------

ReciprocalUnit::ReciprocalUnit()
{
    // 1/(1 + i/32), midpoint-corrected: store the reciprocal of the
    // center of the i-th mantissa segment to halve the worst-case
    // error, each entry held with 5 fraction bits.
    for (int i = 0; i < kLutSize; ++i) {
        const double seg_mid = 1.0 + (static_cast<double>(i) + 0.5)
                                         / kLutSize;
        lut_[i] = roundMantissa(1.0 / seg_mid, 5);
    }
}

double
ReciprocalUnit::lutEntry(int index) const
{
    ELSA_CHECK(index >= 0 && index < kLutSize,
               "reciprocal LUT index out of range: " << index);
    return lut_[index];
}

void
ReciprocalUnit::corruptEntry(int index, double value)
{
    ELSA_CHECK(index >= 0 && index < kLutSize,
               "reciprocal LUT index out of range: " << index);
    lut_[index] = value;
}

double
ReciprocalUnit::compute(double x) const
{
    ELSA_CHECK(x != 0.0, "reciprocal of zero");
    int exp = 0;
    const double mantissa = std::frexp(std::abs(x), &exp) * 2.0; // [1,2)
    int index = static_cast<int>((mantissa - 1.0) * kLutSize);
    if (index >= kLutSize) {
        index = kLutSize - 1;
    }
    // 1/(m * 2^(e-1)) = (1/m) * 2^(1-e)
    const double result = std::ldexp(lut_[index], 1 - exp);
    return std::copysign(quantizeToCustomFloat(result, kElsaFloatFormat),
                         x);
}

// --- SqrtUnit --------------------------------------------------------

SqrtUnit::SqrtUnit()
{
    // Table over [1, 4): segment i covers [1 + 3i/64, 1 + 3(i+1)/64).
    // Each entry is sqrt at the segment midpoint; the compute step then
    // multiplies by the modified operand (1 + delta / (2 * mid)), which
    // is the first-order Taylor correction -- one lookup, one multiply.
    for (int i = 0; i < kTableSize; ++i) {
        const double mid = 1.0 + 3.0 * (static_cast<double>(i) + 0.5)
                                     / kTableSize;
        table_[i] = std::sqrt(mid);
    }
}

double
SqrtUnit::compute(double x) const
{
    ELSA_CHECK(x >= 0.0, "sqrt of negative value: " << x);
    if (x == 0.0) {
        return 0.0;
    }
    int exp = 0;
    double mantissa = std::frexp(x, &exp) * 2.0; // [1, 2)
    --exp;                                       // x = mantissa * 2^exp
    // Fold exponent parity into the mantissa so exp is even.
    if (exp % 2 != 0) {
        mantissa *= 2.0; // mantissa now in [1, 4)
        exp -= 1;
    }
    int index = static_cast<int>((mantissa - 1.0) * kTableSize / 3.0);
    if (index >= kTableSize) {
        index = kTableSize - 1;
    }
    const double mid = 1.0 + 3.0 * (static_cast<double>(index) + 0.5)
                                 / kTableSize;
    // Operand modification: sqrt(m) ~= sqrt(mid) * (1 + (m - mid)/(2 mid)).
    const double corrected = table_[index]
                             * (1.0 + (mantissa - mid) / (2.0 * mid));
    return std::ldexp(corrected, exp / 2);
}

} // namespace elsa
