#include "workload/model.h"

#include "common/logging.h"

namespace elsa {

void
ModelConfig::validate() const
{
    ELSA_CHECK(!name.empty(), "model.name must be non-empty");
    ELSA_CHECK(num_layers >= 1, "model.num_layers must be >= 1");
    ELSA_CHECK(num_heads >= 1, "model.num_heads must be >= 1");
    ELSA_CHECK(head_dim >= 1, "model.head_dim must be >= 1");
    ELSA_CHECK(hidden_dim >= 1, "model.hidden_dim must be >= 1");
    ELSA_CHECK(ffn_dim >= 1, "model.ffn_dim must be >= 1");
}

std::string
WorkloadSpec::label() const
{
    return model.name + "/" + dataset.name;
}

ModelConfig
bertLarge()
{
    return ModelConfig{"BERT", 24, 16, 64, 1024, 4096, true};
}

ModelConfig
robertaLarge()
{
    return ModelConfig{"RoBERTa", 24, 16, 64, 1024, 4096, true};
}

ModelConfig
albertLarge()
{
    return ModelConfig{"ALBERT", 24, 16, 64, 1024, 4096, true};
}

ModelConfig
sasRec()
{
    // 3-layer SASRec model (Section V-A), single-head with d = 64.
    return ModelConfig{"SASRec", 3, 1, 64, 64, 256, false};
}

ModelConfig
bert4Rec()
{
    // 3-layer, 2-head BERT4Rec model (Section V-A).
    return ModelConfig{"BERT4Rec", 3, 2, 64, 128, 512, false};
}

DatasetSpec
squadV11()
{
    // Question-answering contexts; models run with n = 384.
    return DatasetSpec{"SQuADv1.1", 384, 200.0, 60.0, 64, 384};
}

DatasetSpec
squadV20()
{
    return DatasetSpec{"SQuADv2.0", 384, 205.0, 62.0, 64, 384};
}

DatasetSpec
race()
{
    // Long reading-comprehension passages; n = 512 and mostly full.
    return DatasetSpec{"RACE", 512, 360.0, 90.0, 128, 512};
}

DatasetSpec
imdb()
{
    // Movie-review sentiment; long, highly variable documents.
    return DatasetSpec{"IMDB", 512, 300.0, 120.0, 64, 512};
}

DatasetSpec
movieLens1M()
{
    // User interaction histories; recommenders run with n = 200.
    return DatasetSpec{"ML-1M", 200, 163.0, 40.0, 16, 200};
}

std::vector<WorkloadSpec>
evaluationWorkloads()
{
    std::vector<WorkloadSpec> specs;
    for (const auto& model : {bertLarge(), robertaLarge(), albertLarge()}) {
        specs.push_back({model, squadV11()});
        specs.push_back({model, squadV20()});
        specs.push_back({model, race()});
    }
    specs.push_back({robertaLarge(), imdb()});
    specs.push_back({sasRec(), movieLens1M()});
    specs.push_back({bert4Rec(), movieLens1M()});
    return specs;
}

} // namespace elsa
