#include "lsh/candidates.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/simd/simd.h"

namespace elsa {

namespace {

/**
 * Distances for one chunk of keys live in this stack buffer between
 * the Hamming kernel and the similarity math, keeping the working
 * set inside L1 for arbitrarily large key sets.
 */
constexpr std::size_t kChunk = 256;

void
checkSelectionArgs(HashView query, const HashMatrix& keys,
                   const std::vector<double>& norms, const CosineLut& lut,
                   std::size_t begin, std::size_t end)
{
    ELSA_CHECK(query.bits() == keys.bits(),
               "hamming distance between different widths: "
                   << query.bits() << " vs " << keys.bits());
    ELSA_CHECK(begin <= end && end <= keys.rows(),
               "key range [" << begin << "," << end
                             << ") out of bounds");
    ELSA_CHECK(norms.size() >= keys.rows(),
               "norms cover " << norms.size() << " keys, matrix has "
                              << keys.rows());
    ELSA_CHECK(lut.hashBits() == keys.bits(),
               "cosine LUT built for k = " << lut.hashBits()
                                           << ", hashes have "
                                           << keys.bits());
}

} // namespace

void
hammingDistanceBatch(HashView query, const HashMatrix& keys,
                     std::size_t begin, std::size_t end,
                     std::uint32_t* out)
{
    ELSA_CHECK(query.bits() == keys.bits(),
               "hamming distance between different widths: "
                   << query.bits() << " vs " << keys.bits());
    ELSA_CHECK(begin <= end && end <= keys.rows(),
               "key range [" << begin << "," << end
                             << ") out of bounds");
    if (begin == end) {
        return;
    }
    simd::kernels().hamming_batch(query.words(), keys.rowWords(begin),
                                  keys.wordsPerRow(), end - begin, out);
}

std::vector<std::uint32_t>
hammingDistanceBatch(HashView query, const HashMatrix& keys)
{
    std::vector<std::uint32_t> distances(keys.rows());
    hammingDistanceBatch(query, keys, 0, keys.rows(), distances.data());
    return distances;
}

void
approximateSimilarities(HashView query, const HashMatrix& keys,
                        const std::vector<double>& norms,
                        const CosineLut& lut, std::size_t begin,
                        std::size_t end, double* out)
{
    checkSelectionArgs(query, keys, norms, lut, begin, end);
    const double* table = lut.table();
    std::uint32_t distances[kChunk];
    for (std::size_t base = begin; base < end; base += kChunk) {
        const std::size_t stop = std::min(end, base + kChunk);
        hammingDistanceBatch(query, keys, base, stop, distances);
        for (std::size_t j = base; j < stop; ++j) {
            out[j - begin] = norms[j] * table[distances[j - base]];
        }
    }
}

void
selectAboveCutoff(HashView query, const HashMatrix& keys,
                  const std::vector<double>& norms, const CosineLut& lut,
                  double cutoff, std::size_t begin, std::size_t end,
                  std::vector<std::uint32_t>& selected)
{
    checkSelectionArgs(query, keys, norms, lut, begin, end);
    const double* table = lut.table();
    std::uint32_t distances[kChunk];
    for (std::size_t base = begin; base < end; base += kChunk) {
        const std::size_t stop = std::min(end, base + kChunk);
        hammingDistanceBatch(query, keys, base, stop, distances);
        for (std::size_t j = base; j < stop; ++j) {
            const double sim = norms[j] * table[distances[j - base]];
            // Paper skip condition: select only when the approximate
            // similarity strictly exceeds the scaled threshold.
            if (sim > cutoff) {
                selected.push_back(static_cast<std::uint32_t>(j));
            }
        }
    }
}

void
thresholdHits(HashView query, const HashMatrix& keys,
              const std::vector<double>& norms, const CosineLut& lut,
              double cutoff, std::size_t begin, std::size_t end,
              std::vector<bool>& hits)
{
    checkSelectionArgs(query, keys, norms, lut, begin, end);
    hits.assign(end - begin, false);
    const double* table = lut.table();
    std::uint32_t distances[kChunk];
    for (std::size_t base = begin; base < end; base += kChunk) {
        const std::size_t stop = std::min(end, base + kChunk);
        hammingDistanceBatch(query, keys, base, stop, distances);
        for (std::size_t j = base; j < stop; ++j) {
            const double sim = norms[j] * table[distances[j - base]];
            hits[j - begin] = sim > cutoff;
        }
    }
}

std::uint32_t
argmaxSimilarity(HashView query, const HashMatrix& keys,
                 const std::vector<double>& norms, const CosineLut& lut,
                 std::size_t begin, std::size_t end)
{
    checkSelectionArgs(query, keys, norms, lut, begin, end);
    ELSA_CHECK(begin < end, "argmax over an empty key range");
    const double* table = lut.table();
    std::uint32_t best = 0;
    double best_sim = -std::numeric_limits<double>::infinity();
    std::uint32_t distances[kChunk];
    for (std::size_t base = begin; base < end; base += kChunk) {
        const std::size_t stop = std::min(end, base + kChunk);
        hammingDistanceBatch(query, keys, base, stop, distances);
        for (std::size_t j = base; j < stop; ++j) {
            const double sim = norms[j] * table[distances[j - base]];
            // Strict > keeps the earliest id on ties, matching the
            // sequential scans this kernel replaced.
            if (sim > best_sim) {
                best_sim = sim;
                best = static_cast<std::uint32_t>(j);
            }
        }
    }
    return best;
}

} // namespace elsa
