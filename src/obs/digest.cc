#include "obs/digest.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace elsa::obs {

namespace {

/** Buffered samples folded per deterministic compaction pass. */
constexpr std::size_t kBufferLimit = 512;

constexpr double kPi = 3.14159265358979323846;

} // namespace

QuantileDigest::QuantileDigest(double compression)
    : compression_(compression)
{
    ELSA_CHECK(compression_ >= 10.0,
               "digest compression must be >= 10, got "
                   << compression_);
    buffer_.reserve(kBufferLimit);
}

QuantileDigest::QuantileDigest(const QuantileDigest& other)
{
    std::lock_guard<std::mutex> lk(other.m_);
    compression_ = other.compression_;
    buffer_ = other.buffer_;
    centroids_ = other.centroids_;
    count_ = other.count_;
    min_ = other.min_;
    max_ = other.max_;
}

QuantileDigest&
QuantileDigest::operator=(const QuantileDigest& other)
{
    if (this == &other) {
        return *this;
    }
    // Consistent-order double lock via scoped_lock (deadlock-free).
    std::scoped_lock lk(m_, other.m_);
    compression_ = other.compression_;
    buffer_ = other.buffer_;
    centroids_ = other.centroids_;
    count_ = other.count_;
    min_ = other.min_;
    max_ = other.max_;
    return *this;
}

double
QuantileDigest::kFromQ(double q) const
{
    return compression_ / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

void
QuantileDigest::add(double x)
{
    std::lock_guard<std::mutex> lk(m_);
    ELSA_CHECK(std::isfinite(x),
               "digest observation must be finite, got " << x);
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    buffer_.push_back(x);
    if (buffer_.size() >= kBufferLimit) {
        flushLocked();
    }
}

void
QuantileDigest::merge(const QuantileDigest& other)
{
    if (this == &other) {
        const QuantileDigest copy(other);
        merge(copy);
        return;
    }
    std::scoped_lock lk(m_, other.m_);
    if (other.count_ == 0) {
        return;
    }
    other.flushLocked();
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    flushLocked();
    mergeSortedLocked(other.centroids_);
}

void
QuantileDigest::flushLocked() const
{
    if (buffer_.empty()) {
        return;
    }
    std::sort(buffer_.begin(), buffer_.end());
    std::vector<Centroid> fresh;
    fresh.reserve(buffer_.size());
    for (const double x : buffer_) {
        fresh.push_back({x, 1.0});
    }
    buffer_.clear();
    mergeSortedLocked(fresh);
}

void
QuantileDigest::mergeSortedLocked(
    const std::vector<Centroid>& other) const
{
    if (other.empty()) {
        return;
    }
    std::vector<Centroid> merged;
    merged.reserve(centroids_.size() + other.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < centroids_.size() || j < other.size()) {
        const bool take_own =
            j >= other.size()
            || (i < centroids_.size()
                && centroids_[i].mean <= other[j].mean);
        merged.push_back(take_own ? centroids_[i++] : other[j++]);
    }
    double total = 0.0;
    for (const Centroid& c : merged) {
        total += c.weight;
    }
    std::vector<Centroid> out;
    Centroid cur = merged.front();
    double w_before = 0.0;
    double k_lo = kFromQ(0.0);
    for (std::size_t idx = 1; idx < merged.size(); ++idx) {
        const Centroid& c = merged[idx];
        const double q_hi =
            (w_before + cur.weight + c.weight) / total;
        if (kFromQ(q_hi) - k_lo <= 1.0) {
            cur.mean = (cur.mean * cur.weight + c.mean * c.weight)
                       / (cur.weight + c.weight);
            cur.weight += c.weight;
        } else {
            out.push_back(cur);
            w_before += cur.weight;
            k_lo = kFromQ(w_before / total);
            cur = c;
        }
    }
    out.push_back(cur);
    centroids_ = std::move(out);
}

std::size_t
QuantileDigest::count() const
{
    std::lock_guard<std::mutex> lk(m_);
    return count_;
}

double
QuantileDigest::min() const
{
    std::lock_guard<std::mutex> lk(m_);
    ELSA_CHECK(count_ > 0, "min() of an empty digest");
    return min_;
}

double
QuantileDigest::max() const
{
    std::lock_guard<std::mutex> lk(m_);
    ELSA_CHECK(count_ > 0, "max() of an empty digest");
    return max_;
}

double
QuantileDigest::quantile(double q) const
{
    std::lock_guard<std::mutex> lk(m_);
    ELSA_CHECK(q >= 0.0 && q <= 1.0,
               "quantile " << q << " outside [0, 1]");
    ELSA_CHECK(count_ > 0, "quantile() of an empty digest");
    flushLocked();
    if (q <= 0.0) {
        return min_;
    }
    if (q >= 1.0) {
        return max_;
    }
    const double total = static_cast<double>(count_);
    const double rank = q * total;
    // Each centroid sits at its cumulative-weight midpoint; the
    // stream extremes anchor the two ends exactly.
    double prev_pos = 0.0;
    double prev_val = min_;
    double cum = 0.0;
    for (const Centroid& c : centroids_) {
        const double pos = cum + c.weight / 2.0;
        if (rank < pos) {
            if (pos <= prev_pos) {
                return c.mean;
            }
            const double frac =
                (rank - prev_pos) / (pos - prev_pos);
            return std::clamp(prev_val
                                  + frac * (c.mean - prev_val),
                              min_, max_);
        }
        prev_pos = pos;
        prev_val = c.mean;
        cum += c.weight;
    }
    if (total <= prev_pos) {
        return max_;
    }
    const double frac = (rank - prev_pos) / (total - prev_pos);
    return std::clamp(prev_val + frac * (max_ - prev_val), min_,
                      max_);
}

void
QuantileDigest::reset()
{
    std::lock_guard<std::mutex> lk(m_);
    buffer_.clear();
    centroids_.clear();
    count_ = 0;
    min_ = 0.0;
    max_ = 0.0;
}

} // namespace elsa::obs
