#ifndef ELSA_FIXED_CUSTOM_FLOAT_H_
#define ELSA_FIXED_CUSTOM_FLOAT_H_

/**
 * @file
 * Custom floating-point format of the ELSA datapath (Section IV-E).
 *
 * The output of the exponent unit and all computation downstream of it
 * (the running sum of exponentiated scores, the weighted value
 * accumulation) use a custom floating-point representation with a
 * single sign bit, ten exponent bits, and five fraction bits, to cover
 * the huge dynamic range of e^x. CustomFloat models the format's
 * quantization: values round to the nearest representable number and
 * saturate at the format's limits.
 *
 * The format is constexpr end to end: compile-time tests pin the bias,
 * the saturation magnitude, the subnormal flush, and the rounding
 * behaviour in static_assert (tests/fixed_test.cc). The runtime path
 * is bit-identical to the previous out-of-line implementation -- the
 * fixed_detail helpers fall through to the same libm calls outside
 * constant evaluation.
 */

#include "fixed/constexpr_math.h"
#include "fixed/saturation.h"

namespace elsa {

/** Parameters of a sign/exponent/fraction custom float format. */
struct CustomFloatFormat
{
    int exponent_bits = 10;
    int fraction_bits = 5;

    /** Exponent bias; follows the IEEE convention 2^(E-1) - 1. */
    constexpr int bias() const { return (1 << (exponent_bits - 1)) - 1; }

    /** Largest finite representable magnitude. */
    constexpr double
    maxMagnitude() const
    {
        // Largest exponent (all-ones reserved would be the IEEE
        // convention; the ELSA unit does not need infinities, so we
        // use the full range).
        const int max_exp = (1 << exponent_bits) - 1 - bias();
        const double max_mantissa =
            2.0 - fixed_detail::scaleByPow2(1.0, -fraction_bits);
        return fixed_detail::scaleByPow2(max_mantissa, max_exp);
    }

    /** Smallest positive normal magnitude. */
    constexpr double
    minNormal() const
    {
        return fixed_detail::scaleByPow2(1.0, -bias());
    }
};

/** The format used by the ELSA pipeline: 1 sign / 10 exponent / 5 frac. */
inline constexpr CustomFloatFormat kElsaFloatFormat{10, 5};

/**
 * Quantize a double to the given custom float format (round to
 * nearest, saturate to the largest finite value, flush subnormals
 * to zero, preserve sign).
 */
constexpr double
quantizeToCustomFloat(double value,
                      const CustomFloatFormat& format = kElsaFloatFormat)
{
    if (value == 0.0 || !fixed_detail::isFinite(value)) {
        if (!fixed_detail::isFinite(value)) {
            noteCustomFloatSaturation();
            return fixed_detail::copySign(format.maxMagnitude(), value);
        }
        return 0.0;
    }
    const double magnitude = fixed_detail::absValue(value);
    if (magnitude >= format.maxMagnitude()) {
        // Exactly maxMagnitude is representable, not clipped.
        if (magnitude > format.maxMagnitude()) {
            noteCustomFloatSaturation();
        }
        return fixed_detail::copySign(format.maxMagnitude(), value);
    }
    if (magnitude < format.minNormal()) {
        // Flush to zero; the ELSA pipeline has no subnormal support.
        return 0.0;
    }
    int exp = 0;
    const double mantissa =
        fixed_detail::normalizedFraction(magnitude, exp); // in [0.5, 1)
    // Normalize mantissa to [1, 2) with exponent exp - 1.
    const double m = mantissa * 2.0;
    const double scale = fixed_detail::scaleByPow2(1.0, format.fraction_bits);
    const double rounded =
        fixed_detail::roundTiesToEven((m - 1.0) * scale) / scale + 1.0;
    return fixed_detail::copySign(fixed_detail::scaleByPow2(rounded, exp - 1),
                                  value);
}

/**
 * A value held in a custom float format.
 *
 * The value is stored as the already-quantized double, plus the format,
 * so downstream arithmetic can be carried out in double precision and
 * re-quantized at each stage boundary (which is what the hardware's
 * normalize-and-round steps do).
 */
class CustomFloat
{
  public:
    CustomFloat() = default;

    /** Quantize a real value into the given format. */
    static constexpr CustomFloat
    fromReal(double value, const CustomFloatFormat& format = kElsaFloatFormat)
    {
        CustomFloat cf;
        cf.format_ = format;
        cf.value_ = quantizeToCustomFloat(value, format);
        return cf;
    }

    /** The represented (already quantized) value. */
    constexpr double toReal() const { return value_; }

    /** Sum with re-quantization, as the accumulator hardware performs. */
    constexpr CustomFloat
    add(const CustomFloat& other) const
    {
        return fromReal(value_ + other.value_, format_);
    }

    /** Product with re-quantization. */
    constexpr CustomFloat
    mul(const CustomFloat& other) const
    {
        return fromReal(value_ * other.value_, format_);
    }

    constexpr const CustomFloatFormat& format() const { return format_; }

  private:
    double value_ = 0.0;
    CustomFloatFormat format_ = kElsaFloatFormat;
};

} // namespace elsa

#endif // ELSA_FIXED_CUSTOM_FLOAT_H_
