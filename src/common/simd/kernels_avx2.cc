/**
 * @file
 * AVX2 kernel specializations. This translation unit is the only
 * x86-intrinsics site in the tree (elsa-lint: no-raw-intrinsics); it
 * is compiled with -mavx2 -mpopcnt on x86-64 targets, and the table
 * is handed out only after a runtime __builtin_cpu_supports check,
 * so nothing here executes on CPUs without AVX2.
 *
 * Hamming distance uses the in-register nibble-LUT population count
 * (Mula's algorithm): PSHUFB maps each nibble to its popcount and
 * PSADBW horizontally sums the per-byte counts into four 64-bit
 * lanes. All operations are integer, so results are bit-identical
 * to the scalar table by construction.
 */

#include "common/simd/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace elsa::simd {

namespace {

/** Per-64-bit-lane popcount of a 256-bit vector. */
inline __m256i
popcount256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i counts =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                        _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

/**
 * One-word rows (the k <= 64 hot case, e.g. the paper's k = 64):
 * four keys are XOR'd and popcounted per vector op.
 */
void
hammingBatchOneWord(std::uint64_t query, const std::uint64_t* keys,
                    std::size_t num_rows, std::uint32_t* out)
{
    const __m256i q = _mm256_set1_epi64x(
        static_cast<long long>(query));
    std::size_t r = 0;
    for (; r + 4 <= num_rows; r += 4) {
        const __m256i k = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(keys + r));
        const __m256i counts = popcount256(_mm256_xor_si256(q, k));
        alignas(32) std::uint64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), counts);
        out[r + 0] = static_cast<std::uint32_t>(lanes[0]);
        out[r + 1] = static_cast<std::uint32_t>(lanes[1]);
        out[r + 2] = static_cast<std::uint32_t>(lanes[2]);
        out[r + 3] = static_cast<std::uint32_t>(lanes[3]);
    }
    for (; r < num_rows; ++r) {
        out[r] = static_cast<std::uint32_t>(
            __builtin_popcountll(query ^ keys[r]));
    }
}

void
hammingBatchAvx2(const std::uint64_t* query, const std::uint64_t* keys,
                 std::size_t words_per_row, std::size_t num_rows,
                 std::uint32_t* out)
{
    if (words_per_row == 1) {
        hammingBatchOneWord(query[0], keys, num_rows, out);
        return;
    }
    for (std::size_t r = 0; r < num_rows; ++r) {
        const std::uint64_t* row = keys + r * words_per_row;
        std::uint64_t distance = 0;
        std::size_t w = 0;
        if (words_per_row >= 4) {
            __m256i acc = _mm256_setzero_si256();
            for (; w + 4 <= words_per_row; w += 4) {
                const __m256i qv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(query + w));
                const __m256i kv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(row + w));
                acc = _mm256_add_epi64(
                    acc, popcount256(_mm256_xor_si256(qv, kv)));
            }
            alignas(32) std::uint64_t lanes[4];
            _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
            distance = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        }
        for (; w < words_per_row; ++w) {
            distance += static_cast<std::uint64_t>(
                __builtin_popcountll(query[w] ^ row[w]));
        }
        out[r] = static_cast<std::uint32_t>(distance);
    }
}

int
popcountWordsAvx2(const std::uint64_t* words, std::size_t n)
{
    std::uint64_t count = 0;
    std::size_t i = 0;
    if (n >= 4) {
        __m256i acc = _mm256_setzero_si256();
        for (; i + 4 <= n; i += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(words + i));
            acc = _mm256_add_epi64(acc, popcount256(v));
        }
        alignas(32) std::uint64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
        count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    }
    for (; i < n; ++i) {
        count += static_cast<std::uint64_t>(
            __builtin_popcountll(words[i]));
    }
    return static_cast<int>(count);
}

/**
 * Sign packing: VCMPPS/VCMPPD with the ordered greater-equal
 * predicate reproduces the scalar `v >= 0` exactly (NaN compares
 * false, -0.0 compares true); MOVMSKPS/PD extracts the mask bits.
 */
void
signPackF32Avx2(const float* v, std::size_t n, std::uint64_t* out)
{
    const __m256 zero = _mm256_setzero_ps();
    const std::size_t words = (n + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
        out[w] = 0;
    }
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(v + i);
        const int mask = _mm256_movemask_ps(
            _mm256_cmp_ps(x, zero, _CMP_GE_OQ));
        out[i / 64] |= static_cast<std::uint64_t>(
                           static_cast<unsigned>(mask))
                       << (i % 64);
    }
    for (; i < n; ++i) {
        if (v[i] >= 0.0f) {
            out[i / 64] |= std::uint64_t{1} << (i % 64);
        }
    }
}

void
signPackF64Avx2(const double* v, std::size_t n, std::uint64_t* out)
{
    const __m256d zero = _mm256_setzero_pd();
    const std::size_t words = (n + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
        out[w] = 0;
    }
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d x = _mm256_loadu_pd(v + i);
        const int mask = _mm256_movemask_pd(
            _mm256_cmp_pd(x, zero, _CMP_GE_OQ));
        out[i / 64] |= static_cast<std::uint64_t>(
                           static_cast<unsigned>(mask))
                       << (i % 64);
    }
    for (; i < n; ++i) {
        if (v[i] >= 0.0) {
            out[i / 64] |= std::uint64_t{1} << (i % 64);
        }
    }
}

const KernelTable kAvx2Table = {
    SimdLevel::kAvx2, "avx2",        hammingBatchAvx2,
    popcountWordsAvx2, signPackF32Avx2, signPackF64Avx2,
};

} // namespace

const KernelTable*
avx2KernelsOrNull()
{
    // The build compiled AVX2 code; only hand it out when the CPU
    // can actually execute it. The check itself is plain code.
    return __builtin_cpu_supports("avx2") ? &kAvx2Table : nullptr;
}

} // namespace elsa::simd

#else // !defined(__AVX2__)

namespace elsa::simd {

const KernelTable*
avx2KernelsOrNull()
{
    return nullptr;
}

} // namespace elsa::simd

#endif // defined(__AVX2__)
