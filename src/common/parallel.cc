#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <iterator>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace elsa {

namespace {

/**
 * One parallelFor invocation. Lives on the caller's stack; workers
 * only touch it between taking a chunk and releasing the last
 * reference under `m`, so the caller can destroy it as soon as
 * `remaining` reaches zero (observed under `m`).
 */
struct Job
{
    const std::function<void(std::size_t)>* fn = nullptr;

    /** Unfinished chunks; guarded by m so completion can be awaited. */
    std::size_t remaining = 0;
    std::mutex m;
    std::condition_variable done_cv;

    /** Set on the first exception; later indices are skipped. */
    std::atomic<bool> cancelled{false};
    /** First exception raised by fn; guarded by m. */
    std::exception_ptr exception;
};

/** A contiguous index range of one job. */
struct Chunk
{
    Job* job = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
};

/** One worker slot's mutex-guarded deque. */
struct Slot
{
    std::mutex m;
    std::deque<Chunk> q;
};

/**
 * Pool identity of the calling thread: which pool's worker it is
 * (nullptr for external threads) and its slot index there. Used to
 * route nested parallelFor chunks onto the worker's own deque.
 */
thread_local const void* tls_pool = nullptr;
thread_local std::size_t tls_slot = 0;

} // namespace

struct ThreadPool::Impl
{
    std::size_t slots = 1;
    /** Slot 0 belongs to external callers; workers own 1..slots-1. */
    std::vector<Slot> deques;
    std::vector<std::thread> workers;

    /** Sleeping-worker coordination. */
    std::mutex wake_m;
    std::condition_variable wake_cv;
    bool stop = false;
    /** Queued (unclaimed) chunks across all deques. */
    std::atomic<std::size_t> queued{0};

    explicit Impl(std::size_t n) : slots(n), deques(n)
    {
        workers.reserve(slots - 1);
        for (std::size_t s = 1; s < slots; ++s) {
            workers.emplace_back([this, s] { workerLoop(s); });
        }
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> lk(wake_m);
            stop = true;
        }
        wake_cv.notify_all();
        for (std::thread& t : workers) {
            t.join();
        }
    }

    /**
     * Pop from the slot's own front, else steal from others' backs.
     *
     * With `only` set, chunks of other jobs are left in place. A
     * thread joining job J must never run an unrelated task on its
     * stack: the join may sit inside a non-reentrant region (e.g.
     * the std::call_once cell a cache is filling J under), and an
     * outer task re-entering that region on the same thread
     * deadlocks against itself. Idle workers (workerLoop) pass
     * nullptr and take anything.
     */
    bool tryGet(std::size_t self, Chunk& out,
                const Job* only = nullptr)
    {
        {
            std::lock_guard<std::mutex> lk(deques[self].m);
            std::deque<Chunk>& q = deques[self].q;
            for (auto it = q.begin(); it != q.end(); ++it) {
                if (only == nullptr || it->job == only) {
                    out = *it;
                    q.erase(it);
                    queued.fetch_sub(1, std::memory_order_relaxed);
                    return true;
                }
            }
        }
        for (std::size_t off = 1; off < slots; ++off) {
            Slot& victim = deques[(self + off) % slots];
            std::lock_guard<std::mutex> lk(victim.m);
            std::deque<Chunk>& q = victim.q;
            for (auto it = q.rbegin(); it != q.rend(); ++it) {
                if (only == nullptr || it->job == only) {
                    out = *it;
                    q.erase(std::next(it).base());
                    queued.fetch_sub(1, std::memory_order_relaxed);
                    return true;
                }
            }
        }
        return false;
    }

    /** Run one chunk and retire it against its job. */
    void execute(const Chunk& chunk)
    {
        Job* job = chunk.job;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            if (job->cancelled.load(std::memory_order_relaxed)) {
                break;
            }
            try {
                (*job->fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(job->m);
                if (job->exception == nullptr) {
                    job->exception = std::current_exception();
                }
                job->cancelled.store(true,
                                     std::memory_order_relaxed);
            }
        }
        // Retire under the job mutex: once `remaining` is observed
        // as 0 (necessarily after this unlock), the caller may
        // destroy the job, so nothing touches it afterwards.
        std::lock_guard<std::mutex> lk(job->m);
        if (--job->remaining == 0) {
            job->done_cv.notify_all();
        }
    }

    void workerLoop(std::size_t slot)
    {
        tls_pool = this;
        tls_slot = slot;
        for (;;) {
            Chunk chunk;
            if (tryGet(slot, chunk)) {
                execute(chunk);
                continue;
            }
            std::unique_lock<std::mutex> lk(wake_m);
            wake_cv.wait(lk, [this] {
                return stop
                       || queued.load(std::memory_order_relaxed) > 0;
            });
            if (stop) {
                return;
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t num_threads)
{
    num_slots_ =
        num_threads == 0 ? configuredThreads() : num_threads;
    if (num_slots_ > 1) {
        impl_ = std::make_unique<Impl>(num_slots_);
    }
}

ThreadPool::~ThreadPool() = default;

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    if (n == 0) {
        return;
    }
    if (impl_ == nullptr || n == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    Impl& impl = *impl_;

    Job job;
    job.fn = &fn;

    // Several chunks per slot so uneven per-index work balances via
    // stealing; chunk boundaries never affect results (fn(i) runs
    // exactly once per index regardless of placement).
    const std::size_t target = num_slots_ * 4;
    const std::size_t grain = (n + target - 1) / target;
    const std::size_t num_chunks = (n + grain - 1) / grain;
    job.remaining = num_chunks;

    // A worker pushes onto its own deque (it pops from the front,
    // idle workers steal from the back); external callers use the
    // shared slot 0.
    const std::size_t self =
        tls_pool == impl_.get() ? tls_slot : 0;
    {
        std::lock_guard<std::mutex> lk(impl.deques[self].m);
        for (std::size_t c = 0; c < num_chunks; ++c) {
            const std::size_t begin = c * grain;
            impl.deques[self].q.push_back(
                {&job, begin, std::min(n, begin + grain)});
        }
    }
    impl.queued.fetch_add(num_chunks, std::memory_order_relaxed);
    impl.wake_cv.notify_all();

    // The caller contributes until its job retires. It only ever
    // executes chunks of ITS OWN job (see tryGet): pulling a
    // different task onto this stack while e.g. a call_once is
    // active above us could re-enter that call_once and deadlock.
    for (;;) {
        Chunk chunk;
        if (impl.tryGet(self, chunk, &job)) {
            impl.execute(chunk);
            continue;
        }
        std::unique_lock<std::mutex> lk(job.m);
        if (job.remaining == 0) {
            break;
        }
        // Timed wait: chunks of this job may still be executing on
        // other slots while new stealable work appears.
        job.done_cv.wait_for(lk, std::chrono::microseconds(200));
        if (job.remaining == 0) {
            break;
        }
    }
    if (job.exception != nullptr) {
        std::rethrow_exception(job.exception);
    }
}

std::size_t
ThreadPool::currentSlot()
{
    return tls_slot;
}

namespace {

std::mutex g_global_pool_m;
std::unique_ptr<ThreadPool> g_global_pool;
std::size_t g_thread_override = 0;

/** ELSA_THREADS / hardware-concurrency default, clamped to >= 1. */
std::size_t
defaultThreads()
{
    // elsa-lint: allow(no-wallclock): ELSA_THREADS picks the worker count, which never changes results (docs/PARALLELISM.md determinism contract)
    if (const char* env = std::getenv("ELSA_THREADS")) {
        char* end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && value > 0) {
            return static_cast<std::size_t>(value);
        }
        ELSA_LOG_WARN("ignoring invalid ELSA_THREADS='" << env
                                                        << "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

} // namespace

std::size_t
ThreadPool::configuredThreads()
{
    {
        std::lock_guard<std::mutex> lk(g_global_pool_m);
        if (g_thread_override > 0) {
            return g_thread_override;
        }
    }
    return defaultThreads();
}

ThreadPool&
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(g_global_pool_m);
    if (g_global_pool == nullptr) {
        const std::size_t threads = g_thread_override > 0
                                        ? g_thread_override
                                        : defaultThreads();
        g_global_pool = std::make_unique<ThreadPool>(threads);
    }
    return *g_global_pool;
}

void
ThreadPool::setGlobalThreads(std::size_t n)
{
    std::lock_guard<std::mutex> lk(g_global_pool_m);
    g_thread_override = n;
    // Recreated lazily by the next global() call. The caller must
    // ensure no global-pool job is in flight (see header).
    g_global_pool.reset();
}

} // namespace elsa
