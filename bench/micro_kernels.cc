/**
 * @file
 * Google-benchmark microbenchmarks of the hot software kernels:
 * hashing (dense vs Kronecker), Hamming distance, candidate
 * selection, exact vs approximate attention, and the LUT functional
 * units. These quantify the software-side cost the paper discusses
 * in Section IV-A (a GPU/CPU cannot profit from the approximation;
 * the specialized datapath can).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "attention/approx.h"
#include "attention/exact.h"
#include "bench_common.h"
#include "attention/exact.h"
#include "attention/threshold.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd/simd.h"
#include "fixed/units.h"
#include "lsh/calibration.h"
#include "lsh/candidates.h"
#include "lsh/srp.h"
#include "workload/generator.h"
#include "workload/model.h"

namespace {

using namespace elsa;

AttentionInput
benchInput(std::size_t n)
{
    QkvGenerator gen(bertLarge(), 99);
    return gen.generate(11, 3, n, 0);
}

void
BM_DenseHash(benchmark::State& state)
{
    Rng rng(1);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    const AttentionInput input = benchInput(64);
    for (auto _ : state) {
        for (std::size_t r = 0; r < 64; ++r) {
            benchmark::DoNotOptimize(hasher.hash(input.key.row(r)));
        }
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DenseHash);

void
BM_KroneckerHash(benchmark::State& state)
{
    Rng rng(1);
    const auto hasher = KroneckerSrpHasher::makeRandom(64, 3, rng);
    const AttentionInput input = benchInput(64);
    for (auto _ : state) {
        for (std::size_t r = 0; r < 64; ++r) {
            benchmark::DoNotOptimize(hasher.hash(input.key.row(r)));
        }
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_KroneckerHash);

void
BM_HammingDistance(benchmark::State& state)
{
    // The hot-path idiom: keys packed in one HashMatrix, distances
    // computed by the dispatched batch kernel.
    Rng rng(2);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    const AttentionInput input = benchInput(128);
    const HashMatrix hashes = hasher.hashMatrix(input.key);
    const HashValue q = hasher.hash(input.query.row(0));
    std::vector<std::uint32_t> distances(hashes.rows());
    for (auto _ : state) {
        hammingDistanceBatch(q, hashes, 0, hashes.rows(),
                             distances.data());
        benchmark::DoNotOptimize(distances.data());
    }
    state.SetItemsProcessed(state.iterations() * hashes.rows());
    state.SetLabel(simd::kernels().name);
}
BENCHMARK(BM_HammingDistance);

void
BM_HammingDistancePairwise(benchmark::State& state)
{
    // The pre-batching idiom (one hammingDistance call per pair),
    // kept as the reference point for the batch kernel's win.
    Rng rng(2);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    const AttentionInput input = benchInput(128);
    const auto hashes = hasher.hashRows(input.key);
    const HashValue q = hasher.hash(input.query.row(0));
    for (auto _ : state) {
        int total = 0;
        for (const auto& h : hashes) {
            total += hammingDistance(q, h);
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() * hashes.size());
}
BENCHMARK(BM_HammingDistancePairwise);

void
BM_CandidateSelection(benchmark::State& state)
{
    Rng rng(3);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng));
    ApproxSelfAttention engine(hasher, kThetaBias64);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const AttentionInput input = benchInput(n);
    const KeyPreprocessing prep = engine.preprocessKeys(input.key);
    const HashValue q = hasher->hash(input.query.row(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine.selectCandidates(q, prep, 0.3));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CandidateSelection)->Arg(128)->Arg(512);

void
BM_ExactAttention(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const AttentionInput input = benchInput(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(exactAttention(input));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * 64);
}
BENCHMARK(BM_ExactAttention)->Arg(128)->Arg(256)->Arg(512);

void
BM_ApproxAttention(benchmark::State& state)
{
    Rng rng(4);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng));
    ApproxSelfAttention engine(hasher, kThetaBias64);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const AttentionInput input = benchInput(n);
    ThresholdLearner learner(1.0);
    learner.observe(input.query, input.key);
    const double t = learner.threshold();
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input, t));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * 64);
}
BENCHMARK(BM_ApproxAttention)->Arg(128)->Arg(256)->Arg(512);

void
BM_PoolDispatchOverhead(benchmark::State& state)
{
    // Fixed cost of fanning a trivial loop out over the pool: an
    // upper bound on how fine-grained parallelFor call sites may
    // reasonably be. Arg = pool slots (1 = the inline fast path).
    ThreadPool pool(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::size_t checksum = 0;
        pool.parallelFor(64, [&](std::size_t i) {
            benchmark::DoNotOptimize(i);
            if (i == 0) {
                checksum = 1;
            }
        });
        benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PoolDispatchOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_ParallelHammingThroughput(benchmark::State& state)
{
    // The array-simulation shape at microbenchmark scale: chunks of
    // independent Hamming scans fanned over the pool, results
    // written to their chunk index. Compare against the serial
    // BM_HammingDistance per-item time to read off the scaling on
    // the machine at hand. Arg = pool slots.
    Rng rng(2);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    const AttentionInput input = benchInput(256);
    const HashMatrix hashes = hasher.hashMatrix(input.key);
    const HashMatrix queries = hasher.hashMatrix(input.query);
    ThreadPool pool(static_cast<std::size_t>(state.range(0)));
    std::vector<int> totals(queries.rows());
    for (auto _ : state) {
        pool.parallelFor(queries.rows(), [&](std::size_t q) {
            std::uint32_t distances[256];
            hammingDistanceBatch(queries[q], hashes, 0, hashes.rows(),
                                 distances);
            int total = 0;
            for (std::size_t j = 0; j < hashes.rows(); ++j) {
                total += static_cast<int>(distances[j]);
            }
            totals[q] = total;
        });
        benchmark::DoNotOptimize(totals.data());
    }
    state.SetItemsProcessed(state.iterations() * queries.rows()
                            * hashes.rows());
    state.SetLabel(simd::kernels().name);
}
BENCHMARK(BM_ParallelHammingThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_ExpUnit(benchmark::State& state)
{
    const ExpUnit unit;
    double x = -10.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.compute(x));
        x += 0.001;
        if (x > 10.0) {
            x = -10.0;
        }
    }
}
BENCHMARK(BM_ExpUnit);

void
BM_SqrtUnit(benchmark::State& state)
{
    const SqrtUnit unit;
    double x = 0.1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.compute(x));
        x += 0.1;
        if (x > 1000.0) {
            x = 0.1;
        }
    }
}
BENCHMARK(BM_SqrtUnit);

} // namespace

/**
 * BENCHMARK_MAIN() expanded by hand so the binary can also emit the
 * standard BENCH_JSON summary. Google Benchmark owns the flag
 * namespace, so --manifest is stripped before Initialize() sees it.
 * Timings are machine-dependent and deliberately left out of the
 * manifest; the deterministic per-hash operation counts are the
 * comparable metrics.
 */
int
main(int argc, char** argv)
{
    std::string manifest_path;
    std::vector<char*> filtered;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--manifest") == 0
            && i + 1 < argc) {
            manifest_path = argv[++i];
        } else if (std::strncmp(argv[i], "--manifest=", 11) == 0) {
            manifest_path = argv[i] + 11;
        } else {
            filtered.push_back(argv[i]);
        }
    }
    int filtered_argc = static_cast<int>(filtered.size());
    benchmark::Initialize(&filtered_argc, filtered.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               filtered.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    elsa::Rng rng(1);
    const auto dense =
        elsa::DenseSrpHasher::makeRandom(64, 64, rng);
    const auto kron =
        elsa::KroneckerSrpHasher::makeRandom(64, 3, rng);
    elsa::obs::RunManifest manifest = elsa::bench::makeBenchManifest(
        "micro_kernels", elsa::bench::standardSystemConfig());
    manifest.set("metrics", "dense_mults_per_hash",
                 dense.multiplicationsPerHash());
    manifest.set("metrics", "kronecker_mults_per_hash",
                 kron.multiplicationsPerHash());
    elsa::bench::emitBenchSummary(manifest);
    if (!manifest_path.empty()) {
        manifest.writeFile(manifest_path, /*pretty=*/false);
    }
    return 0;
}
