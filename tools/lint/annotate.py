#!/usr/bin/env python3
"""Turn `elsa_lint --json` output into GitHub error annotations.

Reads the JSON findings document from stdin (or a file argument) and
emits one `::error` workflow command per finding, so CI failures show
up inline on the PR diff at the exact file and line. Exits 1 when
there is at least one finding, so the step that pipes into this
script is the gate itself.

Usage (CI):
    python3 tools/lint/elsa_lint.py --root . --json \
        | python3 tools/lint/annotate.py
"""

import json
import sys


def escape_property(value):
    """GitHub workflow-command property escaping (%, CR, LF, and the
    property separators)."""
    return (value.replace("%", "%25")
                 .replace("\r", "%0D")
                 .replace("\n", "%0A")
                 .replace(":", "%3A")
                 .replace(",", "%2C"))


def escape_data(value):
    """GitHub workflow-command message escaping."""
    return (value.replace("%", "%25")
                 .replace("\r", "%0D")
                 .replace("\n", "%0A"))


def annotate(doc, out):
    findings = doc.get("findings", [])
    for f in findings:
        out.write(
            "::error file=%s,line=%d,col=%d,title=%s::%s\n"
            % (escape_property(f["path"]),
               int(f["line"]),
               int(f["col"]),
               escape_property("elsa-lint[%s]" % f["rule"]),
               escape_data(f["message"])))
    count = doc.get("count", len(findings))
    if count:
        out.write("elsa-lint: %d finding(s)\n" % count)
        return 1
    out.write("elsa-lint: clean\n")
    return 0


def main(argv):
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    else:
        doc = json.load(sys.stdin)
    return annotate(doc, sys.stdout)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
