#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace elsa::obs {

std::string
jsonQuote(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value)) {
        return "null";
    }
    // Shortest representation that round-trips a double.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    double parsed = std::strtod(buf, nullptr);
    if (parsed == value) {
        for (int precision = 1; precision < 17; ++precision) {
            char shorter[32];
            std::snprintf(shorter, sizeof(shorter), "%.*g", precision,
                          value);
            if (std::strtod(shorter, nullptr) == value) {
                return shorter;
            }
        }
    }
    return buf;
}

// --- JsonWriter ------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

void
JsonWriter::newline()
{
    if (!pretty_) {
        return;
    }
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) {
        os_ << "  ";
    }
}

void
JsonWriter::beforeValue()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!stack_.empty()) {
        if (stack_.back()) {
            os_ << ',';
        }
        stack_.back() = true;
        newline();
    }
}

JsonWriter&
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    ELSA_ASSERT(!stack_.empty(), "endObject with no open container");
    const bool had_values = stack_.back();
    stack_.pop_back();
    if (had_values) {
        newline();
    }
    os_ << '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    ELSA_ASSERT(!stack_.empty(), "endArray with no open container");
    const bool had_values = stack_.back();
    stack_.pop_back();
    if (had_values) {
        newline();
    }
    os_ << ']';
    return *this;
}

JsonWriter&
JsonWriter::key(const std::string& name)
{
    ELSA_ASSERT(!stack_.empty(), "key() outside an object");
    if (stack_.back()) {
        os_ << ',';
    }
    stack_.back() = true;
    newline();
    os_ << jsonQuote(name) << (pretty_ ? ": " : ":");
    pending_key_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const std::string& s)
{
    beforeValue();
    os_ << jsonQuote(s);
    return *this;
}

JsonWriter&
JsonWriter::value(const char* s)
{
    return value(std::string(s));
}

JsonWriter&
JsonWriter::value(double v)
{
    beforeValue();
    os_ << jsonNumber(v);
    return *this;
}

JsonWriter&
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter&
JsonWriter::value(std::size_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter&
JsonWriter::value(bool b)
{
    beforeValue();
    os_ << (b ? "true" : "false");
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

// --- JsonValue / parser ----------------------------------------------

const JsonValue&
JsonValue::at(const std::string& name) const
{
    ELSA_CHECK(kind == Kind::kObject,
               "JSON .at(" << name << ") on a non-object");
    const auto it = object_items.find(name);
    ELSA_CHECK(it != object_items.end(),
               "JSON object has no member '" << name << "'");
    return it->second;
}

bool
JsonValue::has(const std::string& name) const
{
    return kind == Kind::kObject
           && object_items.find(name) != object_items.end();
}

namespace {

/** Recursive-descent JSON parser over a string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        ELSA_CHECK(pos_ == text_.size(),
                   "trailing characters after JSON document at offset "
                       << pos_);
        return v;
    }

  private:
    void
    skipWhitespace()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWhitespace();
        ELSA_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        ELSA_CHECK(peek() == c, "expected '" << c << "' at offset "
                                             << pos_ << ", got '"
                                             << text_[pos_] << "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char* literal)
    {
        const std::size_t len = std::string(literal).size();
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        switch (c) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::kString;
            v.string_value = parseString();
            return v;
        }
        case 't':
        case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::kBool;
            if (consumeLiteral("true")) {
                v.bool_value = true;
            } else if (consumeLiteral("false")) {
                v.bool_value = false;
            } else {
                ELSA_FATAL("malformed JSON literal at offset " << pos_);
            }
            return v;
        }
        case 'n': {
            ELSA_CHECK(consumeLiteral("null"),
                       "malformed JSON literal at offset " << pos_);
            return JsonValue{};
        }
        default: return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            ELSA_CHECK(pos_ < text_.size(),
                       "unterminated JSON string");
            const char c = text_[pos_++];
            if (c == '"') {
                break;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            ELSA_CHECK(pos_ < text_.size(), "dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'u': {
                ELSA_CHECK(pos_ + 4 <= text_.size(),
                           "truncated \\u escape");
                const unsigned long code = std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16);
                pos_ += 4;
                // Basic-multilingual-plane pass-through only; the
                // emitter never writes surrogate pairs.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default: ELSA_FATAL("bad JSON escape '\\" << esc << "'");
            }
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        skipWhitespace();
        const std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E')) {
            ++pos_;
        }
        ELSA_CHECK(pos_ > start,
                   "expected JSON value at offset " << start);
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        ELSA_CHECK(end != nullptr && *end == '\0',
                   "malformed JSON number '" << token << "'");
        JsonValue v;
        v.kind = JsonValue::Kind::kNumber;
        v.number_value = parsed;
        return v;
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::kObject;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            ELSA_CHECK(peek() == '"', "JSON object key must be a string");
            const std::string name = parseString();
            expect(':');
            v.object_items[name] = parseValue();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            break;
        }
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::kArray;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array_items.push_back(parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            break;
        }
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string& text)
{
    JsonParser parser(text);
    return parser.parseDocument();
}

} // namespace elsa::obs
