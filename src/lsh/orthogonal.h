#ifndef ELSA_LSH_ORTHOGONAL_H_
#define ELSA_LSH_ORTHOGONAL_H_

/**
 * @file
 * Orthogonal random projection generation (Section III-B).
 *
 * ELSA uses a variant of sign random projection whose k projection
 * vectors are orthogonalized with the modified Gram-Schmidt process.
 * Orthogonal projections avoid two random vectors pointing in similar
 * directions, which provably reduces the angle-estimation error
 * (super-bit LSH, Ji et al.). When k > d, batches of at most d
 * orthogonal vectors are generated independently.
 */

#include <cstddef>

#include "tensor/matrix.h"

namespace elsa {

class Rng;

/**
 * Orthonormalize the rows of m in place using the modified
 * Gram-Schmidt process. Rows must be linearly independent (which
 * random Gaussian rows are with probability 1); requires
 * rows <= cols.
 */
void modifiedGramSchmidt(Matrix& m);

/**
 * Generate a k x d matrix of random orthonormal projection rows.
 *
 * Rows are drawn i.i.d. N(0,1) and orthonormalized. When k > d, the
 * rows are produced in independent batches of at most d rows each
 * (rows within a batch are mutually orthogonal; rows across batches
 * are independent), following the super-bit construction.
 */
Matrix randomOrthogonalProjection(std::size_t k, std::size_t d, Rng& rng);

/**
 * Generate a random s x s orthogonal matrix (orthonormal rows and,
 * because it is square, orthonormal columns).
 */
Matrix randomOrthogonalSquare(std::size_t s, Rng& rng);

/**
 * Max absolute deviation of G = M * M^T from the identity over all
 * row pairs; a measure of orthonormality used by tests and
 * calibration sanity checks. Only meaningful when rows <= cols
 * (cross-batch rows of a k > d projection are independent, not
 * orthogonal).
 */
double orthonormalityError(const Matrix& m);

} // namespace elsa

#endif // ELSA_LSH_ORTHOGONAL_H_
