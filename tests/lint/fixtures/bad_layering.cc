// elsa-lint-pretend: src/tensor/bad_layering.cc
// Known-bad fixture: include edges the declared layering DAG does
// not allow; tensor may depend on common only.
#include "common/error.h"
#include "sim/config.h"    // BAD: undeclared edge tensor -> sim
#include "serve/engine.h"  // BAD: undeclared edge tensor -> serve

namespace elsa {
} // namespace elsa
