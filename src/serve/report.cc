#include "serve/report.h"

#include <string>

#include "obs/json.h"

namespace elsa {

namespace {

/** Emit {count, min, max, p50, p90, p95, p99} for one digest. */
void
writeDigestObject(obs::JsonWriter& w, const obs::QuantileDigest& d)
{
    w.beginObject();
    w.kv("count", d.count());
    if (d.count() > 0) {
        w.kv("min", d.min());
        w.kv("max", d.max());
        w.kv("p50", d.quantile(0.50));
        w.kv("p90", d.quantile(0.90));
        w.kv("p95", d.quantile(0.95));
        w.kv("p99", d.quantile(0.99));
    }
    w.endObject();
}

} // namespace

void
publishServeStats(const ServeResult& result,
                  obs::StatsRegistry& registry,
                  const std::string& prefix)
{
    auto count = [&](const char* suffix, std::uint64_t value) {
        registry.counter(prefix + suffix)
            .add(static_cast<double>(value));
    };
    count(".offered", result.offered);
    count(".admitted", result.admitted);
    count(".rejected", result.rejected);
    count(".completed", result.completed);
    count(".shed", result.shed);
    count(".failed", result.failed);
    registry.counter(prefix + ".shed.queue_drop")
        .add(static_cast<double>(result.shed_queue_drop));
    registry.counter(prefix + ".shed.deadline")
        .add(static_cast<double>(result.shed_deadline));
    count(".slo_violations", result.slo_violations);
    count(".faulty_attempts", result.faulty_attempts);
    registry.counter(prefix + ".retry.attempts")
        .add(static_cast<double>(result.retry_attempts));
    registry.counter(prefix + ".retry.backoff_cycles")
        .add(static_cast<double>(result.retry_backoff_cycles));
    count(".span_cycles", result.span_cycles);
    registry.counter(prefix + ".degradation.transitions")
        .add(static_cast<double>(result.degradation_transitions));
    for (std::size_t i = 0; i < result.levels.size(); ++i) {
        // Composed names ("serve.degradation.level0.dwell_cycles");
        // see the serve metric table in docs/OBSERVABILITY.md.
        const std::string level_prefix =
            prefix + ".degradation.level" + std::to_string(i);
        registry.counter(level_prefix + ".dwell_cycles")
            .add(static_cast<double>(
                result.levels[i].dwell_cycles));
        registry.counter(level_prefix + ".dispatched")
            .add(static_cast<double>(
                result.levels[i].dispatched));
    }

    // Derived SLO metrics are gauges: re-publishing overwrites them
    // with the latest run instead of accumulating nonsense sums.
    registry.counter(prefix + ".goodput_qps")
        .set(result.goodput_qps);
    registry.counter(prefix + ".shed_rate").set(result.shed_rate);
    registry.counter(prefix + ".deadline_miss_rate")
        .set(result.deadline_miss_rate);

    registry.digest(prefix + ".latency.request_cycles_digest")
        .merge(result.latency);
    registry.digest(prefix + ".queue_wait.request_cycles_digest")
        .merge(result.queue_wait);
}

void
writeServeJson(std::ostream& os, const ServeConfig& config,
               const ServeResult& result, bool pretty)
{
    obs::JsonWriter w(os, pretty);
    w.beginObject();

    w.key("config").beginObject();
    w.kv("admission", admissionPolicyName(config.admission));
    w.kv("num_accelerators", config.num_accelerators);
    w.kv("num_requests", config.num_requests);
    w.kv("queue_capacity", config.queue_capacity);
    w.kv("deadline_cycles", config.deadline_cycles);
    w.kv("base_p", config.base_p);
    w.kv("mean_interarrival_cycles",
         config.arrival.mean_interarrival_cycles);
    w.kv("fault_enabled", config.sim.fault.enabled);
    w.kv("max_attempts", config.retry.max_attempts);
    w.kv("degradation_enabled", config.degradation.enabled);
    w.key("ladder").beginArray();
    for (const double p : config.degradation.ladder) {
        w.value(p);
    }
    w.endArray();
    w.key("classes").beginArray();
    for (const RequestClassConfig& cls : config.classes) {
        w.beginObject();
        w.kv("model", cls.model.name);
        w.kv("sequence_length", cls.sequence_length);
        w.kv("weight", cls.weight);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("counts").beginObject();
    w.kv("offered", result.offered);
    w.kv("admitted", result.admitted);
    w.kv("rejected", result.rejected);
    w.kv("completed", result.completed);
    w.kv("shed", result.shed);
    w.kv("shed_queue_drop", result.shed_queue_drop);
    w.kv("shed_deadline", result.shed_deadline);
    w.kv("failed", result.failed);
    w.kv("slo_violations", result.slo_violations);
    w.kv("retry_attempts", result.retry_attempts);
    w.kv("retry_backoff_cycles", result.retry_backoff_cycles);
    w.kv("faulty_attempts", result.faulty_attempts);
    w.endObject();

    w.key("conservation").beginObject();
    w.kv("offered_eq_admitted_plus_rejected",
         result.conservesOffered());
    w.kv("admitted_eq_completed_plus_shed_plus_failed",
         result.conservesAdmitted());
    w.endObject();

    w.kv("span_cycles", result.span_cycles);

    w.key("degradation").beginObject();
    w.kv("transitions", result.degradation_transitions);
    w.key("levels").beginArray();
    for (const ServeLevelStats& level : result.levels) {
        w.beginObject();
        w.kv("p", level.p);
        w.kv("dwell_cycles", level.dwell_cycles);
        w.kv("entries", level.entries);
        w.kv("dispatched", level.dispatched);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("latency_cycles");
    writeDigestObject(w, result.latency);
    w.key("queue_wait_cycles");
    writeDigestObject(w, result.queue_wait);

    w.key("slo").beginObject();
    w.kv("deadline_cycles", config.deadline_cycles);
    w.kv("goodput_qps", result.goodput_qps);
    w.kv("shed_rate", result.shed_rate);
    w.kv("deadline_miss_rate", result.deadline_miss_rate);
    w.endObject();

    w.endObject();
    os << "\n";
}

} // namespace elsa
