#ifndef ELSA_FIXED_SATURATION_H_
#define ELSA_FIXED_SATURATION_H_

/**
 * @file
 * Observability hook for silent datapath saturation.
 *
 * FixedPoint::fromReal / fromRaw clamp to the format's range and
 * quantizeToCustomFloat saturates at the format's largest magnitude
 * -- exactly what the hardware does, and exactly the kind of numeric
 * clipping that is invisible in the output until accuracy quietly
 * degrades. This hook makes those events countable without touching
 * the number formats' semantics or their hot-path cost:
 *
 *  - a thread-local `SaturationCounters*` is consulted at every
 *    saturating quantization; detached (the default) the hook is one
 *    thread-local pointer test, and nothing is ever counted;
 *  - SaturationScope attaches a counter struct for the lifetime of a
 *    C++ scope (the simulator attaches one per run when
 *    SimConfig::count_saturations is set, and publishes the totals as
 *    the `fixed.saturations` / `cfloat.saturations` stats counters).
 *
 * Thread-locality keeps the hook race-free and deterministic under
 * the parallel array/system fan-outs: each worker thread counts the
 * saturations of the runs it executes, and the per-run totals are
 * merged through the same ordered reduction as every other result
 * field (docs/PARALLELISM.md).
 */

#include <cstdint>
#include <type_traits>

namespace elsa {

/** Saturation totals of one attachment scope. */
struct SaturationCounters
{
    /** FixedPoint range clamps (fromReal and fromRaw). */
    std::uint64_t fixed = 0;

    /** CustomFloat magnitude saturations (incl. non-finite inputs). */
    std::uint64_t cfloat = 0;
};

namespace saturation_detail {

/** The attached counters of this thread; null = counting disabled.
 *  Function-local so the thread_local is constant-initialized in the
 *  same comdat as its accessor -- a namespace-scope extern
 *  thread_local would be reached through the Itanium TLS wrapper,
 *  which GCC resolves to a null address across TUs under UBSan. */
inline SaturationCounters*&
attachedCounters()
{
    static thread_local SaturationCounters* tls_counters = nullptr;
    return tls_counters;
}

} // namespace saturation_detail

/** Record one fixed-point saturation (no-op when detached; no-op in
 *  constant evaluation, where no scope can be attached). */
constexpr void
noteFixedSaturation()
{
    if (std::is_constant_evaluated()) {
        return;
    }
    if (SaturationCounters* c = saturation_detail::attachedCounters()) {
        ++c->fixed;
    }
}

/** Record one custom-float saturation (no-op when detached; no-op in
 *  constant evaluation, where no scope can be attached). */
constexpr void
noteCustomFloatSaturation()
{
    if (std::is_constant_evaluated()) {
        return;
    }
    if (SaturationCounters* c = saturation_detail::attachedCounters()) {
        ++c->cfloat;
    }
}

/**
 * RAII attachment of a SaturationCounters to the current thread.
 * Scopes nest: the previous attachment (if any) is restored on exit,
 * and only the innermost scope counts.
 */
class SaturationScope
{
  public:
    explicit SaturationScope(SaturationCounters* counters)
        : previous_(saturation_detail::attachedCounters())
    {
        saturation_detail::attachedCounters() = counters;
    }

    ~SaturationScope()
    {
        saturation_detail::attachedCounters() = previous_;
    }

    SaturationScope(const SaturationScope&) = delete;
    SaturationScope& operator=(const SaturationScope&) = delete;

  private:
    SaturationCounters* previous_;
};

} // namespace elsa

#endif // ELSA_FIXED_SATURATION_H_
