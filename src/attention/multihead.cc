#include "attention/multihead.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"

namespace elsa {

void
MultiHeadWeights::validate() const
{
    ELSA_CHECK(!w_query.empty(),
               "w_query is empty; layer needs at least one head");
    ELSA_CHECK(w_key.size() == w_query.size()
                   && w_value.size() == w_query.size(),
               "w_key/w_value head counts differ from w_query");
    const std::size_t hidden = w_query[0].rows();
    const std::size_t d = w_query[0].cols();
    ELSA_CHECK(hidden > 0 && d > 0,
               "w_query projection weights are empty");
    for (std::size_t h = 0; h < w_query.size(); ++h) {
        for (const Matrix* w : {&w_query[h], &w_key[h], &w_value[h]}) {
            ELSA_CHECK(w->rows() == hidden && w->cols() == d,
                       "w_query/w_key/w_value head "
                           << h << " projection is " << w->rows()
                           << "x" << w->cols() << ", expected "
                           << hidden << "x" << d);
        }
    }
    ELSA_CHECK(w_output.rows() == w_query.size() * d,
               "output projection rows " << w_output.rows()
                                         << " != heads*d");
    ELSA_CHECK(w_output.cols() == hidden,
               "output projection cols " << w_output.cols()
                                         << " != hidden " << hidden);
}

double
MultiHeadStats::meanCandidateFraction() const
{
    if (candidate_fraction.empty()) {
        return 1.0;
    }
    double sum = 0.0;
    for (const double f : candidate_fraction) {
        sum += f;
    }
    return sum / static_cast<double>(candidate_fraction.size());
}

MultiHeadAttention::MultiHeadAttention(MultiHeadWeights weights)
    : weights_(std::move(weights))
{
    weights_.validate();
}

MultiHeadAttention
MultiHeadAttention::makeRandom(std::size_t hidden, std::size_t num_heads,
                               std::size_t head_dim, Rng& rng)
{
    ELSA_CHECK(hidden > 0 && num_heads > 0 && head_dim > 0,
               "dimensions must be positive");
    const auto scale = static_cast<float>(
        1.0 / std::sqrt(static_cast<double>(hidden)));
    MultiHeadWeights weights;
    auto random_projection = [&] {
        Matrix w(hidden, head_dim);
        w.fillGaussian(rng, 0.0f, scale);
        return w;
    };
    for (std::size_t h = 0; h < num_heads; ++h) {
        weights.w_query.push_back(random_projection());
        weights.w_key.push_back(random_projection());
        weights.w_value.push_back(random_projection());
    }
    weights.w_output = Matrix(num_heads * head_dim, hidden);
    weights.w_output.fillGaussian(
        rng, 0.0f,
        static_cast<float>(
            1.0 / std::sqrt(static_cast<double>(num_heads * head_dim))));
    return MultiHeadAttention(std::move(weights));
}

AttentionInput
MultiHeadAttention::projectHead(const Matrix& hidden,
                                std::size_t head) const
{
    ELSA_CHECK(head < numHeads(), "head index out of range");
    ELSA_CHECK(hidden.cols() == hiddenDim(),
               "input hidden size " << hidden.cols() << " != "
                                    << hiddenDim());
    AttentionInput input;
    input.query = matmul(hidden, weights_.w_query[head]);
    input.key = matmul(hidden, weights_.w_key[head]);
    input.value = matmul(hidden, weights_.w_value[head]);
    return input;
}

Matrix
MultiHeadAttention::combineHeads(
    const std::vector<Matrix>& head_outputs) const
{
    const std::size_t n = head_outputs[0].rows();
    const std::size_t d = head_outputs[0].cols();
    Matrix concat(n, numHeads() * d);
    for (std::size_t h = 0; h < numHeads(); ++h) {
        for (std::size_t i = 0; i < n; ++i) {
            const float* src = head_outputs[h].row(i);
            float* dst = concat.row(i) + h * d;
            std::copy(src, src + d, dst);
        }
    }
    return matmul(concat, weights_.w_output);
}

MultiHeadResult
MultiHeadAttention::forward(const Matrix& hidden) const
{
    std::vector<Matrix> head_outputs;
    head_outputs.reserve(numHeads());
    for (std::size_t h = 0; h < numHeads(); ++h) {
        head_outputs.push_back(exactAttention(projectHead(hidden, h)));
    }
    MultiHeadResult result;
    result.output = combineHeads(head_outputs);
    return result;
}

void
MultiHeadAttention::learnThresholds(
    const Matrix& hidden, std::vector<ThresholdLearner>& learners) const
{
    ELSA_CHECK(learners.size() == numHeads(),
               "need one learner per head: " << learners.size()
                                             << " != " << numHeads());
    for (std::size_t h = 0; h < numHeads(); ++h) {
        const AttentionInput input = projectHead(hidden, h);
        learners[h].observe(input.query, input.key);
    }
}

MultiHeadResult
MultiHeadAttention::forwardApprox(
    const Matrix& hidden, const ApproxSelfAttention& engine,
    const std::vector<double>& thresholds) const
{
    ELSA_CHECK(thresholds.size() == numHeads(),
               "need one threshold per head: " << thresholds.size()
                                               << " != " << numHeads());
    std::vector<Matrix> head_outputs;
    head_outputs.reserve(numHeads());
    MultiHeadResult result;
    for (std::size_t h = 0; h < numHeads(); ++h) {
        const AttentionInput input = projectHead(hidden, h);
        const ApproxAttentionResult head =
            engine.run(input, thresholds[h]);
        result.stats.candidate_fraction.push_back(
            head.stats.candidateFraction(input.n()));
        head_outputs.push_back(head.output);
    }
    result.output = combineHeads(head_outputs);
    return result;
}

} // namespace elsa
