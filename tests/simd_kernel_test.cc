/**
 * @file
 * Property tests of the runtime-dispatched SIMD kernel layer
 * (src/common/simd/): every available kernel table must be
 * bit-identical to the scalar baseline on random inputs, including
 * non-word-multiple hash widths, empty and single-row key sets, and
 * exact IEEE sign-extraction edge cases (-0.0, NaN, denormals). Also
 * covers the dispatch surface itself -- availableLevels(),
 * resolveLevel() and the ELSA_SIMD forcing hook (the CTest
 * registration runs this binary a second time with ELSA_SIMD=scalar;
 * see tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd/simd.h"
#include "lsh/bitvector.h"
#include "lsh/candidates.h"
#include "lsh/srp.h"

namespace elsa {
namespace {

/** Every table the dispatcher could ever hand out on this machine. */
std::vector<const simd::KernelTable*>
allTables()
{
    std::vector<const simd::KernelTable*> tables;
    for (const simd::SimdLevel level : simd::availableLevels()) {
        tables.push_back(simd::kernelsFor(level));
    }
    return tables;
}

/** Random packed words with the tail of the last word masked. */
std::vector<std::uint64_t>
randomPackedRow(std::size_t bits, Rng& rng)
{
    std::vector<std::uint64_t> words(hashWordCount(bits), 0);
    for (std::uint64_t& w : words) {
        w = rng.next();
    }
    if (!words.empty()) {
        words.back() &= hashTailMask(bits);
    }
    return words;
}

TEST(SimdDispatchTest, ScalarAlwaysAvailableAndFirst)
{
    const auto levels = simd::availableLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), simd::SimdLevel::kScalar);
    EXPECT_EQ(simd::scalarKernels().level, simd::SimdLevel::kScalar);
    EXPECT_STREQ(simd::scalarKernels().name, "scalar");
    EXPECT_EQ(simd::kernelsFor(simd::SimdLevel::kScalar),
              &simd::scalarKernels());
}

TEST(SimdDispatchTest, EveryAvailableTableIsComplete)
{
    for (const simd::KernelTable* table : allTables()) {
        ASSERT_NE(table, nullptr);
        EXPECT_NE(table->name, nullptr);
        EXPECT_NE(table->hamming_batch, nullptr);
        EXPECT_NE(table->popcount_words, nullptr);
        EXPECT_NE(table->sign_pack_f32, nullptr);
        EXPECT_NE(table->sign_pack_f64, nullptr);
        EXPECT_STREQ(simd::levelName(table->level), table->name);
    }
}

TEST(SimdDispatchTest, ResolveLevelDefaultsToBestAvailable)
{
    EXPECT_EQ(simd::resolveLevel(nullptr),
              simd::availableLevels().back());
    EXPECT_EQ(simd::resolveLevel(""),
              simd::availableLevels().back());
}

TEST(SimdDispatchTest, ResolveLevelParsesEveryName)
{
    EXPECT_EQ(simd::resolveLevel("scalar"), simd::SimdLevel::kScalar);
    for (const simd::SimdLevel level : simd::availableLevels()) {
        EXPECT_EQ(simd::resolveLevel(simd::levelName(level)), level);
    }
}

TEST(SimdDispatchTest, ResolveLevelRejectsUnknownNames)
{
    EXPECT_THROW(simd::resolveLevel("sse2"), Error);
    EXPECT_THROW(simd::resolveLevel("AVX2"), Error);
    EXPECT_THROW(simd::resolveLevel("fastest"), Error);
}

TEST(SimdDispatchTest, ResolveLevelRejectsUnavailableLevels)
{
    // Exactly one of the vector ISAs can be compiled in, so the
    // other must be rejected as unavailable (not silently ignored).
    if (simd::avx2KernelsOrNull() == nullptr) {
        EXPECT_THROW(simd::resolveLevel("avx2"), Error);
    }
    if (simd::neonKernelsOrNull() == nullptr) {
        EXPECT_THROW(simd::resolveLevel("neon"), Error);
    }
}

TEST(SimdDispatchTest, ActiveTableHonoursElsaSimdOverride)
{
    // The forcing hook end to end: when the harness sets ELSA_SIMD
    // (the CTest registration runs this binary once without it and
    // once with ELSA_SIMD=scalar), the process-wide table must be
    // the forced one; otherwise it must be the best available.
    // elsa-lint: allow(no-wallclock): reads the harness's own SIMD forcing hook, the exact contract under test
    const char* forced = std::getenv("ELSA_SIMD");
    if (forced != nullptr && forced[0] != '\0') {
        EXPECT_EQ(simd::activeLevel(), simd::resolveLevel(forced));
        EXPECT_STREQ(simd::kernels().name, forced);
    } else {
        EXPECT_EQ(simd::activeLevel(),
                  simd::availableLevels().back());
    }
    EXPECT_EQ(&simd::kernels(),
              simd::kernelsFor(simd::activeLevel()));
}

TEST(SimdKernelPropertyTest, HammingBatchMatchesScalarRandomWidths)
{
    Rng rng(0xe15a);
    for (int round = 0; round < 40; ++round) {
        // Random width in [1, 512] with non-word-multiples common,
        // random key count including 0 and 1.
        const std::size_t bits = 1 + rng.uniformInt(512);
        const std::size_t rows =
            round < 3 ? static_cast<std::size_t>(round)
                      : rng.uniformInt(97);
        const std::size_t words = hashWordCount(bits);
        const auto query = randomPackedRow(bits, rng);
        std::vector<std::uint64_t> keys(rows * words);
        for (std::size_t r = 0; r < rows; ++r) {
            const auto row = randomPackedRow(bits, rng);
            std::memcpy(keys.data() + r * words, row.data(),
                        words * sizeof(std::uint64_t));
        }
        std::vector<std::uint32_t> expected(rows, 0);
        simd::scalarKernels().hamming_batch(query.data(), keys.data(),
                                            words, rows,
                                            expected.data());
        for (const simd::KernelTable* table : allTables()) {
            std::vector<std::uint32_t> got(rows, 0xdeadbeef);
            if (rows == 0) {
                got.assign(1, 7);
            }
            table->hamming_batch(query.data(), keys.data(), words,
                                 rows, got.data());
            if (rows == 0) {
                EXPECT_EQ(got[0], 7u)
                    << table->name << " wrote on empty input";
                continue;
            }
            EXPECT_EQ(got, expected)
                << table->name << " diverges at bits=" << bits
                << " rows=" << rows;
        }
    }
}

TEST(SimdKernelPropertyTest, PopcountWordsMatchesScalar)
{
    Rng rng(0xbeef);
    for (int round = 0; round < 30; ++round) {
        const std::size_t n = rng.uniformInt(40);
        std::vector<std::uint64_t> words(n);
        for (std::uint64_t& w : words) {
            w = rng.next();
        }
        const int expected =
            simd::scalarKernels().popcount_words(words.data(), n);
        for (const simd::KernelTable* table : allTables()) {
            EXPECT_EQ(table->popcount_words(words.data(), n),
                      expected)
                << table->name << " diverges at n=" << n;
        }
    }
}

template <typename T>
void
checkSignPack(void (*scalar)(const T*, std::size_t, std::uint64_t*),
              std::uint64_t seed)
{
    Rng rng(seed);
    const T special[] = {
        T{0},
        -T{0},
        std::numeric_limits<T>::quiet_NaN(),
        std::numeric_limits<T>::infinity(),
        -std::numeric_limits<T>::infinity(),
        std::numeric_limits<T>::denorm_min(),
        -std::numeric_limits<T>::denorm_min(),
    };
    for (int round = 0; round < 40; ++round) {
        const std::size_t n = rng.uniformInt(300);
        std::vector<T> values(n);
        for (T& v : values) {
            // Mostly random gaussians, sprinkled with IEEE edge
            // cases (the sign rule is v >= 0: -0.0 -> 1, NaN -> 0).
            if (rng.uniform() < 0.2) {
                v = special[rng.uniformInt(std::size(special))];
            } else {
                v = static_cast<T>(rng.gaussian());
            }
        }
        std::vector<std::uint64_t> expected(hashWordCount(n) + 1,
                                            0xffffffffffffffffULL);
        scalar(values.data(), n, expected.data());
        for (const simd::KernelTable* table : allTables()) {
            std::vector<std::uint64_t> got(hashWordCount(n) + 1,
                                           0xffffffffffffffffULL);
            if constexpr (sizeof(T) == sizeof(float)) {
                table->sign_pack_f32(values.data(), n, got.data());
            } else {
                table->sign_pack_f64(values.data(), n, got.data());
            }
            for (std::size_t w = 0; w < hashWordCount(n); ++w) {
                EXPECT_EQ(got[w], expected[w])
                    << table->name << " diverges at n=" << n
                    << " word " << w;
            }
            // The word past the packed range is untouched.
            EXPECT_EQ(got.back(), 0xffffffffffffffffULL)
                << table->name << " overran at n=" << n;
            if (hashWordCount(n) != 0) {
                EXPECT_EQ(got[hashWordCount(n) - 1]
                              & ~hashTailMask(n),
                          0u)
                    << table->name << " stray tail bits at n=" << n;
            }
        }
    }
}

TEST(SimdKernelPropertyTest, SignPackF32MatchesScalar)
{
    checkSignPack<float>(simd::scalarKernels().sign_pack_f32, 0xf32);
}

TEST(SimdKernelPropertyTest, SignPackF64MatchesScalar)
{
    checkSignPack<double>(simd::scalarKernels().sign_pack_f64, 0xf64);
}

TEST(SimdKernelPropertyTest, BatchHammingMatchesPairwiseOnHashes)
{
    // End to end through the public API: hashMatrix + batch kernel
    // against per-pair hammingDistance on the same hashes, at the
    // widths the batched hashers actually produce.
    Rng rng(7);
    for (const std::size_t bits : {1u, 63u, 64u, 65u, 128u, 257u}) {
        const std::size_t rows = 1 + rng.uniformInt(60);
        HashMatrix keys(rows, bits);
        HashValue query(bits);
        for (std::size_t i = 0; i < bits; ++i) {
            query.setBit(i, rng.uniform() < 0.5);
            for (std::size_t r = 0; r < rows; ++r) {
                keys.setBit(r, i, rng.uniform() < 0.5);
            }
        }
        const auto batch = hammingDistanceBatch(query, keys);
        ASSERT_EQ(batch.size(), rows);
        for (std::size_t r = 0; r < rows; ++r) {
            EXPECT_EQ(static_cast<int>(batch[r]),
                      hammingDistance(query, keys.row(r)))
                << "bits=" << bits << " row=" << r;
        }
    }
}

TEST(SimdKernelPropertyTest, HashMatrixMatchesPerRowHash)
{
    // The packed batched hasher against the historical per-row
    // hash(): identical bits, for both hasher families.
    Rng rng(21);
    const auto dense = DenseSrpHasher::makeRandom(48, 64, rng);
    const auto kron = KroneckerSrpHasher::makeRandom(64, 3, rng);
    Matrix input(10, 64);
    for (std::size_t r = 0; r < input.rows(); ++r) {
        for (std::size_t c = 0; c < input.cols(); ++c) {
            input.at(r, c) = static_cast<float>(rng.gaussian());
        }
    }
    for (const SrpHasher* hasher :
         {static_cast<const SrpHasher*>(&dense),
          static_cast<const SrpHasher*>(&kron)}) {
        const HashMatrix packed = hasher->hashMatrix(input);
        ASSERT_EQ(packed.rows(), input.rows());
        ASSERT_EQ(packed.bits(), hasher->bits());
        for (std::size_t r = 0; r < input.rows(); ++r) {
            EXPECT_EQ(packed.rowValue(r), hasher->hash(input.row(r)))
                << "row " << r;
        }
    }
}

} // namespace
} // namespace elsa
