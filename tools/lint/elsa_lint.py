#!/usr/bin/env python3
"""elsa-lint: project-specific static analysis for the ELSA repo.

The repo promises invariants that unit tests can only sample:
bit-identical results at any thread count, exact stall/fault counter
conservation, a datapath model that never leaks unquantized doubles,
and artifact schemas that three surfaces (C++ writers,
scripts/check_metrics.py, docs/) describe identically.  This pass
pins the *source-level* half of those promises -- the patterns that,
when they appear at all, break an invariant somewhere downstream --
so violations fail at lint time instead of surfacing as a flaky
metric diff months later.

The analyzer runs in two phases:

 1. *Index*: every file under src/ (plus bench/ and examples/
    literals, scripts/check_metrics.py + scripts/bench_compare.py,
    docs/*.md, tests/config_validation_test.cc, and the declared
    layer DAG in tools/lint/layering.toml) is parsed into a repo-wide
    index: the include graph, every ``*Config`` struct and its
    fields, every ``validate()`` body and the ELSA_CHECKs inside it,
    enum definitions with members, the ``case -> "metric"`` pairs of
    the stall/attribution name functions, and every JSON key literal
    written through JsonWriter::kv/key or RunManifest::set.

 2. *Rules*: per-file rules (the original six) plus cross-file rule
    families that consult the index: ``layering``,
    ``config-validation-coverage``, ``artifact-schema-drift``,
    ``stall-cause-exhaustive``, and ``error-message-discipline``.

Design constraints:

 - dependency-free: Python 3 stdlib only, no compiler, no pip;
 - deterministic: output ordering is (path, line, column, rule);
 - token/AST-lite: a small C++ lexer strips comments and string
   literals so rules match code, not prose, plus balanced-delimiter
   scanning for call arguments, struct/switch bodies, and the
   Python ``ast`` module for the checker scripts;
 - suppressable, with receipts: `// elsa-lint: allow(<rule>): <why>`
   on the offending line (or alone on the line above) silences one
   rule at one site; in Python sources the same directive works
   after a `#`.  A missing reason, an unknown rule id, or a
   suppression that never fires is itself a finding, so the
   suppression list cannot rot.

Rules are documented in docs/STATIC_ANALYSIS.md.  Run:

    python3 tools/lint/elsa_lint.py --root .
    python3 tools/lint/elsa_lint.py --root . --json
    python3 tools/lint/elsa_lint.py --root . --self-test tests/lint

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import ast
import json
import os
import re
import sys

try:
    import tomllib
except ImportError:  # pre-3.11; the mini-parser below takes over
    tomllib = None

# --------------------------------------------------------------------
# Lexing: blank out comments and literal contents, keep positions.
# --------------------------------------------------------------------


class Comment:
    __slots__ = ("line", "text", "trailing")

    def __init__(self, line, text, trailing):
        self.line = line          # 1-based line of the `//`
        self.text = text          # comment text without the `//`
        self.trailing = trailing  # code precedes it on the same line


class StringLiteral:
    __slots__ = ("line", "offset", "value")

    def __init__(self, line, offset, value):
        self.line = line      # 1-based
        self.offset = offset  # offset of the opening quote in the file
        self.value = value    # unescaped-enough: raw chars between quotes


def lex(text):
    """Return (code, literals, comments).

    `code` is the input with comment bodies and string/char literal
    contents replaced by spaces (newlines kept), so offsets and line
    numbers in `code` match the original exactly.
    """
    n = len(text)
    out = list(text)
    literals = []
    comments = []
    i = 0
    line = 1
    line_has_code = False

    def blank(j):
        if out[j] != "\n":
            out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            line += 1
            line_has_code = False
            i += 1
            continue
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                j += 1
            comments.append(
                Comment(line, text[i + 2 : j], line_has_code))
            for k in range(i, j):
                blank(k)
            i = j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            for k in range(i, j):
                blank(k)
            line += text.count("\n", i, j)
            i = j
            continue
        if c == '"':
            # Raw string literal?  `R"delim( ... )delim"`.
            if text[i - 1 : i] == "R" and (
                i < 2 or not text[i - 2].isalnum()
            ):
                m = re.match(r'R"([^ ()\\\n]{0,16})\(', text[i - 1 :])
                if m:
                    delim = m.group(1)
                    close = ")" + delim + '"'
                    j = text.find(close, i + len(m.group(0)) - 1)
                    j = n if j < 0 else j + len(close)
                    literals.append(
                        StringLiteral(
                            line, i,
                            text[i + len(m.group(0)) - 1 : j - len(close)],
                        ))
                    for k in range(i + 1, j - 1):
                        blank(k)
                    line += text.count("\n", i, j)
                    i = j
                    line_has_code = True
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            literals.append(StringLiteral(line, i, text[i + 1 : j]))
            for k in range(i + 1, j):
                blank(k)
            i = min(j + 1, n)
            line_has_code = True
            continue
        if c == "'":
            # C++14 digit separator: 1'000'000 is a number, not a char.
            if i > 0 and text[i - 1].isdigit() and nxt.isdigit():
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i + 1, j):
                blank(k)
            i = min(j + 1, n)
            line_has_code = True
            continue
        if not c.isspace():
            line_has_code = True
        i += 1
    return "".join(out), literals, comments


# --------------------------------------------------------------------
# Findings and suppressions.
# --------------------------------------------------------------------


class Finding:
    __slots__ = ("path", "line", "col", "rule", "message")

    def __init__(self, path, line, col, rule, message):
        self.path = path
        self.line = line
        self.col = col
        self.rule = rule
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s" % (
            self.path, self.line, self.rule, self.message)

    def to_dict(self):
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


SUPPRESS_RE = re.compile(
    r"elsa-lint:\s*allow\(\s*([A-Za-z0-9_,\s-]*)\s*\)\s*(?::\s*(\S.*))?")


class Suppression:
    __slots__ = ("line", "rules", "reason", "target_line", "used")

    def __init__(self, line, rules, reason, target_line):
        self.line = line
        self.rules = rules
        self.reason = reason
        self.target_line = target_line  # line the allowance applies to
        self.used = False


def interpret_directive(path, line_no, text, trailing, sups, metas):
    """Parse one comment body that mentions elsa-lint."""
    known = {r.rule_id for r in RULES} | set(META_RULES)
    m = SUPPRESS_RE.search(text)
    if not m:
        if "elsa-lint:" in text:
            metas.append(Finding(
                path, line_no, 1, "suppression-syntax",
                "unparsable elsa-lint directive; want "
                "`elsa-lint: allow(<rule>): <reason>`"))
        return
    rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
    reason = (m.group(2) or "").strip()
    target = line_no if trailing else line_no + 1
    if not rules:
        metas.append(Finding(
            path, line_no, 1, "suppression-syntax",
            "allow() names no rule"))
        return
    for rule in rules:
        if rule not in known:
            metas.append(Finding(
                path, line_no, 1, "suppression-unknown-rule",
                "allow(%s) names no known rule" % rule))
    if not reason:
        metas.append(Finding(
            path, line_no, 1, "suppression-missing-reason",
            "allow(%s) carries no reason; every suppression "
            "must say why the site is exempt" % ",".join(rules)))
    sups.append(Suppression(line_no, rules, reason, target))


def parse_suppressions(src):
    """Suppressions plus the meta-findings they themselves raise."""
    sups = []
    metas = []
    for comment in src.comments:
        if "elsa-lint-pretend:" in comment.text:
            continue
        interpret_directive(src.display_path, comment.line,
                            comment.text, comment.trailing,
                            sups, metas)
    return sups, metas


def parse_py_suppressions(rel, text):
    """The same allow() grammar, after a `#` in a Python source."""
    sups = []
    metas = []
    for line_no, line in enumerate(text.split("\n"), start=1):
        pos = line.find("#")
        if pos < 0 or "elsa-lint" not in line:
            continue
        trailing = bool(line[:pos].strip())
        interpret_directive(rel, line_no, line[pos + 1 :], trailing,
                            sups, metas)
    return sups, metas


# --------------------------------------------------------------------
# Per-file context.
# --------------------------------------------------------------------

PRETEND_RE = re.compile(r"elsa-lint-pretend:\s*(\S+)")
TREE_SCOPE = ("src/", "bench/", "examples/", "tests/")


class SourceFile:
    def __init__(self, path, rel, text):
        self.path = path
        self.text = text
        self.code, self.literals, self.comments = lex(text)
        self.code_lines = self.code.split("\n")
        # Fixtures under tests/lint/ impersonate a src/ path so the
        # scoping logic (src/fixed/ exemptions etc.) can be tested.
        self.rel = rel
        for comment in self.comments:
            m = PRETEND_RE.search(comment.text)
            if m:
                self.rel = m.group(1)
                break
        self.display_path = rel
        self._facts = None

    def in_dir(self, prefix):
        return self.rel.startswith(prefix)

    def in_tree(self):
        return self.rel.startswith(TREE_SCOPE)

    @property
    def facts(self):
        if self._facts is None:
            self._facts = extract_facts(self)
        return self._facts


def line_offsets(code):
    offsets = [0]
    for i, c in enumerate(code):
        if c == "\n":
            offsets.append(i + 1)
    return offsets


def offset_to_line(offsets, pos):
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def match_balanced(code, open_pos, open_ch="(", close_ch=")"):
    """Offset one past the delimiter matching code[open_pos]."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def split_args(code, open_pos, close_pos):
    """Spans of the top-level comma-separated args of a call."""
    spans = []
    depth = 0
    start = open_pos + 1
    for i in range(open_pos + 1, close_pos - 1):
        c = code[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            spans.append((start, i))
            start = i + 1
    spans.append((start, max(start, close_pos - 1)))
    return spans


IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")
WORD_SPLIT_RE = re.compile(r"[A-Za-z0-9_]+")


def word_tokens(text):
    return set(WORD_SPLIT_RE.findall(text))


# --------------------------------------------------------------------
# Phase 1: per-file fact extraction.
# --------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
INCLUDE_CODE_RE = re.compile(r'^\s*#\s*include\s*"')
STRUCT_RE = re.compile(r"\bstruct\s+(\w+)\s*(?::[^{;]*)?\{")
ENUM_DECL_RE = re.compile(r"\benum\s+(?:class|struct)\s+(\w+)")
VALIDATE_DEF_RE = re.compile(
    r"\b(\w+)::validate\s*\(\s*\)\s*const\s*\{")
INLINE_VALIDATE_RE = re.compile(
    r"(?<!:)\bvalidate\s*\(\s*\)\s*const\s*\{")
CHECK_CALL_RE = re.compile(r"\bELSA_(CHECK|FATAL)\s*\(")
JSON_CALL_RE = re.compile(r"(?:\.|->)\s*(kv|key|set)\s*\(")
CASE_LABEL_RE = re.compile(r"\bcase\s+(\w+)\s*::\s*(\w+)\s*:")

# The taxonomy functions whose case -> literal pairs must stay in
# lockstep with check_metrics.py and the docs (stall-cause-exhaustive).
TAXONOMY_FNS = {
    "stallCauseMetricName": "StallCause",
    "attributedModuleMetricName": "AttributedModule",
}

FIELD_SKIP_KEYWORDS = {
    "struct", "class", "enum", "using", "typedef", "friend",
    "static", "template", "public", "private", "protected",
}


class StructField:
    __slots__ = ("name", "line", "type_text")

    def __init__(self, name, line, type_text):
        self.name = name
        self.line = line
        self.type_text = type_text


class StructInfo:
    __slots__ = ("name", "line", "fields", "has_validate")

    def __init__(self, name, line, fields, has_validate):
        self.name = name
        self.line = line
        self.fields = fields
        self.has_validate = has_validate


class CheckCall:
    __slots__ = ("line", "tokens")

    def __init__(self, line, tokens):
        self.line = line
        self.tokens = tokens  # idents + literal words of the message


class ValidateBody:
    __slots__ = ("struct_name", "line", "tokens", "checks")

    def __init__(self, struct_name, line, tokens, checks):
        self.struct_name = struct_name
        self.line = line
        self.tokens = tokens  # idents + literal words of the body
        self.checks = checks


class MetricPair:
    __slots__ = ("fn", "member", "literal", "line")

    def __init__(self, fn, member, literal, line):
        self.fn = fn
        self.member = member
        self.literal = literal
        self.line = line


class FileFacts:
    __slots__ = ("rel", "includes", "structs", "enums", "validates",
                 "metric_pairs", "metric_fns", "json_keys")

    def __init__(self, rel):
        self.rel = rel
        self.includes = []       # (line, "module/file.h")
        self.structs = []        # StructInfo
        self.enums = []          # (name, [members], line)
        self.validates = []      # ValidateBody
        self.metric_pairs = []   # MetricPair
        self.metric_fns = []     # (fn, line, enum_name, {mapped})
        self.json_keys = []      # (key, line)


def _parse_includes(src):
    out = []
    raw_lines = src.text.split("\n")
    for i, code_line in enumerate(src.code_lines):
        if not INCLUDE_CODE_RE.match(code_line):
            continue
        m = INCLUDE_RE.match(raw_lines[i])
        if m:
            out.append((i + 1, m.group(1)))
    return out


def _struct_statements(body):
    """(text, start_offset) for each depth-0 declaration in a struct
    body.  Parenthesised parts collapse to a `(` marker and nested
    braces to a space, so field extraction sees flat declarations;
    inline member-function definitions are dropped whole."""
    out = []
    cur = []
    start = None
    i = 0
    n = len(body)
    while i < n:
        ch = body[i]
        if ch == "(":
            cur.append("(")
            i = match_balanced(body, i, "(", ")")
            continue
        if ch == "{":
            j = match_balanced(body, i, "{", "}")
            if "(" in cur:
                cur = []   # inline member function definition
                start = None
            else:
                cur.append(" ")  # brace initializer / nested type
            i = j
            continue
        if ch == ";":
            text = "".join(cur).strip()
            if text:
                out.append((text, start))
            cur = []
            start = None
            i += 1
            continue
        if start is None and not ch.isspace():
            start = i
        cur.append(ch)
        i += 1
    return out


def _field_from_statement(text):
    head = text.split("=", 1)[0].strip()
    if not head or "(" in head:
        return None
    first = re.match(r"[A-Za-z_]\w*", head)
    if first and first.group(0) in FIELD_SKIP_KEYWORDS:
        return None
    head = re.sub(r"\[[^\]]*\]\s*$", "", head).strip()
    m = re.search(r"([A-Za-z_]\w*)\s*$", head)
    if not m:
        return None
    name = m.group(1)
    type_text = head[: m.start()].strip()
    if not type_text:
        return None
    return name, type_text


def _message_tokens(src, lo, hi):
    tokens = word_tokens(src.code[lo:hi])
    for lit in src.literals:
        if lo <= lit.offset < hi:
            tokens |= word_tokens(lit.value)
    return tokens


def _extract_checks(src, lo, hi, offsets):
    checks = []
    for m in CHECK_CALL_RE.finditer(src.code, lo, hi):
        open_pos = src.code.index("(", m.end() - 1)
        close = match_balanced(src.code, open_pos)
        args = split_args(src.code, open_pos, close)
        if m.group(1) == "CHECK" and len(args) >= 2:
            span = (args[1][0], args[-1][1])
        else:
            span = (open_pos + 1, close - 1)
        checks.append(CheckCall(
            offset_to_line(offsets, m.start()),
            _message_tokens(src, span[0], span[1])))
    return checks


def _validate_body(src, struct_name, brace_pos, offsets):
    end = match_balanced(src.code, brace_pos, "{", "}")
    return ValidateBody(
        struct_name,
        offset_to_line(offsets, brace_pos),
        _message_tokens(src, brace_pos + 1, end - 1),
        _extract_checks(src, brace_pos + 1, end - 1, offsets))


def _parse_structs(src, offsets, facts):
    for m in STRUCT_RE.finditer(src.code):
        name = m.group(1)
        brace = m.end() - 1
        end = match_balanced(src.code, brace, "{", "}")
        body = src.code[brace + 1 : end - 1]
        fields = []
        has_validate = False
        for stmt, off in _struct_statements(body):
            if re.search(r"\bvalidate\s*\(", stmt):
                has_validate = True
            parsed = _field_from_statement(stmt)
            if parsed is None:
                continue
            fname, type_text = parsed
            abs_start = brace + 1 + (off or 0)
            window = src.code[abs_start : abs_start + 400]
            fm = re.search(r"\b%s\b" % re.escape(fname), window)
            pos = abs_start + (fm.start() if fm else 0)
            fields.append(StructField(
                fname, offset_to_line(offsets, pos), type_text))
        facts.structs.append(StructInfo(
            name, offset_to_line(offsets, m.start()), fields,
            has_validate))
        iv = INLINE_VALIDATE_RE.search(src.code, brace + 1, end - 1)
        if iv:
            facts.validates.append(_validate_body(
                src, name, iv.end() - 1, offsets))


def _parse_enums(src, offsets, facts):
    for m in ENUM_DECL_RE.finditer(src.code):
        brace = src.code.find("{", m.end())
        semi = src.code.find(";", m.end())
        if brace < 0 or (0 <= semi < brace):
            continue  # forward declaration
        end = match_balanced(src.code, brace, "{", "}")
        members = []
        for chunk in src.code[brace + 1 : end - 1].split(","):
            mm = re.match(r"\s*([A-Za-z_]\w*)", chunk)
            if mm:
                members.append(mm.group(1))
        facts.enums.append(
            (m.group(1), members, offset_to_line(offsets, m.start())))


def _parse_validate_defs(src, offsets, facts):
    for m in VALIDATE_DEF_RE.finditer(src.code):
        facts.validates.append(_validate_body(
            src, m.group(1), m.end() - 1, offsets))


def _parse_metric_fns(src, offsets, facts):
    lits = sorted(src.literals, key=lambda l: l.offset)
    for fname in sorted(TAXONOMY_FNS):
        for m in re.finditer(r"\b%s\s*\(" % fname, src.code):
            open_pos = src.code.index("(", m.end() - 1)
            close = match_balanced(src.code, open_pos)
            rest = src.code[close : close + 64]
            stripped = rest.lstrip()
            if not stripped.startswith("{"):
                continue  # a call site, not the definition
            brace = close + (len(rest) - len(stripped))
            end = match_balanced(src.code, brace, "{", "}")
            cases = [(brace + c.start(), c.group(1), c.group(2))
                     for c in CASE_LABEL_RE.finditer(
                         src.code[brace:end])]
            mapped = set()
            for idx, (pos, _enum, member) in enumerate(cases):
                mapped.add(member)
                upper = (cases[idx + 1][0]
                         if idx + 1 < len(cases) else end)
                lit = next((l for l in lits
                            if pos < l.offset < upper), None)
                if lit is not None:
                    facts.metric_pairs.append(MetricPair(
                        fname, member, lit.value,
                        offset_to_line(offsets, lit.offset)))
            facts.metric_fns.append((
                fname, offset_to_line(offsets, m.start()),
                TAXONOMY_FNS[fname], mapped))


def _parse_json_keys(src, offsets, facts):
    for m in JSON_CALL_RE.finditer(src.code):
        method = m.group(1)
        open_pos = src.code.index("(", m.end() - 1)
        close = match_balanced(src.code, open_pos)
        args = split_args(src.code, open_pos, close)
        key_spans = args[:2] if method == "set" else args[:1]
        for lo, hi in key_spans:
            for lit in src.literals:
                if lo <= lit.offset < hi and IDENT_RE.match(
                        lit.value):
                    facts.json_keys.append((
                        lit.value,
                        offset_to_line(offsets, lit.offset)))
    return facts


def extract_facts(src):
    facts = FileFacts(src.rel)
    offsets = line_offsets(src.code)
    facts.includes = _parse_includes(src)
    _parse_structs(src, offsets, facts)
    _parse_enums(src, offsets, facts)
    _parse_validate_defs(src, offsets, facts)
    _parse_metric_fns(src, offsets, facts)
    _parse_json_keys(src, offsets, facts)
    return facts


# --------------------------------------------------------------------
# Phase 1: the repo-wide index.
# --------------------------------------------------------------------

SCRIPT_RELS = ("scripts/check_metrics.py",
               "scripts/bench_compare.py")
TEST_COVERAGE_REL = "tests/config_validation_test.cc"
LAYERING_REL = "tools/lint/layering.toml"
LITERAL_DIRS = ("bench", "examples")


def analyze_script(rel, text):
    """(string-fragment tokens, [(rel, line, consumed key)])."""
    tokens = set()
    consumed = {}
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return tokens, []

    # Keys the script itself assembles in dict literals are its own
    # state (summary rows, report tables), not artifact schema keys.
    own_keys = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if isinstance(k, ast.Constant) and isinstance(
                        k.value, str):
                    own_keys.add(k.value)

    def note(node, value):
        # Single characters (Chrome-trace phase letters and the
        # like) are below the signal threshold for schema keys.
        if isinstance(value, str) and len(value) >= 2 \
                and IDENT_RE.match(value) \
                and value not in own_keys \
                and value not in consumed:
            consumed[value] = node.lineno

    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(
                node.value, str):
            tokens |= word_tokens(node.value)
        if isinstance(node, ast.Subscript) and isinstance(
                node.slice, ast.Constant):
            note(node, node.slice.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr == "get" and node.args \
                    and isinstance(node.args[0], ast.Constant):
                note(node, node.args[0].value)
        elif isinstance(node, ast.Compare):
            if len(node.ops) == 1 \
                    and isinstance(node.ops[0], (ast.In, ast.NotIn)) \
                    and isinstance(node.left, ast.Constant):
                note(node, node.left.value)
        elif isinstance(node, ast.Assign):
            # Curated schema vocabularies: UPPER_CASE module-level
            # lists/sets/tuples of string keys.
            names = [t.id for t in node.targets
                     if isinstance(t, ast.Name)]
            if names and all(n.isupper() for n in names) \
                    and isinstance(node.value,
                                   (ast.List, ast.Tuple, ast.Set)):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant):
                        note(elt, elt.value)
    return tokens, [
        (rel, line, key)
        for key, line in sorted(consumed.items(),
                                key=lambda kv: (kv[1], kv[0]))]


def load_layering(root):
    """(modules dict or None, [error strings])."""
    path = os.path.join(root, LAYERING_REL)
    if not os.path.exists(path):
        return None, ["%s is missing; the layering rule needs the "
                      "declared module DAG" % LAYERING_REL]
    text = read_text(path)
    modules = {}
    if tomllib is not None:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            return None, ["unparsable TOML: %s" % exc]
        for key, value in data.get("modules", {}).items():
            modules[key] = [str(v) for v in value]
    else:
        section = None
        for line in text.split("\n"):
            ls = line.split("#", 1)[0].strip()
            if ls.startswith("["):
                section = ls.strip("[]").strip()
                continue
            if section != "modules" or "=" not in ls:
                continue
            name, _eq, rest = ls.partition("=")
            modules[name.strip()] = re.findall(r'"([^"]+)"', rest)
    errors = []
    for mod in sorted(modules):
        for dep in modules[mod]:
            if dep not in modules:
                errors.append(
                    "[modules] %s depends on undeclared module "
                    "'%s'" % (mod, dep))
    # Kahn toposort: the declared graph must be acyclic, or the
    # "layered architecture" claim is word games.
    remaining = {m: set(d) & set(modules)
                 for m, d in modules.items()}
    while remaining:
        ready = sorted(m for m, d in remaining.items() if not d)
        if not ready:
            errors.append("[modules] dependency cycle among: %s"
                          % ", ".join(sorted(remaining)))
            break
        for m in ready:
            remaining.pop(m)
        for deps in remaining.values():
            deps.difference_update(ready)
    return modules, errors


class RepoIndex:
    def __init__(self):
        self.facts = {}               # rel -> FileFacts (src/ only)
        self.cpp_literal_tokens = set()
        self.script_tokens = set()
        self.script_consumed = []     # (rel, line, key)
        self.doc_tokens = set()
        self.obs_doc_text = None
        self.test_tokens = set()
        self.layering = None
        self.layering_errors = []
        self.src_modules = set()
        # Aggregates, recomputed by aggregate():
        self.enum_members = {}
        self.structs_by_name = {}
        self.validate_bodies = {}
        self.exempt_substructs = set()

    def add_source(self, src):
        if not src.rel.startswith("tests/"):
            for lit in src.literals:
                self.cpp_literal_tokens |= word_tokens(lit.value)
        if src.rel.startswith("src/"):
            self.facts[src.rel] = src.facts
            parts = src.rel.split("/")
            if len(parts) >= 3:
                self.src_modules.add(parts[1])

    def aggregate(self):
        self.enum_members = {}
        self.structs_by_name = {}
        self.validate_bodies = {}
        for rel in sorted(self.facts):
            facts = self.facts[rel]
            for name, members, _line in facts.enums:
                self.enum_members.setdefault(name, set()).update(
                    members)
            for info in facts.structs:
                self.structs_by_name[info.name] = (rel, info)
            for vb in facts.validates:
                self.validate_bodies.setdefault(vb.struct_name, vb)
        self.exempt_substructs = self._compute_exempt()

    def _compute_exempt(self):
        """Structs with no validate() of their own that a same-file
        validated config reaches through its fields (their leaves are
        obligations of the parent's validate())."""
        exempt = set()
        for name in self.validate_bodies:
            loc = self.structs_by_name.get(name)
            if loc is None:
                continue
            rel, info = loc
            same = {s.name: s for s in self.facts[rel].structs}
            seen = {name}
            stack = [info]
            while stack:
                s = stack.pop()
                for f in s.fields:
                    for t in sorted(word_tokens(f.type_text)):
                        if t in same and t not in seen \
                                and t not in self.validate_bodies:
                            seen.add(t)
                            exempt.add(t)
                            stack.append(same[t])
        return exempt

    def copy_with(self, src):
        clone = RepoIndex()
        clone.facts = dict(self.facts)
        clone.cpp_literal_tokens = set(self.cpp_literal_tokens)
        clone.script_tokens = self.script_tokens
        clone.script_consumed = self.script_consumed
        clone.doc_tokens = self.doc_tokens
        clone.obs_doc_text = self.obs_doc_text
        clone.test_tokens = self.test_tokens
        clone.layering = self.layering
        clone.layering_errors = list(self.layering_errors)
        clone.src_modules = set(self.src_modules)
        clone.add_source(src)
        clone.aggregate()
        return clone


def build_index(root, preloaded=()):
    index = RepoIndex()
    loaded = {s.rel: s for s in preloaded}
    index_dirs = ["src"] + [
        d for d in LITERAL_DIRS
        if os.path.isdir(os.path.join(root, d))]
    done = set()
    for path, rel in collect_files(root, index_dirs):
        src = loaded.get(rel)
        if src is None:
            src = SourceFile(path, rel, read_text(path))
        index.add_source(src)
        done.add(rel)
    for src in loaded.values():
        if src.rel not in done:
            index.add_source(src)
    for rel in SCRIPT_RELS:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        tokens, consumed = analyze_script(rel, read_text(path))
        index.script_tokens |= tokens
        index.script_consumed.extend(consumed)
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if not name.endswith(".md"):
                continue
            text = read_text(os.path.join(docs_dir, name))
            index.doc_tokens |= word_tokens(text)
            if name == "OBSERVABILITY.md":
                index.obs_doc_text = text
    test_path = os.path.join(root, TEST_COVERAGE_REL)
    if os.path.exists(test_path):
        index.test_tokens = word_tokens(read_text(test_path))
    index.layering, index.layering_errors = load_layering(root)
    for mod in sorted(index.src_modules):
        if index.layering is not None and mod not in index.layering:
            index.layering_errors.append(
                "src/%s/ is not declared in [modules]" % mod)
    index.aggregate()
    return index


def walk_config_fields(index, facts, root_info):
    """Yield (field, kind) for a validated config and the same-file
    sub-structs its fields reach.  kind is one of 'bool', 'enum',
    'validated' (type has its own validate()), 'substruct'
    (same-file struct folded into this validate()), or 'leaf'."""
    same = {s.name: s for s in facts.structs}
    enum_names = set(index.enum_members)
    validated = set(index.validate_bodies)
    seen = {root_info.name}
    stack = [root_info]
    while stack:
        s = stack.pop()
        for f in s.fields:
            ttokens = word_tokens(f.type_text)
            if "bool" in ttokens:
                kind = "bool"
            elif ttokens & enum_names:
                kind = "enum"
            elif ttokens & validated:
                kind = "validated"
            else:
                sub = next((t for t in sorted(ttokens)
                            if t in same and t != s.name), None)
                if sub is not None:
                    kind = "substruct"
                    if sub not in seen:
                        seen.add(sub)
                        stack.append(same[sub])
                else:
                    kind = "leaf"
            yield f, kind


def config_field_names(index, struct_name):
    loc = index.structs_by_name.get(struct_name)
    if loc is None:
        return set()
    rel, info = loc
    return {f.name for f, _kind in
            walk_config_fields(index, index.facts[rel], info)}


# --------------------------------------------------------------------
# Rule framework.
# --------------------------------------------------------------------


class Rule:
    rule_id = ""
    description = ""

    def check(self, src, ctx):
        raise NotImplementedError


META_RULES = (
    "suppression-syntax",
    "suppression-unknown-rule",
    "suppression-missing-reason",
    "suppression-unused",
)


def finding(src, line, col, rule, message):
    return Finding(src.display_path, line, col, rule, message)


def scan_lines(src, pattern, rule, message):
    for lineno, code_line in enumerate(src.code_lines, start=1):
        for m in pattern.finditer(code_line):
            yield finding(src, lineno, m.start() + 1, rule,
                          message % {"match": m.group(0).strip()})


# ---- determinism ----------------------------------------------------


class NoWallclockRule(Rule):
    rule_id = "no-wallclock"
    description = (
        "wall-clock, PRNG-seeding, and environment reads are banned "
        "in src/, bench/, examples/, and tests/: simulated results "
        "must be a pure function of the config "
        "(docs/PARALLELISM.md determinism contract)")

    PATTERN = re.compile(
        r"(?:\b\w*clock\s*::\s*now\s*\("
        r"|\bstd::time\b|(?<![\w:.])time\s*\("
        r"|\blocaltime\s*\(|\bgmtime\s*\(|\bgettimeofday\s*\("
        r"|\bclock_gettime\s*\("
        r"|\bstd::rand\b|(?<![\w:.])s?rand\s*\("
        r"|\brandom_device\b"
        r"|\bgetenv\s*\()")

    def check(self, src, ctx):
        if not src.in_tree():
            return
        yield from scan_lines(
            src, self.PATTERN, self.rule_id,
            "nondeterministic source `%(match)s`; results must "
            "depend only on the config (suppress with a reason if "
            "this site is genuinely host-timing or harness-only)")


class NoUnorderedContainerRule(Rule):
    rule_id = "no-unordered-container"
    description = (
        "std::unordered_{map,set} are banned in src/, bench/, "
        "examples/, and tests/: their iteration order is "
        "implementation-defined and can leak into metrics, traces, "
        "and reduction order")

    PATTERN = re.compile(
        r"(?:\bstd::unordered_(?:multi)?(?:map|set)\b"
        r"|#\s*include\s*<unordered_(?:map|set)>)")

    def check(self, src, ctx):
        if not src.in_tree():
            return
        yield from scan_lines(
            src, self.PATTERN, self.rule_id,
            "`%(match)s` has implementation-defined iteration order; "
            "use std::map / std::vector + sort so dumps stay "
            "bit-identical across platforms and thread counts")


# ---- metrics hygiene ------------------------------------------------


METRIC_CALL_RE = re.compile(
    r"\.\s*(counter|distribution|histogram|counterValue"
    r"|channel|digest|digestValue)\s*\(")
SPAN_CALL_RE = re.compile(r"\bspanMetricName\s*\(")
METRIC_SEGMENT_RE = re.compile(r"[a-z0-9_]+\Z")


class MetricNameRule(Rule):
    """Grammar + documentation + single-registration for metric names.

    Metric names are built as `prefix + ".suffix"`, so the literals at
    a registry call site are *fragments*.  Each fragment must follow
    the [a-z0-9_.] grammar; each dotted fragment (a full metric tail
    such as ".cycles.total") must appear in the metric tables of
    docs/OBSERVABILITY.md and be registered at exactly one site.
    TimeSeries channel names and quantile-digest names live in the
    same namespace, so `.channel(...)` / `.digest(...)` sites are
    held to the same rules.

    Span metric names are composed by `spanMetricName(prefix, module,
    field)`, where the field literal is the whole vocabulary word
    ("queue_wait_cycles"), not a fragment of a longer dotted path.
    Literals at spanMetricName() sites therefore get the grammar
    check *and* the documentation check even when single-segment, and
    are exempt from single-registration bookkeeping (the same field
    legitimately registers once per module).
    """

    rule_id = "metric-name"
    description = (
        "string literals at StatsRegistry / TimeSeries / "
        "spanMetricName call sites must follow the [a-z0-9_.] "
        "grammar, be documented in docs/OBSERVABILITY.md, and (for "
        "registry sites) be registered exactly once")

    REGISTERING = {"counter", "distribution", "histogram", "channel",
                   "digest"}

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        offsets = line_offsets(src.code)
        # spanMetricName() argument spans are carved out of the
        # generic registry scan below: their literals follow the span
        # contract (documented even when single-segment) and would
        # otherwise be skipped as single-segment fragments.
        span_regions = []
        for m in SPAN_CALL_RE.finditer(src.code):
            open_pos = src.code.index("(", m.end() - 1)
            close_pos = match_balanced(src.code, open_pos)
            span_regions.append((open_pos, close_pos))
            for lit in src.literals:
                if not (open_pos < lit.offset < close_pos):
                    continue
                line = offset_to_line(offsets, lit.offset)
                yield from self.check_span_literal(src, ctx, lit, line)
        for m in METRIC_CALL_RE.finditer(src.code):
            method = m.group(1)
            open_pos = src.code.index("(", m.end() - 1)
            close_pos = match_balanced(src.code, open_pos)
            for lit in src.literals:
                if not (open_pos < lit.offset < close_pos):
                    continue
                if any(lo < lit.offset < hi
                       for lo, hi in span_regions):
                    continue  # already held to the span contract
                line = offset_to_line(offsets, lit.offset)
                yield from self.check_literal(
                    src, ctx, method, lit, line)

    def check_span_literal(self, src, ctx, lit, line):
        value = lit.value
        stripped = value.strip(".")
        if stripped == "":
            yield finding(
                src, line, 1, self.rule_id,
                "span name fragment '%s' is empty separators" % value)
            return
        for segment in stripped.split("."):
            if not METRIC_SEGMENT_RE.match(segment):
                yield finding(
                    src, line, 1, self.rule_id,
                    "span name fragment '%s' violates the [a-z0-9_.] "
                    "grammar (segment '%s'); lowercase dotted paths "
                    "only, see docs/OBSERVABILITY.md"
                    % (value, segment))
                return
        if ctx.doc_text is not None and stripped not in ctx.doc_text:
            yield finding(
                src, line, 1, self.rule_id,
                "span field '%s' is not documented in "
                "docs/OBSERVABILITY.md; add it to the span metric "
                "table or fix the name" % stripped)

    def check_literal(self, src, ctx, method, lit, line):
        value = lit.value
        stripped = value.strip(".")
        if stripped == "":
            if value != ".":
                yield finding(
                    src, line, 1, self.rule_id,
                    "metric fragment '%s' is empty separators" % value)
            return
        for segment in stripped.split("."):
            if not METRIC_SEGMENT_RE.match(segment):
                yield finding(
                    src, line, 1, self.rule_id,
                    "metric fragment '%s' violates the [a-z0-9_.] "
                    "grammar (segment '%s'); lowercase dotted paths "
                    "only, see docs/OBSERVABILITY.md" % (value, segment))
                return
        if "." not in stripped:
            return  # single-segment fragment of a computed name
        if ctx.doc_text is not None and stripped not in ctx.doc_text:
            yield finding(
                src, line, 1, self.rule_id,
                "metric '%s' is not documented in "
                "docs/OBSERVABILITY.md; add it to the metric table "
                "or fix the name" % stripped)
        if method in self.REGISTERING:
            site = (src.display_path, line)
            first = ctx.metric_sites.setdefault(stripped, site)
            if first != site:
                yield finding(
                    src, line, 1, self.rule_id,
                    "metric '%s' already registered at %s:%d; declare "
                    "each metric at exactly one site so kind and "
                    "semantics have one owner" % (stripped, *first))


# ---- enum exhaustiveness --------------------------------------------


SWITCH_RE = re.compile(r"\bswitch\s*\(")
CASE_RE = re.compile(r"\bcase\s+((?:\w+\s*::\s*)+)\w+\s*:")
DEFAULT_RE = re.compile(r"\bdefault\s*:")


class EnumSwitchDefaultRule(Rule):
    rule_id = "enum-switch-default"
    description = (
        "switches over project enums must not carry a `default:` "
        "label: adding an enumerator (a seventh StallCause, a new "
        "fault Protection) must be a -Wswitch compile error at every "
        "dispatch site, not a silent misattribution")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        offsets = line_offsets(src.code)
        yield from self.scan(src, ctx, src.code, 0, offsets)

    def scan(self, src, ctx, code, base, offsets):
        for m in SWITCH_RE.finditer(code):
            open_paren = code.index("(", m.start())
            after_cond = match_balanced(code, open_paren)
            brace = code.find("{", after_cond)
            if brace < 0:
                continue
            end = match_balanced(code, brace, "{", "}")
            body = code[brace + 1 : end - 1]
            yield from self.check_switch(
                src, ctx, body, base + brace + 1, offsets)

    def check_switch(self, src, ctx, body, base, offsets):
        # Blank nested switch statements so their labels don't bleed
        # into this switch's analysis (each nest is scanned on its own).
        flat = body
        for m in SWITCH_RE.finditer(body):
            open_paren = body.index("(", m.start())
            after_cond = match_balanced(body, open_paren)
            brace = body.find("{", after_cond)
            if brace < 0:
                continue
            end = match_balanced(body, brace, "{", "}")
            flat = flat[:brace] + " " * (end - brace) + flat[end:]
            yield from self.check_switch(
                src, ctx, body[brace + 1 : end - 1],
                base + brace + 1, offsets)
        enum_names = set()
        for m in CASE_RE.finditer(flat):
            qualifier = [p for p in re.split(
                r"\s*::\s*", m.group(1)) if p]
            if qualifier and qualifier[-1] in ctx.project_enums:
                enum_names.add(qualifier[-1])
        if not enum_names:
            return
        for m in DEFAULT_RE.finditer(flat):
            line = offset_to_line(offsets, base + m.start())
            yield finding(
                src, line, 1, self.rule_id,
                "`default:` in a switch over project enum %s hides "
                "missing enumerators from -Wswitch; enumerate every "
                "case and panic after the switch instead"
                % "/".join(sorted(enum_names)))


# ---- fixed-point hygiene --------------------------------------------


class FixedPointEscapeRule(Rule):
    rule_id = "fixedpoint-raw-escape"
    description = (
        "raw fixed-point access (.raw()/fromRaw) outside src/fixed/ "
        "and double conversion operators anywhere: the Section IV-E "
        "datapath model is honest only if quantization happens through "
        "the format types' fromReal/toReal boundaries")

    RAW_PATTERN = re.compile(r"(?:\.\s*raw\s*\(|\bfromRaw\s*\()")
    CONV_PATTERN = re.compile(
        r"(?:\boperator\s+(?:double|float)\b"
        r"|(?<!explicit\s)(?<!\w)(?:FixedPoint|CustomFloat)\s*\(\s*"
        r"(?:double|float)\b)")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        if not src.in_dir("src/fixed/"):
            yield from scan_lines(
                src, self.RAW_PATTERN, self.rule_id,
                "raw fixed-point access `%(match)s` outside "
                "src/fixed/; model datapath behaviour via "
                "fromReal/toReal/quantize<> so rounding and "
                "saturation stay inside the format types")
        yield from scan_lines(
            src, self.CONV_PATTERN, self.rule_id,
            "`%(match)s` enables implicit double<->fixed conversion; "
            "conversions must stay explicit (fromReal/toReal) so "
            "quantization points are visible in the code")


# ---- SIMD containment -----------------------------------------------


class NoRawIntrinsicsRule(Rule):
    rule_id = "no-raw-intrinsics"
    description = (
        "raw SIMD intrinsics (immintrin/arm_neon includes, _mm*/v*q_* "
        "calls, __builtin_popcount*, __builtin_cpu_supports) are "
        "confined to src/common/simd/: the rest of src/ consumes the "
        "dispatched KernelTable, so the bit-identity contract of "
        "common/simd/simd.h is proven in one place")

    PATTERN = re.compile(
        r"(?:#\s*include\s*<(?:immintrin|x86intrin|emmintrin"
        r"|xmmintrin|pmmintrin|smmintrin|tmmintrin|nmmintrin"
        r"|wmmintrin|avxintrin|avx2intrin|arm_neon|arm_sve"
        r"|arm_acle)\.h>"
        r"|\b_mm\d*_\w+\s*\("
        r"|\bv[a-z0-9]+(?:_[a-z0-9]+)*_(?:s|u|f|p)(?:8|16|32|64)\s*\("
        r"|\b__builtin_popcount(?:l|ll)?\s*\("
        r"|\b__builtin_cpu_supports\s*\()")

    def check(self, src, ctx):
        if not src.in_dir("src/") or src.in_dir("src/common/simd/"):
            return
        yield from scan_lines(
            src, self.PATTERN, self.rule_id,
            "raw intrinsic `%(match)s` outside src/common/simd/; go "
            "through simd::kernels() (or std::popcount for single "
            "words) so every ISA-specific path stays behind the "
            "bit-identical dispatch table")


# ---- cross-file: include-graph layering -----------------------------


class LayeringRule(Rule):
    rule_id = "layering"
    description = (
        "the src/ module include graph must match the DAG declared "
        "in tools/lint/layering.toml: a back-edge (tensor -> sim, "
        "lsh -> serve, ...) is an architecture violation, not a "
        "style choice")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        layers = ctx.index.layering
        if not layers:
            return
        parts = src.rel.split("/")
        if len(parts) < 3:
            return
        module = parts[1]
        if module not in layers:
            return  # reported once globally against the toml
        allowed = set(layers[module]) | {module}
        for line, path in src.facts.includes:
            if "/" not in path:
                continue
            seg = path.split("/", 1)[0]
            if seg in allowed:
                continue
            if seg not in layers and seg not in ctx.index.src_modules:
                continue  # not a project module path
            yield finding(
                src, line, 1, self.rule_id,
                '#include "%s" is an undeclared edge %s -> %s; '
                "tools/lint/layering.toml is the architecture -- "
                "fix the dependency, or update the toml if the DAG "
                "legitimately grew (it must stay acyclic)"
                % (path, module, seg))


# ---- cross-file: config validation coverage -------------------------


class ConfigValidationCoverageRule(Rule):
    rule_id = "config-validation-coverage"
    description = (
        "every *Config struct needs a validate() (or a same-file "
        "parent whose validate() covers it); every non-bool, "
        "non-enum field must be named in that validate() and have "
        "negative-path coverage in tests/config_validation_test.cc")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        index = ctx.index
        for info in src.facts.structs:
            if not info.name.endswith("Config"):
                continue
            vb = index.validate_bodies.get(info.name)
            if vb is None:
                if info.name in index.exempt_substructs:
                    continue
                yield finding(
                    src, info.line, 1, self.rule_id,
                    "config struct %s has no validate(); every "
                    "config type must reject invalid values at the "
                    "boundary (or be folded into a same-file "
                    "parent's validate())" % info.name)
                continue
            yield from self.check_fields(src, ctx, info, vb)

    def check_fields(self, src, ctx, info, vb):
        index = ctx.index
        for f, kind in walk_config_fields(index, src.facts, info):
            if kind in ("bool", "enum"):
                continue  # domain is pinned by the type
            if f.name not in vb.tokens:
                yield finding(
                    src, f.line, 1, self.rule_id,
                    "config field '%s' is never named in "
                    "%s::validate(); check it, or suppress with a "
                    "reason if every representable value is legal"
                    % (f.name, info.name))
            if kind == "leaf" and index.test_tokens \
                    and f.name not in index.test_tokens:
                yield finding(
                    src, f.line, 1, self.rule_id,
                    "config field '%s' has no negative-path coverage "
                    "in %s; add a corrupting case asserting the "
                    "error names it" % (f.name, TEST_COVERAGE_REL))


# ---- cross-file: artifact schema drift ------------------------------


class ArtifactSchemaDriftRule(Rule):
    rule_id = "artifact-schema-drift"
    description = (
        "every JSON key written from C++ (JsonWriter::kv/key, "
        "RunManifest::set) must be known to scripts/check_metrics.py "
        "or scripts/bench_compare.py and documented in docs/; the "
        "reverse direction (keys the scripts consume but nothing "
        "writes) is checked repo-globally")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        index = ctx.index
        if not index.script_tokens:
            return
        for key, line in src.facts.json_keys:
            if key not in index.script_tokens:
                yield finding(
                    src, line, 1, self.rule_id,
                    "JSON key '%s' written here is unknown to "
                    "scripts/check_metrics.py and "
                    "scripts/bench_compare.py; artifact schemas are "
                    "validated end to end, so teach the checker "
                    "about it" % key)
            if key not in index.doc_tokens:
                yield finding(
                    src, line, 1, self.rule_id,
                    "JSON key '%s' written here is not documented "
                    "anywhere under docs/; add it to the artifact "
                    "schema tables" % key)


# ---- cross-file: stall-cause exhaustiveness -------------------------


def _taxonomy_known(token, vocabulary):
    """The scripts build `<cause>_cycles` channel fields from cause
    stems, so either the full segment or its stem must be known."""
    if token in vocabulary:
        return True
    suffix = "_cycles"
    return token.endswith(suffix) and token[: -len(suffix)] in \
        vocabulary


class StallCauseExhaustiveRule(Rule):
    rule_id = "stall-cause-exhaustive"
    description = (
        "every StallCause / AttributedModule enumerator must map to "
        "a metric segment in stallCauseMetricName / "
        "attributedModuleMetricName, and every mapped segment must "
        "be known to scripts/check_metrics.py (conservation and "
        "attribution invariants) and documented in docs/")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        index = ctx.index
        for p in src.facts.metric_pairs:
            if index.script_tokens and not _taxonomy_known(
                    p.literal, index.script_tokens):
                yield finding(
                    src, p.line, 1, self.rule_id,
                    "metric segment '%s' (for %s in %s) is unknown "
                    "to scripts/check_metrics.py; the conservation "
                    "and attribution checks will not see it"
                    % (p.literal, p.member, p.fn))
            if index.doc_tokens and not _taxonomy_known(
                    p.literal, index.doc_tokens):
                yield finding(
                    src, p.line, 1, self.rule_id,
                    "metric segment '%s' (for %s in %s) is not "
                    "documented anywhere under docs/; add it to the "
                    "stall/attribution tables" % (p.literal, p.member,
                                                  p.fn))
        same_file = {name: set(members)
                     for name, members, _line in src.facts.enums}
        for fn, line, enum_name, mapped in src.facts.metric_fns:
            members = same_file.get(enum_name)
            if members is None:
                members = index.enum_members.get(enum_name, set())
            missing = {m for m in members
                       if not m.startswith("kNum")} - mapped
            for member in sorted(missing):
                yield finding(
                    src, line, 1, self.rule_id,
                    "enumerator %s::%s has no mapping in %s(); "
                    "every taxonomy member must be attributed"
                    % (enum_name, member, fn))


# ---- cross-file: error-message discipline ---------------------------


class ErrorMessageDisciplineRule(Rule):
    rule_id = "error-message-discipline"
    description = (
        "every ELSA_CHECK on a config validation path must name at "
        "least one field of the config being validated: a "
        "misconfigured run must die with an actionable one-liner, "
        "not a riddle")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        for vb in src.facts.validates:
            fieldset = config_field_names(ctx.index, vb.struct_name)
            if not fieldset:
                continue
            for chk in vb.checks:
                if fieldset & chk.tokens:
                    continue
                yield finding(
                    src, chk.line, 1, self.rule_id,
                    "error message in %s::validate() names no field "
                    "of %s; say which field is wrong so the error "
                    "is actionable" % (vb.struct_name,
                                       vb.struct_name))


RULES = [
    NoWallclockRule(),
    NoUnorderedContainerRule(),
    MetricNameRule(),
    EnumSwitchDefaultRule(),
    FixedPointEscapeRule(),
    NoRawIntrinsicsRule(),
    LayeringRule(),
    ConfigValidationCoverageRule(),
    ArtifactSchemaDriftRule(),
    StallCauseExhaustiveRule(),
    ErrorMessageDisciplineRule(),
]


# --------------------------------------------------------------------
# Repo-global findings (anchored in scripts / the layering toml).
# --------------------------------------------------------------------


def global_findings(index):
    out = []
    for err in index.layering_errors:
        out.append(Finding(LAYERING_REL, 1, 1, "layering", err))
    for rel, line, key in index.script_consumed:
        # The scripts hold stall/fault taxonomies by stem and build
        # the `<stem>_cycles` channel field names themselves, so a
        # stem whose `_cycles` form a writer emits is accounted for.
        if key in index.cpp_literal_tokens \
                or key + "_cycles" in index.cpp_literal_tokens:
            continue
        out.append(Finding(
            rel, line, 1, "artifact-schema-drift",
            "schema key '%s' is consumed here but appears in no C++ "
            "string literal under src/, bench/, or examples/; "
            "either the writer is gone or the checker drifted" % key))
    return out


def apply_global_suppressions(root, findings):
    by_rel = {}
    for f in findings:
        by_rel.setdefault(f.path, []).append(f)
    kept = []
    for rel in SCRIPT_RELS:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        sups, metas = parse_py_suppressions(rel, read_text(path))
        for f in by_rel.pop(rel, []):
            hits = [s for s in sups
                    if f.line == s.target_line and f.rule in s.rules]
            if hits:
                for s in hits:
                    s.used = True
            else:
                kept.append(f)
        for s in sups:
            if not s.used:
                metas.append(Finding(
                    rel, s.line, 1, "suppression-unused",
                    "allow(%s) suppresses nothing on line %d; "
                    "remove it so the allow-list mirrors reality"
                    % (",".join(s.rules), s.target_line)))
        kept.extend(metas)
    for rest in by_rel.values():
        kept.extend(rest)
    return kept


# --------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------


class Context:
    def __init__(self, index):
        self.index = index
        self.project_enums = set(index.enum_members)
        self.doc_text = index.obs_doc_text
        self.metric_sites = {}


CXX_SUFFIXES = (".cc", ".h")
DEFAULT_LINT_DIRS = ("src", "bench", "examples", "tests")


def collect_files(root, paths):
    files = []
    for p in paths:
        absolute = os.path.join(root, p)
        if os.path.isfile(absolute):
            files.append((absolute, p.replace(os.sep, "/")))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(CXX_SUFFIXES):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                if rel.startswith("tests/lint/"):
                    continue  # fixtures are intentionally bad
                files.append((full, rel))
    return files


def lint_sources(sources, ctx):
    all_findings = []
    for src in sources:
        sups, metas = parse_suppressions(src)
        raw = []
        for rule in RULES:
            raw.extend(rule.check(src, ctx))
        kept = []
        for f in raw:
            suppressed = False
            for sup in sups:
                if f.line == sup.target_line and f.rule in sup.rules:
                    sup.used = True
                    suppressed = True
            if not suppressed:
                kept.append(f)
        for sup in sups:
            if not sup.used:
                metas.append(finding(
                    src, sup.line, 1, "suppression-unused",
                    "allow(%s) suppresses nothing on line %d; remove "
                    "it so the allow-list mirrors reality"
                    % (",".join(sup.rules), sup.target_line)))
        all_findings.extend(kept)
        all_findings.extend(metas)
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return all_findings


def read_text(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def run_lint(root, paths):
    sources = [
        SourceFile(p, rel, read_text(p))
        for p, rel in collect_files(root, paths)
    ]
    index = build_index(root, preloaded=sources)
    ctx = Context(index)
    findings = lint_sources(sources, ctx)
    findings.extend(
        apply_global_suppressions(root, global_findings(index)))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# --------------------------------------------------------------------
# Self-test: every fixture must produce exactly its golden findings.
# --------------------------------------------------------------------


def self_test(root, fixture_dir):
    fixtures = os.path.join(root, fixture_dir, "fixtures")
    expected_dir = os.path.join(root, fixture_dir, "expected")
    names = sorted(
        n for n in os.listdir(fixtures) if n.endswith(CXX_SUFFIXES))
    if not names:
        print("elsa-lint self-test: no fixtures in %s" % fixtures)
        return 2
    base_index = build_index(root)
    failures = 0
    fired_rules = set()
    for name in names:
        path = os.path.join(fixtures, name)
        src = SourceFile(path, fixture_dir + "/fixtures/" + name,
                         read_text(path))
        ctx = Context(base_index.copy_with(src))
        got = [
            "%d: %s" % (f.line, f.rule)
            for f in lint_sources([src], ctx)
        ]
        fired_rules.update(line.split(": ", 1)[1] for line in got)
        golden_path = os.path.join(
            expected_dir, os.path.splitext(name)[0] + ".expected")
        want = []
        if os.path.exists(golden_path):
            want = [
                line.strip()
                for line in read_text(golden_path).splitlines()
                if line.strip() and not line.startswith("#")
            ]
        if got != want:
            failures += 1
            print("FAIL %s" % name)
            print("  expected: %s" % (want or "(nothing)"))
            print("  got:      %s" % (got or "(nothing)"))
        else:
            print("ok   %s (%d findings)" % (name, len(got)))
    # A rule with no firing fixture could break silently; refuse.
    silent = {r.rule_id for r in RULES} - fired_rules
    meta_silent = set(META_RULES) - fired_rules
    for rule in sorted(silent | meta_silent):
        failures += 1
        print("FAIL rule '%s' fires on no fixture; add a known-bad "
              "snippet so a broken rule cannot pass silently" % rule)
    if failures:
        print("elsa-lint self-test: %d failure(s)" % failures)
        return 1
    print("elsa-lint self-test: all %d fixtures ok, all %d rules "
          "covered" % (len(names), len(RULES) + len(META_RULES)))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="ELSA project-specific static analysis")
    parser.add_argument(
        "--root", default=".",
        help="repository root (default: cwd)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print rule ids and descriptions")
    parser.add_argument(
        "--json", action="store_true",
        help="emit findings as JSON (for CI annotation)")
    parser.add_argument(
        "--self-test", metavar="DIR",
        help="run the fixture self-tests under DIR (tests/lint)")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint, relative to --root "
             "(default: src bench examples tests)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print("%-28s %s" % (rule.rule_id, rule.description))
        for rule in META_RULES:
            print("%-28s (suppression bookkeeping)" % rule)
        return 0
    if args.self_test:
        return self_test(args.root, args.self_test)

    paths = args.paths or [
        d for d in DEFAULT_LINT_DIRS
        if os.path.isdir(os.path.join(args.root, d))]
    findings = run_lint(args.root, paths)
    if args.json:
        print(json.dumps(
            {"findings": [f.to_dict() for f in findings],
             "count": len(findings)},
            indent=2))
    else:
        for f in findings:
            print(f.render())
        if findings:
            print("elsa-lint: %d finding(s)" % len(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
