#ifndef ELSA_SIM_ACCELERATOR_H_
#define ELSA_SIM_ACCELERATOR_H_

/**
 * @file
 * Cycle-level simulator of one ELSA accelerator (Section IV).
 *
 * The simulator is split functional/timing: the FunctionalModel
 * computes the values flowing through the datapath (with the hardware
 * number formats) while this class assembles the pipeline timing:
 *
 *   preprocessing:  hash every key + the first query
 *                   (3 d^(4/3) (n+1) / m_h cycles), norms overlapped;
 *   execution:      per query, the banked candidate-selection scan is
 *                   simulated cycle by cycle (queues, backpressure,
 *                   longest-queue-first arbiter); the query's pipeline
 *                   interval is the maximum of the bank times, the
 *                   next query's hash time, and the previous query's
 *                   output division time (Fig. 9);
 *   activity:       per-module active-cycle counters feed the energy
 *                   model (Fig. 13).
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attention/exact.h"
#include "energy/energy_model.h"
#include "sim/config.h"
#include "sim/functional.h"
#include "sim/stall.h"

namespace elsa::obs {
class QuerySpanSet;
class StatsRegistry;
class TimeSeries;
class TraceWriter;
} // namespace elsa::obs

namespace elsa {

/** One query's timing, recorded when SimConfig::collect_query_trace
 *  is set. */
struct QueryTraceRecord
{
    std::size_t query_id = 0;
    /** Pipeline interval charged to this query. */
    std::size_t interval_cycles = 0;
    /** Slowest bank's scan+drain time. */
    std::size_t max_bank_cycles = 0;
    /** Candidates selected (after fallback). */
    std::size_t candidates = 0;
    /** Candidate-module stall cycles across banks. */
    std::size_t stall_cycles = 0;
    /** True when the no-candidate fallback fired. */
    bool used_fallback = false;
};

/** Timing and value results of one self-attention run. */
struct RunResult
{
    std::size_t preprocess_cycles = 0;
    std::size_t execute_cycles = 0;

    /** Total elapsed cycles. */
    std::size_t totalCycles() const
    {
        return preprocess_cycles + execute_cycles;
    }

    /** The computed n x d output matrix. */
    Matrix output;

    /** Selected candidate count per query (after the fallback). */
    std::vector<std::size_t> candidates_per_query;

    /** Per-module active cycles for the energy model. */
    ActivityCounters activity;

    /** Total candidate-module stall cycles (queue backpressure). */
    std::size_t stall_cycles = 0;

    /**
     * Per-module lane-cycle breakdown by cause (busy / starved /
     * backpressured / bank_conflict / drained); all-zero unless
     * SimConfig::attribute_stalls is set. See sim/stall.h for the
     * attribution model and the conservation invariant.
     */
    StallBreakdown stall_breakdown;

    /** Queries that needed the no-candidate fallback. */
    std::size_t empty_selections = 0;

    /** Per-query records; empty unless collect_query_trace is set. */
    std::vector<QueryTraceRecord> query_trace;

    /**
     * Per-query granted candidate key ids (all banks, grant order
     * within each bank); empty unless collect_query_trace is set.
     * Feeds measureFidelity() in resilience/accuracy experiments.
     */
    std::vector<std::vector<std::uint32_t>> query_candidates;

    /**
     * Fault-injection summary of this run; enabled == false (and all
     * counts zero) unless SimConfig::fault actually injected. See
     * fault/fault.h.
     */
    FaultReport fault;

    /**
     * Binned cycle-domain telemetry of this run (stall causes,
     * module activity, queue occupancy per time bin); non-null only
     * when SimConfig::telemetry.enabled. Shared so AcceleratorArray
     * can merge invocation shards without copying; see
     * obs/timeseries.h and docs/OBSERVABILITY.md for the channels.
     */
    std::shared_ptr<obs::TimeSeries> telemetry;

    /**
     * Per-query lifecycle spans of this run (finalized: exemplar
     * records plus per-stage digests/totals over every query);
     * non-null only when SimConfig::query_spans.enabled. Shared so
     * AcceleratorArray can merge invocation shards without copying;
     * see obs/span.h and docs/OBSERVABILITY.md for the schema.
     */
    std::shared_ptr<obs::QuerySpanSet> spans;

    /** True when SimConfig::count_saturations filled the two counts
     *  below. */
    bool saturations_counted = false;

    /** FixedPoint range clamps during this run. */
    std::uint64_t fixed_saturations = 0;

    /** CustomFloat magnitude saturations during this run. */
    std::uint64_t cfloat_saturations = 0;

    /** Mean candidates per query / n. */
    double candidateFraction() const;
};

/** One simulated ELSA accelerator. */
class Accelerator
{
  public:
    /**
     * @param config     Pipeline configuration.
     * @param hasher     SRP hasher (the pre-defined hash matrices).
     * @param theta_bias Angle correction bias.
     */
    Accelerator(SimConfig config,
                std::shared_ptr<const SrpHasher> hasher,
                double theta_bias);

    const SimConfig& config() const { return config_; }
    const FunctionalModel& functional() const { return functional_; }

    /**
     * Publish every future run's counters into `registry` under
     * `prefix` (see publishRunStats in sim/report.h). Pass nullptr
     * to detach. The registry is not owned and must outlive the
     * accelerator. Publishing happens after the timing simulation
     * and never changes simulated cycle counts.
     */
    void attachStats(obs::StatsRegistry* registry,
                     std::string prefix = "sim.accel0");

    /**
     * Emit pipeline events of future runs to `trace` (requires
     * SimConfig::emit_trace). `pid` labels this accelerator in the
     * trace; module timelines become threads of that process.
     * Thread-name metadata is emitted immediately. Pass nullptr to
     * detach. Not owned; must outlive the accelerator.
     */
    void attachTrace(obs::TraceWriter* trace, std::uint32_t pid = 0);

    /** The pid label of the currently attached trace (last attach). */
    std::uint32_t tracePid() const { return trace_pid_; }

    /**
     * Run one self-attention operation.
     *
     * @param input     Q/K/V (n rows of real tokens; no padding).
     * @param threshold Learned candidate-selection threshold t; pass
     *                  -infinity (or ThresholdLearner's p = 0 value)
     *                  for the ELSA-base exact mode.
     */
    RunResult run(const AttentionInput& input, double threshold) const;

  private:
    SimConfig config_;
    FunctionalModel functional_;

    /** Observability sinks (non-owning; see attachStats/attachTrace). */
    obs::StatsRegistry* stats_ = nullptr;
    std::string stats_prefix_ = "sim.accel0";
    obs::TraceWriter* trace_ = nullptr;
    std::uint32_t trace_pid_ = 0;
};

} // namespace elsa

#endif // ELSA_SIM_ACCELERATOR_H_
