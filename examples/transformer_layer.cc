/**
 * @file
 * Dropping ELSA into a transformer layer.
 *
 * The previous examples work at the Q/K/V level; this one starts one
 * level higher, where a model integrator lives: hidden states enter
 * a multi-head self-attention layer (per-head projections -> ELSA
 * attention -> output projection). It shows the three integration
 * steps -- build the layer, learn per-head thresholds from training
 * activations, swap forward() for forwardApprox() -- and measures
 * the end-to-end layer output error the approximation introduces.
 */

#include <cstdio>

#include "attention/multihead.h"
#include "common/rng.h"
#include "elsa/elsa.h"
#include "tensor/ops.h"

int
main()
{
    using namespace elsa;

    constexpr std::size_t n = 192;      // tokens
    constexpr std::size_t hidden = 256; // model width
    constexpr std::size_t heads = 4;
    constexpr std::size_t d = 64;       // per-head dim

    // 1. A transformer layer (random weights stand in for trained
    //    ones) and "activations" flowing into it. Real activations
    //    are low-rank/clustered -- tokens about the same thing have
    //    similar embeddings and attend each other -- so the demo
    //    builds each token as a cluster center plus noise.
    Rng rng(2718);
    const MultiHeadAttention layer =
        MultiHeadAttention::makeRandom(hidden, heads, d, rng);
    constexpr std::size_t clusters = 12;
    Matrix centers(clusters, hidden);
    centers.fillGaussian(rng, 0.0f, 0.45f);
    auto make_activations = [&](std::uint64_t stream) {
        Rng token_rng = rng.fork(stream);
        Matrix m(n, hidden);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = token_rng.uniformInt(clusters);
            for (std::size_t j = 0; j < hidden; ++j) {
                m(i, j) = centers(c, j)
                          + static_cast<float>(
                                token_rng.gaussian(0.0, 0.18));
            }
        }
        return m;
    };
    const Matrix train_hidden = make_activations(1);
    const Matrix eval_hidden = make_activations(2);

    // 2. One ELSA engine shared by all heads (they share d = k = 64),
    //    one learned threshold per head.
    Elsa elsa_engine(d);
    std::printf("Transformer layer: n = %zu, hidden = %zu, %zu heads "
                "x d = %zu\n\n",
                n, hidden, heads, d);

    const MultiHeadResult exact = layer.forward(eval_hidden);

    std::printf("%-6s %14s %16s %18s\n", "p", "candidates",
                "layer rel.err", "per-head fractions");
    for (const double p : {0.5, 1.0, 2.0, 4.0}) {
        std::vector<ThresholdLearner> learners(heads,
                                               ThresholdLearner(p));
        layer.learnThresholds(train_hidden, learners);
        std::vector<double> thresholds;
        for (const auto& learner : learners) {
            thresholds.push_back(learner.threshold());
        }

        // 3. The approximate forward pass.
        const MultiHeadResult approx = layer.forwardApprox(
            eval_hidden, elsa_engine.engine(), thresholds);

        const double err =
            frobeniusDiff(exact.output, approx.output)
            / frobeniusNorm(exact.output);
        std::printf("%-6.1f %13.1f%% %16.4f   ", p,
                    100.0 * approx.stats.meanCandidateFraction(), err);
        for (const double f : approx.stats.candidate_fraction) {
            std::printf(" %4.0f%%", 100.0 * f);
        }
        std::printf("\n");
    }

    std::printf("\nEach head learns its own threshold (the paper's "
                "Fig. 6): heads with peaky\nattention filter "
                "aggressively, broad heads keep more candidates -- "
                "no per-head\nhand tuning, just the single "
                "hyperparameter p.\n");
    return 0;
}
