#!/usr/bin/env python3
"""Diff two BENCH_RESULTS.json files against per-metric tolerances.

Usage:
    bench_compare.py <baseline.json> <current.json> [--tolerance R]
                     [--list-metrics]

The files are the envelopes written by `elsa_bench --out` (see
docs/OBSERVABILITY.md for the schema).  Comparison rules:

  * every bench present in the baseline must be present in the
    current file, and every baseline metric must still exist;
  * numeric metrics are compared by relative delta against a
    direction inferred from the metric name -- higher-is-better
    metrics fail only when they drop, lower-is-better metrics fail
    only when they rise, everything else fails on drift in either
    direction beyond tolerance;
  * string / boolean metrics (e.g. the bottleneck's
    ``limiting_module``) must match exactly;
  * integer count metrics (``workloads``, ``*_bytes``) must match
    exactly;
  * wall-clock metrics (``wall_seconds`` and friends) are advisory:
    they depend on the machine, its load, and ``--threads``, so they
    are compared with a wide lower-is-better tolerance and reported,
    but can never fail the gate;
  * measured kernel-throughput metrics (``*_gibps``,
    ``*_hashes_per_sec``, ``*_keys_per_sec`` from the
    ``kernel_throughput`` entry) are direction-aware
    (higher-is-better: only drops fail) and DO gate, but with their
    own wide tolerance class -- they move with the machine and with
    scheduling noise, and the gate exists to catch the ~5x+ collapse
    of a broken SIMD kernel or an accidental scalar fallback, not a
    few percent of jitter;
  * serving SLO metrics from the ``serve_overload`` entry are
    direction-aware and DO gate with their own tolerance class:
    ``*_goodput_qps`` is higher-is-better (only drops fail) and
    ``*_shed_rate`` / ``*_deadline_miss_rate`` are lower-is-better
    (only rises fail).  They are deterministic cycle-domain results,
    but at quick scale one rerouted request moves the rates by a few
    percent, so the class is slightly wider than the default.

Exit status: 0 = within tolerance, 1 = regression, 2 = schema or
usage error.  Improvements are reported but never fail.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
SUITE = "elsa_bench"

# Substrings deciding the regression direction of a numeric metric.
# These are matchers over composed metric names, not schema keys, so
# the ones that are not themselves complete metric names carry
# elsa-lint allowances below.
HIGHER_IS_BETTER = (
    "throughput",
    "speedup",
    "energy_eff",
    "recall",
)
LOWER_IS_BETTER = (
    "latency",
    "cycles",
    # elsa-lint: allow(artifact-schema-drift): substring matcher
    "energy_per_op",
    "area",
    "power",
    "stall",
)
# Metrics compared exactly regardless of tolerance.
EXACT = (
    "workloads",
    # elsa-lint: allow(artifact-schema-drift): substring matcher
    "_bytes",
)

# Wall-clock measurements (host time, not simulated cycles).  Never
# gate on them: they move with the machine, its load, and the
# --threads setting of the run that produced the file.
WALL_TIME = (
    "wall_seconds",
    # elsa-lint: allow(artifact-schema-drift): forward-compat matcher
    "wall_time",
)
WALL_TIME_TOLERANCE = 0.50

# Measured kernel throughput (elsa_bench's kernel_throughput entry).
# Higher is better, and unlike wall time these DO gate: an
# accidental scalar fallback or a broken SIMD kernel drops them ~5x+
# on any machine, far past this tolerance, while machine and
# scheduler noise stays well inside it.
KERNEL_THROUGHPUT = (
    # elsa-lint: allow(artifact-schema-drift): substring matcher
    "gibps",
    # elsa-lint: allow(artifact-schema-drift): substring matcher
    "hashes_per_sec",
    # elsa-lint: allow(artifact-schema-drift): substring matcher
    "keys_per_sec",
)
KERNEL_THROUGHPUT_TOLERANCE = 0.70

# Serving SLO metrics (elsa_bench's serve_overload entry; see
# docs/SERVING.md).  Deterministic cycle-domain results, but at quick
# scale a single rerouted request moves the rates by a few percent,
# so the class is slightly wider than the default -- and it gates: a
# goodput collapse or a shed-rate jump is exactly the regression the
# serving engine exists to prevent.
SERVING_HIGHER = (
    "goodput_qps",
)
SERVING_LOWER = (
    "shed_rate",
    "deadline_miss_rate",
)
SERVING_TOLERANCE = 0.10

# Per-metric relative-tolerance overrides (substring match, first
# hit wins).  The default tolerance covers everything else.
TOLERANCE_OVERRIDES = {
    # Energy efficiency compounds throughput and energy noise.
    "energy_eff": 0.08,
}

DEFAULT_TOLERANCE = 0.05


# How to rebuild the file a comparison needs.  The committed quick
# baseline is the common case; a current file is rebuilt by rerunning
# the suite with --out pointed at it.
BASELINE_REFRESH_COMMAND = (
    "./build/bench/elsa_bench --quick --threads 1"
    " --out bench/baselines/BENCH_RESULTS.quick.json"
)


def fail(message):
    print(f"bench_compare: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_results(path, role):
    """Load and schema-check one envelope.

    Every failure is a single actionable line: the file, what is
    wrong with it, and the command that produces a fresh one.
    """
    if role == "baseline":
        hint = f"; refresh it: {BASELINE_REFRESH_COMMAND}"
    else:
        hint = (
            "; regenerate it: ./build/bench/elsa_bench --quick"
            f" --out {path}"
        )

    def bad(reason):
        fail(f"{path}: {role} {reason}{hint}")

    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        bad(f"is unreadable ({exc.strerror or exc})")
    if not text.strip():
        bad("is empty")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        bad(f"is not valid JSON (truncated or corrupt: {exc})")
    if not isinstance(doc, dict):
        bad("top level must be an object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        bad(
            f"has schema_version {doc.get('schema_version')!r},"
            f" expected {SCHEMA_VERSION}"
        )
    if doc.get("suite") != SUITE:
        bad(f"has suite {doc.get('suite')!r}, expected {SUITE!r}")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        bad("has no 'benches' object")
    for name, bench in benches.items():
        if not isinstance(bench, dict):
            bad(f"bench {name!r} is not an object")
        if bench.get("artifact") != name:
            bad(
                f"bench {name!r} artifact mismatch"
                f" ({bench.get('artifact')!r})"
            )
        if not isinstance(bench.get("metrics"), dict):
            bad(f"bench {name!r} has no metrics section")
    return doc


def metric_tolerance(name, default):
    for needle, tol in TOLERANCE_OVERRIDES.items():
        if needle in name:
            return tol
    return default


def is_wall_time(name):
    return any(needle in name for needle in WALL_TIME)


def is_kernel_throughput(name):
    return any(needle in name for needle in KERNEL_THROUGHPUT)


def serving_direction(name):
    """+1 / -1 for a serving SLO metric, 0 for everything else."""
    if any(needle in name for needle in SERVING_HIGHER):
        return 1
    if any(needle in name for needle in SERVING_LOWER):
        return -1
    return 0


def direction(name):
    """-1 = lower is better, +1 = higher is better, 0 = pinned."""
    if is_wall_time(name):
        return -1
    if is_kernel_throughput(name):
        return 1
    serving = serving_direction(name)
    if serving != 0:
        return serving
    for needle in HIGHER_IS_BETTER:
        if needle in name:
            return 1
    for needle in LOWER_IS_BETTER:
        if needle in name:
            return -1
    return 0


def compare_metric(label, base, cur, tolerance):
    """Return (status, detail, rel); status in ok/improved/regressed;
    rel is the relative delta, or None for exact/non-numeric
    comparisons."""
    if isinstance(base, (str, bool)) or isinstance(cur, (str, bool)):
        if base == cur:
            return "ok", f"{base!r}", None
        return "regressed", f"{base!r} -> {cur!r} (must match)", None

    if any(needle in label for needle in EXACT):
        if base == cur:
            return "ok", f"{base}", None
        return ("regressed", f"{base} -> {cur} (must match exactly)",
                None)

    base = float(base)
    cur = float(cur)
    if base == cur:
        return "ok", f"{base:g}", 0.0
    denom = abs(base) if base != 0.0 else 1.0
    rel = (cur - base) / denom
    detail = f"{base:g} -> {cur:g} ({rel:+.2%})"
    sign = direction(label)
    worse = (
        abs(rel) > tolerance
        if sign == 0
        else rel * sign < -tolerance
    )
    if worse:
        return ("regressed", detail + f", tolerance {tolerance:.0%}",
                rel)
    if sign != 0 and rel * sign > tolerance:
        return "improved", detail, rel
    return "ok", detail, rel


def print_summary_table(summary):
    """Per-bench delta rollup, printed on success and failure alike:
    metric count, improved/advisory/regressed tallies, and the
    largest gated relative delta with the metric it came from."""
    name_width = max([len(name) for name in summary] + [len("bench")])
    header = (
        f"{'bench':<{name_width}}  {'cmp':>4} {'imp':>4} "
        f"{'adv':>4} {'reg':>4}  {'max delta':>10}  metric"
    )
    print(header)
    print("-" * len(header))
    for name, row in sorted(summary.items()):
        if row["max_rel"] is None:
            delta = "-"
        else:
            delta = f"{row['max_rel']:+.2%}"
        print(
            f"{name:<{name_width}}  {row['compared']:>4} "
            f"{row['improved']:>4} {row['advisory']:>4} "
            f"{row['regressed']:>4}  {delta:>10}  "
            f"{row['max_metric']}"
        )


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="baseline BENCH_RESULTS.json")
    parser.add_argument("current", help="current BENCH_RESULTS.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="default relative tolerance (default %(default)s)",
    )
    parser.add_argument(
        "--list-metrics",
        action="store_true",
        help="print every compared metric, not just failures",
    )
    args = parser.parse_args()

    baseline = load_results(args.baseline, "baseline")
    current = load_results(args.current, "current file")

    if baseline.get("quick") != current.get("quick"):
        fail(
            "quick/full mismatch: baseline quick="
            f"{baseline.get('quick')}, current quick="
            f"{current.get('quick')} (not comparable)"
        )

    regressions = []
    improvements = []
    advisories = []
    compared = 0
    # Per-bench rollup, printed as a summary table even when every
    # metric is within tolerance (so a green run still shows how far
    # each entry drifted).
    summary = {}
    for name, base_bench in sorted(baseline["benches"].items()):
        row = summary.setdefault(
            name,
            {"compared": 0, "improved": 0, "regressed": 0,
             "advisory": 0, "max_rel": None, "max_metric": "-"},
        )
        cur_bench = current["benches"].get(name)
        if cur_bench is None:
            regressions.append((f"{name}", "bench missing from current"))
            row["regressed"] += 1
            continue
        base_metrics = base_bench["metrics"]
        cur_metrics = cur_bench["metrics"]
        for metric, base_value in base_metrics.items():
            label = f"{name}.{metric}"
            advisory = is_wall_time(metric)
            if metric not in cur_metrics:
                if advisory:
                    advisories.append(
                        (label, "wall-time metric missing from current")
                    )
                    row["advisory"] += 1
                else:
                    regressions.append(
                        (label, "metric missing from current")
                    )
                    row["regressed"] += 1
                continue
            compared += 1
            row["compared"] += 1
            if advisory:
                tol = WALL_TIME_TOLERANCE
            elif is_kernel_throughput(metric):
                tol = KERNEL_THROUGHPUT_TOLERANCE
            elif serving_direction(metric) != 0:
                tol = SERVING_TOLERANCE
            else:
                tol = metric_tolerance(metric, args.tolerance)
            status, detail, rel = compare_metric(
                metric, base_value, cur_metrics[metric], tol
            )
            if advisory and status != "ok":
                # Direction-aware so the report reads right, but a
                # wall-time move is never a gate failure.
                advisories.append((label, detail))
                status = "advisory"
                row["advisory"] += 1
            elif status == "regressed":
                regressions.append((label, detail))
                row["regressed"] += 1
            elif status == "improved":
                improvements.append((label, detail))
                row["improved"] += 1
            if (rel is not None and not advisory
                    and (row["max_rel"] is None
                         or abs(rel) > abs(row["max_rel"]))):
                row["max_rel"] = rel
                row["max_metric"] = metric
            if args.list_metrics:
                print(f"  {status:>9}  {label}: {detail}")

    print_summary_table(summary)
    for label, detail in improvements:
        print(f"IMPROVED  {label}: {detail}")
    for label, detail in advisories:
        print(f"ADVISORY  {label}: {detail} (wall time; never gates)")
    for label, detail in regressions:
        print(f"REGRESSED {label}: {detail}")
    if any("latency" in label or "cycles" in label
           for label, _ in regressions):
        print(
            "hint: a latency/cycle metric regressed -- rerun the "
            "bench with --report and run "
            "`python3 scripts/explain_tail.py <report-dir>` to rank "
            "the tail's root causes"
        )
    print(
        f"bench_compare: {compared} metrics compared, "
        f"{len(improvements)} improved, "
        f"{len(advisories)} advisory, {len(regressions)} regressed"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
