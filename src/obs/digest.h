#ifndef ELSA_OBS_DIGEST_H_
#define ELSA_OBS_DIGEST_H_

/**
 * @file
 * Deterministic streaming quantile digest (merging t-digest).
 *
 * Accumulates a sample stream in bounded memory and answers
 * quantile(q) queries with a rank error that shrinks toward the
 * tails -- exactly the shape needed for p50/p95/p99 latency
 * reporting. The implementation is the buffered *merging* t-digest
 * of Dunning & Ertl with the k1 scale function
 *
 *     k(q) = (compression / 2pi) * asin(2q - 1)
 *
 * so adjacent centroids are merged only while their combined
 * k-width stays <= 1. Unlike the classic clustering variant there
 * is no randomness anywhere: samples are buffered, sorted, and
 * merged into the sorted centroid list in one deterministic pass,
 * so the same multiset of samples always yields the same centroids
 * and the same quantile answers regardless of thread count (the
 * simulator merges shards in invocation order, docs/PARALLELISM.md).
 *
 * Accuracy: with the k1 scale the maximum rank error at the median
 * is about pi / (2 * compression) -- ~1.6% of rank for the default
 * compression of 100 -- and decreases toward q = 0 and q = 1 where
 * centroids are forced to be small; the extremes are exact because
 * min and max are tracked explicitly and anchor the interpolation.
 * docs/OBSERVABILITY.md states the bound the tests enforce.
 *
 * Thread-safety matches the other registry metrics: add(), merge()
 * and the readers take a small internal lock. quantile() may compact
 * the internal buffer (a const-visible cache flush), which is why
 * the storage is mutable.
 */

#include <cstddef>
#include <mutex>
#include <vector>

namespace elsa::obs {

/** Bounded-memory quantile sketch; see file comment. */
class QuantileDigest
{
  public:
    /**
     * @param compression Centroid budget knob; the digest keeps
     *        roughly `compression` centroids. Larger is more
     *        accurate and bigger. Must be >= 10.
     */
    explicit QuantileDigest(double compression = 100.0);

    /** Copies samples and centroids (the lock is never shared). */
    QuantileDigest(const QuantileDigest& other);
    QuantileDigest& operator=(const QuantileDigest& other);

    /** Record one (finite) observation. */
    void add(double x);

    /** Fold another digest in; both keep their full accuracy. */
    void merge(const QuantileDigest& other);

    /** Observations recorded. */
    std::size_t count() const;

    /** Smallest observation; fatal when empty. */
    double min() const;

    /** Largest observation; fatal when empty. */
    double max() const;

    /** The compression the digest was built with. */
    double compression() const { return compression_; }

    /**
     * Estimated q-quantile, q in [0, 1]; fatal when empty. Exact at
     * q = 0 and q = 1 (returns min/max), interpolated between
     * centroid midpoints in between.
     */
    double quantile(double q) const;

    /** Drop every observation; the compression is kept. */
    void reset();

  private:
    struct Centroid
    {
        double mean;
        double weight;
    };

    /** k1 scale function; see file comment. */
    double kFromQ(double q) const;

    /** Sort the buffer and fold it into the centroid list. */
    void flushLocked() const;

    /**
     * Merge a sorted centroid run into centroids_ and re-compact
     * under the k1 size limit. Deterministic single pass.
     */
    void mergeSortedLocked(const std::vector<Centroid>& other) const;

    /** Guards everything below. */
    mutable std::mutex m_;
    double compression_;
    /** Unsorted samples awaiting a deterministic flush. */
    mutable std::vector<double> buffer_;
    /** Compacted sketch, sorted by mean. */
    mutable std::vector<Centroid> centroids_;
    std::size_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace elsa::obs

#endif // ELSA_OBS_DIGEST_H_
