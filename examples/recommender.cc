/**
 * @file
 * Sequential-recommendation scenario (SASRec / BERT4Rec on
 * MovieLens-1M, Section V-A of the paper).
 *
 * Recommenders apply self-attention over a user's interaction
 * history. Their accuracy metric (NDCG@10) is more sensitive than
 * NLP metrics, so the paper uses tighter loss bounds
 * (0.5% / 1% / 2%) to pick p. This example walks the full
 * mode-selection loop for both recommender models and reports the
 * operating point each mode lands on.
 */

#include <cstdio>

#include "elsa/system.h"

int
main()
{
    using namespace elsa;

    SystemConfig config;
    config.eval.max_sublayers = 6; // Both models have <= 6 sublayers.
    config.eval.num_eval_inputs = 4;
    config.eval.num_train_inputs = 3;
    config.sim_sublayers = 6;
    config.sim_inputs = 4;

    for (const ModelConfig& model : {sasRec(), bert4Rec()}) {
        const WorkloadSpec spec{model, movieLens1M()};
        std::printf("== %s: %zu layers x %zu heads, history length "
                    "n = %zu ==\n",
                    spec.label().c_str(), model.num_layers,
                    model.num_heads, spec.dataset.padded_length);

        ElsaSystem system(spec, config);

        std::printf("%-20s %6s %12s %14s %12s %12s\n", "mode", "p",
                    "candidates", "NDCG proxy loss", "vs GPU",
                    "energy/op");
        for (const ApproxMode mode :
             {ApproxMode::kBase, ApproxMode::kConservative,
              ApproxMode::kModerate, ApproxMode::kAggressive}) {
            const ModeReport report = system.evaluateMode(mode);
            std::printf("%-20s %6.1f %11.1f%% %13.2f%% %11.1fx "
                        "%9.3f uJ\n",
                        approxModeName(mode), report.p,
                        100.0 * report.candidate_fraction,
                        report.estimated_loss_pct,
                        report.throughput_vs_gpu,
                        report.elsa_energy_per_op_uj);
        }

        // Show the p-selection logic explicitly for one mode.
        std::printf("\n  mode selection trace (conservative, bound "
                    "%.1f%%):\n",
                    accuracyLossBound(model,
                                      ApproxMode::kConservative));
        for (const double p : WorkloadRunner::standardPGrid()) {
            const WorkloadEvaluation& eval = system.fidelityAt(p);
            std::printf("    p = %.1f -> loss %.2f%% %s\n", p,
                        eval.estimated_loss_pct,
                        eval.estimated_loss_pct
                                <= accuracyLossBound(
                                       model,
                                       ApproxMode::kConservative)
                            ? "(ok)"
                            : "(exceeds bound)");
        }
        std::printf("\n");
    }

    std::printf("Recommenders run short sequences (n = 200), so the "
                "pipeline's fixed floors cap the\napproximation "
                "speedup earlier than in the NLP workloads -- the "
                "same effect the paper\nshows in Fig. 11.\n");
    return 0;
}
