#include "common/simd/simd.h"

#include <bit>

namespace elsa::simd {

namespace {

void
hammingBatchScalar(const std::uint64_t* query, const std::uint64_t* keys,
                   std::size_t words_per_row, std::size_t num_rows,
                   std::uint32_t* out)
{
    for (std::size_t r = 0; r < num_rows; ++r) {
        const std::uint64_t* row = keys + r * words_per_row;
        std::uint32_t distance = 0;
        for (std::size_t w = 0; w < words_per_row; ++w) {
            distance += static_cast<std::uint32_t>(
                std::popcount(query[w] ^ row[w]));
        }
        out[r] = distance;
    }
}

int
popcountWordsScalar(const std::uint64_t* words, std::size_t n)
{
    int count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        count += std::popcount(words[i]);
    }
    return count;
}

template <typename T>
void
signPackScalar(const T* v, std::size_t n, std::uint64_t* out)
{
    const std::size_t words = (n + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
        out[w] = 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (v[i] >= T{0}) {
            out[i / 64] |= std::uint64_t{1} << (i % 64);
        }
    }
}

void
signPackF32Scalar(const float* v, std::size_t n, std::uint64_t* out)
{
    signPackScalar(v, n, out);
}

void
signPackF64Scalar(const double* v, std::size_t n, std::uint64_t* out)
{
    signPackScalar(v, n, out);
}

const KernelTable kScalarTable = {
    SimdLevel::kScalar, "scalar",        hammingBatchScalar,
    popcountWordsScalar, signPackF32Scalar, signPackF64Scalar,
};

} // namespace

const KernelTable&
scalarKernels()
{
    return kScalarTable;
}

} // namespace elsa::simd
