#ifndef ELSA_COMMON_STATS_H_
#define ELSA_COMMON_STATS_H_

/**
 * @file
 * Streaming and batch statistics helpers used by the calibration,
 * threshold-learning, and benchmark-reporting code.
 */

#include <cstddef>
#include <vector>

namespace elsa {

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return mean_; }

    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum observation; +inf when empty. */
    double min() const { return min_; }

    /** Maximum observation; -inf when empty. */
    double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/**
 * q-th percentile (0 <= q <= 1) of the values using linear
 * interpolation between order statistics. The input is copied and
 * sorted; values must be non-empty.
 */
double percentile(std::vector<double> values, double q);

/** Geometric mean of strictly positive values; values must be non-empty. */
double geomean(const std::vector<double>& values);

} // namespace elsa

#endif // ELSA_COMMON_STATS_H_
