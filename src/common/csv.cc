#include "common/csv.h"

#include <cstdio>

#include "common/logging.h"

namespace elsa {

CsvWriter::CsvWriter(const std::string& path) : out_(path)
{
    ELSA_CHECK(out_.good(), "cannot open CSV file: " << path);
}

std::string
CsvWriter::escape(const std::string& field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
        return field;
    }
    std::string quoted = "\"";
    for (const char c : field) {
        if (c == '"') {
            quoted += "\"\"";
        } else {
            quoted += c;
        }
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string>& fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) {
            out_ << ',';
        }
        out_ << escape(fields[i]);
    }
    out_ << '\n';
    ++rows_;
    ELSA_CHECK(out_.good(), "CSV write failed");
}

void
CsvWriter::writeHeader(const std::vector<std::string>& columns)
{
    writeRow(columns);
}

std::string
csvNumber(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

} // namespace elsa
