// elsa-lint-pretend: src/sim/bad_channel_name.cc
// Known-bad fixture: time-series channel and quantile-digest names
// share the metric namespace, so `.channel(...)` / `.digest(...)`
// sites are held to the same grammar / documentation / one-site
// rules as the registry kinds.
#include "obs/registry.h"
#include "obs/timeseries.h"

namespace elsa {

void
badChannels(obs::TimeSeries& series, obs::StatsRegistry& registry,
            const std::string& prefix)
{
    series.channel("queue.Occupancy");                         // BAD
    series.channel("made.up.channel");                         // BAD
    series.channel("queue.occupancy_cycles");
    series.channel("queue.occupancy_cycles");                  // BAD
    registry.digest(prefix + ".latency.cycles-digest");        // BAD
    registry.digest(prefix + ".latency.undocumented_digest");  // BAD
}

} // namespace elsa
