#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"

namespace elsa {

SublayerProfile
sublayerProfile(const ModelConfig& model, std::size_t layer,
                std::size_t head)
{
    ELSA_CHECK(layer < model.num_layers && head < model.num_heads,
               "sublayer (" << layer << "," << head << ") out of range for "
                            << model.name);
    SublayerProfile profile;
    const double layer_frac =
        model.num_layers > 1
            ? static_cast<double>(layer)
                  / static_cast<double>(model.num_layers - 1)
            : 0.0;
    // Real transformer stacks show peaky "syntactic" heads in the
    // middle layers and broader heads at the extremes (Clark et al.,
    // "What does BERT look at?"); heads within a layer also differ.
    const double head_phase =
        static_cast<double>(head % 4) / 4.0; // 4 head personalities
    // Raw planted scores land around concentration * 0.55 * ||K||
    // (~4-9); together with the noise floor (sigma ~1.6) the softmax
    // concentrates on a handful of keys without collapsing to a
    // one-hot, matching measured transformer attention entropy.
    profile.concentration = 2.0 + 1.5 * std::sin(M_PI * layer_frac)
                            + 0.7 * head_phase;
    profile.mean_relevant = 1.5 + 2.5 * (1.0 - head_phase)
                            + 1.5 * (1.0 - std::sin(M_PI * layer_frac));
    profile.locality = model.is_nlp ? 0.3 + 0.5 * head_phase : 0.15;
    profile.key_norm_mean = 4.0;
    profile.key_norm_spread = 0.25;
    profile.key_context = 0.5;
    profile.query_context = 0.35 + 0.3 * head_phase;
    return profile;
}

QkvGenerator::QkvGenerator(ModelConfig model, std::uint64_t master_seed)
    : model_(std::move(model)), master_seed_(master_seed)
{
}

AttentionInput
QkvGenerator::generate(std::size_t layer, std::size_t head,
                       std::size_t n_real, std::uint64_t input_id) const
{
    return generateWithProfile(sublayerProfile(model_, layer, head),
                               layer, head, n_real, input_id);
}

AttentionInput
QkvGenerator::generateWithProfile(const SublayerProfile& profile,
                                  std::size_t layer, std::size_t head,
                                  std::size_t n_real,
                                  std::uint64_t input_id) const
{
    ELSA_CHECK(n_real > 0, "n_real must be positive");
    const std::size_t d = model_.head_dim;

    // Derive an independent stream for this (layer, head, input).
    Rng base(master_seed_);
    Rng rng = base.fork(layer * 131071 + head * 257 + input_id * 15485863);

    AttentionInput input;
    input.key = Matrix(n_real, d);
    input.query = Matrix(n_real, d);
    input.value = Matrix(n_real, d);

    // Shared context direction of this (layer, head): transformer
    // embeddings are anisotropic, so every key and query carries a
    // component of a common direction, producing the continuum of
    // moderate similarities real attention shows.
    std::vector<double> context(d);
    double context_sq = 0.0;
    for (auto& v : context) {
        v = rng.gaussian();
        context_sq += v * v;
    }
    const double context_norm = std::sqrt(std::max(context_sq, 1e-12));
    for (auto& v : context) {
        v /= context_norm;
    }
    const double sqrt_d = std::sqrt(static_cast<double>(d));

    // Keys: random directions with norm ~ N(mean, mean*spread).
    std::vector<double> key_norms(n_real);
    for (std::size_t j = 0; j < n_real; ++j) {
        float* k = input.key.row(j);
        // Per-key context affinity varies, spreading the key cone;
        // context_decay > 1 concentrates the density at low
        // affinities (a thin upper tail, like real embeddings).
        const double affinity =
            profile.key_context
            * (0.5 + std::pow(rng.uniform(), profile.context_decay));
        for (std::size_t c = 0; c < d; ++c) {
            k[c] = static_cast<float>(rng.gaussian()
                                      + affinity * sqrt_d * context[c]);
        }
        const double raw_norm = l2Norm(k, d);
        const double target = std::max(
            0.5, rng.gaussian(profile.key_norm_mean,
                              profile.key_norm_mean
                                  * profile.key_norm_spread));
        key_norms[j] = target;
        for (std::size_t c = 0; c < d; ++c) {
            k[c] = static_cast<float>(k[c] * target / raw_norm);
        }
    }

    // Queries: a mixture of the directions of a few planted relevant
    // keys (locality-biased) plus isotropic noise, scaled so the
    // relevant keys' scores dominate the softmax.
    for (std::size_t i = 0; i < n_real; ++i) {
        const int num_relevant = std::max(
            1, static_cast<int>(std::lround(
                   rng.gaussian(profile.mean_relevant,
                                profile.mean_relevant * 0.4))));
        float* q = input.query.row(i);
        std::vector<double> direction(d, 0.0);
        for (int r = 0; r < num_relevant; ++r) {
            std::size_t j = 0;
            if (rng.uniform() < profile.locality) {
                // Local pick: a key within a +-16 window of the query.
                const auto offset =
                    static_cast<long>(rng.uniformInt(33)) - 16;
                const long pos = static_cast<long>(i) + offset;
                j = static_cast<std::size_t>(std::clamp(
                    pos, 0L, static_cast<long>(n_real) - 1));
            } else {
                j = rng.uniformInt(n_real);
            }
            const float* k = input.key.row(j);
            // The first relevant key dominates (real heads attend one
            // primary token strongly plus a few secondary ones),
            // which puts the top key at a comfortable angular margin
            // from the selection threshold.
            const double weight = (r == 0)
                                      ? 1.5 + rng.uniform()  // [1.5, 2.5)
                                      : 0.4 + 0.6 * rng.uniform();
            for (std::size_t c = 0; c < d; ++c) {
                direction[c] += weight * k[c] / key_norms[j];
            }
        }
        // Normalize the planted direction and mix with noise. With
        // r relevant keys of unit weight the per-key cosine towards
        // the query is ~1/sqrt(r), so a relevant key's raw score is
        // ~concentration * ||K|| / sqrt(r) (order 4-9), while an
        // irrelevant key scores N(0, (0.4*sqrt(d)*||K||/sqrt(d))^2),
        // i.e. sigma ~1.6 -- a few keys carry most of the softmax
        // mass without collapsing to a one-hot.
        double dir_norm = 0.0;
        for (const double v : direction) {
            dir_norm += v * v;
        }
        dir_norm = std::sqrt(std::max(dir_norm, 1e-12));
        const double signal = profile.concentration;
        const double noise = profile.noise;
        const double ctx = profile.query_context * signal;
        // The final scale sets the softmax temperature: raw score
        // gaps between the top keys end up around 1-3, so the top
        // key holds well under 100% of the mass and a few dozen keys
        // exceed the p/n qualification floor -- the regime real
        // (scaled) transformer attention operates in.
        const double temperature = profile.temperature;
        for (std::size_t c = 0; c < d; ++c) {
            const double v = signal * direction[c] / dir_norm
                             + ctx * context[c]
                             + noise * rng.gaussian();
            q[c] = static_cast<float>(temperature * v);
        }
    }

    // Values: isotropic unit-variance rows.
    input.value.fillGaussian(rng);
    return input;
}

std::size_t
sampleSequenceLength(const DatasetSpec& dataset, Rng& rng)
{
    const double raw =
        rng.gaussian(dataset.mean_tokens, dataset.stddev_tokens);
    const double clamped =
        std::clamp(raw, static_cast<double>(dataset.min_tokens),
                   static_cast<double>(dataset.max_tokens));
    return static_cast<std::size_t>(std::lround(clamped));
}

} // namespace elsa
