#include "sim/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace elsa {

namespace {

std::string
moduleCounterName(const std::string& prefix, HwModule module)
{
    return prefix + "." + hwModuleMetricName(module)
           + ".active_cycles";
}

std::string
stallCounterName(const std::string& prefix, AttributedModule module,
                 const char* field)
{
    std::string name = prefix;
    name += ".stall.";
    name += attributedModuleMetricName(module);
    name += '.';
    name += field;
    return name;
}

} // namespace

void
publishRunStats(const RunResult& result, obs::StatsRegistry& registry,
                const std::string& prefix)
{
    registry.counter(prefix + ".invocations").increment();
    registry.counter(prefix + ".cycles.preprocess")
        .add(static_cast<double>(result.preprocess_cycles));
    registry.counter(prefix + ".cycles.execute")
        .add(static_cast<double>(result.execute_cycles));
    registry.counter(prefix + ".cycles.total")
        .add(static_cast<double>(result.totalCycles()));

    for (const HwModule module : allHwModules()) {
        registry.counter(moduleCounterName(prefix, module))
            .add(result.activity.get(module));
    }

    registry.counter(prefix + ".candidate.stalls")
        .add(static_cast<double>(result.stall_cycles));
    registry.counter(prefix + ".candidate.fallbacks")
        .add(static_cast<double>(result.empty_selections));
    double selected = 0.0;
    for (const std::size_t c : result.candidates_per_query) {
        selected += static_cast<double>(c);
    }
    registry.counter(prefix + ".candidate.selected").add(selected);
    registry.counter(prefix + ".queries")
        .add(static_cast<double>(result.candidates_per_query.size()));

    if (!result.stall_breakdown.empty()) {
        for (const AttributedModule module : allAttributedModules()) {
            for (const StallCause cause : allStallCauses()) {
                // fault_retry exists only when fault injection ran:
                // with SimConfig::fault disabled the dump stays
                // byte-identical to a build without the fault layer
                // (check_metrics.py treats the counter as optional).
                if (cause == StallCause::kFaultRetry
                    && !result.fault.enabled) {
                    continue;
                }
                registry
                    .counter(stallCounterName(
                        prefix, module, stallCauseMetricName(cause)))
                    .add(static_cast<double>(
                        result.stall_breakdown.get(module, cause)));
            }
            registry
                .counter(
                    stallCounterName(prefix, module, "lane_cycles"))
                .add(static_cast<double>(
                    result.stall_breakdown.laneCycles(module)));
        }
    }

    // Fault and saturation counters are published only when their
    // features ran, so default-config dumps carry no trace of them.
    if (result.fault.enabled) {
        const FaultCounts& counts = result.fault.counts;
        registry.counter(prefix + ".fault.injected")
            .add(static_cast<double>(counts.injected));
        registry.counter(prefix + ".fault.silent")
            .add(static_cast<double>(counts.silent));
        registry.counter(prefix + ".fault.detected")
            .add(static_cast<double>(counts.detected));
        registry.counter(prefix + ".fault.corrected")
            .add(static_cast<double>(counts.corrected));
        registry.counter(prefix + ".fault.retry_events")
            .add(static_cast<double>(counts.retry_events));
        registry.counter(prefix + ".fault.retry_stall_cycles")
            .add(static_cast<double>(result.fault.retry_stall_cycles));
    }
    if (result.saturations_counted) {
        registry.counter(prefix + ".fixed.saturations")
            .add(static_cast<double>(result.fixed_saturations));
        registry.counter(prefix + ".cfloat.saturations")
            .add(static_cast<double>(result.cfloat_saturations));
    }

    if (!result.query_trace.empty()) {
        obs::Distribution& interval =
            registry.distribution(prefix + ".query.interval_cycles");
        // Candidate fraction lives in [0, 1]; stable edges make the
        // histogram comparable across runs of any sequence length.
        obs::Histogram& fraction = registry.histogram(
            prefix + ".query.candidate_fraction",
            obs::Histogram::linear(0.0, 1.0, 10));
        const double n =
            static_cast<double>(result.candidates_per_query.size());
        for (const QueryTraceRecord& r : result.query_trace) {
            interval.add(static_cast<double>(r.interval_cycles));
            fraction.add(static_cast<double>(r.candidates)
                         / std::max(1.0, n));
        }
    }
}

UtilizationReport
computeUtilization(const RunResult& result)
{
    obs::StatsRegistry scratch;
    publishRunStats(result, scratch, "run");
    return utilizationFromRegistry(scratch, "run");
}

UtilizationReport
utilizationFromRegistry(const obs::StatsRegistry& registry,
                        const std::string& prefix)
{
    UtilizationReport report;
    const double total =
        registry.counterValue(prefix + ".cycles.total");
    if (total <= 0.0) {
        return report;
    }
    std::size_t i = 0;
    for (const HwModule module : allHwModules()) {
        const double active =
            registry.counterValue(moduleCounterName(prefix, module));
        report.utilization[i++] = std::min(1.0, active / total);
    }
    return report;
}

std::string
formatUtilization(const UtilizationReport& report)
{
    std::ostringstream oss;
    for (const HwModule module : allHwModules()) {
        oss << "  " << moduleAreaPower(module).name << ": ";
        const double pct = 100.0 * report.get(module);
        oss << pct << "%\n";
    }
    return oss.str();
}

BottleneckReport
computeBottleneck(const StallBreakdown& breakdown)
{
    BottleneckReport report;
    if (breakdown.empty()) {
        return report;
    }
    report.valid = true;
    double best = -1.0;
    for (const AttributedModule module : allAttributedModules()) {
        const std::size_t m = static_cast<std::size_t>(module);
        const double busy = breakdown.busyFraction(module);
        report.module_busy_fraction[m] = busy;
        if (busy > best) {
            best = busy;
            report.limiting = module;
        }
        std::uint64_t worst_idle = 0;
        StallCause dominant = StallCause::kStarved;
        for (const StallCause cause : allStallCauses()) {
            if (cause == StallCause::kBusy) {
                continue;
            }
            const std::uint64_t idle = breakdown.get(module, cause);
            if (idle > worst_idle) {
                worst_idle = idle;
                dominant = cause;
            }
        }
        report.dominant_idle_cause[m] = dominant;
    }
    report.busy_fraction = best;
    report.headroom = 1.0 - best;
    return report;
}

BottleneckReport
computeBottleneck(const RunResult& result)
{
    return computeBottleneck(result.stall_breakdown);
}

std::string
formatBottleneckReport(const BottleneckReport& report)
{
    std::ostringstream oss;
    if (!report.valid) {
        oss << "no stall attribution data (enable "
               "SimConfig::attribute_stalls)\n";
        return oss.str();
    }
    oss << "limiting module: "
        << attributedModuleName(report.limiting) << " ("
        << 100.0 * report.busy_fraction << "% busy, "
        << 100.0 * report.headroom << "% headroom)\n";
    for (const AttributedModule module : allAttributedModules()) {
        const std::size_t m = static_cast<std::size_t>(module);
        oss << "  " << attributedModuleName(module) << ": "
            << 100.0 * report.module_busy_fraction[m]
            << "% busy, idles mostly "
            << stallCauseName(report.dominant_idle_cause[m]) << "\n";
    }
    return oss.str();
}

void
writeQueryTraceCsv(std::ostream& os,
                   const std::vector<QueryTraceRecord>& records)
{
    os << "query,interval_cycles,max_bank_cycles,candidates,"
          "stall_cycles,used_fallback\n";
    for (const auto& r : records) {
        os << r.query_id << ',' << r.interval_cycles << ','
           << r.max_bank_cycles << ',' << r.candidates << ','
           << r.stall_cycles << ',' << (r.used_fallback ? 1 : 0)
           << '\n';
    }
}

QueryTraceSummary
summarizeQueryTrace(const std::vector<QueryTraceRecord>& records)
{
    QueryTraceSummary summary;
    if (records.empty()) {
        return summary;
    }
    double interval_sum = 0.0;
    double candidate_sum = 0.0;
    for (const auto& r : records) {
        interval_sum += static_cast<double>(r.interval_cycles);
        candidate_sum += static_cast<double>(r.candidates);
        summary.max_interval =
            std::max(summary.max_interval, r.interval_cycles);
        summary.total_stalls += r.stall_cycles;
        summary.fallbacks += r.used_fallback ? 1 : 0;
    }
    const double count = static_cast<double>(records.size());
    summary.mean_interval = interval_sum / count;
    summary.mean_candidates = candidate_sum / count;
    return summary;
}

} // namespace elsa
