#include "obs/profile.h"

#include <cstdlib>
#include <string>

#include "obs/registry.h"

namespace elsa::obs {

namespace {

bool&
profilingFlag()
{
    static bool enabled = [] {
        const char* env = std::getenv("ELSA_PROF");
        return env != nullptr && std::string(env) != "0"
               && std::string(env) != "";
    }();
    return enabled;
}

} // namespace

bool
profilingEnabled()
{
    return profilingFlag();
}

void
setProfilingEnabled(bool enabled)
{
    profilingFlag() = enabled;
}

void
ScopedTimer::record() const
{
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double seconds =
        std::chrono::duration<double>(elapsed).count();
    globalRegistry()
        .distribution(std::string("host.") + scope_ + ".seconds")
        .add(seconds);
}

} // namespace elsa::obs
