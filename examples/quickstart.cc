/**
 * @file
 * Quickstart: run ELSA approximate self-attention on random data.
 *
 * Demonstrates the three-step API:
 *   1. build an Elsa engine for your embedding dimension;
 *   2. learn a candidate-selection threshold for a degree of
 *      approximation p (Section III-E of the paper);
 *   3. run approximate attention and compare against the exact
 *      result.
 */

#include <cstdio>

#include "attention/metrics.h"
#include "common/rng.h"
#include "elsa/elsa.h"
#include "tensor/ops.h"
#include "workload/generator.h"
#include "workload/model.h"

int
main()
{
    using namespace elsa;

    constexpr std::size_t n = 256; // input entities (e.g. tokens)
    constexpr std::size_t d = 64;  // embedding dimension

    // Generate a realistic attention workload: a BERT-like sublayer
    // where each query genuinely attends a handful of keys.
    QkvGenerator generator(bertLarge(), /*master_seed=*/7);
    const AttentionInput input = generator.generate(/*layer=*/11,
                                                    /*head=*/3, n,
                                                    /*input_id=*/0);

    Elsa engine(d);
    std::printf("ELSA quickstart: n = %zu, d = %zu, k = %zu bits, "
                "theta_bias = %.3f\n",
                n, d, engine.hashBits(), engine.thetaBias());

    // Exact reference.
    const Matrix exact = engine.attention(input.query, input.key,
                                          input.value);

    std::printf("\n%6s %12s %14s %12s %12s\n", "p", "threshold",
                "candidates", "mass recall", "out. rel.err");
    for (const double p : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        const double threshold =
            engine.learnThreshold(input.query, input.key, p);
        const ApproxAttentionResult result = engine.approxAttention(
            input.query, input.key, input.value, threshold);
        const auto candidates =
            engine.engine().candidatesForAll(input, threshold);
        const FidelityReport fidelity =
            measureFidelity(input, candidates, result.output);
        const double fraction =
            result.stats.candidateFraction(n);
        const double err = frobeniusDiff(exact, result.output)
                           / frobeniusNorm(exact);
        std::printf("%6.1f %12.4f %13.1f%% %12.4f %12.5f\n", p,
                    threshold, 100.0 * fraction, fidelity.mass_recall,
                    err);
    }

    std::printf("\nLower p = conservative (more candidates, more "
                "accurate);\nhigher p = aggressive (fewer candidates, "
                "faster on the accelerator).\n");
    return 0;
}
