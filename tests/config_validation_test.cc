/**
 * @file
 * Negative-path coverage of configuration validation: every
 * inconsistent SimConfig / FaultConfig combination is rejected by
 * validate() with an elsa::Error whose message names the offending
 * field, so a misconfigured run dies with an actionable one-liner
 * instead of corrupting a simulation.
 */

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "fault/fault.h"
#include "sim/config.h"

namespace elsa {
namespace {

/** Run fn, require an elsa::Error, and return its message. */
template <typename Fn>
std::string
errorMessage(Fn&& fn)
{
    try {
        fn();
    } catch (const Error& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected elsa::Error, got no exception";
    return {};
}

TEST(ConfigValidationTest, DefaultAndPaperConfigsAreValid)
{
    EXPECT_NO_THROW(SimConfig{}.validate());
    EXPECT_NO_THROW(SimConfig::paperConfig().validate());
}

TEST(ConfigValidationTest, EachInvalidFieldIsNamedInTheError)
{
    struct Case
    {
        const char* field; // Must appear in the error message.
        void (*corrupt)(SimConfig&);
    };
    const Case cases[] = {
        {"d", [](SimConfig& c) { c.d = 0; }},
        {"k", [](SimConfig& c) { c.k = 0; }},
        {"pa", [](SimConfig& c) { c.pa = 0; }},
        {"pc", [](SimConfig& c) { c.pc = 0; }},
        {"mh", [](SimConfig& c) { c.mh = 0; }},
        {"mo", [](SimConfig& c) { c.mo = 0; }},
        {"num_hash_factors",
         [](SimConfig& c) { c.num_hash_factors = 0; }},
        {"queue_depth", [](SimConfig& c) { c.queue_depth = 0; }},
        {"frequency_ghz",
         [](SimConfig& c) { c.frequency_ghz = 0.0; }},
        {"frequency_ghz",
         [](SimConfig& c) {
             c.frequency_ghz =
                 std::numeric_limits<double>::quiet_NaN();
         }},
        {"frequency_ghz",
         [](SimConfig& c) {
             c.frequency_ghz =
                 std::numeric_limits<double>::infinity();
         }},
        {"telemetry.bin_width_cycles",
         [](SimConfig& c) { c.telemetry.bin_width_cycles = 0; }},
        {"telemetry.enabled requires attribute_stalls",
         [](SimConfig& c) {
             c.telemetry.enabled = true;
             c.attribute_stalls = false;
         }},
    };
    for (const Case& test_case : cases) {
        SimConfig config;
        test_case.corrupt(config);
        const std::string message =
            errorMessage([&] { config.validate(); });
        EXPECT_NE(message.find(test_case.field), std::string::npos)
            << "error for field '" << test_case.field
            << "' does not name it: " << message;
    }
}

TEST(ConfigValidationTest, TelemetryWithAttributionIsValid)
{
    SimConfig config;
    config.attribute_stalls = true;
    config.telemetry.enabled = true;
    EXPECT_NO_THROW(config.validate());
    config.telemetry.bin_width_cycles = 1; // Smallest legal bin.
    EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidationTest, RejectsNonKroneckerDimension)
{
    SimConfig config;
    config.d = 60; // Not a perfect cube (num_hash_factors = 3).
    const std::string message =
        errorMessage([&] { config.validate(); });
    EXPECT_NE(message.find("d = 60"), std::string::npos) << message;
    EXPECT_NE(message.find("Kronecker"), std::string::npos) << message;
}

TEST(ConfigValidationTest, EachInvalidFaultFieldIsNamed)
{
    struct Case
    {
        const char* field;
        void (*corrupt)(FaultConfig&);
    };
    const Case cases[] = {
        {"fault.bit_error_rate",
         [](FaultConfig& f) { f.bit_error_rate = -0.5; }},
        {"fault.bit_error_rate",
         [](FaultConfig& f) { f.bit_error_rate = 1.5; }},
        {"fault.bit_error_rate",
         [](FaultConfig& f) {
             f.bit_error_rate =
                 std::numeric_limits<double>::quiet_NaN();
         }},
        {"fault.retry_cycles",
         [](FaultConfig& f) { f.retry_cycles = 0; }},
        {"fault.protection",
         [](FaultConfig& f) {
             f.protection = static_cast<ProtectionMode>(42);
         }},
    };
    for (const Case& test_case : cases) {
        // Both directly and through the SimConfig it is embedded in.
        FaultConfig fault;
        test_case.corrupt(fault);
        const std::string direct =
            errorMessage([&] { fault.validate(); });
        EXPECT_NE(direct.find(test_case.field), std::string::npos)
            << "error for field '" << test_case.field
            << "' does not name it: " << direct;

        SimConfig config;
        config.fault = fault;
        const std::string nested =
            errorMessage([&] { config.validate(); });
        EXPECT_NE(nested.find(test_case.field), std::string::npos)
            << nested;
    }
}

TEST(ConfigValidationTest, FaultInjectionRequiresQuantization)
{
    SimConfig config;
    config.fault.enabled = true;
    config.model_quantization = false;
    const std::string message =
        errorMessage([&] { config.validate(); });
    EXPECT_NE(message.find("fault.enabled"), std::string::npos)
        << message;
    EXPECT_NE(message.find("model_quantization"), std::string::npos)
        << message;

    // The same combination is fine once quantization is on.
    config.model_quantization = true;
    EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidationTest, ProtectionModeNamesRoundTrip)
{
    for (const ProtectionMode mode :
         {ProtectionMode::kNone, ProtectionMode::kParityDetect,
          ProtectionMode::kSecdedCorrect}) {
        EXPECT_EQ(protectionModeFromName(protectionModeName(mode)),
                  mode);
    }
    const std::string message = errorMessage(
        [] { protectionModeFromName("hamming"); });
    EXPECT_NE(message.find("hamming"), std::string::npos) << message;
}

} // namespace
} // namespace elsa
