#include "sim/pipeline_model.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/logging.h"

namespace elsa {

std::size_t
hashMultiplications(std::size_t d, std::size_t num_factors)
{
    const double root = std::pow(static_cast<double>(d),
                                 1.0 / static_cast<double>(num_factors));
    const auto s = static_cast<std::size_t>(std::lround(root));
    std::size_t check = 1;
    for (std::size_t i = 0; i < num_factors; ++i) {
        check *= s;
    }
    ELSA_CHECK(check == d, "d = " << d << " not a perfect power");
    return num_factors * d * s;
}

std::size_t
hashCyclesPerVector(const SimConfig& config)
{
    return ceilDiv(hashMultiplications(config.d, config.num_hash_factors),
                   config.mh);
}

std::size_t
preprocessingCycles(const SimConfig& config, std::size_t n)
{
    const std::size_t hash_cycles = hashCyclesPerVector(config) * (n + 1);
    // Norm computation borrows the attention modules' multipliers
    // (one key dot product per module per cycle) and finishes through
    // its square-root unit; it overlaps the hash phase.
    const std::size_t norm_cycles = ceilDiv(n, config.pa)
                                    + config.attention_pipeline_latency;
    return std::max(hash_cycles, norm_cycles);
}

std::size_t
candidateScanCycles(const SimConfig& config, std::size_t n)
{
    const std::size_t keys_per_bank = ceilDiv(n, config.pa);
    return ceilDiv(keys_per_bank, config.pc);
}

std::size_t
divisionCyclesPerQuery(const SimConfig& config)
{
    return ceilDiv(config.d, config.mo);
}

std::size_t
queryIntervalLowerBound(const SimConfig& config, std::size_t n,
                        std::size_t c_bank)
{
    return std::max({hashCyclesPerVector(config),
                     candidateScanCycles(config, n), c_bank,
                     divisionCyclesPerQuery(config)});
}

double
maxPipelineSpeedup(const SimConfig& config, std::size_t n)
{
    // A query takes at least the max of the fixed (candidate-count
    // independent) stage times; speedup over the n-cycle baseline is
    // n divided by that bound.
    const std::size_t fixed =
        std::max({hashCyclesPerVector(config),
                  candidateScanCycles(config, n),
                  divisionCyclesPerQuery(config), std::size_t{1}});
    return static_cast<double>(n) / static_cast<double>(fixed);
}

} // namespace elsa
