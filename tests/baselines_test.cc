/**
 * @file
 * Tests for the baseline cost models: the analytic V100 GPU model,
 * the ideal accelerator, the A3 model, and the TPUv2 model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/a3.h"
#include "baselines/gpu_model.h"
#include "baselines/ideal.h"
#include "baselines/tpu.h"
#include "common/logging.h"
#include "workload/model.h"

namespace elsa {
namespace {

TEST(GpuModelTest, AttentionTimeScalesQuadratically)
{
    const GpuModel gpu;
    const ModelConfig bert = bertLarge();
    const double t256 = gpu.attentionSecondsPerOp(bert, 256);
    const double t512 = gpu.attentionSecondsPerOp(bert, 512);
    EXPECT_NEAR(t512 / t256, 4.0, 0.05);
}

TEST(GpuModelTest, EfficienciesAreSane)
{
    // Attention kernels run far below the big-GEMM efficiency.
    for (const auto& m : {bertLarge(), robertaLarge(), albertLarge(),
                          sasRec(), bert4Rec()}) {
        EXPECT_GT(GpuModel::attentionEfficiency(m), 0.0) << m.name;
        EXPECT_LT(GpuModel::attentionEfficiency(m),
                  GpuModel::gemmEfficiency(m))
            << m.name;
        EXPECT_LE(GpuModel::gemmEfficiency(m), 1.0) << m.name;
    }
}

TEST(GpuModelTest, Fig2PortionNearPaperAtDefaultLength)
{
    // Fig. 2: the self-attention accounts for ~38% of runtime on
    // average across the five models at their default lengths.
    const GpuModel gpu;
    double sum = 0.0;
    int count = 0;
    const std::pair<ModelConfig, std::size_t> cases[] = {
        {bertLarge(), 384},  {robertaLarge(), 384},
        {albertLarge(), 384}, {sasRec(), 200},
        {bert4Rec(), 200},
    };
    for (const auto& [model, n] : cases) {
        const double portion =
            gpu.layerRuntime(model, n).attentionPortion();
        EXPECT_GT(portion, 0.10) << model.name;
        EXPECT_LT(portion, 0.75) << model.name;
        sum += portion;
        ++count;
    }
    EXPECT_NEAR(sum / count, 0.38, 0.12);
}

TEST(GpuModelTest, Fig2PortionGrowsWithSequenceLength)
{
    // Fig. 2: 4x sequence length -> ~64% average portion.
    const GpuModel gpu;
    const ModelConfig bert = bertLarge();
    const double base =
        gpu.layerRuntime(bert, 384, 1.0).attentionPortion();
    const double longer =
        gpu.layerRuntime(bert, 384, 4.0).attentionPortion();
    EXPECT_GT(longer, base);
    EXPECT_GT(longer, 0.45);
}

TEST(GpuModelTest, Fig2PortionGrowsWithSmallerFfn)
{
    // Fig. 2 right side: FFN dimension / 4 -> larger portion.
    const GpuModel gpu;
    const ModelConfig bert = bertLarge();
    const double base =
        gpu.layerRuntime(bert, 384, 4.0, 1.0).attentionPortion();
    const double thin =
        gpu.layerRuntime(bert, 384, 4.0, 0.25).attentionPortion();
    EXPECT_GT(thin, base);
    EXPECT_GT(thin, 0.6); // Paper: ~73%.
}

TEST(GpuModelTest, EnergyUsesMeasuredPower)
{
    const GpuModel gpu;
    const ModelConfig bert = bertLarge();
    EXPECT_NEAR(gpu.attentionEnergyPerOp(bert, 384),
                gpu.attentionSecondsPerOp(bert, 384) * 240.0, 1e-12);
}

TEST(GpuModelTest, RejectsZeroLength)
{
    const GpuModel gpu;
    EXPECT_THROW(gpu.attentionSecondsPerOp(bertLarge(), 0), Error);
}

TEST(IdealAcceleratorTest, CycleFormula)
{
    // 2 n^2 d / 528 at 100% utilization; n = 512, d = 64.
    const IdealAccelerator ideal;
    EXPECT_EQ(ideal.numMultipliers(), 528u);
    EXPECT_NEAR(ideal.cyclesPerOp(512, 64),
                2.0 * 512.0 * 512.0 * 64.0 / 528.0, 1e-6);
    EXPECT_NEAR(ideal.secondsPerOp(512, 64),
                ideal.cyclesPerOp(512, 64) * 1e-9, 1e-15);
}

TEST(IdealAcceleratorTest, ScalesWithMultipliers)
{
    const IdealAccelerator big(1056);
    const IdealAccelerator small(528);
    EXPECT_NEAR(small.cyclesPerOp(128, 64) / big.cyclesPerOp(128, 64),
                2.0, 1e-9);
    EXPECT_THROW(IdealAccelerator(0), Error);
}

TEST(A3ModelTest, PreprocessingScalesWithSortCost)
{
    const A3Model a3;
    const double p256 = a3.preprocessSeconds(256, 64);
    const double p512 = a3.preprocessSeconds(512, 64);
    // n log n scaling: ratio = 2 * log(512)/log(256) = 2.25.
    EXPECT_NEAR(p512 / p256, 2.0 * 9.0 / 8.0, 1e-6);
}

TEST(A3ModelTest, SelectionBoundCapsSpeedupNearTwo)
{
    // The structural limitation of Section V-E: even with very few
    // candidates the approximation cannot beat ~1.85x on execution
    // cycles, because selection emits at most ~2 keys/cycle.
    const A3Model a3;
    const double base = a3.baseExecuteCycles(512);
    const double approx = a3.approxExecuteCycles(512, 0.05);
    EXPECT_NEAR(base / approx, 1.85, 0.01);
    // With many candidates the attention module binds instead.
    const double heavy = a3.approxExecuteCycles(512, 0.9);
    EXPECT_NEAR(base / heavy, 1.0 / 0.9, 0.01);
}

TEST(A3ModelTest, PreprocessingStorageTwiceKeyMatrix)
{
    EXPECT_EQ(A3Model::preprocessStorageBytes(512, 64),
              2u * 512u * 64u * 2u);
}

TEST(A3ModelTest, TotalTimeIncludesPreprocessing)
{
    const A3Model a3;
    EXPECT_GT(a3.baseSecondsPerOp(512, 64),
              a3.baseExecuteCycles(512) / 1e9);
    EXPECT_GT(a3.approxSecondsPerOp(512, 64, 0.3),
              a3.preprocessSeconds(512, 64));
}

TEST(TpuModelTest, PublishedRatios)
{
    EXPECT_DOUBLE_EQ(TpuModel::normalizedGpuRatio(squadV11()), 5.5);
    EXPECT_DOUBLE_EQ(TpuModel::normalizedGpuRatio(squadV20()), 6.7);
    EXPECT_DOUBLE_EQ(TpuModel::normalizedGpuRatio(race()), 5.4);
}

TEST(TpuModelTest, NormalizedThroughputAboveGpu)
{
    const TpuModel tpu;
    const GpuModel gpu;
    const ModelConfig albert = albertLarge();
    for (const auto& ds : {squadV11(), squadV20(), race()}) {
        const double tpu_tput =
            tpu.normalizedAttentionOpsPerSecond(albert, ds);
        const double gpu_tput =
            gpu.attentionOpsPerSecond(albert, ds.padded_length);
        EXPECT_NEAR(tpu_tput / gpu_tput,
                    TpuModel::normalizedGpuRatio(ds), 1e-9)
            << ds.name;
    }
}

} // namespace
} // namespace elsa
