#ifndef ELSA_OBS_JSON_H_
#define ELSA_OBS_JSON_H_

/**
 * @file
 * Minimal JSON support for the observability layer.
 *
 * JsonWriter is a streaming emitter used by the stats dump, the
 * Chrome trace writer, and the run manifest; it tracks nesting and
 * inserts commas so call sites stay linear. parseJson() is a small
 * recursive-descent reader used by the self-checks and tests to
 * validate that everything we emit round-trips (well-formedness is
 * part of the observability contract: the files must load in
 * Perfetto / pandas without massaging).
 *
 * Neither side aims to be a general JSON library: no unicode escapes
 * beyond pass-through UTF-8, no streaming parse, documents must fit
 * in memory.
 */

#include <cstddef>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace elsa::obs {

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string jsonQuote(const std::string& s);

/** Format a double as JSON (finite values; nan/inf become null). */
std::string jsonNumber(double value);

/** Streaming JSON emitter with automatic comma placement. */
class JsonWriter
{
  public:
    /**
     * @param os     Destination stream (not owned).
     * @param pretty Two-space indentation when true; a single line
     *               when false (the BENCH_*.json one-liner format).
     */
    explicit JsonWriter(std::ostream& os, bool pretty = true);

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Object key; must be followed by a value or begin*(). */
    JsonWriter& key(const std::string& name);

    JsonWriter& value(const std::string& s);
    JsonWriter& value(const char* s);
    JsonWriter& value(double v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(std::size_t v);
    JsonWriter& value(bool b);
    JsonWriter& null();

    /** Convenience: key(name).value(v). */
    template <typename T>
    JsonWriter&
    kv(const std::string& name, const T& v)
    {
        key(name);
        return value(v);
    }

    /** Nesting depth; 0 once the document is closed. */
    std::size_t depth() const { return stack_.size(); }

  private:
    void beforeValue();
    void newline();

    std::ostream& os_;
    bool pretty_;
    /** One entry per open container; true = a value was written. */
    std::vector<bool> stack_;
    bool pending_key_ = false;
};

/** Parsed JSON value (for tests and schema self-checks). */
struct JsonValue
{
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Kind kind = Kind::kNull;
    bool bool_value = false;
    double number_value = 0.0;
    std::string string_value;
    std::vector<JsonValue> array_items;
    /** Insertion order is not preserved; keys are unique. */
    std::map<std::string, JsonValue> object_items;

    bool isNull() const { return kind == Kind::kNull; }
    bool isObject() const { return kind == Kind::kObject; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isNumber() const { return kind == Kind::kNumber; }
    bool isString() const { return kind == Kind::kString; }

    /** Object member or ELSA_FATAL when absent / not an object. */
    const JsonValue& at(const std::string& name) const;

    /** True when this is an object with the given member. */
    bool has(const std::string& name) const;
};

/**
 * Parse a complete JSON document. Raises elsa::Error on malformed
 * input (including trailing garbage).
 */
JsonValue parseJson(const std::string& text);

} // namespace elsa::obs

#endif // ELSA_OBS_JSON_H_
