#ifndef ELSA_WORKLOAD_ACCURACY_H_
#define ELSA_WORKLOAD_ACCURACY_H_

/**
 * @file
 * Accuracy-loss proxy (see DESIGN.md, substitutions).
 *
 * The paper measures end-to-end metric loss (F1, accuracy, NDCG@10)
 * of real pretrained models under approximation. Without those
 * models, this repository estimates the metric loss from the
 * *attention-mass recall*: the fraction of the exact softmax mass the
 * selected candidates retain. Missing softmax mass is precisely what
 * perturbs the attention output and, downstream, the model metric;
 * the mapping below is calibrated so that the paper's two published
 * operating points hold for the synthetic workloads:
 *
 *   p = 1: < 40% candidates and < 1% accuracy loss;
 *   p = 2: ~26% candidates and < 2% accuracy loss.
 */

#include "workload/model.h"

namespace elsa {

/**
 * Estimated end-to-end metric loss, in percentage points, caused by
 * an approximation whose mean attention-mass recall over all
 * (sub-)layers is mean_recall (in [0, 1]).
 */
double estimateAccuracyLossPct(const ModelConfig& model,
                               double mean_recall);

/**
 * Largest tolerable accuracy loss of each ELSA operating mode
 * (Section V-C): conservative / moderate / aggressive are defined by
 * 1% / 2.5% / 5% worst-case loss for the NLP models and
 * 0.5% / 1% / 2% NDCG@10 drop for the recommenders.
 */
enum class ApproxMode
{
    kBase,         ///< No approximation (p = 0).
    kConservative, ///< <= 1% (NLP) / 0.5% (rec) loss.
    kModerate,     ///< <= 2.5% (NLP) / 1% (rec) loss.
    kAggressive,   ///< <= 5% (NLP) / 2% (rec) loss.
};

/** Human-readable mode name ("ELSA-moderate" etc.). */
const char* approxModeName(ApproxMode mode);

/** The loss bound (percentage points) of a mode for a model. */
double accuracyLossBound(const ModelConfig& model, ApproxMode mode);

} // namespace elsa

#endif // ELSA_WORKLOAD_ACCURACY_H_
