#ifndef ELSA_BASELINES_A3_H_
#define ELSA_BASELINES_A3_H_

/**
 * @file
 * Timing model of the A3 attention accelerator (HPCA 2020),
 * reproducing the two structural limitations Section V-E discusses:
 *
 *  1. expensive preprocessing: A3 sorts every column of the key
 *     matrix on external hardware (e.g. the host GPU), which costs
 *     d * n * log2(n) comparison-ish operations and does not shrink
 *     when attention accelerators are replicated -- so with multiple
 *     accelerators the preprocessing dominates;
 *  2. a low-parallelism approximation stage that can emit at most
 *     two candidate keys per cycle (and often fewer) into a single
 *     attention computation module, capping the achievable speedup.
 *
 * The published result the model is calibrated against: a 1.85x
 * speedup over its own no-approximation baseline on BERT +
 * SQuADv1.1 at 1.3% accuracy loss.
 */

#include <cstddef>

namespace elsa {

/** Analytic A3 model. */
class A3Model
{
  public:
    /**
     * @param host_ops_per_second Sorting throughput of the external
     *        preprocessing hardware (keys-column sort steps/s).
     * @param frequency_ghz       Accelerator clock.
     */
    explicit A3Model(double host_ops_per_second = 2e10,
                     double frequency_ghz = 1.0);

    /** Preprocessing seconds: sort d columns of n keys on the host. */
    double preprocessSeconds(std::size_t n, std::size_t d) const;

    /**
     * Execution cycles of the no-approximation A3 baseline: one
     * attention module, one key per cycle, n keys per query.
     */
    double baseExecuteCycles(std::size_t n) const;

    /**
     * Execution cycles with A3's approximation. The selection stage
     * examines sorted score lists and emits at most
     * kMaxSelectionsPerCycle candidates per cycle; per query it
     * examines enough entries to cover candidate_fraction * n keys.
     */
    double approxExecuteCycles(std::size_t n,
                               double candidate_fraction) const;

    /** Total seconds per op (preprocessing amortized over the op). */
    double baseSecondsPerOp(std::size_t n, std::size_t d) const;
    double approxSecondsPerOp(std::size_t n, std::size_t d,
                              double candidate_fraction) const;

    /** Bytes of preprocessing storage: 2x the key matrix. */
    static std::size_t preprocessStorageBytes(std::size_t n,
                                              std::size_t d);

    /** Selection-stage emit limit (keys per cycle). */
    static constexpr double kMaxSelectionsPerCycle = 2.0;

  private:
    double host_ops_per_second_;
    double frequency_ghz_;
};

} // namespace elsa

#endif // ELSA_BASELINES_A3_H_
