#ifndef ELSA_LSH_SRP_H_
#define ELSA_LSH_SRP_H_

/**
 * @file
 * Sign random projection (SRP) hashing (Sections III-B and III-C).
 *
 * An SrpHasher maps a d-dimensional vector to a k-bit binary hash:
 * bit i is 1 iff the dot product with the i-th projection row is
 * >= 0. Two implementations are provided:
 *
 *  - DenseSrpHasher multiplies by an explicit k x d orthogonal matrix
 *    (k*d multiplications per hash).
 *  - KroneckerSrpHasher represents the projection as the Kronecker
 *    product of m small s x s orthogonal factors (d = s^m) and
 *    evaluates it with m*d*s multiplications per hash -- 2d^(3/2) for
 *    m = 2 and 3d^(4/3) for m = 3, matching Section III-C.
 *
 * Both report their per-hash multiplication count so the cost model
 * and the ablation benchmarks can compare them. The projection
 * matrix elements can optionally be quantized to the hardware's S0.5
 * fixed-point format.
 */

#include <cstddef>
#include <memory>
#include <vector>

#include "lsh/bitvector.h"
#include "tensor/matrix.h"

namespace elsa {

class Rng;

/**
 * Reusable per-thread workspace for the packed hash kernels. Hashing
 * n rows through hashMatrix touches one HashMatrix allocation plus
 * one of these, instead of n HashValue heap allocations.
 */
struct HashScratch
{
    std::vector<double> d;      ///< projected values (dense path)
    std::vector<float> f;       ///< contraction buffer (Kronecker)
    std::vector<float> f2;      ///< contraction double-buffer
    std::vector<std::uint64_t> w; ///< packed-word staging
};

/** Interface of a sign-random-projection hasher. */
class SrpHasher
{
  public:
    virtual ~SrpHasher() = default;

    /** Hash a d-dimensional vector into a k-bit binary embedding. */
    virtual HashValue hash(const float* x) const = 0;

    /** Convenience overload. */
    HashValue hash(const std::vector<float>& x) const;

    /**
     * Hash a d-dimensional vector directly into pre-packed words
     * (hashWordCount(bits()) of them, fully overwritten, tail bits
     * zeroed). The allocation-free core of hashMatrix; scratch is
     * reused across calls.
     */
    virtual void hashInto(const float* x, std::uint64_t* out,
                          HashScratch& scratch) const;

    /**
     * Hash every row of the given n x d matrix into one contiguous
     * packed matrix. Bit-identical to calling hash() per row.
     */
    virtual HashMatrix hashMatrix(const Matrix& m) const;

    /** Hash every row of the given n x d matrix. */
    std::vector<HashValue> hashRows(const Matrix& m) const;

    /** Input dimensionality d. */
    virtual std::size_t dim() const = 0;

    /** Hash width k in bits. */
    virtual std::size_t bits() const = 0;

    /** Number of scalar multiplications needed per hash. */
    virtual std::size_t multiplicationsPerHash() const = 0;

    /**
     * The k x d projection matrix this hasher applies (expanded to
     * dense form for the Kronecker variant). Used by equivalence
     * tests.
     */
    virtual Matrix denseProjection() const = 0;
};

/** SRP hasher holding an explicit dense projection matrix. */
class DenseSrpHasher : public SrpHasher
{
  public:
    /**
     * Construct from a k x d projection matrix (rows are the
     * projection vectors).
     */
    explicit DenseSrpHasher(Matrix projection);

    /** Generate a random orthogonal k x d projection from rng. */
    static DenseSrpHasher makeRandom(std::size_t k, std::size_t d,
                                     Rng& rng);

    using SrpHasher::hash;
    HashValue hash(const float* x) const override;
    void hashInto(const float* x, std::uint64_t* out,
                  HashScratch& scratch) const override;
    std::size_t dim() const override { return projection_.cols(); }
    std::size_t bits() const override { return projection_.rows(); }
    std::size_t multiplicationsPerHash() const override;
    Matrix denseProjection() const override { return projection_; }

  private:
    Matrix projection_;
};

/**
 * SRP hasher whose projection is a Kronecker product of m square
 * orthogonal factors, evaluated through tensor contractions.
 */
class KroneckerSrpHasher : public SrpHasher
{
  public:
    /**
     * Construct from the list of s x s orthogonal factors
     * A_1, ..., A_m. The input dimension is s^m and the hash width
     * equals the input dimension.
     */
    explicit KroneckerSrpHasher(std::vector<Matrix> factors);

    /**
     * Generate a random Kronecker hasher for d = s^m.
     *
     * @param d           Input dimension; must equal s^m.
     * @param num_factors m, the number of Kronecker factors.
     * @param rng         Randomness source.
     * @param quantize_factors When true, factor elements are rounded
     *        to the hardware's S0.5 fixed-point format (Section IV-E).
     */
    static KroneckerSrpHasher makeRandom(std::size_t d,
                                         std::size_t num_factors, Rng& rng,
                                         bool quantize_factors = false);

    using SrpHasher::hash;
    HashValue hash(const float* x) const override;
    void hashInto(const float* x, std::uint64_t* out,
                  HashScratch& scratch) const override;
    std::size_t dim() const override { return dim_; }
    std::size_t bits() const override { return dim_; }
    std::size_t multiplicationsPerHash() const override;
    Matrix denseProjection() const override;

    /** The Kronecker factors A_1, ..., A_m. */
    const std::vector<Matrix>& factors() const { return factors_; }

    /**
     * Apply the projection to x, returning the pre-sign projected
     * values (useful for testing the contraction path against the
     * dense product).
     */
    std::vector<float> project(const float* x) const;

    /**
     * Allocation-free project(): contracts into scratch.f/scratch.f2
     * and returns a pointer to the dim() projected values (owned by
     * scratch, valid until its next use).
     */
    const float* projectInto(const float* x, HashScratch& scratch) const;

  private:
    std::vector<Matrix> factors_;
    std::size_t dim_ = 0;
    std::size_t factor_size_ = 0;
};

/**
 * Quantize every element of a projection matrix to the S0.5
 * fixed-point format used for the pre-defined hash matrices.
 */
Matrix quantizeProjectionMatrix(const Matrix& m);

} // namespace elsa

#endif // ELSA_LSH_SRP_H_
