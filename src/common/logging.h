#ifndef ELSA_COMMON_LOGGING_H_
#define ELSA_COMMON_LOGGING_H_

/**
 * @file
 * Error-reporting primitives for the ELSA library.
 *
 * Following the gem5 convention, we distinguish two classes of failure:
 *  - fatal(): the caller violated the API contract (bad configuration,
 *    mismatched matrix shapes, out-of-range hyperparameter). Reported as
 *    an elsa::Error exception so that library users and tests can recover.
 *  - panic(): an internal invariant was broken, i.e. a bug in ELSA itself.
 *    Also raised as elsa::Error but tagged as internal.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace elsa {

/** Exception type raised by all ELSA error checks. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/** Raise an elsa::Error with file/line context. */
[[noreturn]] void raiseError(const char* kind, const char* file, int line,
                             const std::string& message);

} // namespace detail

} // namespace elsa

/** Abort the current operation because the caller misused the API. */
#define ELSA_FATAL(msg)                                                     \
    do {                                                                    \
        std::ostringstream elsa_oss_;                                       \
        elsa_oss_ << msg;                                                   \
        ::elsa::detail::raiseError("fatal", __FILE__, __LINE__,             \
                                   elsa_oss_.str());                        \
    } while (0)

/** Abort because an internal ELSA invariant was violated (a bug). */
#define ELSA_PANIC(msg)                                                     \
    do {                                                                    \
        std::ostringstream elsa_oss_;                                       \
        elsa_oss_ << msg;                                                   \
        ::elsa::detail::raiseError("panic", __FILE__, __LINE__,             \
                                   elsa_oss_.str());                        \
    } while (0)

/** Check a user-facing precondition; raises ELSA_FATAL on failure. */
#define ELSA_CHECK(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ELSA_FATAL("check failed: " #cond ": " << msg);                 \
        }                                                                   \
    } while (0)

/** Check an internal invariant; raises ELSA_PANIC on failure. */
#define ELSA_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ELSA_PANIC("assertion failed: " #cond ": " << msg);             \
        }                                                                   \
    } while (0)

#endif // ELSA_COMMON_LOGGING_H_
