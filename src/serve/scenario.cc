#include "serve/scenario.h"

namespace elsa {

namespace {

// Measured base-fidelity (p = 2) mean service time of the scenario's
// request mix on the paper configuration, in cycles: the weighted
// mix of BERT-large n = 256 (7687 cycles) and SASRec n = 64 (862
// cycles) at 3:1. The scenario derives its arrival rate from this
// constant so `load_multiplier` means what it says; serve_test
// cross-checks the constant against the engine's actual catalog
// within a band, so drift in the timing model shows up as a test
// failure, not a silently meaningless load axis.
constexpr double kBaseMeanServiceCycles = 5980.0;

} // namespace

ServeConfig
overloadScenario(double load_multiplier, bool degraded, bool quick)
{
    ServeConfig config;
    config.sim = SimConfig::paperConfig();
    config.num_accelerators = 2;
    config.num_requests = quick ? 192 : 768;
    config.base_p = 2.0;
    config.admission = AdmissionPolicy::kRejectOnFull;
    config.queue_capacity = 12;

    // Mixed-model, mixed-length traffic: long BERT-large encoder
    // requests and short SASRec recommendation requests.
    config.classes.clear();
    RequestClassConfig bert;
    bert.model = bertLarge();
    bert.sequence_length = 256;
    bert.weight = 3.0;
    config.classes.push_back(bert);
    RequestClassConfig sasrec;
    sasrec.model = sasRec();
    sasrec.sequence_length = 64;
    sasrec.weight = 1.0;
    config.classes.push_back(sasrec);

    // Offered rate = load_multiplier x base service capacity of the
    // array (num_accelerators servers at the base-p mean service
    // time).
    config.arrival.mean_interarrival_cycles =
        kBaseMeanServiceCycles
        / (static_cast<double>(config.num_accelerators)
           * load_multiplier);

    // Bursty phases on top of the base rate (they average to ~1 so
    // the load axis keeps its meaning).
    config.arrival.phases = {
        ArrivalPhase{24000, 1.4},
        ArrivalPhase{24000, 0.6},
    };

    // SLO: covers the longest class's base-p service time (7687
    // cycles) with queueing headroom for burst absorption.
    // Deadline-aware dispatch (the ServeConfig default) sheds
    // requests that cannot finish by it instead of burning a server
    // on a guaranteed violation.
    config.deadline_cycles = 12500;

    // Detected-fault retries: a bit-error rate high enough that a
    // few percent of attempts escalate, with parity detection.
    config.sim.fault.enabled = true;
    config.sim.fault.bit_error_rate = 2e-7;
    config.sim.fault.protection = ProtectionMode::kParityDetect;
    config.retry.max_attempts = 3;
    config.retry.backoff_base_cycles = 128;
    config.retry.backoff_cap_cycles = 2048;

    // The fidelity ladder: two degradation steps of increasingly
    // aggressive approximation. At p = 16 the mix's mean service
    // time is 2858 cycles -- 0.48x the base -- so the fully degraded
    // array's service rate clears 2x overload.
    config.degradation.enabled = degraded;
    config.degradation.ladder = {4.0, 16.0};
    config.degradation.queue_high_watermark = 0.5;
    config.degradation.queue_low_watermark = 0.1;
    config.degradation.miss_high_watermark = 0.2;
    config.degradation.miss_low_watermark = 0.02;
    config.degradation.ewma_alpha = 0.08;
    config.degradation.min_dwell_cycles = 6000;

    config.seed = 0x0e15a5e12e;
    return config;
}

} // namespace elsa
