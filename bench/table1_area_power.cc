/**
 * @file
 * EXP-T1: reproduces Table I of the paper -- area and peak power
 * characteristics of the ELSA accelerator (TSMC 40 nm synthesis
 * results, transcribed as the energy model's database) plus the
 * derived totals and SRAM sizings the paper quotes in the text.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/args.h"
#include "energy/area_power.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"manifest"});
    bench::printHeader(
        "Table I: area and (peak) power characteristics of ELSA",
        "n = 512, d = 64, P_a = 4, P_c = 8, m_h = 256, m_o = 16, "
        "1 GHz, TSMC 40nm.");

    std::printf("\n%-34s %10s %12s %12s\n", "Module",
                "Area (mm2)", "Dyn. (mW)", "Static (mW)");
    for (const HwModule module : allHwModules()) {
        const ModuleAreaPower& r = moduleAreaPower(module);
        std::printf("%-34s %10.3f %12.2f %12.2f\n", r.name.c_str(),
                    r.totalAreaMm2(), r.totalDynamicMw(),
                    r.totalStaticMw());
    }

    const AcceleratorAreaPower total = singleAcceleratorAreaPower();
    std::printf("%-34s %10.3f %12.2f %12.2f\n",
                "ELSA Accelerator (1x)", total.core_area_mm2,
                total.core_dynamic_mw, total.core_static_mw);
    std::printf("%-34s %10.3f %12.2f %12.2f\n",
                "External Memory Modules (1x)",
                total.external_area_mm2, total.external_dynamic_mw,
                total.external_static_mw);
    std::printf("%-34s %10.3f %12.2f %12.2f\n",
                "ELSA Accelerators (12x)", 12 * total.core_area_mm2,
                12 * total.core_dynamic_mw, 12 * total.core_static_mw);
    std::printf("%-34s %10.3f %12.2f %12.2f\n",
                "External Memory Modules (12x)",
                12 * total.external_area_mm2,
                12 * total.external_dynamic_mw,
                12 * total.external_static_mw);

    std::printf("\nDerived figures quoted in the paper text:\n");
    std::printf("  single accelerator peak power : %.2f W "
                "(paper: ~1.49 W)\n",
                total.totalPeakPowerMw() / 1000.0);
    std::printf("  twelve accelerators peak power: %.2f W "
                "(paper: ~17.93 W; V100 TDP 250 W)\n",
                12.0 * total.totalPeakPowerMw() / 1000.0);
    std::printf("  key hash SRAM  (n=512, k=64)  : %zu B "
                "(paper: 4 KB)\n",
                keyHashMemoryBytes(512, 64));
    std::printf("  key norm SRAM  (n=512)        : %zu B "
                "(paper: 512 B)\n",
                keyNormMemoryBytes(512));
    std::printf("  Q/K/V/O matrix SRAM (each)    : %zu B "
                "(paper: ~36 KB, 9-bit elements)\n",
                matrixMemoryBytes(512, 64));

    obs::RunManifest manifest = bench::makeBenchManifest(
        "table1_area_power", bench::standardSystemConfig());
    manifest.set("metrics", "core_area_mm2", total.core_area_mm2);
    manifest.set("metrics", "external_area_mm2",
                 total.external_area_mm2);
    manifest.set("metrics", "accelerator_peak_power_w",
                 total.totalPeakPowerMw() / 1000.0);
    manifest.set("metrics", "array_peak_power_w",
                 12.0 * total.totalPeakPowerMw() / 1000.0);
    manifest.set("metrics", "key_hash_sram_bytes",
                 keyHashMemoryBytes(512, 64));
    manifest.set("metrics", "key_norm_sram_bytes",
                 keyNormMemoryBytes(512));
    manifest.set("metrics", "matrix_sram_bytes",
                 matrixMemoryBytes(512, 64));
    bench::emitBenchSummary(manifest, args);
    return 0;
}
