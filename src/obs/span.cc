#include "obs/span.h"

#include <algorithm>

#include "common/logging.h"

namespace elsa::obs {

std::uint64_t
StageSpan::stallTotal() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t cycles : stall) {
        total += cycles;
    }
    return total;
}

std::uint64_t
QuerySpanRecord::componentSum() const
{
    std::uint64_t total = 0;
    for (const StageSpan& stage : stages) {
        total += stage.queue_wait + stage.service + stage.stallTotal();
    }
    return total;
}

QuerySpanSet::QuerySpanSet(std::vector<std::string> stage_names,
                           std::vector<std::string> cause_names)
    : stage_names_(std::move(stage_names)),
      cause_names_(std::move(cause_names)),
      queue_wait_totals_(stage_names_.size(), 0),
      service_totals_(stage_names_.size(), 0),
      stall_totals_(stage_names_.size(), 0),
      queue_wait_digests_(stage_names_.size()),
      service_digests_(stage_names_.size()),
      stall_digests_(stage_names_.size())
{
    ELSA_CHECK(!stage_names_.empty(), "span set needs stage names");
    ELSA_CHECK(!cause_names_.empty(), "span set needs cause names");
}

void
QuerySpanSet::addRecord(QuerySpanRecord record)
{
    ELSA_ASSERT(!finalized_, "addRecord after finalize");
    ELSA_ASSERT(record.stages.size() == stage_names_.size(),
                "span record has " << record.stages.size()
                                   << " stages, set has "
                                   << stage_names_.size());
    for (const StageSpan& stage : record.stages) {
        ELSA_ASSERT(stage.stall.size() == cause_names_.size(),
                    "span stage has " << stage.stall.size()
                                      << " causes, set has "
                                      << cause_names_.size());
    }
    ELSA_ASSERT(record.entry_cycle <= record.exit_cycle,
                "span record exits before it enters");
    ELSA_DASSERT(record.conserves(),
                 "query " << record.query << " span components sum to "
                          << record.componentSum() << ", end-to-end is "
                          << record.endToEnd());
    records_.push_back(std::move(record));
}

void
QuerySpanSet::addStallToLast(std::size_t stage, std::size_t cause,
                             std::uint64_t cycles)
{
    ELSA_ASSERT(!finalized_, "addStallToLast after finalize");
    ELSA_ASSERT(!records_.empty(), "no record to charge stall to");
    ELSA_ASSERT(stage < stage_names_.size(), "stage out of range");
    ELSA_ASSERT(cause < cause_names_.size(), "cause out of range");
    QuerySpanRecord& record = records_.back();
    record.stages[stage].stall[cause] += cycles;
    record.exit_cycle += cycles;
    ELSA_DASSERT(record.conserves(),
                 "span record no longer conserves after tail stall");
}

void
QuerySpanSet::finalize(std::size_t exemplar_count,
                       std::uint64_t run_total_cycles)
{
    ELSA_ASSERT(!finalized_, "finalize called twice");
    finalized_ = true;
    num_queries_ = records_.size();
    invocations_.push_back(
        {0, static_cast<std::uint64_t>(num_queries_),
         run_total_cycles});
    if (records_.empty()) {
        return;
    }

    // Fold every query into the digests and exact totals first; the
    // exemplar selection below only decides which FULL records
    // survive.
    for (const QuerySpanRecord& record : records_) {
        total_digest_.add(static_cast<double>(record.endToEnd()));
        for (std::size_t s = 0; s < stage_names_.size(); ++s) {
            const StageSpan& stage = record.stages[s];
            queue_wait_totals_[s] += stage.queue_wait;
            service_totals_[s] += stage.service;
            stall_totals_[s] += stage.stallTotal();
            queue_wait_digests_[s].add(
                static_cast<double>(stage.queue_wait));
            service_digests_[s].add(
                static_cast<double>(stage.service));
            stall_digests_[s].add(
                static_cast<double>(stage.stallTotal()));
        }
    }

    // Ascending latency order, query id breaking ties, shared by both
    // selection passes so the choice is deterministic.
    std::vector<std::size_t> order(records_.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  const std::uint64_t ea = records_[a].endToEnd();
                  const std::uint64_t eb = records_[b].endToEnd();
                  if (ea != eb) {
                      return ea < eb;
                  }
                  return records_[a].query < records_[b].query;
              });

    // K slowest: walk the ascending order from the back. Ties at the
    // cut keep the lower query id because the sort put it later.
    const std::size_t slowest =
        std::min(exemplar_count, order.size());
    for (std::size_t i = 0; i < slowest; ++i) {
        records_[order[order.size() - 1 - i]].slowest_exemplar = true;
    }
    // One representative per latency decile: the rank at the middle
    // of each tenth of the ascending order.
    for (std::size_t d = 0; d < 10; ++d) {
        const std::size_t rank =
            ((2 * d + 1) * order.size()) / 20;
        records_[order[std::min(rank, order.size() - 1)]]
            .decile_exemplar = true;
    }

    std::vector<QuerySpanRecord> kept;
    for (QuerySpanRecord& record : records_) {
        if (record.slowest_exemplar || record.decile_exemplar) {
            kept.push_back(std::move(record));
        }
    }
    records_ = std::move(kept);
}

void
QuerySpanSet::mergeInvocation(const QuerySpanSet& other,
                              std::uint64_t invocation)
{
    ELSA_ASSERT(other.finalized_,
                "mergeInvocation needs a finalized source");
    ELSA_ASSERT(other.stage_names_ == stage_names_
                    && other.cause_names_ == cause_names_,
                "span sets disagree on stage/cause names");
    ELSA_ASSERT(records_.empty() || finalized_,
                "mergeInvocation into a half-recorded set");
    finalized_ = true;
    num_queries_ += other.num_queries_;
    for (const InvocationSummary& summary : other.invocations_) {
        InvocationSummary tagged = summary;
        tagged.invocation = invocation;
        invocations_.push_back(tagged);
    }
    for (const QuerySpanRecord& record : other.records_) {
        records_.push_back(record);
        records_.back().invocation = invocation;
    }
    for (std::size_t s = 0; s < stage_names_.size(); ++s) {
        queue_wait_totals_[s] += other.queue_wait_totals_[s];
        service_totals_[s] += other.service_totals_[s];
        stall_totals_[s] += other.stall_totals_[s];
        queue_wait_digests_[s].merge(other.queue_wait_digests_[s]);
        service_digests_[s].merge(other.service_digests_[s]);
        stall_digests_[s].merge(other.stall_digests_[s]);
    }
    total_digest_.merge(other.total_digest_);
}

std::uint64_t
QuerySpanSet::stageQueueWaitTotal(std::size_t stage) const
{
    ELSA_ASSERT(stage < stage_names_.size(), "stage out of range");
    return queue_wait_totals_[stage];
}

std::uint64_t
QuerySpanSet::stageServiceTotal(std::size_t stage) const
{
    ELSA_ASSERT(stage < stage_names_.size(), "stage out of range");
    return service_totals_[stage];
}

std::uint64_t
QuerySpanSet::stageStallTotal(std::size_t stage) const
{
    ELSA_ASSERT(stage < stage_names_.size(), "stage out of range");
    return stall_totals_[stage];
}

const QuantileDigest&
QuerySpanSet::stageQueueWaitDigest(std::size_t stage) const
{
    ELSA_ASSERT(stage < stage_names_.size(), "stage out of range");
    return queue_wait_digests_[stage];
}

const QuantileDigest&
QuerySpanSet::stageServiceDigest(std::size_t stage) const
{
    ELSA_ASSERT(stage < stage_names_.size(), "stage out of range");
    return service_digests_[stage];
}

const QuantileDigest&
QuerySpanSet::stageStallDigest(std::size_t stage) const
{
    ELSA_ASSERT(stage < stage_names_.size(), "stage out of range");
    return stall_digests_[stage];
}

const QuantileDigest&
QuerySpanSet::totalDigest() const
{
    return total_digest_;
}

} // namespace elsa::obs
