/**
 * @file
 * EXP-VE-TPU: reproduces the Section V-E comparison against Google
 * Cloud TPUv2 on the ALBERT workloads.
 *
 * Paper reference points (iso-peak-FLOPS normalized): ELSA-base is
 * 8.3x / 6.4x / 2.4x faster than the TPU on SQuADv1.1 / SQuADv2.0 /
 * RACE; ELSA-moderate is 27.8x / 20.9x / 8.0x faster. The TPU itself
 * measured 5.5x / 6.7x / 5.4x the GPU's normalized throughput.
 */

#include <cstdio>

#include "baselines/tpu.h"
#include "bench_common.h"
#include "common/args.h"
#include "elsa/system.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"manifest"});
    bench::printHeader(
        "Section V-E: comparison with Google Cloud TPUv2 (ALBERT)",
        "Iso-peak-FLOPS normalization: TPUv2 at 45 TFLOPS "
        "FP32-equivalent vs 13 TOPS for 12 ELSA accelerators.");

    const TpuModel tpu;
    std::printf("\n%-12s %12s %12s %14s %14s\n", "dataset",
                "TPU/GPU", "(paper)", "base/TPU", "moderate/TPU");

    const struct
    {
        DatasetSpec dataset;
        double paper_base;
        double paper_moderate;
    } rows[] = {
        {squadV11(), 8.3, 27.8},
        {squadV20(), 6.4, 20.9},
        {race(), 2.4, 8.0},
    };

    bench::GeomeanTracker base_g;
    bench::GeomeanTracker mod_g;
    for (const auto& row : rows) {
        const WorkloadSpec spec{albertLarge(), row.dataset};
        ElsaSystem system(spec, bench::standardSystemConfig());
        const ModeReport base = system.evaluateMode(ApproxMode::kBase);
        const ModeReport mod =
            system.evaluateMode(ApproxMode::kModerate);

        const double tpu_tput = tpu.normalizedAttentionOpsPerSecond(
            spec.model, row.dataset);
        const double base_vs_tpu =
            base.elsa_ops_per_second / tpu_tput;
        const double mod_vs_tpu = mod.elsa_ops_per_second / tpu_tput;
        base_g.add(base_vs_tpu);
        mod_g.add(mod_vs_tpu);
        std::printf("%-12s %11.1fx %11.1fx %6.1fx (%4.1f) %6.1fx "
                    "(%4.1f)\n",
                    row.dataset.name.c_str(),
                    TpuModel::normalizedGpuRatio(row.dataset),
                    TpuModel::normalizedGpuRatio(row.dataset),
                    base_vs_tpu, row.paper_base, mod_vs_tpu,
                    row.paper_moderate);
        std::fflush(stdout);
    }

    std::printf("\nPaper reference: base 8.3x/6.4x/2.4x and moderate "
                "27.8x/20.9x/8.0x over TPUv2.\n");

    obs::RunManifest manifest = bench::makeBenchManifest(
        "disc_tpu_comparison", bench::standardSystemConfig());
    manifest.set("metrics", "speedup_base_vs_tpu_geomean",
                 base_g.geomean());
    manifest.set("metrics", "speedup_moderate_vs_tpu_geomean",
                 mod_g.geomean());
    bench::emitBenchSummary(manifest, args);
    return 0;
}
