#ifndef ELSA_SIM_STALL_H_
#define ELSA_SIM_STALL_H_

/**
 * @file
 * Bottleneck attribution for the cycle-level simulator.
 *
 * The simulator's aggregate `stall_cycles` says *that* the pipeline
 * idled but not *why* or *where*. This layer classifies every lane
 * cycle of every pipeline module into exactly one state:
 *
 *   busy           doing work;
 *   starved        idle because no upstream work was available yet
 *                  (the arbiter facing empty queues mid-scan, every
 *                  execution module during preprocessing, a finished
 *                  bank waiting for the slowest bank to release the
 *                  next query);
 *   backpressured  finished its current item but blocked by a slower
 *                  downstream stage with more work still pending (the
 *                  hash module after hashing the next query while the
 *                  banks still chew on the current one);
 *   bank_conflict  a candidate selection module stalled on a full
 *                  output queue -- P_c modules competing for the
 *                  bank's single arbiter grant port per cycle;
 *   drained        idle with no further work in this run (the norm
 *                  module after preprocessing, everything during the
 *                  final output-division tail, a candidate module
 *                  that scanned all of its keys while the bank's
 *                  queues drain out);
 *   fault_retry    the pipeline frozen while a detected memory fault
 *                  is repaired by a modeled re-fetch (fault/fault.h);
 *                  identically zero unless SimConfig::fault is
 *                  enabled.
 *
 * Accounting is in *lane cycles*: a module class with L lanes (e.g.
 * P_a x P_c candidate selection modules) accumulates exactly
 * L x totalCycles() lane cycles per run, and the hard conservation
 * invariant
 *
 *   busy + starved + backpressured + bank_conflict + drained
 *     + fault_retry == lanes x total_cycles        (per module class)
 *
 * holds exactly (checked by ELSA_DASSERT in debug builds and by the
 * stall-attribution tests in all builds). Attribution is pure
 * post-hoc arithmetic over already-simulated quantities: enabling it
 * (SimConfig::attribute_stalls) never changes simulated cycle counts.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/config.h"

namespace elsa {

/** Per-lane-cycle state; kBusy plus the five idle causes. */
enum class StallCause
{
    kBusy = 0,
    kStarved,
    kBackpressured,
    kBankConflict,
    kDrained,
    /**
     * The pipeline frozen while a detected memory fault is repaired
     * by a modeled re-fetch (fault/fault.h, FaultOutcome::kDetected).
     * Zero whenever SimConfig::fault is disabled; the conservation
     * invariant below holds with this cause included either way.
     */
    kFaultRetry,
};

inline constexpr std::size_t kNumStallCauses = 6;

/** All states, in enum order. */
const std::array<StallCause, kNumStallCauses>& allStallCauses();

/** Human-readable state name ("busy", "starved", ...). */
const char* stallCauseName(StallCause cause);

/**
 * Stable metric-path segment ("busy_cycles", "starved_cycles",
 * "backpressured_cycles", "bank_conflict_cycles", "drained_cycles")
 * for stats names like `sim.accel0.stall.hash_computation.
 * busy_cycles`.
 */
const char* stallCauseMetricName(StallCause cause);

/**
 * The pipeline module classes attribution distinguishes. The first
 * five mirror the compute entries of HwModule (Table I); arbitration
 * is attribution-only -- it burns no Table I power but can be the
 * structural bottleneck (one grant per bank per cycle).
 */
enum class AttributedModule
{
    kHash = 0,
    kNorm,
    kCandidateSelection,
    kArbitration,
    kAttention,
    kOutputDivision,
};

inline constexpr std::size_t kNumAttributedModules = 6;

/** All attributed modules, in enum order. */
const std::array<AttributedModule, kNumAttributedModules>&
allAttributedModules();

/** Human-readable module name ("hash computation", ...). */
const char* attributedModuleName(AttributedModule module);

/**
 * Stable metric-path segment ("hash_computation", "norm_computation",
 * "candidate_selection", "arbitration", "attention_compute",
 * "output_division"); matches hwModuleMetricName() where the two
 * enums overlap.
 */
const char* attributedModuleMetricName(AttributedModule module);

/**
 * Lanes of a module class under a pipeline configuration: 1 for
 * hash / norm / output division, P_a for arbitration and attention,
 * P_a x P_c for candidate selection.
 */
std::size_t attributedModuleLanes(AttributedModule module,
                                  const SimConfig& config);

/** Per-module-class, per-cause lane-cycle totals of one or more runs. */
class StallBreakdown
{
  public:
    /** Add lane cycles to one (module, cause) cell. */
    void add(AttributedModule module, StallCause cause,
             std::uint64_t lane_cycles);

    /** One cell's accumulated lane cycles. */
    std::uint64_t get(AttributedModule module, StallCause cause) const;

    /** Sum over all causes (busy included) of one module class. */
    std::uint64_t laneCycles(AttributedModule module) const;

    /** busy / laneCycles of a module; 0 when the module has no data. */
    double busyFraction(AttributedModule module) const;

    /** Accumulate another breakdown (batch aggregation). */
    void merge(const StallBreakdown& other);

    /** True when every cell is zero (attribution was off). */
    bool empty() const;

    /**
     * The conservation invariant: per module class, the cause sum
     * equals lanes x total_cycles.
     */
    bool conserves(std::size_t total_cycles,
                   const SimConfig& config) const;

  private:
    std::array<std::array<std::uint64_t, kNumStallCauses>,
               kNumAttributedModules>
        cells_{};
};

} // namespace elsa

#endif // ELSA_SIM_STALL_H_
