#include "obs/trace.h"

#include <fstream>
#include <utility>

#include "common/logging.h"
#include "obs/json.h"

namespace elsa::obs {

TraceWriter::TraceWriter(std::string path)
    : enabled_(true), path_(std::move(path))
{
    ELSA_CHECK(!path_.empty(), "trace path must not be empty");
}

TraceWriter::TraceWriter(TraceWriter&& other) noexcept
    : enabled_(other.enabled_),
      path_(std::move(other.path_)),
      events_(std::move(other.events_))
{
    other.enabled_ = false;
    other.path_.clear();
    other.events_.clear();
}

TraceWriter&
TraceWriter::operator=(TraceWriter&& other) noexcept
{
    if (this != &other) {
        enabled_ = other.enabled_;
        path_ = std::move(other.path_);
        events_ = std::move(other.events_);
        other.enabled_ = false;
        other.path_.clear();
        other.events_.clear();
    }
    return *this;
}

TraceWriter
TraceWriter::memoryBuffer()
{
    TraceWriter writer;
    writer.enabled_ = true;
    return writer;
}

TraceWriter::~TraceWriter()
{
    if (enabled_ && !path_.empty()) {
        ELSA_LOG_WARN("trace writer for '"
                      << path_
                      << "' destroyed without close(); flushing");
        try {
            close();
        } catch (const Error&) {
            // Destructors must not throw; the warning above already
            // points at the file.
        }
    }
}

void
TraceWriter::processName(std::uint32_t pid, const std::string& name)
{
    if (!enabled_) {
        return;
    }
    Event e;
    e.phase = 'M';
    e.name = "process_name";
    e.pid = pid;
    e.meta = name;
    events_.push_back(std::move(e));
}

void
TraceWriter::threadName(std::uint32_t pid, std::uint32_t tid,
                        const std::string& name)
{
    if (!enabled_) {
        return;
    }
    Event e;
    e.phase = 'M';
    e.name = "thread_name";
    e.pid = pid;
    e.tid = tid;
    e.meta = name;
    events_.push_back(std::move(e));
}

void
TraceWriter::completeEvent(const std::string& name,
                           const std::string& category,
                           std::uint32_t pid, std::uint32_t tid,
                           std::uint64_t ts_cycles,
                           std::uint64_t dur_cycles)
{
    if (!enabled_) {
        return;
    }
    Event e;
    e.phase = 'X';
    e.name = name;
    e.category = category;
    e.pid = pid;
    e.tid = tid;
    e.ts = ts_cycles;
    e.dur = dur_cycles == 0 ? 1 : dur_cycles;
    events_.push_back(std::move(e));
}

void
TraceWriter::counterEvent(const std::string& name, std::uint32_t pid,
                          std::uint64_t ts_cycles, double value)
{
    if (!enabled_) {
        return;
    }
    Event e;
    e.phase = 'C';
    e.name = name;
    e.pid = pid;
    e.ts = ts_cycles;
    e.counter_value = value;
    events_.push_back(std::move(e));
}

void
TraceWriter::instantEvent(const std::string& name, std::uint32_t pid,
                          std::uint32_t tid, std::uint64_t ts_cycles)
{
    if (!enabled_) {
        return;
    }
    Event e;
    e.phase = 'i';
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts = ts_cycles;
    events_.push_back(std::move(e));
}

void
TraceWriter::flowEvent(const std::string& name,
                       const std::string& category, std::uint32_t pid,
                       std::uint32_t tid, std::uint64_t ts_cycles,
                       std::uint64_t id, char phase)
{
    if (!enabled_) {
        return;
    }
    ELSA_CHECK(phase == 's' || phase == 't' || phase == 'f',
               "flow phase must be 's', 't' or 'f', got " << phase);
    Event e;
    e.phase = phase;
    e.name = name;
    e.category = category;
    e.pid = pid;
    e.tid = tid;
    e.ts = ts_cycles;
    e.id = id;
    events_.push_back(std::move(e));
}

void
TraceWriter::writeJson(std::ostream& os) const
{
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();
    for (const Event& e : events_) {
        w.beginObject();
        w.kv("name", e.name);
        w.kv("ph", std::string(1, e.phase));
        w.kv("pid", static_cast<std::size_t>(e.pid));
        w.kv("tid", static_cast<std::size_t>(e.tid));
        switch (e.phase) {
        case 'M':
            w.key("args").beginObject();
            w.kv("name", e.meta);
            w.endObject();
            break;
        case 'X':
            w.kv("cat",
                 e.category.empty() ? std::string("sim") : e.category);
            w.kv("ts", static_cast<std::size_t>(e.ts));
            w.kv("dur", static_cast<std::size_t>(e.dur));
            break;
        case 'C':
            w.kv("ts", static_cast<std::size_t>(e.ts));
            w.key("args").beginObject();
            w.kv("value", e.counter_value);
            w.endObject();
            break;
        case 'i':
            w.kv("ts", static_cast<std::size_t>(e.ts));
            w.kv("s", "t");
            break;
        case 's':
        case 't':
        case 'f':
            w.kv("cat",
                 e.category.empty() ? std::string("sim") : e.category);
            w.kv("ts", static_cast<std::size_t>(e.ts));
            w.kv("id", static_cast<std::size_t>(e.id));
            if (e.phase == 'f') {
                // Bind the finish to the enclosing slice so the
                // arrow terminates at the event rather than the
                // next slice start.
                w.kv("bp", "e");
            }
            break;
        default: ELSA_PANIC("unknown trace phase " << e.phase);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
TraceWriter::appendFrom(const TraceWriter& other, bool skip_metadata)
{
    if (!enabled_) {
        return;
    }
    for (const Event& e : other.events_) {
        if (skip_metadata && e.phase == 'M') {
            continue;
        }
        events_.push_back(e);
    }
}

void
TraceWriter::close()
{
    if (!enabled_) {
        return;
    }
    enabled_ = false;
    if (path_.empty()) {
        // memoryBuffer() writer: nothing to serialize.
        events_.clear();
        return;
    }
    std::ofstream out(path_);
    ELSA_CHECK(out.good(),
               "cannot open trace file '" << path_ << "' for writing");
    writeJson(out);
    out << '\n';
    out.flush();
    ELSA_CHECK(out.good(), "failed writing trace file '" << path_
                                                         << "'");
    events_.clear();
}

} // namespace elsa::obs
