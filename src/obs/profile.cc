#include "obs/profile.h"

#include <cstdlib>
#include <string>

#include "obs/registry.h"

namespace elsa::obs {

namespace {

bool&
profilingFlag()
{
    static bool enabled = [] {
        // elsa-lint: allow(no-wallclock): ELSA_PROF toggles host profiling output only; no simulated metric depends on it
        const char* env = std::getenv("ELSA_PROF");
        return env != nullptr && std::string(env) != "0"
               && std::string(env) != "";
    }();
    return enabled;
}

} // namespace

bool
profilingEnabled()
{
    return profilingFlag();
}

void
setProfilingEnabled(bool enabled)
{
    profilingFlag() = enabled;
}

void
ScopedTimer::record() const
{
    // elsa-lint: allow(no-wallclock): the closing read of the host-profiling timer; pairs with the ScopedTimer start in profile.h
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double seconds =
        std::chrono::duration<double>(elapsed).count();
    globalRegistry()
        .distribution(std::string("host.") + scope_ + ".seconds")
        .add(seconds);
}

} // namespace elsa::obs
