/**
 * @file
 * EXP-F2: reproduces Fig. 2 of the paper -- the portion of model
 * runtime spent in the self-attention mechanism on the GPU, for the
 * five evaluated models, at the default and 4x sequence lengths, and
 * with the default and 1/4-width FFN.
 *
 * Paper reference points: ~38% average at the default configuration,
 * ~64% at 4x sequence length, ~73% at 4x length with FFN/4.
 */

#include <cstdio>
#include <vector>

#include "baselines/gpu_model.h"
#include "bench_common.h"
#include "common/args.h"
#include "common/stats.h"
#include "workload/model.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"manifest"});
    bench::printHeader(
        "Fig. 2: runtime portion of the self-attention mechanism",
        "Analytic V100 model; per-layer attention vs projection+FFN "
        "time.");

    const GpuModel gpu;
    const std::pair<ModelConfig, std::size_t> cases[] = {
        {bertLarge(), 384},   {robertaLarge(), 384},
        {albertLarge(), 384}, {sasRec(), 200},
        {bert4Rec(), 200},
    };

    struct Variant
    {
        const char* name;
        const char* metric;
        double seq_scale;
        double ffn_scale;
    };
    const Variant variants[] = {
        {"default n, full FFN", "attention_portion_mean_default",
         1.0, 1.0},
        {"4x n,      full FFN", "attention_portion_mean_seq4x",
         4.0, 1.0},
        {"default n, FFN/4   ", "attention_portion_mean_ffn_quarter",
         1.0, 0.25},
        {"4x n,      FFN/4   ",
         "attention_portion_mean_seq4x_ffn_quarter", 4.0, 0.25},
    };

    std::vector<std::pair<const char*, double>> summary;
    for (const auto& variant : variants) {
        std::printf("\n-- %s --\n", variant.name);
        std::printf("%-10s %12s %12s %12s %12s\n", "model",
                    "attention", "projection", "FFN",
                    "att. portion");
        RunningStat portions;
        for (const auto& [model, n] : cases) {
            const LayerRuntime rt = gpu.layerRuntime(
                model, n, variant.seq_scale, variant.ffn_scale);
            std::printf("%-10s %10.2fus %10.2fus %10.2fus %11.1f%%\n",
                        model.name.c_str(), rt.attention_s * 1e6,
                        rt.projection_s * 1e6, rt.ffn_s * 1e6,
                        100.0 * rt.attentionPortion());
            portions.add(rt.attentionPortion());
        }
        std::printf("%-10s %38s %11.1f%%\n", "average", "",
                    100.0 * portions.mean());
        summary.emplace_back(variant.metric, portions.mean());
    }

    std::printf("\nPaper reference: ~38%% average (default), ~64%% "
                "(4x n), ~73%% (4x n + FFN/4).\n");

    obs::RunManifest manifest = bench::makeBenchManifest(
        "fig02_attention_portion", bench::standardSystemConfig());
    for (const auto& [metric, value] : summary) {
        manifest.set("metrics", metric, value);
    }
    bench::emitBenchSummary(manifest, args);
    return 0;
}
