#include "sim/host.h"

#include "common/bits.h"
#include "common/logging.h"
#include "energy/area_power.h"

namespace elsa {

void
HostInterfaceConfig::validate() const
{
    ELSA_CHECK(copy_bytes_per_cycle > 0,
               "copy_bytes_per_cycle must be positive");
    // Zero is meaningful (an ideal zero-overhead host); the bound
    // only catches unit mistakes (e.g. nanoseconds pasted in).
    ELSA_CHECK(command_cycles <= 1000000,
               "command_cycles " << command_cycles
                                 << " is implausibly large (> 1e6)");
}

HostInterface::HostInterface(HostInterfaceConfig config)
    : config_(config)
{
    config_.validate();
}

std::size_t
HostInterface::transferBytes(std::size_t n, std::size_t d) const
{
    // Q, K, V in; O out -- four matrices in the 9-bit SRAM format.
    return 4 * matrixMemoryBytes(n, d);
}

std::size_t
HostInterface::overheadCycles(std::size_t n, std::size_t d) const
{
    std::size_t cycles = config_.command_cycles;
    if (config_.mode == HostTransferMode::kCopy) {
        cycles += ceilDiv(transferBytes(n, d),
                          config_.copy_bytes_per_cycle);
    }
    return cycles;
}

double
HostInterface::overheadFraction(std::size_t n, std::size_t d,
                                std::size_t compute_cycles) const
{
    const double overhead =
        static_cast<double>(overheadCycles(n, d));
    return overhead
           / (overhead + static_cast<double>(compute_cycles));
}

} // namespace elsa
