#include "attention/approx.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lsh/candidates.h"
#include "obs/profile.h"
#include "tensor/ops.h"

namespace elsa {

std::size_t
ApproxAttentionStats::totalCandidates() const
{
    std::size_t total = 0;
    for (const auto c : candidates_per_query) {
        total += c;
    }
    return total;
}

double
ApproxAttentionStats::candidateFraction(std::size_t n) const
{
    if (candidates_per_query.empty() || n == 0) {
        return 0.0;
    }
    const double mean = static_cast<double>(totalCandidates())
                        / static_cast<double>(candidates_per_query.size());
    return mean / static_cast<double>(n);
}

ApproxSelfAttention::ApproxSelfAttention(
    std::shared_ptr<const SrpHasher> hasher, double theta_bias)
    : hasher_(std::move(hasher)),
      cos_lut_(hasher_ ? hasher_->bits() : 1, theta_bias)
{
    ELSA_CHECK(hasher_ != nullptr, "null hasher");
}

KeyPreprocessing
ApproxSelfAttention::preprocessKeys(const Matrix& key) const
{
    ELSA_CHECK(key.cols() == hasher_->dim(),
               "key dim " << key.cols() << " != hasher dim "
                          << hasher_->dim());
    KeyPreprocessing prep;
    prep.hashes = hasher_->hashMatrix(key);
    {
        ELSA_PROF_SCOPE("attention.key_norms");
        prep.norms = l2NormRows(key);
        for (const double norm : prep.norms) {
            prep.max_norm = std::max(prep.max_norm, norm);
        }
    }
    return prep;
}

std::vector<std::uint32_t>
ApproxSelfAttention::selectCandidates(HashView query_hash,
                                      const KeyPreprocessing& prep,
                                      double threshold) const
{
    std::vector<std::uint32_t> selected;
    selectAboveCutoff(query_hash, prep.hashes, prep.norms, cos_lut_,
                      threshold * prep.max_norm, 0, prep.hashes.rows(),
                      selected);
    return selected;
}

std::vector<std::vector<std::uint32_t>>
ApproxSelfAttention::candidatesForAll(const AttentionInput& input,
                                      double threshold) const
{
    input.validate();
    const KeyPreprocessing prep = preprocessKeys(input.key);
    const HashMatrix query_hashes = hasher_->hashMatrix(input.query);
    std::vector<std::vector<std::uint32_t>> all(input.n());
    for (std::size_t i = 0; i < input.n(); ++i) {
        all[i] = selectCandidates(query_hashes[i], prep, threshold);
    }
    return all;
}

ApproxAttentionResult
ApproxSelfAttention::run(const AttentionInput& input,
                         double threshold) const
{
    input.validate();
    const std::size_t n = input.n();
    const std::size_t d = input.d();
    const KeyPreprocessing prep = preprocessKeys(input.key);

    ApproxAttentionResult result;
    result.output = Matrix(n, d);
    result.stats.candidates_per_query.resize(n);

    const HashMatrix query_hashes = hasher_->hashMatrix(input.query);
    std::vector<double> scores;
    for (std::size_t i = 0; i < n; ++i) {
        const HashView qh = query_hashes[i];
        std::vector<std::uint32_t> cands =
            selectCandidates(qh, prep, threshold);
        if (cands.empty()) {
            ++result.stats.empty_selections;
            cands.push_back(argmaxSimilarity(qh, prep.hashes, prep.norms,
                                             cos_lut_, 0,
                                             prep.hashes.rows()));
        }
        result.stats.candidates_per_query[i] = cands.size();

        // Exact dot products and softmax restricted to candidates.
        scores.assign(cands.size(), 0.0);
        const float* q = input.query.row(i);
        for (std::size_t c = 0; c < cands.size(); ++c) {
            scores[c] = dot(q, input.key.row(cands[c]), d);
        }
        softmaxInPlace(scores);
        float* out = result.output.row(i);
        for (std::size_t c = 0; c < cands.size(); ++c) {
            const double w = scores[c];
            const float* v = input.value.row(cands[c]);
            for (std::size_t col = 0; col < d; ++col) {
                out[col] += static_cast<float>(w * v[col]);
            }
        }
    }
    return result;
}

ApproxAttentionResult
ApproxSelfAttention::runCausal(const AttentionInput& input,
                               double threshold) const
{
    input.validate();
    const std::size_t n = input.n();
    const std::size_t d = input.d();
    const KeyPreprocessing prep = preprocessKeys(input.key);

    ApproxAttentionResult result;
    result.output = Matrix(n, d);
    result.stats.candidates_per_query.resize(n);

    const HashMatrix query_hashes = hasher_->hashMatrix(input.query);
    std::vector<double> scores;
    for (std::size_t i = 0; i < n; ++i) {
        const HashView qh = query_hashes[i];
        // Only keys j <= i are visible: the hardware equivalent
        // simply stops the candidate scan at key i, so the fused
        // kernel runs over [0, i+1) directly.
        std::vector<std::uint32_t> cands;
        selectAboveCutoff(qh, prep.hashes, prep.norms, cos_lut_,
                          threshold * prep.max_norm, 0, i + 1, cands);
        if (cands.empty()) {
            ++result.stats.empty_selections;
            // Best visible key; key i itself is always visible.
            cands.push_back(argmaxSimilarity(qh, prep.hashes, prep.norms,
                                             cos_lut_, 0, i + 1));
        }
        result.stats.candidates_per_query[i] = cands.size();

        scores.assign(cands.size(), 0.0);
        const float* q = input.query.row(i);
        for (std::size_t c = 0; c < cands.size(); ++c) {
            scores[c] = dot(q, input.key.row(cands[c]), d);
        }
        softmaxInPlace(scores);
        float* out = result.output.row(i);
        for (std::size_t c = 0; c < cands.size(); ++c) {
            const double w = scores[c];
            const float* v = input.value.row(cands[c]);
            for (std::size_t col = 0; col < d; ++col) {
                out[col] += static_cast<float>(w * v[col]);
            }
        }
    }
    return result;
}

Matrix
ApproxSelfAttention::attentionOverCandidates(
    const AttentionInput& input,
    const std::vector<std::vector<std::uint32_t>>& candidates)
{
    input.validate();
    ELSA_CHECK(candidates.size() == input.n(),
               "candidate list count " << candidates.size()
                                       << " != n = " << input.n());
    const std::size_t n = input.n();
    const std::size_t d = input.d();
    Matrix output(n, d);
    std::vector<double> scores;
    for (std::size_t i = 0; i < n; ++i) {
        const auto& cands = candidates[i];
        ELSA_CHECK(!cands.empty(),
                   "empty candidate list for query " << i);
        scores.assign(cands.size(), 0.0);
        const float* q = input.query.row(i);
        for (std::size_t c = 0; c < cands.size(); ++c) {
            ELSA_CHECK(cands[c] < n, "candidate index out of range");
            scores[c] = dot(q, input.key.row(cands[c]), d);
        }
        softmaxInPlace(scores);
        float* out = output.row(i);
        for (std::size_t c = 0; c < cands.size(); ++c) {
            const double w = scores[c];
            const float* v = input.value.row(cands[c]);
            for (std::size_t col = 0; col < d; ++col) {
                out[col] += static_cast<float>(w * v[col]);
            }
        }
    }
    return output;
}

} // namespace elsa
