#ifndef ELSA_OBS_SPAN_H_
#define ELSA_OBS_SPAN_H_

/**
 * @file
 * Per-query lifecycle spans with exact latency decomposition.
 *
 * A QuerySpanRecord decomposes one query's end-to-end cycles into
 * per-stage queue-wait / service / stall-by-cause components whose
 * integer sum equals exit_cycle - entry_cycle EXACTLY -- the
 * conservation invariant every producer must uphold (asserted on
 * insertion, property-tested in tests/span_test.cc, and re-checked
 * end-to-end by scripts/check_metrics.py).
 *
 * A QuerySpanSet accumulates the records of one run and, at
 * finalize(), keeps only a deterministic exemplar subset as full
 * records -- the K slowest queries plus one representative per
 * latency decile -- while folding every query (exemplar or not) into
 * per-stage streaming quantile digests and exact component totals.
 * The totals are what reconcile against the run-level
 * `stall.<module>.<cause>` counters (docs/OBSERVABILITY.md).
 *
 * The class is deliberately generic: stage and stall-cause *names*
 * are injected at construction, so this layer has no dependency on
 * the simulator's module enums (the simulator binds
 * attributedModuleMetricName / stallCauseMetricName in
 * sim/report.cc). Determinism contract: records are added in query
 * order, merged across invocations in invocation-index order, and
 * the digests are themselves deterministic (obs/digest.h), so the
 * serialized spans.json is byte-identical at any thread count.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/digest.h"

namespace elsa::obs {

/** One pipeline stage's share of a query's end-to-end cycles. */
struct StageSpan
{
    /** Cycles the query spent waiting to enter the stage. */
    std::uint64_t queue_wait = 0;
    /** Cycles of useful work the stage spent on the query. */
    std::uint64_t service = 0;
    /** Extra cycles by stall cause (indexed like the cause names). */
    std::vector<std::uint64_t> stall;

    std::uint64_t stallTotal() const;
};

/** Full lifecycle record of one query; see the file comment. */
struct QuerySpanRecord
{
    /** Batch invocation the query belongs to (0 for single runs). */
    std::uint64_t invocation = 0;
    /** Query index within its invocation. */
    std::uint64_t query = 0;
    /** First cycle the pipeline works for this query (hash start). */
    std::uint64_t entry_cycle = 0;
    /** Cycle the query's output row is complete. */
    std::uint64_t exit_cycle = 0;
    /** Opaque producer tag (the simulator stores the critical bank). */
    std::uint64_t tag = 0;
    /** Kept because it is among the K slowest queries. */
    bool slowest_exemplar = false;
    /** Kept as the representative of its latency decile. */
    bool decile_exemplar = false;
    /** Per-stage decomposition (indexed like the stage names). */
    std::vector<StageSpan> stages;

    std::uint64_t endToEnd() const { return exit_cycle - entry_cycle; }
    /** Sum of every queue_wait + service + stall component. */
    std::uint64_t componentSum() const;
    /** The invariant: componentSum() == endToEnd(). */
    bool conserves() const { return componentSum() == endToEnd(); }
};

/**
 * The spans of one run (or, after merging, of one batch). Usage:
 * addRecord() per query in order, finalize() once, then (arrays)
 * mergeInvocation() in invocation-index order on a fresh set.
 */
class QuerySpanSet
{
  public:
    /** Per-invocation roll-up kept for counter reconciliation. */
    struct InvocationSummary
    {
        std::uint64_t invocation = 0;
        std::uint64_t queries = 0;
        /** The invocation's whole-run cycle count (pre + execute). */
        std::uint64_t total_cycles = 0;
    };

    QuerySpanSet(std::vector<std::string> stage_names,
                 std::vector<std::string> cause_names);

    /** Append one query's record (query order; pre-finalize only).
     *  The record must conserve and match the stage/cause shape. */
    void addRecord(QuerySpanRecord record);

    /**
     * Charge extra stall cycles to a stage of the last added record,
     * extending its exit cycle by the same amount so conservation
     * holds (the simulator's end-of-run fault-retry bubble).
     */
    void addStallToLast(std::size_t stage, std::size_t cause,
                        std::uint64_t cycles);

    /**
     * Select exemplars and drop every other full record: the
     * `exemplar_count` slowest queries (ties -> lower query id) plus
     * one representative per latency decile (the rank
     * floor((d + 0.5) * n / 10) query of the ascending latency
     * order). Also freezes the per-stage digests/totals, which cover
     * ALL queries, and records the invocation summary.
     */
    void finalize(std::size_t exemplar_count,
                  std::uint64_t run_total_cycles);

    /**
     * Fold a finalized per-invocation set into this one, re-tagging
     * its records and summary with `invocation`. Call in
     * invocation-index order; the result is independent of thread
     * count because merging is fully serial.
     */
    void mergeInvocation(const QuerySpanSet& other,
                         std::uint64_t invocation);

    bool finalized() const { return finalized_; }
    std::size_t numStages() const { return stage_names_.size(); }
    std::size_t numCauses() const { return cause_names_.size(); }
    const std::vector<std::string>& stageNames() const
    {
        return stage_names_;
    }
    const std::vector<std::string>& causeNames() const
    {
        return cause_names_;
    }

    /** All records before finalize(); only exemplars after. */
    const std::vector<QuerySpanRecord>& records() const
    {
        return records_;
    }
    /** Queries recorded, exemplar or not. */
    std::size_t numQueries() const { return num_queries_; }
    const std::vector<InvocationSummary>& invocations() const
    {
        return invocations_;
    }

    /** Exact component totals over every query (wall cycles). */
    std::uint64_t stageQueueWaitTotal(std::size_t stage) const;
    std::uint64_t stageServiceTotal(std::size_t stage) const;
    std::uint64_t stageStallTotal(std::size_t stage) const;

    /** Per-stage component digests over every query (finalized). */
    const QuantileDigest& stageQueueWaitDigest(std::size_t stage) const;
    const QuantileDigest& stageServiceDigest(std::size_t stage) const;
    const QuantileDigest& stageStallDigest(std::size_t stage) const;
    /** End-to-end cycles digest over every query (finalized). */
    const QuantileDigest& totalDigest() const;

  private:
    std::vector<std::string> stage_names_;
    std::vector<std::string> cause_names_;
    std::vector<QuerySpanRecord> records_;
    std::vector<InvocationSummary> invocations_;
    std::vector<std::uint64_t> queue_wait_totals_;
    std::vector<std::uint64_t> service_totals_;
    std::vector<std::uint64_t> stall_totals_;
    std::vector<QuantileDigest> queue_wait_digests_;
    std::vector<QuantileDigest> service_digests_;
    std::vector<QuantileDigest> stall_digests_;
    QuantileDigest total_digest_;
    std::size_t num_queries_ = 0;
    bool finalized_ = false;
};

} // namespace elsa::obs

#endif // ELSA_OBS_SPAN_H_
