#include "serve/engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <tuple>
#include <utility>

#include "attention/threshold.h"
#include "common/logging.h"
#include "common/rng.h"
#include "fixed/units.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "sim/array.h"
#include "workload/generator.h"

namespace elsa {

namespace {

// Rng stream ids forked off ServeConfig::seed. Streams 1 and 2 are
// the arrival process (serve/arrival.cc); the fault base leaves room
// for per-class workload streams in between.
constexpr std::uint64_t kHasherStream = 3;
constexpr std::uint64_t kWorkloadStreamBase = 16;
constexpr std::uint64_t kFaultStream = 1024;

// Engine event kinds. At equal cycles completions run first (they
// free servers the same-cycle arrivals may use), then arrivals, then
// retry re-entries; ties beyond that break on push sequence. The
// order is part of the determinism contract.
constexpr int kEventCompletion = 0;
constexpr int kEventArrival = 1;
constexpr int kEventRetryReady = 2;

struct Event
{
    std::uint64_t cycle = 0;
    int type = kEventArrival;
    std::uint64_t seq = 0;
    std::size_t request = 0;
};

struct EventAfter
{
    bool operator()(const Event& a, const Event& b) const
    {
        return std::make_tuple(a.cycle, a.type, a.seq)
               > std::make_tuple(b.cycle, b.type, b.seq);
    }
};

// Mutable per-request bookkeeping of the event loop.
struct RequestState
{
    std::size_t attempts = 0;
    std::uint64_t queue_wait = 0;
    std::uint64_t enqueue_cycle = 0;
    bool attempt_faulty = false;
};

} // namespace

ServeEngine::ServeEngine(ServeConfig config)
    : config_(std::move(config))
{
    config_.validate();

    // One shared hasher + calibration across the mix, built the way
    // the Elsa facade builds its own (elsa/elsa.cc): every class
    // shares sim.d, so one projection serves them all.
    Rng root(config_.seed);
    Rng hasher_rng = root.fork(kHasherStream);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(config_.sim.d,
                                       config_.sim.num_hash_factors,
                                       hasher_rng,
                                       /*quantize_factors=*/true));
    const double theta_bias =
        thetaBiasFor(config_.sim.d, hasher->bits(), hasher_rng);

    // The catalog measures fault-free service time: faults act at
    // the request level through per-attempt plans in run(), and the
    // timing-only catalog runs need none of the tracing machinery.
    SimConfig catalog_sim = config_.sim;
    catalog_sim.fault = FaultConfig{};
    catalog_sim.collect_query_trace = false;
    catalog_sim.emit_trace = false;
    catalog_sim.attribute_stalls = false;
    catalog_sim.telemetry = TelemetryConfig{};
    catalog_sim.query_spans = QuerySpanConfig{};
    AcceleratorArray array(catalog_sim, config_.num_accelerators,
                           hasher, theta_bias);

    const std::size_t levels = config_.numLevels();
    catalog_.resize(config_.classes.size() * levels);
    for (std::size_t c = 0; c < config_.classes.size(); ++c) {
        const RequestClassConfig& cls = config_.classes[c];
        QkvGenerator generator(
            cls.model, root.fork(kWorkloadStreamBase + c).next());
        const AttentionInput input =
            generator.generate(0, 0, cls.sequence_length, c);
        for (std::size_t level = 0; level < levels; ++level) {
            ServiceCatalogEntry& entry =
                catalog_[c * levels + level];
            entry.class_index = c;
            entry.level = level;
            entry.p = config_.levelP(level);
            ThresholdLearner learner(entry.p);
            learner.observe(input.query, input.key);
            entry.threshold = learner.threshold();
            const ArrayRunResult timing =
                array.run({&input}, {entry.threshold});
            entry.service_cycles = timing.total_cycles;
            ELSA_ASSERT(entry.service_cycles >= 1,
                        "catalog service time must be positive");
        }
    }
}

const ServiceCatalogEntry&
ServeEngine::catalogEntry(std::size_t class_index,
                          std::size_t level) const
{
    const std::size_t levels = config_.numLevels();
    ELSA_ASSERT(class_index < config_.classes.size()
                    && level < levels,
                "catalog index out of range");
    return catalog_[class_index * levels + level];
}

ServeResult
ServeEngine::run() const
{
    const std::vector<Request> arrivals = generateArrivals(config_);
    const DegradationConfig& degradation = config_.degradation;
    const std::size_t num_levels = config_.numLevels();
    const bool faults = config_.sim.fault.enabled
                        && config_.sim.fault.bit_error_rate > 0.0;
    Rng fault_root = Rng(config_.seed).fork(kFaultStream);

    ServeResult result;
    result.levels.resize(num_levels);
    for (std::size_t level = 0; level < num_levels; ++level) {
        result.levels[level].p = config_.levelP(level);
    }

    std::vector<RequestState> state(arrivals.size());
    std::priority_queue<Event, std::vector<Event>, EventAfter>
        events;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        events.push(Event{arrivals[i].arrival_cycle, kEventArrival,
                          seq++, i});
    }

    std::deque<std::size_t> queue;
    std::size_t free_servers = config_.num_accelerators;

    // Controller state: fidelity level, the cycle it was entered,
    // and the two overload EWMAs (queue occupancy fraction and
    // deadline-miss indicator), updated at every engine event.
    std::size_t level = 0;
    std::uint64_t level_since = 0;
    result.levels[0].entries = 1;
    double occ_ewma = 0.0;
    double miss_ewma = 0.0;
    const double alpha = degradation.ewma_alpha;

    auto noteQueue = [&] {
        const double occ =
            static_cast<double>(queue.size())
            / static_cast<double>(config_.queue_capacity);
        occ_ewma = alpha * occ + (1.0 - alpha) * occ_ewma;
    };
    auto noteOutcome = [&](bool miss) {
        miss_ewma =
            alpha * (miss ? 1.0 : 0.0) + (1.0 - alpha) * miss_ewma;
    };

    auto moveToLevel = [&](std::size_t next, std::uint64_t now) {
        result.levels[level].dwell_cycles += now - level_since;
        level = next;
        level_since = now;
        result.levels[level].entries += 1;
        result.degradation_transitions += 1;
    };
    auto controllerStep = [&](std::uint64_t now) {
        if (!degradation.enabled) {
            return;
        }
        // Dwell hysteresis: hold every level for min_dwell_cycles so
        // the controller cannot thrash on a single burst.
        if (now < level_since + degradation.min_dwell_cycles) {
            return;
        }
        const bool pressure =
            occ_ewma > degradation.queue_high_watermark
            || miss_ewma > degradation.miss_high_watermark;
        const bool calm =
            occ_ewma < degradation.queue_low_watermark
            && miss_ewma < degradation.miss_low_watermark;
        if (pressure && level + 1 < num_levels) {
            moveToLevel(level + 1, now);
        } else if (calm && level > 0) {
            moveToLevel(level - 1, now);
        }
    };

    // Deterministic exponential backoff of retry r (1-based):
    // base * 2^(r-1), capped.
    auto backoffCycles = [&](std::size_t retry_number) {
        std::uint64_t backoff = config_.retry.backoff_base_cycles;
        const std::uint64_t cap = config_.retry.backoff_cap_cycles;
        for (std::size_t i = 1;
             i < retry_number && backoff < cap; ++i) {
            backoff *= 2;
        }
        return std::min(backoff, cap);
    };

    // Pop queued requests into free servers. Requests whose deadline
    // passed -- or, under deadline-aware dispatch, that could not
    // finish by it even when started right now -- are shed at
    // dequeue; the rest start an attempt whose fault plan is a pure
    // function of (request id, attempt number).
    auto dispatch = [&](std::uint64_t now) {
        while (free_servers > 0 && !queue.empty()) {
            const std::size_t idx = queue.front();
            queue.pop_front();
            const Request& request = arrivals[idx];
            RequestState& st = state[idx];
            std::uint64_t service =
                catalogEntry(request.class_index, level)
                    .service_cycles;
            const std::uint64_t horizon =
                config_.deadline_aware_dispatch ? now + service
                                                : now;
            if (horizon > request.deadline_cycle) {
                result.shed += 1;
                result.shed_deadline += 1;
                noteOutcome(true);
                continue;
            }
            st.queue_wait += now - st.enqueue_cycle;
            st.attempts += 1;
            result.levels[level].dispatched += 1;
            st.attempt_faulty = false;
            if (faults) {
                FaultConfig fault_config = config_.sim.fault;
                fault_config.seed = fault_root.fork(request.id)
                                        .fork(st.attempts)
                                        .next();
                FaultGeometry geometry;
                geometry.n = config_.classes[request.class_index]
                                 .sequence_length;
                geometry.k = config_.sim.k;
                geometry.d = config_.sim.d;
                geometry.lut_words =
                    ExpUnit::kLutSize + ReciprocalUnit::kLutSize;
                const FaultPlan plan =
                    FaultPlan::build(fault_config, geometry);
                // The cycle-level model repairs detected words by
                // re-fetch (stall bubbles, charged here); the
                // serving layer additionally treats any detected
                // event as integrity-suspect and re-executes the
                // whole request (docs/SERVING.md).
                st.attempt_faulty = plan.counts().detected > 0;
                service += plan.retryStallCycles(fault_config);
                if (st.attempt_faulty) {
                    result.faulty_attempts += 1;
                }
            }
            free_servers -= 1;
            events.push(Event{now + service, kEventCompletion,
                              seq++, idx});
        }
        noteQueue();
    };

    std::uint64_t last_cycle = 0;
    while (!events.empty()) {
        const Event event = events.top();
        events.pop();
        const std::uint64_t now = event.cycle;
        last_cycle = std::max(last_cycle, now);
        const std::size_t idx = event.request;

        switch (event.type) {
        case kEventArrival: {
            result.offered += 1;
            if (queue.size() >= config_.queue_capacity) {
                switch (config_.admission) {
                case AdmissionPolicy::kRejectOnFull:
                    result.rejected += 1;
                    noteQueue();
                    controllerStep(now);
                    continue;
                case AdmissionPolicy::kTailDrop: {
                    // Admit the newcomer, shed the oldest queued
                    // request in its favor (config.h).
                    const std::size_t victim = queue.front();
                    queue.pop_front();
                    static_cast<void>(victim);
                    result.shed += 1;
                    result.shed_queue_drop += 1;
                    noteOutcome(true);
                    break;
                }
                }
            }
            result.admitted += 1;
            state[idx].enqueue_cycle = now;
            queue.push_back(idx);
            dispatch(now);
            break;
        }
        case kEventRetryReady: {
            // Re-entry after backoff; exempt from the admission
            // bound (the request was already admitted).
            state[idx].enqueue_cycle = now;
            queue.push_back(idx);
            dispatch(now);
            break;
        }
        case kEventCompletion: {
            free_servers += 1;
            RequestState& st = state[idx];
            const Request& request = arrivals[idx];
            if (st.attempt_faulty) {
                if (st.attempts < config_.retry.max_attempts) {
                    result.retry_attempts += 1;
                    const std::uint64_t backoff =
                        backoffCycles(st.attempts);
                    result.retry_backoff_cycles += backoff;
                    events.push(Event{now + backoff,
                                      kEventRetryReady, seq++, idx});
                } else {
                    result.failed += 1;
                    noteOutcome(true);
                }
            } else {
                result.completed += 1;
                const std::uint64_t latency =
                    now - request.arrival_cycle;
                result.latency.add(static_cast<double>(latency));
                result.queue_wait.add(
                    static_cast<double>(st.queue_wait));
                const bool miss = now > request.deadline_cycle;
                if (miss) {
                    result.slo_violations += 1;
                }
                noteOutcome(miss);
            }
            dispatch(now);
            break;
        }
        default:
            ELSA_PANIC("unknown serve event type " << event.type);
        }
        controllerStep(now);
    }

    // Close out the final level's dwell: over all levels the dwells
    // sum to the run span exactly (checked by scripts/
    // check_metrics.py against the serve artifact).
    result.levels[level].dwell_cycles += last_cycle - level_since;
    result.span_cycles = last_cycle;

    ELSA_ASSERT(result.conservesOffered(),
                "offered == admitted + rejected must hold: "
                    << result.offered << " vs " << result.admitted
                    << " + " << result.rejected);
    ELSA_ASSERT(result.conservesAdmitted(),
                "admitted == completed + shed + failed must hold: "
                    << result.admitted << " vs " << result.completed
                    << " + " << result.shed << " + "
                    << result.failed);

    const double seconds =
        static_cast<double>(result.span_cycles)
        / (config_.sim.frequency_ghz * 1e9);
    const std::uint64_t in_deadline =
        result.completed - result.slo_violations;
    result.goodput_qps =
        seconds > 0.0 ? static_cast<double>(in_deadline) / seconds
                      : 0.0;
    if (result.offered > 0) {
        const auto offered = static_cast<double>(result.offered);
        result.shed_rate =
            static_cast<double>(result.shed) / offered;
        result.deadline_miss_rate =
            static_cast<double>(result.shed + result.failed
                                + result.slo_violations)
            / offered;
    }
    return result;
}

} // namespace elsa
