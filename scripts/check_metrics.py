#!/usr/bin/env python3
"""End-to-end validation of the observability artifacts.

Runs the quickstart binary with --obs-dir (stats + tracing + host
profiling enabled) in a temporary directory and validates the six
emitted files against the schema documented in docs/OBSERVABILITY.md:

  stats.json     - metric-name grammar, per-kind field sets, and the
                   invariant active_cycles <= cycles.total per module;
  stats.csv      - header row and one row per scalar facet;
  trace.json     - Chrome trace_event JSON object form, required
                   per-event fields, metadata coverage;
  telemetry.json - binned cycle-domain time series: schema, shared
                   bin axis, and exact conservation of the stall
                   channels' bin sums against the stats.json stall
                   counters;
  spans.json     - per-query lifecycle spans: schema, exact
                   per-exemplar conservation (component sum ==
                   end-to-end cycles), whole-run reconciliation of
                   the span totals against the stats.json stall and
                   span counters, and digest monotonicity;
  manifest.json  - required sections, schema_version, and the
                   cross-check that the manifest's utilization equals
                   active_cycles / cycles.total from stats.json.

The stall-attribution counters (<prefix>.stall.<module>.<cause>) are
validated structurally (only known module/cause names) and
arithmetically: per module the cause counters must sum exactly to
lane_cycles -- the same conservation invariant the simulator asserts
internally.  The fault_retry cause is optional (published only when
fault injection ran; see docs/ROBUSTNESS.md) and enters the sum when
present.  Fault counters (<prefix>.fault.*), when present, must
satisfy injected == silent + detected + corrected.

Usage:
  check_metrics.py <path-to-quickstart-binary>
  check_metrics.py --bench-results <BENCH_RESULTS.json>
  check_metrics.py --serve <quickstart-binary-or-serve-dump-dir>

The second form validates an aggregated bench-results file produced
by the elsa_bench driver (schema documented in docs/OBSERVABILITY.md)
without running any binary.

The third form validates the serving-engine artifact bundle
(docs/SERVING.md) -- serve.json, serve_stats.json, serve_stats.csv,
serve_manifest.json -- either from an existing dump directory or by
running `quickstart --serve --obs-dir <tmp>` first.  Checks include
the exact conservation invariants
  offered  == admitted  + rejected
  admitted == completed + shed + failed
  shed     == shed_queue_drop + shed_deadline,
latency/queue-wait digest counts == the completed counter (in both
serve.json and the stats registry), per-level degradation dwell
cycles summing exactly to span_cycles, and serve.json counts
matching the serve.* registry counters one for one.

Exit status 0 when every check passes; 1 with a FAIL line per
violation otherwise. Wired into CTest as the `check_metrics` and
`check_bench_schema` tests.
"""

import json
import os
import re
import subprocess
import sys
import tempfile

METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

DISTRIBUTION_FIELDS = {"kind", "count", "mean", "stddev", "min", "max"}
HISTOGRAM_FIELDS = {
    "kind", "count", "sum", "underflow", "overflow", "edges", "counts",
}
# Streaming quantile digests (obs/digest.h): quantile fields appear
# only once the digest has seen at least one sample.
DIGEST_QUANTILES = ["min", "p50", "p90", "p95", "p99", "max"]
DIGEST_FIELDS_EMPTY = {"kind", "count"}
DIGEST_FIELDS = DIGEST_FIELDS_EMPTY | set(DIGEST_QUANTILES)

HW_MODULES = [
    "hash_computation",
    "norm_computation",
    "candidate_selection",
    "attention_compute",
    "output_division",
    "key_hash_memory",
    "key_norm_memory",
    "key_value_memory",
    "query_output_memory",
]

# Stall-attribution schema (src/sim/stall.h). Module and cause names
# in <prefix>.stall.<module>.<field> counters must come from exactly
# these sets; anything else is a producer/validator drift bug.
STALL_MODULES = [
    "hash_computation",
    "norm_computation",
    "candidate_selection",
    "arbitration",
    "attention_compute",
    "output_division",
]
STALL_CAUSES = [
    "busy",
    "starved",
    "backpressured",
    "bank_conflict",
    "drained",
]
# Published only when fault injection ran (SimConfig::fault); a
# fault-free stats dump must stay byte-identical to one produced by a
# build without the fault subsystem, so absence is not an error.
OPTIONAL_STALL_CAUSES = [
    "fault_retry",
]
STALL_FIELDS = {f"{cause}_cycles"
                for cause in STALL_CAUSES + OPTIONAL_STALL_CAUSES}
STALL_FIELDS.add("lane_cycles")

# Fault-injection bookkeeping counters (<prefix>.fault.<name>, see
# fault/fault.h); optional as a group, all-or-nothing when present.
FAULT_COUNTERS = [
    "injected",
    "silent",
    "detected",
    "corrected",
    "retry_events",
    "retry_stall_cycles",
]

failures = []


def check(condition, message):
    if not condition:
        failures.append(message)
        print(f"FAIL: {message}")


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_stats(stats):
    for name, value in stats.items():
        check(METRIC_NAME_RE.match(name),
              f"stats: invalid metric name {name!r}")
        if isinstance(value, dict):
            kind = value.get("kind")
            check(kind in ("distribution", "histogram", "digest"),
                  f"stats: {name}: unknown kind {kind!r}")
            if kind == "digest":
                expected = (DIGEST_FIELDS if value.get("count")
                            else DIGEST_FIELDS_EMPTY)
            elif kind == "distribution":
                expected = DISTRIBUTION_FIELDS
            else:
                expected = HISTOGRAM_FIELDS
            check(set(value) == expected,
                  f"stats: {name}: fields {sorted(value)} != "
                  f"{sorted(expected)}")
            if kind == "digest" and value.get("count"):
                quantiles = [value.get(q) for q in DIGEST_QUANTILES]
                check(all(isinstance(q, (int, float))
                          for q in quantiles)
                      and quantiles == sorted(quantiles),
                      f"stats: {name}: digest quantiles not "
                      f"monotone: {quantiles}")
            if kind == "histogram":
                check(len(value["edges"]) == len(value["counts"]) + 1,
                      f"stats: {name}: edges/counts length mismatch")
                total = (sum(value["counts"]) + value["underflow"]
                         + value["overflow"])
                check(total == value["count"],
                      f"stats: {name}: bucket counts do not sum to "
                      f"count")
        else:
            check(isinstance(value, (int, float)),
                  f"stats: {name}: counter is not a number")

    total = stats.get("sim.accel0.cycles.total")
    check(isinstance(total, (int, float)) and total > 0,
          "stats: missing sim.accel0.cycles.total")
    for module in HW_MODULES:
        name = f"sim.accel0.{module}.active_cycles"
        active = stats.get(name)
        check(isinstance(active, (int, float)),
              f"stats: missing {name}")
        if isinstance(active, (int, float)) and total:
            check(0 <= active,
                  f"stats: {name} is negative")
    check(any(name.startswith("host.") and name.endswith(".seconds")
              for name in stats),
          "stats: no host.<scope>.seconds profiling distributions "
          "(is ELSA_PROF set?)")
    check_stall_counters(stats, "sim.accel0")
    check_fault_counters(stats, "sim.accel0")


def check_stall_counters(stats, prefix):
    """Validate the <prefix>.stall.* counters: known names only, and
    exact per-module conservation cause-sum == lane_cycles."""
    stall_prefix = f"{prefix}.stall."
    seen_modules = set()
    for name in stats:
        if not name.startswith(stall_prefix):
            continue
        parts = name[len(stall_prefix):].split(".")
        check(len(parts) == 2,
              f"stats: malformed stall counter name {name!r}")
        if len(parts) != 2:
            continue
        module, field = parts
        check(module in STALL_MODULES,
              f"stats: {name}: unknown stall module {module!r}")
        check(field in STALL_FIELDS,
              f"stats: {name}: unknown stall field {field!r}")
        seen_modules.add(module)

    # quickstart runs with attribute_stalls on, so the counters must
    # exist -- for every attributed module, with all six fields.
    check(seen_modules == set(STALL_MODULES),
          f"stats: stall counters cover {sorted(seen_modules)}, "
          f"expected all of {sorted(STALL_MODULES)}")
    for module in STALL_MODULES:
        lane = stats.get(f"{stall_prefix}{module}.lane_cycles")
        check(isinstance(lane, (int, float)) and lane > 0,
              f"stats: missing/zero {stall_prefix}{module}"
              f".lane_cycles")
        cause_sum = 0
        for cause in STALL_CAUSES:
            value = stats.get(f"{stall_prefix}{module}"
                              f".{cause}_cycles")
            check(isinstance(value, (int, float)) and value >= 0,
                  f"stats: missing/negative {stall_prefix}{module}"
                  f".{cause}_cycles")
            if isinstance(value, (int, float)):
                cause_sum += value
        for cause in OPTIONAL_STALL_CAUSES:
            value = stats.get(f"{stall_prefix}{module}"
                              f".{cause}_cycles")
            if value is not None:
                check(isinstance(value, (int, float)) and value >= 0,
                      f"stats: negative {stall_prefix}{module}"
                      f".{cause}_cycles")
                if isinstance(value, (int, float)):
                    cause_sum += value
        if isinstance(lane, (int, float)):
            check(cause_sum == lane,
                  f"stats: {module}: cause sum {cause_sum} != "
                  f"lane_cycles {lane} (conservation violated)")


def check_fault_counters(stats, prefix):
    """Validate the optional <prefix>.fault.* counters: when fault
    injection ran, all six are published together and satisfy the
    conservation invariant injected == silent + detected +
    corrected."""
    names = {f"{prefix}.fault.{counter}": counter
             for counter in FAULT_COUNTERS}
    present = {counter: stats[name]
               for name, counter in names.items() if name in stats}
    stray = [name for name in stats
             if name.startswith(f"{prefix}.fault.")
             and name not in names]
    check(not stray, f"stats: unknown fault counters {stray}")
    if not present:
        return  # Fault injection never ran: nothing to validate.
    check(set(present) == set(FAULT_COUNTERS),
          f"stats: partial fault counter set {sorted(present)}, "
          f"expected all of {sorted(FAULT_COUNTERS)}")
    for counter, value in present.items():
        check(isinstance(value, (int, float)) and value >= 0,
              f"stats: {prefix}.fault.{counter} is not a "
              f"non-negative number")
    if set(present) == set(FAULT_COUNTERS):
        check(present["injected"] == present["silent"]
              + present["detected"] + present["corrected"],
              f"stats: fault counters violate injected == silent + "
              f"detected + corrected ({present})")


def check_telemetry(telemetry, stats):
    """Validate telemetry.json (docs/OBSERVABILITY.md): schema, one
    shared bin axis, and conservation -- every stall channel's bin
    sum must equal the matching stats.json stall counter exactly
    (both are integer tallies of the same lane cycles; the recorder's
    telescoped rounding makes the bins sum exactly)."""
    prefix = telemetry.get("prefix")
    check(telemetry.get("schema_version") == 1,
          "telemetry: schema_version != 1")
    check(prefix == "sim.accel0",
          f"telemetry: prefix {prefix!r} != 'sim.accel0'")
    bin_width = telemetry.get("bin_width_cycles")
    check(isinstance(bin_width, (int, float)) and bin_width >= 1,
          f"telemetry: bad bin_width_cycles {bin_width!r}")
    num_bins = telemetry.get("num_bins")
    check(isinstance(num_bins, int) and num_bins >= 1,
          f"telemetry: bad num_bins {num_bins!r}")
    check(telemetry.get("total_cycles")
          == stats.get(f"{prefix}.cycles.total"),
          "telemetry: total_cycles != stats cycles.total")
    check(telemetry.get("invocations")
          == stats.get(f"{prefix}.invocations"),
          "telemetry: invocations != stats invocations")

    channels = telemetry.get("channels")
    check(isinstance(channels, dict) and channels,
          "telemetry: channels missing or empty")
    if not isinstance(channels, dict):
        return
    for name, bins in sorted(channels.items()):
        check(isinstance(bins, list) and len(bins) == num_bins,
              f"telemetry: {name}: {len(bins)} bins != num_bins "
              f"{num_bins}")
        check(all(isinstance(v, (int, float)) and v >= 0
                  for v in bins),
              f"telemetry: {name}: non-numeric or negative bin")

    # Exact conservation: stall channel bin sums == stats counters,
    # in both directions (every channel has a counter, every cause
    # counter has a channel; lane_cycles is totals-only by design).
    for name, bins in sorted(channels.items()):
        if not name.startswith("stall."):
            continue
        parts = name.split(".")
        check(len(parts) == 3 and parts[1] in STALL_MODULES
              and parts[2] in STALL_FIELDS
              and parts[2] != "lane_cycles",
              f"telemetry: malformed stall channel {name!r}")
        counter = stats.get(f"{prefix}.{name}")
        check(isinstance(counter, (int, float))
              and sum(bins) == counter,
              f"telemetry: {name}: bin sum {sum(bins)} != stats "
              f"counter {counter!r} (conservation violated)")
    for stat_name in stats:
        stall_prefix = f"{prefix}.stall."
        if (not stat_name.startswith(stall_prefix)
                or stat_name.endswith(".lane_cycles")):
            continue
        channel = stat_name[len(prefix) + 1:]
        check(channel in channels,
              f"telemetry: stats counter {stat_name} has no "
              f"telemetry channel")

    # Activity channels integrate the same per-module activity the
    # active_cycles counters hold (float accumulation -> tolerance).
    for module in HW_MODULES:
        name = f"activity.{module}"
        check(name in channels, f"telemetry: missing channel {name}")
        active = stats.get(f"{prefix}.{module}.active_cycles")
        if name in channels and isinstance(active, (int, float)):
            total = sum(channels[name])
            check(abs(total - active)
                  <= 1e-6 * max(1.0, abs(active)),
                  f"telemetry: {name}: bin sum {total} != "
                  f"active_cycles {active}")
    check("queue.occupancy_cycles" in channels,
          "telemetry: missing channel queue.occupancy_cycles")
    queries = stats.get(f"{prefix}.queries")
    completed = channels.get("queries.completed")
    check(completed is not None
          and isinstance(queries, (int, float))
          and sum(completed) == queries,
          "telemetry: queries.completed bin sum != stats queries")

    energy = telemetry.get("energy", {})
    per_bin = energy.get("bin_total_uj") if isinstance(energy, dict) \
        else None
    check(isinstance(per_bin, list) and len(per_bin) == num_bins,
          "telemetry: energy.bin_total_uj missing or wrong length")
    if isinstance(per_bin, list):
        check(all(isinstance(v, (int, float)) and v >= 0
                  for v in per_bin),
              "telemetry: energy.bin_total_uj has negative entries")

    digests = telemetry.get("digests")
    check(isinstance(digests, dict)
          and f"{prefix}.latency.cycles_digest" in digests,
          "telemetry: missing latency.cycles_digest digest")
    if isinstance(digests, dict):
        for name, digest in sorted(digests.items()):
            count = digest.get("count")
            check(isinstance(count, (int, float)) and count >= 1,
                  f"telemetry: {name}: empty digest published")
            quantiles = [digest.get(q) for q in DIGEST_QUANTILES]
            check(all(isinstance(q, (int, float))
                      for q in quantiles)
                  and quantiles == sorted(quantiles),
                  f"telemetry: {name}: quantiles not monotone: "
                  f"{quantiles}")

    intervals = telemetry.get("query_intervals")
    if intervals is not None and isinstance(digests, dict):
        interval_digest = digests.get(
            f"{prefix}.query.interval_cycles_digest", {})
        if not telemetry.get("query_intervals_truncated", False):
            check(len(intervals) == interval_digest.get("count"),
                  "telemetry: query_intervals length != interval "
                  "digest count")


def check_spans(spans, stats):
    """Validate spans.json (docs/OBSERVABILITY.md): schema, exact
    per-exemplar conservation, and the whole-run reconciliation
    identities between the span component totals and the stats.json
    stall counters."""
    prefix = spans.get("prefix")
    check(spans.get("schema_version") == 1,
          "spans: schema_version != 1")
    check(prefix == "sim.accel0",
          f"spans: prefix {prefix!r} != 'sim.accel0'")
    check(spans.get("stages") == STALL_MODULES,
          f"spans: stages {spans.get('stages')!r} != the attributed "
          f"module list")
    expected_causes = [f"{c}_cycles"
                       for c in STALL_CAUSES + OPTIONAL_STALL_CAUSES]
    check(spans.get("stall_causes") == expected_causes,
          f"spans: stall_causes {spans.get('stall_causes')!r} != "
          f"{expected_causes}")
    exemplar_count = spans.get("exemplar_count")
    check(isinstance(exemplar_count, int) and exemplar_count >= 1,
          f"spans: bad exemplar_count {exemplar_count!r}")
    num_queries = spans.get("num_queries")
    check(isinstance(num_queries, int) and num_queries >= 1,
          f"spans: bad num_queries {num_queries!r}")

    # Invocation roll-ups reconcile against the run counters even for
    # invocations that kept no exemplar record.
    invocations = spans.get("invocations", [])
    check(isinstance(invocations, list) and invocations,
          "spans: invocations missing or empty")
    check(sum(inv.get("queries", 0) for inv in invocations)
          == num_queries,
          "spans: invocation query sum != num_queries")
    check(sum(inv.get("queries", 0) for inv in invocations)
          == stats.get(f"{prefix}.queries"),
          "spans: invocation query sum != stats queries counter")
    check(sum(inv.get("total_cycles", 0) for inv in invocations)
          == stats.get(f"{prefix}.cycles.total"),
          "spans: invocation cycle sum != stats cycles.total")

    # Bidirectional totals reconciliation: spans.json totals ==
    # stats.json span counters (published from the same QuerySpanSet)
    # and, where the pipeline model pins the relation, == the
    # independent stall-attribution counters:
    #   span od.service     == stall.output_division.busy_cycles
    #                          (division runs once per query);
    #   2 * span hash.service == stall.hash_computation.busy_cycles
    #                          (each hash is counted in preprocessing
    #                          AND in its overlap interval);
    #   span cs stall       <= stall.candidate_selection.
    #                          bank_conflict_cycles (wall cycles on
    #                          the critical bank vs lane cycles over
    #                          all banks).
    totals = spans.get("totals", {})
    check(list(totals) == STALL_MODULES,
          "spans: totals keys != stage list")
    for module, entry in totals.items():
        for field in ("queue_wait_cycles", "service_cycles",
                      "stall_cycles"):
            value = entry.get(field)
            check(isinstance(value, int) and value >= 0,
                  f"spans: totals.{module}.{field} not a "
                  f"non-negative integer")
            counter = stats.get(f"{prefix}.span.{module}.{field}")
            check(counter == value,
                  f"spans: totals.{module}.{field} {value} != stats "
                  f"span counter {counter!r}")
    od_service = totals.get("output_division", {}).get(
        "service_cycles")
    od_busy = stats.get(f"{prefix}.stall.output_division.busy_cycles")
    check(od_service == od_busy,
          f"spans: output_division service {od_service} != stall "
          f"busy counter {od_busy} (reconciliation violated)")
    hash_service = totals.get("hash_computation", {}).get(
        "service_cycles")
    hash_busy = stats.get(f"{prefix}.stall.hash_computation"
                          f".busy_cycles")
    check(isinstance(hash_service, int)
          and 2 * hash_service == hash_busy,
          f"spans: 2 * hash service {hash_service} != stall busy "
          f"counter {hash_busy} (reconciliation violated)")
    cs_stall = totals.get("candidate_selection", {}).get(
        "stall_cycles")
    cs_conflict = stats.get(f"{prefix}.stall.candidate_selection"
                            f".bank_conflict_cycles")
    check(isinstance(cs_stall, int)
          and isinstance(cs_conflict, (int, float))
          and cs_stall <= cs_conflict,
          f"spans: candidate_selection stall {cs_stall} > "
          f"bank_conflict counter {cs_conflict}")

    # Digests cover every query, not just the exemplars.
    digests = spans.get("digests", {})
    check(set(digests) == set(STALL_MODULES + ["query_total_cycles"]),
          "spans: digests keys != stage list + query_total_cycles")

    def check_digest(label, digest):
        check(digest.get("count") == num_queries,
              f"spans: {label}: digest count {digest.get('count')!r}"
              f" != num_queries {num_queries}")
        if digest.get("count"):
            quantiles = [digest.get(q) for q in DIGEST_QUANTILES]
            check(all(isinstance(q, (int, float)) for q in quantiles)
                  and quantiles == sorted(quantiles),
                  f"spans: {label}: quantiles not monotone: "
                  f"{quantiles}")

    for module in STALL_MODULES:
        for component in ("queue_wait", "service", "stall"):
            check_digest(f"{module}.{component}",
                         digests.get(module, {}).get(component, {}))
    check_digest("query_total_cycles",
                 digests.get("query_total_cycles", {}))
    stats_total_digest = stats.get(
        f"{prefix}.span.query.total_cycles_digest", {})
    check(stats_total_digest.get("count") == num_queries,
          "spans: stats span.query.total_cycles_digest count != "
          "num_queries")

    # Exemplars: the slowest-K / decile-representative policy keeps
    # at least min(K, n) records, every one flagged, conserving, and
    # consistent with its entry/exit cycle stamps.
    exemplars = spans.get("exemplars", [])
    check(isinstance(exemplars, list)
          and len(exemplars) >= min(exemplar_count, num_queries),
          f"spans: only {len(exemplars)} exemplars for "
          f"exemplar_count {exemplar_count}")
    slowest = 0
    for i, ex in enumerate(exemplars):
        check(ex.get("slowest") or ex.get("decile"),
              f"spans: exemplar {i} kept without a policy flag")
        for field in ("invocation", "query", "critical_bank"):
            check(isinstance(ex.get(field), int)
                  and ex.get(field, -1) >= 0,
                  f"spans: exemplar {i} missing identity field "
                  f"{field!r}")
        slowest += 1 if ex.get("slowest") else 0
        entry = ex.get("entry_cycle")
        exit_cycle = ex.get("exit_cycle")
        end_to_end = ex.get("end_to_end_cycles")
        check(isinstance(entry, int) and isinstance(exit_cycle, int)
              and entry <= exit_cycle
              and exit_cycle - entry == end_to_end,
              f"spans: exemplar {i}: entry/exit/end_to_end "
              f"inconsistent")
        stages = ex.get("stages", {})
        check(list(stages) == STALL_MODULES,
              f"spans: exemplar {i}: stage keys != stage list")
        component_sum = 0
        for stage in stages.values():
            component_sum += stage.get("queue_wait", 0)
            component_sum += stage.get("service", 0)
            component_sum += sum(stage.get("stall", {}).values())
            for cause in stage.get("stall", {}):
                check(cause in expected_causes,
                      f"spans: exemplar {i}: unknown stall cause "
                      f"{cause!r}")
        check(component_sum == end_to_end,
              f"spans: exemplar {i} (query {ex.get('query')}): "
              f"component sum {component_sum} != end-to-end "
              f"{end_to_end} (conservation violated)")
    check(slowest == min(exemplar_count, num_queries),
          f"spans: {slowest} slowest-flagged exemplars, expected "
          f"{min(exemplar_count, num_queries)}")


def check_stats_csv(path):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    check(lines and lines[0] == "name,kind,field,value",
          "stats.csv: missing name,kind,field,value header")
    check(len(lines) > 1, "stats.csv: no data rows")
    for line in lines[1:]:
        check(len(line.split(",")) == 4,
              f"stats.csv: row does not have 4 fields: {line!r}")


def check_trace(trace):
    check(trace.get("displayTimeUnit") == "ns",
          "trace: displayTimeUnit != 'ns'")
    events = trace.get("traceEvents")
    check(isinstance(events, list) and events,
          "trace: traceEvents missing or empty")
    if not isinstance(events, list):
        return
    phases = set()
    for i, event in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            check(field in event, f"trace: event {i} missing {field!r}")
        ph = event.get("ph")
        phases.add(ph)
        if ph == "X":
            check("ts" in event and "dur" in event,
                  f"trace: complete event {i} missing ts/dur")
            check(event.get("dur", 0) >= 1,
                  f"trace: complete event {i} has dur < 1")
            check(isinstance(event.get("cat"), str)
                  and event.get("cat"),
                  f"trace: complete event {i} missing cat")
        elif ph == "C":
            check("value" in event.get("args", {}),
                  f"trace: counter event {i} missing args.value")
        elif ph == "M":
            check(event.get("name") in ("process_name", "thread_name"),
                  f"trace: unexpected metadata event {i}")
            check("name" in event.get("args", {}),
                  f"trace: metadata event {i} missing args.name")
        elif ph in ("s", "t", "f"):
            check("ts" in event and "id" in event,
                  f"trace: flow event {i} missing ts/id")
            check(isinstance(event.get("cat"), str)
                  and event.get("cat"),
                  f"trace: flow event {i} missing cat")
            if ph == "f":
                # Finish arrows bind to the enclosing slice.
                check(event.get("bp") == "e",
                      f"trace: flow-finish event {i} missing "
                      f"bp == 'e'")
    check("M" in phases, "trace: no metadata (M) events")
    check("X" in phases, "trace: no complete (X) events")
    check("C" in phases, "trace: no counter (C) events")
    # Span exemplars link their stages with flow arrows; a start
    # without a finish (or vice versa) renders as a dangling arrow.
    check("s" in phases and "f" in phases,
          "trace: no span flow (s/f) events")


def check_manifest(manifest, stats):
    check(manifest.get("artifact") == "quickstart",
          "manifest: artifact != 'quickstart'")
    check(manifest.get("schema_version") == 1,
          "manifest: schema_version != 1")
    for section in ("build", "config", "metrics", "utilization",
                    "bottleneck"):
        check(isinstance(manifest.get(section), dict),
              f"manifest: missing section {section!r}")
    bottleneck = manifest.get("bottleneck", {})
    check(bottleneck.get("limiting_module") in STALL_MODULES,
          f"manifest: bottleneck.limiting_module "
          f"{bottleneck.get('limiting_module')!r} not a known module")
    busy = bottleneck.get("busy_fraction")
    headroom = bottleneck.get("headroom")
    check(isinstance(busy, (int, float)) and 0.0 <= busy <= 1.0,
          "manifest: bottleneck.busy_fraction outside [0, 1]")
    check(isinstance(headroom, (int, float))
          and isinstance(busy, (int, float))
          and abs(busy + headroom - 1.0) < 1e-9,
          "manifest: bottleneck busy_fraction + headroom != 1")
    build = manifest.get("build", {})
    for key in ("git_describe", "build_type", "compiler"):
        check(key in build, f"manifest: build missing {key!r}")

    # Cross-check: manifest utilization == active_cycles / total from
    # the stats registry (both derive from the same RunResult).
    total = stats.get("sim.accel0.cycles.total", 0)
    utilization = manifest.get("utilization", {})
    check(set(utilization) == set(HW_MODULES),
          "manifest: utilization keys != hardware module list")
    metrics = manifest.get("metrics", {})
    check(metrics.get("total_cycles") == total,
          "manifest: metrics.total_cycles != stats cycles.total")
    for key in ("preprocess_cycles", "execute_cycles",
                "candidate_fraction", "fallbacks"):
        check(key in metrics, f"manifest: metrics missing {key!r}")
    check(metrics.get("preprocess_cycles", -1)
          + metrics.get("execute_cycles", -1) == total,
          "manifest: preprocess_cycles + execute_cycles != "
          "total_cycles")
    # The per-module busy-fraction sweep behind the limiting-module
    # call: every attributed module reported, in range, and the
    # headline busy_fraction equal to the limiting module's entry.
    limiting = bottleneck.get("limiting_module")
    for module in STALL_MODULES:
        value = bottleneck.get(f"busy_fraction_{module}")
        check(isinstance(value, (int, float)) and 0.0 <= value <= 1.0,
              f"manifest: bottleneck.busy_fraction_{module} "
              f"{value!r} outside [0, 1]")
    check(bottleneck.get(f"busy_fraction_{limiting}") == busy,
          "manifest: busy_fraction != the limiting module's "
          "busy_fraction_<module> entry")
    for module in HW_MODULES:
        active = stats.get(f"sim.accel0.{module}.active_cycles")
        if total and isinstance(active, (int, float)):
            expected = min(1.0, active / total)
            got = utilization.get(module)
            check(isinstance(got, (int, float))
                  and abs(got - expected) < 1e-9,
                  f"manifest: utilization.{module} = {got!r}, "
                  f"expected {expected!r}")


def check_bench_results(path):
    """Validate an aggregated BENCH_RESULTS.json file from the
    elsa_bench driver (see docs/OBSERVABILITY.md)."""
    try:
        results = load_json(path)
    except (OSError, json.JSONDecodeError) as exc:
        check(False, f"bench-results: cannot load {path}: {exc}")
        return
    check(results.get("schema_version") == 1,
          "bench-results: schema_version != 1")
    check(results.get("suite") == "elsa_bench",
          f"bench-results: suite {results.get('suite')!r} != "
          f"'elsa_bench'")
    check(isinstance(results.get("quick"), bool),
          "bench-results: missing boolean 'quick'")
    build = results.get("build")
    check(isinstance(build, dict), "bench-results: missing 'build'")
    if isinstance(build, dict):
        for key in ("git_describe", "build_type", "compiler"):
            check(key in build,
                  f"bench-results: build missing {key!r}")
    benches = results.get("benches")
    check(isinstance(benches, dict) and benches,
          "bench-results: 'benches' missing or empty")
    if not isinstance(benches, dict):
        return
    for name, bench in sorted(benches.items()):
        check(isinstance(bench, dict),
              f"bench-results: {name}: entry is not an object")
        if not isinstance(bench, dict):
            continue
        check(bench.get("artifact") == name,
              f"bench-results: {name}: artifact "
              f"{bench.get('artifact')!r} != bench name")
        check(bench.get("schema_version") == 1,
              f"bench-results: {name}: schema_version != 1")
        metrics = bench.get("metrics")
        check(isinstance(metrics, dict) and metrics,
              f"bench-results: {name}: metrics missing or empty")
        if isinstance(metrics, dict):
            for metric, value in metrics.items():
                check(isinstance(value, (int, float, str, bool)),
                      f"bench-results: {name}.{metric}: value is "
                      f"not a scalar")
            # Fault-sweep entries carry the classification invariant
            # in their metric names: for every grid point,
            # fault_injected_<label> == fault_silent_<label> +
            # fault_detected_<label> + fault_corrected_<label>.
            for metric, value in metrics.items():
                if not metric.startswith("fault_injected_"):
                    continue
                label = metric[len("fault_injected_"):]
                parts = {kind: metrics.get(f"fault_{kind}_{label}")
                         for kind in ("silent", "detected",
                                      "corrected")}
                check(all(isinstance(p, (int, float))
                          for p in parts.values()),
                      f"bench-results: {name}: {metric} lacks "
                      f"matching silent/detected/corrected metrics")
                if all(isinstance(p, (int, float))
                       for p in parts.values()):
                    check(value == sum(parts.values()),
                          f"bench-results: {name}: fault counters "
                          f"for {label!r} violate injected == "
                          f"silent + detected + corrected")


SERVE_COUNTS = [
    "offered", "admitted", "rejected", "completed", "shed",
    "shed_queue_drop", "shed_deadline", "failed", "slo_violations",
    "retry_attempts", "retry_backoff_cycles", "faulty_attempts",
]

# serve.json's config-echo section (docs/SERVING.md): the engine
# restates the knobs that shaped the run so an artifact is
# self-describing without the invoking command line.
SERVE_CONFIG_KEYS = [
    "admission", "num_accelerators", "num_requests",
    "queue_capacity", "deadline_cycles", "base_p",
    "mean_interarrival_cycles", "fault_enabled", "max_attempts",
    "degradation_enabled", "ladder", "classes",
]

# serve.json count name -> serve.* registry counter name. Dotted
# breakdown counters keep their serve.json aliases here so the two
# artifacts can be diffed mechanically.
SERVE_COUNTERS = {
    "offered": "serve.offered",
    "admitted": "serve.admitted",
    "rejected": "serve.rejected",
    "completed": "serve.completed",
    "shed": "serve.shed",
    "shed_queue_drop": "serve.shed.queue_drop",
    "shed_deadline": "serve.shed.deadline",
    "failed": "serve.failed",
    "slo_violations": "serve.slo_violations",
    "retry_attempts": "serve.retry.attempts",
    "retry_backoff_cycles": "serve.retry.backoff_cycles",
    "faulty_attempts": "serve.faulty_attempts",
}


def check_serve_json(serve):
    """Validate serve.json (docs/SERVING.md): counts present, both
    conservation invariants exact, shed breakdown exact, digest
    counts == completed, and level dwells summing to the span."""
    config = serve.get("config", {})
    for name in SERVE_CONFIG_KEYS:
        check(name in config, f"serve.json: config missing {name!r}")
    check(isinstance(config.get("ladder"), list),
          "serve.json: config.ladder not a list")
    classes = config.get("classes")
    check(isinstance(classes, list) and classes,
          "serve.json: config.classes missing or empty")
    for i, cls in enumerate(classes if isinstance(classes, list)
                            else []):
        for name in ("model", "sequence_length", "weight"):
            check(name in cls,
                  f"serve.json: config.classes[{i}] missing {name!r}")

    counts = serve.get("counts", {})
    for name in SERVE_COUNTS:
        check(isinstance(counts.get(name), int)
              and counts.get(name, -1) >= 0,
              f"serve.json: counts.{name} missing or not a "
              f"non-negative integer")
    if any(not isinstance(counts.get(n), int) for n in SERVE_COUNTS):
        return

    check(counts["offered"]
          == counts["admitted"] + counts["rejected"],
          f"serve.json: offered {counts['offered']} != admitted "
          f"{counts['admitted']} + rejected {counts['rejected']} "
          f"(conservation violated)")
    check(counts["admitted"] == counts["completed"] + counts["shed"]
          + counts["failed"],
          f"serve.json: admitted {counts['admitted']} != completed "
          f"{counts['completed']} + shed {counts['shed']} + failed "
          f"{counts['failed']} (conservation violated)")
    check(counts["shed"]
          == counts["shed_queue_drop"] + counts["shed_deadline"],
          f"serve.json: shed {counts['shed']} != queue_drop "
          f"{counts['shed_queue_drop']} + deadline "
          f"{counts['shed_deadline']}")
    check(counts["slo_violations"] <= counts["completed"],
          "serve.json: slo_violations > completed")
    conservation = serve.get("conservation", {})
    check(conservation.get("offered_eq_admitted_plus_rejected")
          is True
          and conservation.get(
              "admitted_eq_completed_plus_shed_plus_failed") is True,
          "serve.json: conservation flags not both true")

    for digest_name in ("latency_cycles", "queue_wait_cycles"):
        digest = serve.get(digest_name, {})
        check(digest.get("count") == counts["completed"],
              f"serve.json: {digest_name} count "
              f"{digest.get('count')!r} != completed "
              f"{counts['completed']}")
        if digest.get("count"):
            quantiles = [digest.get(q)
                         for q in ("min", "p50", "p90", "p95",
                                   "p99", "max")]
            check(all(isinstance(q, (int, float)) for q in quantiles)
                  and quantiles == sorted(quantiles),
                  f"serve.json: {digest_name} quantiles not "
                  f"monotone: {quantiles}")

    span = serve.get("span_cycles")
    check(isinstance(span, int) and span >= 0,
          f"serve.json: bad span_cycles {span!r}")
    degradation = serve.get("degradation", {})
    transitions = degradation.get("transitions")
    check(isinstance(transitions, int) and transitions >= 0,
          f"serve.json: degradation.transitions {transitions!r} not "
          f"a non-negative integer")
    levels = degradation.get("levels", [])
    check(isinstance(levels, list) and levels,
          "serve.json: degradation.levels missing or empty")
    for i, level in enumerate(levels if isinstance(levels, list)
                              else []):
        for name in ("p", "dwell_cycles", "entries", "dispatched"):
            check(name in level,
                  f"serve.json: degradation.levels[{i}] missing "
                  f"{name!r}")
    if isinstance(levels, list) and isinstance(span, int):
        dwell_sum = sum(level.get("dwell_cycles", 0)
                        for level in levels)
        check(dwell_sum == span,
              f"serve.json: level dwell sum {dwell_sum} != "
              f"span_cycles {span} (conservation violated)")
        dispatched = sum(level.get("dispatched", 0)
                         for level in levels)
        attempts = (counts["completed"] + counts["failed"]
                    + counts["retry_attempts"])
        check(dispatched == attempts,
              f"serve.json: level dispatched sum {dispatched} != "
              f"completed + failed + retry_attempts {attempts}")

    slo = serve.get("slo", {})
    for rate in ("shed_rate", "deadline_miss_rate"):
        value = slo.get(rate)
        check(isinstance(value, (int, float)) and 0.0 <= value <= 1.0,
              f"serve.json: slo.{rate} {value!r} outside [0, 1]")
    check(isinstance(slo.get("goodput_qps"), (int, float))
          and slo.get("goodput_qps", -1) >= 0,
          "serve.json: slo.goodput_qps missing or negative")
    return counts


def check_serve_stats(stats, serve):
    """Validate serve_stats.json against serve.json: every count has
    a matching serve.* counter, and the request digests saw exactly
    one sample per completed request."""
    for name in stats:
        check(METRIC_NAME_RE.match(name),
              f"serve_stats: invalid metric name {name!r}")
        check(name.startswith("serve."),
              f"serve_stats: metric {name!r} outside the serve. "
              f"namespace")
    counts = serve.get("counts", {})
    for count_name, metric in SERVE_COUNTERS.items():
        check(stats.get(metric) == counts.get(count_name),
              f"serve_stats: {metric} {stats.get(metric)!r} != "
              f"serve.json counts.{count_name} "
              f"{counts.get(count_name)!r}")
    check(stats.get("serve.span_cycles")
          == serve.get("span_cycles"),
          "serve_stats: serve.span_cycles != serve.json span_cycles")

    completed = counts.get("completed")
    for metric in ("serve.latency.request_cycles_digest",
                   "serve.queue_wait.request_cycles_digest"):
        digest = stats.get(metric)
        check(isinstance(digest, dict)
              and digest.get("kind") == "digest",
              f"serve_stats: missing digest {metric}")
        if isinstance(digest, dict):
            check(digest.get("count") == completed,
                  f"serve_stats: {metric} count "
                  f"{digest.get('count')!r} != completed "
                  f"{completed!r}")

    levels = serve.get("degradation", {}).get("levels", [])
    for i, level in enumerate(levels):
        for field in ("dwell_cycles", "dispatched"):
            metric = f"serve.degradation.level{i}.{field}"
            check(stats.get(metric) == level.get(field),
                  f"serve_stats: {metric} {stats.get(metric)!r} != "
                  f"serve.json level value {level.get(field)!r}")

    slo = serve.get("slo", {})
    for rate in ("goodput_qps", "shed_rate", "deadline_miss_rate"):
        value = stats.get(f"serve.{rate}")
        check(isinstance(value, (int, float))
              and value == slo.get(rate),
              f"serve_stats: serve.{rate} {value!r} != serve.json "
              f"slo value {slo.get(rate)!r}")


def check_serve_manifest(manifest, serve):
    check(manifest.get("artifact") == "quickstart_serve",
          "serve_manifest: artifact != 'quickstart_serve'")
    check(manifest.get("schema_version") == 1,
          "serve_manifest: schema_version != 1")
    for section in ("build", "config", "metrics"):
        check(isinstance(manifest.get(section), dict),
              f"serve_manifest: missing section {section!r}")
    metrics = manifest.get("metrics", {})
    check(metrics.get("completed")
          == serve.get("counts", {}).get("completed"),
          "serve_manifest: metrics.completed != serve.json "
          "counts.completed")
    slo = serve.get("slo", {})
    for rate in ("goodput_qps", "shed_rate", "deadline_miss_rate"):
        check(metrics.get(rate) == slo.get(rate),
              f"serve_manifest: metrics.{rate} "
              f"{metrics.get(rate)!r} != serve.json slo value "
              f"{slo.get(rate)!r}")


def check_serve_dir(obs_dir):
    for name in ("serve.json", "serve_stats.json", "serve_stats.csv",
                 "serve_manifest.json"):
        check(os.path.exists(os.path.join(obs_dir, name)),
              f"missing serve artifact {name}")
    if failures:
        return
    serve = load_json(os.path.join(obs_dir, "serve.json"))
    check_serve_json(serve)
    check_serve_stats(load_json(os.path.join(obs_dir,
                                             "serve_stats.json")),
                      serve)
    check_stats_csv(os.path.join(obs_dir, "serve_stats.csv"))
    check_serve_manifest(load_json(os.path.join(
        obs_dir, "serve_manifest.json")), serve)


def run_serve_check(target):
    """--serve entry point: validate an existing dump directory, or
    run the quickstart binary with --serve into a tempdir first."""
    if os.path.isdir(target):
        check_serve_dir(target)
        return
    with tempfile.TemporaryDirectory(prefix="elsa_serve_") as tmp:
        obs_dir = os.path.join(tmp, "serve")
        result = subprocess.run(
            [target, "--serve", "--obs-dir", obs_dir],
            capture_output=True, text=True, timeout=600)
        check(result.returncode == 0,
              f"quickstart --serve exited {result.returncode}:\n"
              f"{result.stderr[-2000:]}")
        if result.returncode != 0:
            return
        check_serve_dir(obs_dir)


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--serve":
        run_serve_check(sys.argv[2])
        if failures:
            print(f"{len(failures)} check(s) failed")
            return 1
        print("check_metrics: serve artifacts valid")
        return 0
    if len(sys.argv) == 3 and sys.argv[1] == "--bench-results":
        check_bench_results(sys.argv[2])
        if failures:
            print(f"{len(failures)} check(s) failed")
            return 1
        print("check_metrics: bench results file valid")
        return 0
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <quickstart-binary> | "
              f"--bench-results <BENCH_RESULTS.json> | "
              f"--serve <quickstart-binary-or-dir>")
        return 1
    quickstart = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="elsa_obs_") as tmp:
        obs_dir = os.path.join(tmp, "obs")
        env = dict(os.environ, ELSA_PROF="1")
        result = subprocess.run(
            [quickstart, "--obs-dir", obs_dir],
            env=env, capture_output=True, text=True, timeout=600)
        check(result.returncode == 0,
              f"quickstart exited {result.returncode}:\n"
              f"{result.stderr[-2000:]}")
        if result.returncode != 0:
            return 1

        for name in ("stats.json", "stats.csv", "trace.json",
                     "telemetry.json", "spans.json",
                     "manifest.json"):
            check(os.path.exists(os.path.join(obs_dir, name)),
                  f"missing artifact {name}")
        if failures:
            return 1

        stats = load_json(os.path.join(obs_dir, "stats.json"))
        check_stats(stats)
        check_stats_csv(os.path.join(obs_dir, "stats.csv"))
        check_trace(load_json(os.path.join(obs_dir, "trace.json")))
        check_telemetry(load_json(os.path.join(obs_dir,
                                               "telemetry.json")),
                        stats)
        check_spans(load_json(os.path.join(obs_dir, "spans.json")),
                    stats)
        check_manifest(load_json(os.path.join(obs_dir,
                                              "manifest.json")),
                       stats)

    if failures:
        print(f"{len(failures)} check(s) failed")
        return 1
    print("check_metrics: all observability artifacts valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
