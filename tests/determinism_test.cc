/**
 * @file
 * End-to-end determinism tests: every published number in
 * EXPERIMENTS.md must be exactly reproducible from the seeds, so the
 * full stack -- generator, threshold learning, hashing, simulator,
 * energy -- has to be bit-stable run over run and independent of
 * unrelated evaluations interleaved in between.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "elsa/system.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "sim/accelerator.h"
#include "tensor/ops.h"
#include "workload/workload.h"

namespace elsa {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig config;
    config.eval.max_sublayers = 2;
    config.eval.num_eval_inputs = 2;
    config.eval.num_train_inputs = 2;
    config.sim_sublayers = 2;
    config.sim_inputs = 2;
    return config;
}

TEST(DeterminismTest, WorkloadEvaluationBitStable)
{
    WorkloadRunner a({bertLarge(), squadV11()});
    WorkloadRunner b({bertLarge(), squadV11()});
    WorkloadEvalOptions options;
    options.max_sublayers = 3;
    options.num_eval_inputs = 2;
    options.num_train_inputs = 2;
    const WorkloadEvaluation ea = a.evaluate(1.0, options);
    const WorkloadEvaluation eb = b.evaluate(1.0, options);
    EXPECT_DOUBLE_EQ(ea.mean_candidate_fraction,
                     eb.mean_candidate_fraction);
    EXPECT_DOUBLE_EQ(ea.mean_mass_recall, eb.mean_mass_recall);
    EXPECT_DOUBLE_EQ(ea.estimated_loss_pct, eb.estimated_loss_pct);
    EXPECT_EQ(ea.thresholds.size(), eb.thresholds.size());
    for (std::size_t i = 0; i < ea.thresholds.size(); ++i) {
        EXPECT_DOUBLE_EQ(ea.thresholds[i], eb.thresholds[i]);
    }
}

TEST(DeterminismTest, EvaluationUnaffectedByInterleavedWork)
{
    // Running other p values in between must not change a result
    // (no hidden shared RNG state).
    WorkloadRunner a({sasRec(), movieLens1M()});
    WorkloadEvalOptions options;
    options.max_sublayers = 2;
    options.num_eval_inputs = 2;
    const WorkloadEvaluation before = a.evaluate(2.0, options);
    (void)a.evaluate(0.5, options);
    (void)a.evaluate(8.0, options);
    const WorkloadEvaluation after = a.evaluate(2.0, options);
    EXPECT_DOUBLE_EQ(before.mean_candidate_fraction,
                     after.mean_candidate_fraction);
    EXPECT_DOUBLE_EQ(before.mean_mass_recall,
                     after.mean_mass_recall);
}

TEST(DeterminismTest, SimulatorRunBitStable)
{
    WorkloadRunner runner({bert4Rec(), movieLens1M()});
    const auto invocations = runner.simInvocations(1.0, 1, 2);
    ASSERT_FALSE(invocations.empty());
    Rng rng(404);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng, true));
    Accelerator accel(SimConfig::paperConfig(), hasher, kThetaBias64);
    const RunResult r1 =
        accel.run(invocations[0].input, invocations[0].threshold);
    const RunResult r2 =
        accel.run(invocations[0].input, invocations[0].threshold);
    EXPECT_EQ(r1.preprocess_cycles, r2.preprocess_cycles);
    EXPECT_EQ(r1.execute_cycles, r2.execute_cycles);
    EXPECT_EQ(r1.candidates_per_query, r2.candidates_per_query);
    EXPECT_TRUE(r1.output == r2.output);
}

TEST(DeterminismTest, SystemModeReportsBitStable)
{
    ElsaSystem a({bert4Rec(), movieLens1M()}, tinyConfig());
    ElsaSystem b({bert4Rec(), movieLens1M()}, tinyConfig());
    const ModeReport ra = a.evaluateMode(ApproxMode::kModerate);
    const ModeReport rb = b.evaluateMode(ApproxMode::kModerate);
    EXPECT_DOUBLE_EQ(ra.p, rb.p);
    EXPECT_DOUBLE_EQ(ra.candidate_fraction, rb.candidate_fraction);
    EXPECT_DOUBLE_EQ(ra.elsa_ops_per_second, rb.elsa_ops_per_second);
    EXPECT_DOUBLE_EQ(ra.elsa_energy_per_op_uj,
                     rb.elsa_energy_per_op_uj);
    EXPECT_DOUBLE_EQ(ra.throughput_vs_gpu, rb.throughput_vs_gpu);
}

TEST(DeterminismTest, DifferentMasterSeedsChangeResults)
{
    // The flip side: the seed genuinely flows through everything.
    WorkloadRunner a({bertLarge(), race()}, 1);
    WorkloadRunner b({bertLarge(), race()}, 2);
    WorkloadEvalOptions options;
    options.max_sublayers = 2;
    options.num_eval_inputs = 2;
    const WorkloadEvaluation ea = a.evaluate(1.0, options);
    const WorkloadEvaluation eb = b.evaluate(1.0, options);
    EXPECT_NE(ea.mean_mass_recall, eb.mean_mass_recall);
}

} // namespace
} // namespace elsa
