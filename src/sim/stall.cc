#include "sim/stall.h"

#include "common/logging.h"

namespace elsa {

const std::array<StallCause, kNumStallCauses>&
allStallCauses()
{
    static const std::array<StallCause, kNumStallCauses> causes = {
        StallCause::kBusy,         StallCause::kStarved,
        StallCause::kBackpressured, StallCause::kBankConflict,
        StallCause::kDrained,       StallCause::kFaultRetry,
    };
    return causes;
}

const char*
stallCauseName(StallCause cause)
{
    switch (cause) {
    case StallCause::kBusy:
        return "busy";
    case StallCause::kStarved:
        return "starved";
    case StallCause::kBackpressured:
        return "backpressured";
    case StallCause::kBankConflict:
        return "bank conflict";
    case StallCause::kDrained:
        return "drained";
    case StallCause::kFaultRetry:
        return "fault retry";
    }
    ELSA_PANIC("unknown StallCause "
               << static_cast<int>(cause));
}

const char*
stallCauseMetricName(StallCause cause)
{
    switch (cause) {
    case StallCause::kBusy:
        return "busy_cycles";
    case StallCause::kStarved:
        return "starved_cycles";
    case StallCause::kBackpressured:
        return "backpressured_cycles";
    case StallCause::kBankConflict:
        return "bank_conflict_cycles";
    case StallCause::kDrained:
        return "drained_cycles";
    case StallCause::kFaultRetry:
        return "fault_retry_cycles";
    }
    ELSA_PANIC("unknown StallCause "
               << static_cast<int>(cause));
}

const std::array<AttributedModule, kNumAttributedModules>&
allAttributedModules()
{
    static const std::array<AttributedModule, kNumAttributedModules>
        modules = {
            AttributedModule::kHash,
            AttributedModule::kNorm,
            AttributedModule::kCandidateSelection,
            AttributedModule::kArbitration,
            AttributedModule::kAttention,
            AttributedModule::kOutputDivision,
        };
    return modules;
}

const char*
attributedModuleName(AttributedModule module)
{
    switch (module) {
    case AttributedModule::kHash:
        return "hash computation";
    case AttributedModule::kNorm:
        return "norm computation";
    case AttributedModule::kCandidateSelection:
        return "candidate selection";
    case AttributedModule::kArbitration:
        return "arbitration";
    case AttributedModule::kAttention:
        return "attention computation";
    case AttributedModule::kOutputDivision:
        return "output division";
    }
    ELSA_PANIC("unknown AttributedModule "
               << static_cast<int>(module));
}

const char*
attributedModuleMetricName(AttributedModule module)
{
    switch (module) {
    case AttributedModule::kHash:
        return "hash_computation";
    case AttributedModule::kNorm:
        return "norm_computation";
    case AttributedModule::kCandidateSelection:
        return "candidate_selection";
    case AttributedModule::kArbitration:
        return "arbitration";
    case AttributedModule::kAttention:
        return "attention_compute";
    case AttributedModule::kOutputDivision:
        return "output_division";
    }
    ELSA_PANIC("unknown AttributedModule "
               << static_cast<int>(module));
}

std::size_t
attributedModuleLanes(AttributedModule module, const SimConfig& config)
{
    switch (module) {
    case AttributedModule::kHash:
    case AttributedModule::kNorm:
    case AttributedModule::kOutputDivision:
        return 1;
    case AttributedModule::kArbitration:
    case AttributedModule::kAttention:
        return config.pa;
    case AttributedModule::kCandidateSelection:
        return config.pa * config.pc;
    }
    ELSA_PANIC("unknown AttributedModule "
               << static_cast<int>(module));
}

void
StallBreakdown::add(AttributedModule module, StallCause cause,
                    std::uint64_t lane_cycles)
{
    cells_[static_cast<std::size_t>(module)]
          [static_cast<std::size_t>(cause)] += lane_cycles;
}

std::uint64_t
StallBreakdown::get(AttributedModule module, StallCause cause) const
{
    return cells_[static_cast<std::size_t>(module)]
                 [static_cast<std::size_t>(cause)];
}

std::uint64_t
StallBreakdown::laneCycles(AttributedModule module) const
{
    std::uint64_t total = 0;
    for (const std::uint64_t cell :
         cells_[static_cast<std::size_t>(module)]) {
        total += cell;
    }
    return total;
}

double
StallBreakdown::busyFraction(AttributedModule module) const
{
    const std::uint64_t total = laneCycles(module);
    if (total == 0) {
        return 0.0;
    }
    return static_cast<double>(get(module, StallCause::kBusy))
           / static_cast<double>(total);
}

void
StallBreakdown::merge(const StallBreakdown& other)
{
    for (std::size_t m = 0; m < kNumAttributedModules; ++m) {
        for (std::size_t c = 0; c < kNumStallCauses; ++c) {
            cells_[m][c] += other.cells_[m][c];
        }
    }
}

bool
StallBreakdown::empty() const
{
    for (const auto& row : cells_) {
        for (const std::uint64_t cell : row) {
            if (cell != 0) {
                return false;
            }
        }
    }
    return true;
}

bool
StallBreakdown::conserves(std::size_t total_cycles,
                          const SimConfig& config) const
{
    for (const AttributedModule module : allAttributedModules()) {
        const std::uint64_t expected =
            static_cast<std::uint64_t>(
                attributedModuleLanes(module, config))
            * static_cast<std::uint64_t>(total_cycles);
        if (laneCycles(module) != expected) {
            return false;
        }
    }
    return true;
}

} // namespace elsa
