/**
 * @file
 * EXP-EXT2 (extension): error resilience of the quantized ELSA
 * datapath under SRAM/LUT bit flips (docs/ROBUSTNESS.md).
 *
 * The paper's accelerator keeps its whole working set in on-chip
 * SRAM (Section IV-B) with no stated protection. This bench injects
 * deterministic bit flips at a range of bit-error rates into the
 * simulated memories (hash bits, key norms, key/value banks, LUT
 * tables) under three protection models -- none, parity-detect, and
 * SECDED-correct -- and reports how attention fidelity degrades and
 * what the modeled re-fetch recovery costs in cycles.
 */

#include <cstdio>
#include <exception>

#include "bench_common.h"
#include "fault_sweep.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    try {
        const ArgParser args(argc, argv, {"manifest", "quick"});
        bench::printHeader(
            "Extension: error-resilience sweep",
            "Bit flips at BER x protection (none/parity/secded) on "
            "the quantized datapath;\nattention fidelity vs exact, "
            "plus modeled re-fetch stall cycles.");

        const bool quick = args.has("quick");
        const bench::FaultSweepResult result =
            bench::runFaultResilienceSweep(quick);
        std::printf("\n%s",
                    bench::formatFaultSweepTable(result).c_str());
        std::printf(
            "\nParity converts silent corruptions of odd weight into "
            "detected re-fetches\n(cycles, not errors); SECDED "
            "corrects the dominant single-bit class outright.\n");

        obs::RunManifest manifest = bench::makeBenchManifest(
            "ext_fault_sweep", bench::standardSystemConfig());
        manifest.set("config", "quick", quick);
        bench::addFaultSweepMetrics(manifest, result);
        bench::emitBenchSummary(manifest, args);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
