// elsa-lint-pretend: src/sim/bad_metric_name.cc
// Known-bad fixture: metric names that violate the [a-z0-9_.] grammar,
// are undocumented, or are registered at more than one site.
#include "obs/registry.h"

namespace elsa {

void
badMetrics(obs::StatsRegistry& registry, const std::string& prefix)
{
    registry.counter(prefix + ".Bad.CamelCase").increment();     // BAD
    registry.counter(prefix + ".kebab-case").increment();        // BAD
    registry.counter(prefix + ".not.documented.metric").add(1);  // BAD
    registry.counter(prefix + ".cycles.total").add(1);
    registry.counter(prefix + ".cycles.total").add(2);           // BAD
}

} // namespace elsa
