/**
 * @file
 * Tests for the multi-head self-attention layer: weight validation,
 * projection shapes, exact-vs-approximate agreement, and per-head
 * threshold learning.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "attention/multihead.h"
#include "common/rng.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "tensor/ops.h"

namespace elsa {
namespace {

Matrix
randomHidden(std::size_t n, std::size_t hidden, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(n, hidden);
    m.fillGaussian(rng);
    return m;
}

std::shared_ptr<const SrpHasher>
makeHasher()
{
    Rng rng(11);
    return std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng));
}

TEST(MultiHeadWeightsTest, ValidationCatchesShapeErrors)
{
    Rng rng(1);
    MultiHeadAttention layer =
        MultiHeadAttention::makeRandom(128, 2, 64, rng);
    EXPECT_EQ(layer.numHeads(), 2u);
    EXPECT_EQ(layer.hiddenDim(), 128u);
    EXPECT_EQ(layer.headDim(), 64u);

    MultiHeadWeights bad;
    bad.w_query.push_back(Matrix(128, 64));
    bad.w_key.push_back(Matrix(128, 64));
    bad.w_value.push_back(Matrix(128, 32)); // wrong head dim
    bad.w_output = Matrix(64, 128);
    EXPECT_THROW(MultiHeadAttention{std::move(bad)}, Error);

    MultiHeadWeights bad2;
    bad2.w_query.push_back(Matrix(128, 64));
    bad2.w_key.push_back(Matrix(128, 64));
    bad2.w_value.push_back(Matrix(128, 64));
    bad2.w_output = Matrix(32, 128); // wrong rows (heads*d = 64)
    EXPECT_THROW(MultiHeadAttention{std::move(bad2)}, Error);
}

TEST(MultiHeadTest, ProjectionShapes)
{
    Rng rng(2);
    const auto layer = MultiHeadAttention::makeRandom(128, 4, 64, rng);
    const Matrix hidden = randomHidden(16, 128, 3);
    const AttentionInput head = layer.projectHead(hidden, 2);
    EXPECT_EQ(head.n(), 16u);
    EXPECT_EQ(head.d(), 64u);
    EXPECT_NO_THROW(head.validate());
    EXPECT_THROW(layer.projectHead(hidden, 4), Error);
    EXPECT_THROW(layer.projectHead(randomHidden(16, 64, 4), 0), Error);
}

TEST(MultiHeadTest, ProjectionMatchesManualMatmul)
{
    Rng rng(5);
    const auto layer = MultiHeadAttention::makeRandom(96, 2, 64, rng);
    const Matrix hidden = randomHidden(8, 96, 6);
    const AttentionInput head = layer.projectHead(hidden, 1);
    // Row 0 of Q = hidden.row(0) * w_query[1]: spot-check one entry.
    // (We cannot reach the private weights, so check linearity: a
    // doubled input doubles the projection.)
    Matrix doubled = hidden;
    for (std::size_t i = 0; i < doubled.size(); ++i) {
        doubled.data()[i] *= 2.0f;
    }
    const AttentionInput head2 = layer.projectHead(doubled, 1);
    for (std::size_t i = 0; i < head.query.size(); ++i) {
        EXPECT_NEAR(head2.query.data()[i],
                    2.0f * head.query.data()[i], 1e-4);
    }
}

TEST(MultiHeadTest, ForwardOutputShape)
{
    Rng rng(7);
    const auto layer = MultiHeadAttention::makeRandom(128, 4, 64, rng);
    const Matrix hidden = randomHidden(24, 128, 8);
    const MultiHeadResult result = layer.forward(hidden);
    EXPECT_EQ(result.output.rows(), 24u);
    EXPECT_EQ(result.output.cols(), 128u);
}

TEST(MultiHeadTest, ApproxWithAllCandidatesMatchesExact)
{
    Rng rng(9);
    const auto layer = MultiHeadAttention::makeRandom(128, 2, 64, rng);
    const Matrix hidden = randomHidden(32, 128, 10);
    ApproxSelfAttention engine(makeHasher(), kThetaBias64);

    const MultiHeadResult exact = layer.forward(hidden);
    const std::vector<double> all_thresholds(
        2, -std::numeric_limits<double>::infinity());
    const MultiHeadResult approx =
        layer.forwardApprox(hidden, engine, all_thresholds);
    EXPECT_LT(maxAbsDiff(exact.output, approx.output), 1e-3);
    for (const double f : approx.stats.candidate_fraction) {
        EXPECT_DOUBLE_EQ(f, 1.0);
    }
}

TEST(MultiHeadTest, LearnedThresholdsReduceCandidates)
{
    Rng rng(12);
    const auto layer = MultiHeadAttention::makeRandom(128, 2, 64, rng);
    const Matrix train = randomHidden(48, 128, 13);
    const Matrix eval = randomHidden(48, 128, 14);
    ApproxSelfAttention engine(makeHasher(), kThetaBias64);

    std::vector<ThresholdLearner> learners(2, ThresholdLearner(1.0));
    layer.learnThresholds(train, learners);
    std::vector<double> thresholds;
    for (const auto& learner : learners) {
        EXPECT_GT(learner.sampleCount(), 0u);
        thresholds.push_back(learner.threshold());
    }
    const MultiHeadResult result =
        layer.forwardApprox(eval, engine, thresholds);
    EXPECT_LT(result.stats.meanCandidateFraction(), 1.0);
    EXPECT_GT(result.stats.meanCandidateFraction(), 0.0);
}

TEST(MultiHeadTest, MismatchedThresholdCountThrows)
{
    Rng rng(15);
    const auto layer = MultiHeadAttention::makeRandom(128, 4, 64, rng);
    const Matrix hidden = randomHidden(8, 128, 16);
    ApproxSelfAttention engine(makeHasher(), kThetaBias64);
    EXPECT_THROW(layer.forwardApprox(hidden, engine, {0.1}), Error);
    std::vector<ThresholdLearner> learners(2, ThresholdLearner(1.0));
    EXPECT_THROW(layer.learnThresholds(hidden, learners), Error);
}

TEST(MultiHeadStatsTest, MeanFraction)
{
    MultiHeadStats stats;
    EXPECT_DOUBLE_EQ(stats.meanCandidateFraction(), 1.0);
    stats.candidate_fraction = {0.2, 0.4};
    EXPECT_DOUBLE_EQ(stats.meanCandidateFraction(), 0.3);
}

} // namespace
} // namespace elsa
