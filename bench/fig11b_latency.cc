/**
 * @file
 * EXP-F11b: reproduces Fig. 11(b) of the paper -- the average latency
 * of one self-attention operation on the ELSA configurations,
 * normalized to the ideal accelerator, with the preprocessing share
 * (the hatched area of the paper's figure).
 *
 * Paper reference points: ELSA-base ~1.03x the ideal accelerator;
 * conservative / moderate / aggressive at 0.38x / 0.29x / 0.26x; a
 * small preprocessing share everywhere.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/args.h"
#include "elsa/system.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"manifest"});
    bench::printHeader(
        "Fig. 11(b): normalized self-attention latency (ideal = 1)",
        "Per-op latency / ideal-accelerator latency; 'pre' = share "
        "of time in preprocessing.");

    std::printf("\n%-18s %14s %14s %14s %14s\n", "workload",
                "base(pre)", "conserv(pre)", "moderate(pre)",
                "aggress(pre)");

    bench::GeomeanTracker base_g;
    bench::GeomeanTracker cons_g;
    bench::GeomeanTracker mod_g;
    bench::GeomeanTracker agg_g;

    for (const auto& spec : evaluationWorkloads()) {
        ElsaSystem system(spec, bench::standardSystemConfig());
        const auto reports = system.evaluateAllModes();
        std::printf("%-18s", spec.label().c_str());
        for (const auto& report : reports) {
            std::printf("   %5.2fx(%3.0f%%)", report.latency_vs_ideal,
                        100.0 * report.preprocess_fraction);
        }
        std::printf("\n");
        std::fflush(stdout);
        base_g.add(reports[0].latency_vs_ideal);
        cons_g.add(reports[1].latency_vs_ideal);
        mod_g.add(reports[2].latency_vs_ideal);
        agg_g.add(reports[3].latency_vs_ideal);
    }

    std::printf("\n%-18s %8.2fx %13.2fx %13.2fx %13.2fx\n", "geomean",
                base_g.geomean(), cons_g.geomean(), mod_g.geomean(),
                agg_g.geomean());
    std::printf("Paper reference: base 1.03x; cons/mod/agg 0.38x / "
                "0.29x / 0.26x of the ideal accelerator.\n");

    obs::RunManifest manifest = bench::makeBenchManifest(
        "fig11b_latency", bench::standardSystemConfig());
    manifest.set("metrics", "workloads",
                 evaluationWorkloads().size());
    manifest.set("metrics", "latency_vs_ideal_geomean_base",
                 base_g.geomean());
    manifest.set("metrics", "latency_vs_ideal_geomean_conservative",
                 cons_g.geomean());
    manifest.set("metrics", "latency_vs_ideal_geomean_moderate",
                 mod_g.geomean());
    manifest.set("metrics", "latency_vs_ideal_geomean_aggressive",
                 agg_g.geomean());
    bench::emitBenchSummary(manifest, args);
    return 0;
}
