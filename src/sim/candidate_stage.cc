#include "sim/candidate_stage.h"

#include <deque>

#include "common/logging.h"

namespace elsa {

BankQueryTrace
simulateBankQuery(const std::vector<bool>& hits, const SimConfig& config)
{
    const std::size_t pc = config.pc;
    const std::size_t num_keys = hits.size();

    BankQueryTrace trace;
    if (num_keys == 0) {
        return trace;
    }

    // Per-module scan cursor: module m processes bank-local keys
    // m, m + pc, m + 2 pc, ... in order.
    std::vector<std::size_t> cursor(pc, 0);
    std::vector<std::deque<std::uint32_t>> queues(pc);
    // Entries across all queues, maintained incrementally so the
    // occupancy integral costs O(1) per cycle.
    std::size_t occupied = 0;

    auto moduleDone = [&](std::size_t m) {
        return m + cursor[m] * pc >= num_keys;
    };

    std::size_t cycle = 0;
    bool scan_done_recorded = false;
    for (;;) {
        bool all_scanned = true;
        for (std::size_t m = 0; m < pc; ++m) {
            if (!moduleDone(m)) {
                all_scanned = false;
                break;
            }
        }
        if (all_scanned && !scan_done_recorded) {
            trace.scan_done_cycle = cycle;
            scan_done_recorded = true;
        }
        bool queues_empty = true;
        for (const auto& q : queues) {
            if (!q.empty()) {
                queues_empty = false;
                break;
            }
        }
        if (all_scanned && queues_empty) {
            break;
        }
        ++cycle;

        // Arbiter: grant from the longest queue (ties -> lowest
        // module index). The grant frees a slot at the start of the
        // cycle, so a module can refill it in the same cycle.
        std::size_t best = pc;
        std::size_t best_size = 0;
        for (std::size_t m = 0; m < pc; ++m) {
            if (queues[m].size() > best_size) {
                best_size = queues[m].size();
                best = m;
            }
        }
        if (best < pc) {
            trace.grant_order.push_back(queues[best].front());
            queues[best].pop_front();
            --occupied;
        }

        // Candidate selection modules: one key per cycle unless the
        // output queue is full and the key would need a slot. Each
        // module lands in exactly one state per cycle (scan / stall /
        // drained), which is what makes the stall-cause conservation
        // sum exact.
        for (std::size_t m = 0; m < pc; ++m) {
            if (moduleDone(m)) {
                ++trace.drained_module_cycles;
                continue;
            }
            const std::size_t key = m + cursor[m] * pc;
            if (hits[key]) {
                if (queues[m].size() >= config.queue_depth) {
                    ++trace.stall_cycles;
                    continue; // Backpressure: retry next cycle.
                }
                queues[m].push_back(static_cast<std::uint32_t>(key));
                ++occupied;
            }
            ++cursor[m];
            ++trace.scan_cycles;
        }
        // End-of-cycle occupancy feeds the telemetry queue-depth
        // channel; a plain sum keeps the loop allocation-free.
        trace.queue_occupancy_cycles += occupied;
    }
    // The bank is occupied until the scan completed *and* the queues
    // drained, whichever is later.
    trace.cycles = cycle;
    return trace;
}

} // namespace elsa
