#include "lsh/bitvector.h"

#include <cstring>

#include "common/logging.h"

namespace elsa {

HashView::HashView(const HashValue& value)
    : bits_(value.bits()), words_(value.words().data())
{
}

bool
HashView::bit(std::size_t i) const
{
    ELSA_ASSERT(i < bits_, "bit index " << i << " out of " << bits_);
    return (words_[i / 64] >> (i % 64)) & 1;
}

bool
operator==(HashView a, HashView b)
{
    if (a.bits() != b.bits()) {
        return false;
    }
    return std::memcmp(a.words(), b.words(),
                       a.wordCount() * sizeof(std::uint64_t)) == 0;
}

HashValue::HashValue(std::size_t bits)
    : bits_(bits), words_(hashWordCount(bits), 0)
{
}

HashValue::HashValue(std::size_t bits, const std::uint64_t* words)
    : bits_(bits), words_(words, words + hashWordCount(bits))
{
    if (!words_.empty()) {
        words_.back() &= hashTailMask(bits_);
    }
}

void
HashValue::setBit(std::size_t i, bool value)
{
    ELSA_ASSERT(i < bits_, "bit index " << i << " out of " << bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (value) {
        words_[i / 64] |= mask;
    } else {
        words_[i / 64] &= ~mask;
    }
}

bool
HashValue::bit(std::size_t i) const
{
    ELSA_ASSERT(i < bits_, "bit index " << i << " out of " << bits_);
    return (words_[i / 64] >> (i % 64)) & 1;
}

int
HashValue::popcount() const
{
    return HashView(*this).popcount();
}

HashMatrix::HashMatrix(std::size_t rows, std::size_t bits)
    : rows_(rows), bits_(bits), words_per_row_(hashWordCount(bits)),
      words_(rows * words_per_row_, 0)
{
}

const std::uint64_t*
HashMatrix::rowWords(std::size_t r) const
{
    ELSA_ASSERT(r < rows_, "row " << r << " out of " << rows_);
    return words_.data() + r * words_per_row_;
}

std::uint64_t*
HashMatrix::rowWords(std::size_t r)
{
    ELSA_ASSERT(r < rows_, "row " << r << " out of " << rows_);
    return words_.data() + r * words_per_row_;
}

HashView
HashMatrix::row(std::size_t r) const
{
    return HashView(bits_, rowWords(r));
}

HashValue
HashMatrix::rowValue(std::size_t r) const
{
    return HashValue(bits_, rowWords(r));
}

void
HashMatrix::setRow(std::size_t r, HashView value)
{
    ELSA_CHECK(value.bits() == bits_,
               "setRow width mismatch: " << value.bits() << " vs "
                                         << bits_);
    std::memcpy(rowWords(r), value.words(),
                words_per_row_ * sizeof(std::uint64_t));
}

bool
HashMatrix::bit(std::size_t r, std::size_t i) const
{
    ELSA_ASSERT(i < bits_, "bit index " << i << " out of " << bits_);
    return (rowWords(r)[i / 64] >> (i % 64)) & 1;
}

void
HashMatrix::setBit(std::size_t r, std::size_t i, bool value)
{
    ELSA_ASSERT(i < bits_, "bit index " << i << " out of " << bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (value) {
        rowWords(r)[i / 64] |= mask;
    } else {
        rowWords(r)[i / 64] &= ~mask;
    }
}

void
HashMatrix::flipBit(std::size_t r, std::size_t i)
{
    ELSA_ASSERT(i < bits_, "bit index " << i << " out of " << bits_);
    rowWords(r)[i / 64] ^= std::uint64_t{1} << (i % 64);
}

void
copyBits(std::uint64_t* dst, std::size_t dst_bit_offset,
         const std::uint64_t* src, std::size_t bits)
{
    const std::size_t shift = dst_bit_offset % 64;
    std::uint64_t* out = dst + dst_bit_offset / 64;
    const std::size_t src_words = hashWordCount(bits);
    for (std::size_t w = 0; w < src_words; ++w) {
        // The source's own tail bits are zero, so ORing whole shifted
        // words never spills stray bits past `bits`.
        const std::uint64_t word = src[w];
        out[w] |= word << shift;
        if (shift != 0) {
            const std::uint64_t spill = word >> (64 - shift);
            // Touch the next word only when bits actually spill into
            // it; when they do, the destination is wide enough by
            // construction, and when they don't the word may not
            // exist at all (e.g. the tail of the final batch).
            if (spill != 0) {
                out[w + 1] |= spill;
            }
        }
    }
}

} // namespace elsa
