#ifndef ELSA_FIXED_CUSTOM_FLOAT_H_
#define ELSA_FIXED_CUSTOM_FLOAT_H_

/**
 * @file
 * Custom floating-point format of the ELSA datapath (Section IV-E).
 *
 * The output of the exponent unit and all computation downstream of it
 * (the running sum of exponentiated scores, the weighted value
 * accumulation) use a custom floating-point representation with a
 * single sign bit, ten exponent bits, and five fraction bits, to cover
 * the huge dynamic range of e^x. CustomFloat models the format's
 * quantization: values round to the nearest representable number and
 * saturate at the format's limits.
 */

#include <cstdint>

namespace elsa {

/** Parameters of a sign/exponent/fraction custom float format. */
struct CustomFloatFormat
{
    int exponent_bits = 10;
    int fraction_bits = 5;

    /** Exponent bias; follows the IEEE convention 2^(E-1) - 1. */
    int bias() const { return (1 << (exponent_bits - 1)) - 1; }

    /** Largest finite representable magnitude. */
    double maxMagnitude() const;

    /** Smallest positive normal magnitude. */
    double minNormal() const;
};

/** The format used by the ELSA pipeline: 1 sign / 10 exponent / 5 frac. */
inline constexpr CustomFloatFormat kElsaFloatFormat{10, 5};

/**
 * A value held in a custom float format.
 *
 * The value is stored as the already-quantized double, plus the format,
 * so downstream arithmetic can be carried out in double precision and
 * re-quantized at each stage boundary (which is what the hardware's
 * normalize-and-round steps do).
 */
class CustomFloat
{
  public:
    CustomFloat() = default;

    /** Quantize a real value into the given format. */
    static CustomFloat fromReal(double value,
                                const CustomFloatFormat& format
                                = kElsaFloatFormat);

    /** The represented (already quantized) value. */
    double toReal() const { return value_; }

    /** Sum with re-quantization, as the accumulator hardware performs. */
    CustomFloat add(const CustomFloat& other) const;

    /** Product with re-quantization. */
    CustomFloat mul(const CustomFloat& other) const;

    const CustomFloatFormat& format() const { return format_; }

  private:
    double value_ = 0.0;
    CustomFloatFormat format_ = kElsaFloatFormat;
};

/**
 * Quantize a double to the given custom float format (round to
 * nearest, saturate to the largest finite value, flush subnormals
 * to zero, preserve sign).
 */
double quantizeToCustomFloat(double value,
                             const CustomFloatFormat& format
                             = kElsaFloatFormat);

} // namespace elsa

#endif // ELSA_FIXED_CUSTOM_FLOAT_H_
