/**
 * @file
 * Tests for the energy substrate: the Table I database, SRAM sizing
 * formulas, activity counters, and energy integration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "energy/area_power.h"
#include "energy/energy_model.h"

namespace elsa {
namespace {

TEST(AreaPowerTest, TableIValuesTranscribed)
{
    const auto& hash = moduleAreaPower(HwModule::kHashComputation);
    EXPECT_DOUBLE_EQ(hash.area_mm2, 0.202);
    EXPECT_DOUBLE_EQ(hash.dynamic_power_mw, 115.08);
    EXPECT_DOUBLE_EQ(hash.static_power_mw, 2.23);

    const auto& att = moduleAreaPower(HwModule::kAttentionCompute);
    EXPECT_DOUBLE_EQ(att.area_mm2, 0.666);
    EXPECT_DOUBLE_EQ(att.dynamic_power_mw, 566.42);

    const auto& kv = moduleAreaPower(HwModule::kKeyValueMemory);
    EXPECT_TRUE(kv.external);
    const auto& csel = moduleAreaPower(HwModule::kCandidateSelection);
    EXPECT_FALSE(csel.external);
}

TEST(AreaPowerTest, SingleAcceleratorTotalsMatchTableI)
{
    // Table I: ELSA accelerator (1x) = 1.255 mm^2, 956.05 mW dynamic,
    // 13.31 mW static; external memories 0.892 mm^2 / 516.84 / 8.02.
    const AcceleratorAreaPower total = singleAcceleratorAreaPower();
    EXPECT_NEAR(total.core_area_mm2, 1.255, 1e-9);
    EXPECT_NEAR(total.core_dynamic_mw, 956.05, 1e-6);
    EXPECT_NEAR(total.core_static_mw, 13.31, 1e-9);
    EXPECT_NEAR(total.external_area_mm2, 0.892, 1e-9);
    EXPECT_NEAR(total.external_dynamic_mw, 516.84, 1e-6);
    EXPECT_NEAR(total.external_static_mw, 8.02, 1e-9);
    // Peak power of one accelerator ~1.49 W (Section V-D).
    EXPECT_NEAR(total.totalPeakPowerMw(), 1494.22, 0.1);
    // Twelve accelerators ~17.93 W.
    EXPECT_NEAR(12.0 * total.totalPeakPowerMw() / 1000.0, 17.93, 0.05);
    // Area: 12x core ~15.1 mm^2, external ~10.7 mm^2.
    EXPECT_NEAR(12.0 * total.core_area_mm2, 15.06, 0.01);
    EXPECT_NEAR(12.0 * total.external_area_mm2, 10.704, 0.01);
}

TEST(AreaPowerTest, MemorySizingFormulas)
{
    // Section IV-C (3): n = 512, k = 64 -> 4 KB hash, 512 B norms.
    EXPECT_EQ(keyHashMemoryBytes(512, 64), 4096u);
    EXPECT_EQ(keyNormMemoryBytes(512), 512u);
    // 9-bit elements: 512 x 64 x 9 / 8 = 36864 B = 36 KB.
    EXPECT_EQ(matrixMemoryBytes(512, 64), 36864u);
}

TEST(ActivityCountersTest, AddAndMerge)
{
    ActivityCounters a;
    a.add(HwModule::kHashComputation, 100.0);
    a.add(HwModule::kHashComputation, 50.0);
    EXPECT_DOUBLE_EQ(a.get(HwModule::kHashComputation), 150.0);
    EXPECT_DOUBLE_EQ(a.get(HwModule::kOutputDivision), 0.0);

    ActivityCounters b;
    b.add(HwModule::kHashComputation, 25.0);
    b.add(HwModule::kOutputDivision, 10.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get(HwModule::kHashComputation), 175.0);
    EXPECT_DOUBLE_EQ(a.get(HwModule::kOutputDivision), 10.0);
}

TEST(ActivityCountersTest, RejectsNegative)
{
    ActivityCounters a;
    EXPECT_THROW(a.add(HwModule::kNormComputation, -1.0), Error);
}

TEST(EnergyModelTest, StaticOnlyWhenIdle)
{
    const EnergyModel model(1.0);
    const ActivityCounters idle;
    const EnergyBreakdown e = model.compute(idle, 1e6);
    // 1e6 cycles at 1 GHz = 1 ms; static total = 21.33 mW -> 21.33 uJ.
    const AcceleratorAreaPower totals = singleAcceleratorAreaPower();
    const double expected_uj =
        (totals.core_static_mw + totals.external_static_mw) * 1e-3;
    EXPECT_NEAR(e.totalUj(), expected_uj * 1e3, 0.01);
}

TEST(EnergyModelTest, DynamicEnergyScalesWithActivity)
{
    const EnergyModel model(1.0);
    ActivityCounters act;
    act.add(HwModule::kAttentionCompute, 1000.0);
    const EnergyBreakdown e1 = model.compute(act, 0.0);
    act.add(HwModule::kAttentionCompute, 1000.0);
    const EnergyBreakdown e2 = model.compute(act, 0.0);
    EXPECT_NEAR(e2.moduleUj(HwModule::kAttentionCompute),
                2.0 * e1.moduleUj(HwModule::kAttentionCompute), 1e-9);
    // 1000 cycles at 1 ns x 566.42 mW = 566.42 nJ = 0.56642 uJ.
    EXPECT_NEAR(e1.moduleUj(HwModule::kAttentionCompute), 0.56642,
                1e-6);
}

TEST(EnergyModelTest, GroupAccessorsPartitionTotal)
{
    const EnergyModel model(1.0);
    ActivityCounters act;
    for (const HwModule m : allHwModules()) {
        act.add(m, 500.0);
    }
    const EnergyBreakdown e = model.compute(act, 2000.0);
    const double regrouped = e.approximationLogicUj()
                             + e.attentionComputeUj()
                             + e.internalMemoryUj()
                             + e.externalMemoryUj();
    EXPECT_NEAR(regrouped, e.totalUj(), 1e-9);
}

TEST(EnergyModelTest, FrequencyScalesTime)
{
    const EnergyModel slow(0.5);
    EXPECT_DOUBLE_EQ(slow.cyclesToSeconds(5e8), 1.0);
    const EnergyModel fast(2.0);
    EXPECT_DOUBLE_EQ(fast.cyclesToSeconds(2e9), 1.0);
    EXPECT_THROW(EnergyModel(0.0), Error);
}

TEST(PowerScalingTest, PaperConfigIsIdentity)
{
    const PowerScaling scaling =
        PowerScaling::forPipeline(4, 8, 256, 16);
    for (const double f : scaling.factor) {
        EXPECT_DOUBLE_EQ(f, 1.0);
    }
}

TEST(PowerScalingTest, ScalesWithUnitCounts)
{
    const PowerScaling scaling =
        PowerScaling::forPipeline(8, 8, 512, 32);
    auto idx = [](HwModule m) { return static_cast<std::size_t>(m); };
    EXPECT_DOUBLE_EQ(scaling.factor[idx(HwModule::kAttentionCompute)],
                     2.0);
    EXPECT_DOUBLE_EQ(scaling.factor[idx(HwModule::kHashComputation)],
                     2.0);
    EXPECT_DOUBLE_EQ(
        scaling.factor[idx(HwModule::kCandidateSelection)], 2.0);
    EXPECT_DOUBLE_EQ(scaling.factor[idx(HwModule::kOutputDivision)],
                     2.0);
    // SRAM power is capacity-bound: unscaled.
    EXPECT_DOUBLE_EQ(scaling.factor[idx(HwModule::kKeyHashMemory)],
                     1.0);
    EXPECT_THROW(PowerScaling::forPipeline(0, 8, 256, 16), Error);
}

TEST(PowerScalingTest, ScaledModelDoublesDynamicEnergy)
{
    ActivityCounters act;
    act.add(HwModule::kAttentionCompute, 1000.0);
    const EnergyModel plain(1.0);
    const EnergyModel doubled(
        1.0, PowerScaling::forPipeline(8, 8, 256, 16));
    EXPECT_NEAR(
        doubled.compute(act, 0.0).moduleUj(HwModule::kAttentionCompute),
        2.0 * plain.compute(act, 0.0).moduleUj(
                  HwModule::kAttentionCompute),
        1e-9);
}

TEST(EnergyModelTest, BreakdownAccumulation)
{
    EnergyBreakdown total;
    EnergyBreakdown part;
    part.module_uj[0] = 1.0;
    part.module_uj[3] = 2.0;
    total += part;
    total += part;
    EXPECT_DOUBLE_EQ(total.module_uj[0], 2.0);
    EXPECT_DOUBLE_EQ(total.module_uj[3], 4.0);
    EXPECT_DOUBLE_EQ(total.totalUj(), 6.0);
}

} // namespace
} // namespace elsa
