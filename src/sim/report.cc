#include "sim/report.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/span.h"

namespace elsa {

namespace {

std::string
moduleCounterName(const std::string& prefix, HwModule module)
{
    return prefix + "." + hwModuleMetricName(module)
           + ".active_cycles";
}

std::string
stallCounterName(const std::string& prefix, AttributedModule module,
                 const char* field)
{
    std::string name = prefix;
    name += ".stall.";
    name += attributedModuleMetricName(module);
    name += '.';
    name += field;
    return name;
}

/** Emit {count, min, max, p50, p90, p95, p99} for one digest. */
void
writeDigestObject(obs::JsonWriter& w, const obs::QuantileDigest& d)
{
    w.beginObject();
    w.kv("count", d.count());
    if (d.count() > 0) {
        w.kv("min", d.min());
        w.kv("max", d.max());
        w.kv("p50", d.quantile(0.50));
        w.kv("p90", d.quantile(0.90));
        w.kv("p95", d.quantile(0.95));
        w.kv("p99", d.quantile(0.99));
    }
    w.endObject();
}

} // namespace

std::string
spanMetricName(const std::string& prefix, AttributedModule module,
               const char* field)
{
    std::string name = prefix;
    name += ".span.";
    name += attributedModuleMetricName(module);
    name += '.';
    name += field;
    return name;
}

void
publishRunStats(const RunResult& result, obs::StatsRegistry& registry,
                const std::string& prefix)
{
    registry.counter(prefix + ".invocations").increment();
    registry.counter(prefix + ".cycles.preprocess")
        .add(static_cast<double>(result.preprocess_cycles));
    registry.counter(prefix + ".cycles.execute")
        .add(static_cast<double>(result.execute_cycles));
    registry.counter(prefix + ".cycles.total")
        .add(static_cast<double>(result.totalCycles()));

    for (const HwModule module : allHwModules()) {
        registry.counter(moduleCounterName(prefix, module))
            .add(result.activity.get(module));
    }

    registry.counter(prefix + ".candidate.stalls")
        .add(static_cast<double>(result.stall_cycles));
    registry.counter(prefix + ".candidate.fallbacks")
        .add(static_cast<double>(result.empty_selections));
    double selected = 0.0;
    for (const std::size_t c : result.candidates_per_query) {
        selected += static_cast<double>(c);
    }
    registry.counter(prefix + ".candidate.selected").add(selected);
    registry.counter(prefix + ".queries")
        .add(static_cast<double>(result.candidates_per_query.size()));

    if (!result.stall_breakdown.empty()) {
        for (const AttributedModule module : allAttributedModules()) {
            for (const StallCause cause : allStallCauses()) {
                // fault_retry exists only when fault injection ran:
                // with SimConfig::fault disabled the dump stays
                // byte-identical to a build without the fault layer
                // (check_metrics.py treats the counter as optional).
                if (cause == StallCause::kFaultRetry
                    && !result.fault.enabled) {
                    continue;
                }
                registry
                    .counter(stallCounterName(
                        prefix, module, stallCauseMetricName(cause)))
                    .add(static_cast<double>(
                        result.stall_breakdown.get(module, cause)));
            }
            registry
                .counter(
                    stallCounterName(prefix, module, "lane_cycles"))
                .add(static_cast<double>(
                    result.stall_breakdown.laneCycles(module)));
        }
    }

    // Fault and saturation counters are published only when their
    // features ran, so default-config dumps carry no trace of them.
    if (result.fault.enabled) {
        const FaultCounts& counts = result.fault.counts;
        registry.counter(prefix + ".fault.injected")
            .add(static_cast<double>(counts.injected));
        registry.counter(prefix + ".fault.silent")
            .add(static_cast<double>(counts.silent));
        registry.counter(prefix + ".fault.detected")
            .add(static_cast<double>(counts.detected));
        registry.counter(prefix + ".fault.corrected")
            .add(static_cast<double>(counts.corrected));
        registry.counter(prefix + ".fault.retry_events")
            .add(static_cast<double>(counts.retry_events));
        registry.counter(prefix + ".fault.retry_stall_cycles")
            .add(static_cast<double>(result.fault.retry_stall_cycles));
    }
    if (result.saturations_counted) {
        registry.counter(prefix + ".fixed.saturations")
            .add(static_cast<double>(result.fixed_saturations));
        registry.counter(prefix + ".cfloat.saturations")
            .add(static_cast<double>(result.cfloat_saturations));
    }

    if (!result.query_trace.empty()) {
        obs::Distribution& interval =
            registry.distribution(prefix + ".query.interval_cycles");
        // Candidate fraction lives in [0, 1]; stable edges make the
        // histogram comparable across runs of any sequence length.
        obs::Histogram& fraction = registry.histogram(
            prefix + ".query.candidate_fraction",
            obs::Histogram::linear(0.0, 1.0, 10));
        const double n =
            static_cast<double>(result.candidates_per_query.size());
        for (const QueryTraceRecord& r : result.query_trace) {
            interval.add(static_cast<double>(r.interval_cycles));
            fraction.add(static_cast<double>(r.candidates)
                         / std::max(1.0, n));
        }
    }

    // Latency digests ride the telemetry gate: like the fault and
    // saturation families, they appear only when the feature ran so
    // default-config dumps stay byte-identical.
    if (result.telemetry != nullptr) {
        registry.digest(prefix + ".latency.cycles_digest")
            .add(static_cast<double>(result.totalCycles()));
        if (!result.query_trace.empty()) {
            obs::QuantileDigest& interval_digest = registry.digest(
                prefix + ".query.interval_cycles_digest");
            for (const QueryTraceRecord& r : result.query_trace) {
                interval_digest.add(
                    static_cast<double>(r.interval_cycles));
            }
        }
    }

    // Span counters/digests ride the query_spans gate the same way:
    // spans-off dumps stay byte-identical. Totals are exact wall
    // cycles over EVERY query (not just the retained exemplars), so
    // they are what reconciles against the stall.* counters above.
    if (result.spans != nullptr) {
        const obs::QuerySpanSet& spans = *result.spans;
        for (const AttributedModule module : allAttributedModules()) {
            const std::size_t s = static_cast<std::size_t>(module);
            registry
                .counter(
                    spanMetricName(prefix, module, "queue_wait_cycles"))
                .add(static_cast<double>(spans.stageQueueWaitTotal(s)));
            registry
                .counter(
                    spanMetricName(prefix, module, "service_cycles"))
                .add(static_cast<double>(spans.stageServiceTotal(s)));
            registry
                .counter(spanMetricName(prefix, module, "stall_cycles"))
                .add(static_cast<double>(spans.stageStallTotal(s)));
            registry
                .digest(
                    spanMetricName(prefix, module, "queue_wait_digest"))
                .merge(spans.stageQueueWaitDigest(s));
            registry
                .digest(spanMetricName(prefix, module, "service_digest"))
                .merge(spans.stageServiceDigest(s));
            registry
                .digest(spanMetricName(prefix, module, "stall_digest"))
                .merge(spans.stageStallDigest(s));
        }
        registry.digest(prefix + ".span.query.total_cycles_digest")
            .merge(spans.totalDigest());
    }
}

void
writeTelemetryJson(std::ostream& os, const obs::TimeSeries& series,
                   const obs::StatsRegistry& registry,
                   const std::string& prefix,
                   const SimConfig& config,
                   const std::vector<QueryTraceRecord>* query_trace)
{
    const std::size_t num_bins = series.numBins();
    obs::JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.kv("schema_version", static_cast<std::size_t>(1));
    w.kv("prefix", prefix);
    w.kv("bin_width_cycles",
         static_cast<double>(series.binWidth()));
    w.kv("num_bins", num_bins);
    w.kv("total_cycles",
         registry.counterValue(prefix + ".cycles.total"));
    w.kv("invocations",
         registry.counterValue(prefix + ".invocations"));

    // Channel arrays, padded to num_bins so every series plots on
    // one shared time axis.
    w.key("channels").beginObject();
    for (const std::string& name : series.channelNames()) {
        const std::vector<double>& bins = series.channelBins(name);
        w.key(name).beginArray();
        for (std::size_t b = 0; b < num_bins; ++b) {
            w.value(b < bins.size() ? bins[b] : 0.0);
        }
        w.endArray();
    }
    w.endObject();

    // Elapsed cycles per bin: the output division module has exactly
    // one lane, so the sum of its stall-cause channels in a bin is
    // the (invocation-overlaid) cycle coverage of that bin.
    std::vector<double> bin_cycles(num_bins, 0.0);
    for (const std::string& name : series.channelNames()) {
        if (name.rfind("stall.output_division.", 0) != 0) {
            continue;
        }
        const std::vector<double>& bins = series.channelBins(name);
        for (std::size_t b = 0; b < bins.size(); ++b) {
            bin_cycles[b] += bins[b];
        }
    }

    // Per-bin energy through the same model ElsaSystem reports with
    // (unscaled Table I powers at the configured clock).
    const EnergyModel model(config.frequency_ghz);
    w.key("energy").beginObject();
    w.key("bin_total_uj").beginArray();
    for (std::size_t b = 0; b < num_bins; ++b) {
        ActivityCounters bin_activity;
        for (const HwModule module : allHwModules()) {
            std::string ch = "activity.";
            ch += hwModuleMetricName(module);
            if (!series.hasChannel(ch)) {
                continue;
            }
            const std::vector<double>& bins =
                series.channelBins(ch);
            if (b < bins.size()) {
                bin_activity.add(module, bins[b]);
            }
        }
        w.value(model.compute(bin_activity, bin_cycles[b])
                    .totalUj());
    }
    w.endArray();
    w.endObject();

    // Latency digests published under the prefix (report tooling
    // overlays the percentiles on the latency histogram).
    w.key("digests").beginObject();
    for (const std::string& name : registry.names()) {
        if (name.rfind(prefix + ".", 0) != 0
            || registry.kind(name) != obs::MetricKind::kDigest) {
            continue;
        }
        const obs::QuantileDigest d = registry.digestValue(name);
        w.key(name).beginObject();
        w.kv("count", d.count());
        if (d.count() > 0) {
            w.kv("min", d.min());
            w.kv("max", d.max());
            w.kv("p50", d.quantile(0.50));
            w.kv("p90", d.quantile(0.90));
            w.kv("p95", d.quantile(0.95));
            w.kv("p99", d.quantile(0.99));
        }
        w.endObject();
    }
    w.endObject();

    if (query_trace != nullptr && !query_trace->empty()) {
        // Raw intervals for the report's latency histogram; capped
        // so the document stays bounded on long runs.
        constexpr std::size_t kMaxIntervals = 8192;
        const std::size_t count =
            std::min(query_trace->size(), kMaxIntervals);
        w.key("query_intervals").beginArray();
        for (std::size_t i = 0; i < count; ++i) {
            w.value(static_cast<double>(
                (*query_trace)[i].interval_cycles));
        }
        w.endArray();
        w.kv("query_intervals_truncated",
             query_trace->size() > kMaxIntervals);
    }
    w.endObject();
    os << '\n';
}

void
writeSpansJson(std::ostream& os, const obs::QuerySpanSet& spans,
               const std::string& prefix, const SimConfig& config)
{
    ELSA_CHECK(spans.finalized(),
               "writeSpansJson needs a finalized span set");
    obs::JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.kv("schema_version", static_cast<std::size_t>(1));
    w.kv("prefix", prefix);
    w.kv("exemplar_count", config.query_spans.exemplar_count);
    w.kv("num_queries", spans.numQueries());

    w.key("stages").beginArray();
    for (const std::string& name : spans.stageNames()) {
        w.value(name);
    }
    w.endArray();
    w.key("stall_causes").beginArray();
    for (const std::string& name : spans.causeNames()) {
        w.value(name);
    }
    w.endArray();

    // Per-invocation roll-ups: sum(queries) and sum(total_cycles)
    // reconcile against the <prefix>.queries / <prefix>.cycles.total
    // counters of stats.json even when no exemplar survived from an
    // invocation.
    w.key("invocations").beginArray();
    for (const obs::QuerySpanSet::InvocationSummary& inv :
         spans.invocations()) {
        w.beginObject();
        w.kv("invocation", static_cast<std::size_t>(inv.invocation));
        w.kv("queries", static_cast<std::size_t>(inv.queries));
        w.kv("total_cycles",
             static_cast<std::size_t>(inv.total_cycles));
        w.endObject();
    }
    w.endArray();

    // Exact component totals over EVERY query (wall cycles); the
    // reconciliation targets of scripts/check_metrics.py.
    w.key("totals").beginObject();
    for (std::size_t s = 0; s < spans.numStages(); ++s) {
        w.key(spans.stageNames()[s]).beginObject();
        w.kv("queue_wait_cycles",
             static_cast<std::size_t>(spans.stageQueueWaitTotal(s)));
        w.kv("service_cycles",
             static_cast<std::size_t>(spans.stageServiceTotal(s)));
        w.kv("stall_cycles",
             static_cast<std::size_t>(spans.stageStallTotal(s)));
        w.endObject();
    }
    w.endObject();

    w.key("digests").beginObject();
    for (std::size_t s = 0; s < spans.numStages(); ++s) {
        w.key(spans.stageNames()[s]).beginObject();
        w.key("queue_wait");
        writeDigestObject(w, spans.stageQueueWaitDigest(s));
        w.key("service");
        writeDigestObject(w, spans.stageServiceDigest(s));
        w.key("stall");
        writeDigestObject(w, spans.stageStallDigest(s));
        w.endObject();
    }
    w.key("query_total_cycles");
    writeDigestObject(w, spans.totalDigest());
    w.endObject();

    // Retained exemplar records: the K slowest plus one per latency
    // decile, with the full decomposition. Zero stall causes are
    // elided per stage; the component-sum invariant still holds.
    w.key("exemplars").beginArray();
    for (const obs::QuerySpanRecord& r : spans.records()) {
        w.beginObject();
        w.kv("invocation", static_cast<std::size_t>(r.invocation));
        w.kv("query", static_cast<std::size_t>(r.query));
        w.kv("entry_cycle", static_cast<std::size_t>(r.entry_cycle));
        w.kv("exit_cycle", static_cast<std::size_t>(r.exit_cycle));
        w.kv("end_to_end_cycles",
             static_cast<std::size_t>(r.endToEnd()));
        w.kv("critical_bank", static_cast<std::size_t>(r.tag));
        w.kv("slowest", r.slowest_exemplar);
        w.kv("decile", r.decile_exemplar);
        w.key("stages").beginObject();
        for (std::size_t s = 0; s < spans.numStages(); ++s) {
            const obs::StageSpan& stage = r.stages[s];
            w.key(spans.stageNames()[s]).beginObject();
            w.kv("queue_wait",
                 static_cast<std::size_t>(stage.queue_wait));
            w.kv("service", static_cast<std::size_t>(stage.service));
            w.key("stall").beginObject();
            for (std::size_t c = 0; c < spans.numCauses(); ++c) {
                if (stage.stall[c] != 0) {
                    w.kv(spans.causeNames()[c],
                         static_cast<std::size_t>(stage.stall[c]));
                }
            }
            w.endObject();
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

BottleneckReport
writeObsBundle(const std::string& dir,
               const obs::StatsRegistry& registry,
               const RunResult& result, const SimConfig& config,
               obs::RunManifest& manifest, const std::string& prefix)
{
    namespace fs = std::filesystem;
    fs::create_directories(dir);

    {
        std::ofstream stats_json(dir + "/stats.json");
        registry.dumpJson(stats_json);
        std::ofstream stats_csv(dir + "/stats.csv");
        registry.dumpCsv(stats_csv);
    }
    if (result.telemetry != nullptr) {
        std::ofstream telemetry_json(dir + "/telemetry.json");
        writeTelemetryJson(telemetry_json, *result.telemetry,
                           registry, prefix, config,
                           &result.query_trace);
    }
    if (result.spans != nullptr) {
        std::ofstream spans_json(dir + "/spans.json");
        writeSpansJson(spans_json, *result.spans, prefix, config);
    }

    manifest.set("metrics", "total_cycles", result.totalCycles());
    manifest.set("metrics", "preprocess_cycles",
                 result.preprocess_cycles);
    manifest.set("metrics", "execute_cycles", result.execute_cycles);
    manifest.set("metrics", "candidate_fraction",
                 result.candidateFraction());
    manifest.set("metrics", "fallbacks", result.empty_selections);
    const UtilizationReport util = computeUtilization(result);
    for (const HwModule module : allHwModules()) {
        manifest.set("utilization", hwModuleMetricName(module),
                     util.get(module));
    }
    const BottleneckReport bottleneck = computeBottleneck(result);
    manifest.set("bottleneck", "limiting_module",
                 attributedModuleMetricName(bottleneck.limiting));
    manifest.set("bottleneck", "busy_fraction",
                 bottleneck.busy_fraction);
    manifest.set("bottleneck", "headroom", bottleneck.headroom);
    for (const AttributedModule module : allAttributedModules()) {
        manifest.set("bottleneck",
                     std::string("busy_fraction_")
                         + attributedModuleMetricName(module),
                     bottleneck.module_busy_fraction[static_cast<
                         std::size_t>(module)]);
    }
    manifest.writeFile(dir + "/manifest.json");
    return bottleneck;
}

UtilizationReport
computeUtilization(const RunResult& result)
{
    obs::StatsRegistry scratch;
    publishRunStats(result, scratch, "run");
    return utilizationFromRegistry(scratch, "run");
}

UtilizationReport
utilizationFromRegistry(const obs::StatsRegistry& registry,
                        const std::string& prefix)
{
    UtilizationReport report;
    const double total =
        registry.counterValue(prefix + ".cycles.total");
    if (total <= 0.0) {
        return report;
    }
    std::size_t i = 0;
    for (const HwModule module : allHwModules()) {
        const double active =
            registry.counterValue(moduleCounterName(prefix, module));
        report.utilization[i++] = std::min(1.0, active / total);
    }
    return report;
}

std::string
formatUtilization(const UtilizationReport& report)
{
    std::ostringstream oss;
    for (const HwModule module : allHwModules()) {
        oss << "  " << moduleAreaPower(module).name << ": ";
        const double pct = 100.0 * report.get(module);
        oss << pct << "%\n";
    }
    return oss.str();
}

BottleneckReport
computeBottleneck(const StallBreakdown& breakdown)
{
    BottleneckReport report;
    if (breakdown.empty()) {
        return report;
    }
    report.valid = true;
    double best = -1.0;
    for (const AttributedModule module : allAttributedModules()) {
        const std::size_t m = static_cast<std::size_t>(module);
        const double busy = breakdown.busyFraction(module);
        report.module_busy_fraction[m] = busy;
        if (busy > best) {
            best = busy;
            report.limiting = module;
        }
        std::uint64_t worst_idle = 0;
        StallCause dominant = StallCause::kStarved;
        for (const StallCause cause : allStallCauses()) {
            if (cause == StallCause::kBusy) {
                continue;
            }
            const std::uint64_t idle = breakdown.get(module, cause);
            if (idle > worst_idle) {
                worst_idle = idle;
                dominant = cause;
            }
        }
        report.dominant_idle_cause[m] = dominant;
    }
    report.busy_fraction = best;
    report.headroom = 1.0 - best;
    return report;
}

BottleneckReport
computeBottleneck(const RunResult& result)
{
    return computeBottleneck(result.stall_breakdown);
}

std::string
formatBottleneckReport(const BottleneckReport& report)
{
    std::ostringstream oss;
    if (!report.valid) {
        oss << "no stall attribution data (enable "
               "SimConfig::attribute_stalls)\n";
        return oss.str();
    }
    oss << "limiting module: "
        << attributedModuleName(report.limiting) << " ("
        << 100.0 * report.busy_fraction << "% busy, "
        << 100.0 * report.headroom << "% headroom)\n";
    for (const AttributedModule module : allAttributedModules()) {
        const std::size_t m = static_cast<std::size_t>(module);
        oss << "  " << attributedModuleName(module) << ": "
            << 100.0 * report.module_busy_fraction[m]
            << "% busy, idles mostly "
            << stallCauseName(report.dominant_idle_cause[m]) << "\n";
    }
    return oss.str();
}

void
writeQueryTraceCsv(std::ostream& os,
                   const std::vector<QueryTraceRecord>& records)
{
    os << "query,interval_cycles,max_bank_cycles,candidates,"
          "stall_cycles,used_fallback\n";
    for (const auto& r : records) {
        os << r.query_id << ',' << r.interval_cycles << ','
           << r.max_bank_cycles << ',' << r.candidates << ','
           << r.stall_cycles << ',' << (r.used_fallback ? 1 : 0)
           << '\n';
    }
}

QueryTraceSummary
summarizeQueryTrace(const std::vector<QueryTraceRecord>& records)
{
    QueryTraceSummary summary;
    if (records.empty()) {
        return summary;
    }
    double interval_sum = 0.0;
    double candidate_sum = 0.0;
    for (const auto& r : records) {
        interval_sum += static_cast<double>(r.interval_cycles);
        candidate_sum += static_cast<double>(r.candidates);
        summary.max_interval =
            std::max(summary.max_interval, r.interval_cycles);
        summary.total_stalls += r.stall_cycles;
        summary.fallbacks += r.used_fallback ? 1 : 0;
    }
    const double count = static_cast<double>(records.size());
    summary.mean_interval = interval_sum / count;
    summary.mean_candidates = candidate_sum / count;
    return summary;
}

} // namespace elsa
