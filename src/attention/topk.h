#ifndef ELSA_ATTENTION_TOPK_H_
#define ELSA_ATTENTION_TOPK_H_

/**
 * @file
 * Top-k candidate selection -- the alternative Section III-E rejects.
 *
 * Instead of comparing approximate similarities against a threshold,
 * one could sort them and keep the top-scoring k' keys per query.
 * The paper dismisses this because sorting is O(n log n) and hard to
 * implement in hardware at line rate; this module implements it
 * anyway so the repository can quantify the *quality* difference at
 * equal candidate budgets (bench/ablation_topk_vs_threshold) and the
 * cost difference, demonstrating that the threshold scheme loses
 * little quality while being a single compare per key.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "attention/approx.h"
#include "attention/exact.h"
#include "lsh/srp.h"
#include "tensor/matrix.h"

namespace elsa {

/** Candidate lists from top-k selection over approximate scores. */
class TopKSelector
{
  public:
    /**
     * @param engine Approximate-attention engine providing the
     *               hashes / cosine LUT (shared with the threshold
     *               scheme so both see identical estimates).
     */
    explicit TopKSelector(const ApproxSelfAttention& engine);

    /**
     * Per-query top-k candidate lists by approximate similarity
     * (ties broken towards lower key ids).
     *
     * @param input Q/K/V matrices.
     * @param k     Candidates kept per query (>= 1; capped at n).
     */
    std::vector<std::vector<std::uint32_t>>
    select(const AttentionInput& input, std::size_t k) const;

    /**
     * Per-query top-k candidate lists using the EXACT scores (an
     * oracle: the best any selection scheme limited to k keys can
     * do). Used as the quality upper bound in the ablation.
     */
    static std::vector<std::vector<std::uint32_t>>
    selectOracle(const AttentionInput& input, std::size_t k);

    /**
     * Comparison operations a hardware sorter would need per query
     * for a full sort: n log2 n (Section III-E's complexity
     * argument); the threshold scheme needs exactly n compares.
     */
    static double sortOpsPerQuery(std::size_t n);

  private:
    const ApproxSelfAttention& engine_;
};

} // namespace elsa

#endif // ELSA_ATTENTION_TOPK_H_
