#ifndef ELSA_WORKLOAD_GENERATOR_H_
#define ELSA_WORKLOAD_GENERATOR_H_

/**
 * @file
 * Synthetic Q/K/V generator.
 *
 * Stands in for the pretrained models' attention inputs (see
 * DESIGN.md). The generator reproduces the properties of real
 * attention that the ELSA approximation interacts with:
 *
 *  - the softmax concentrates most of its mass on a few keys per
 *    query (each query is *planted* to attend a small relevant set);
 *  - different (sub-)layers have different score distributions
 *    (concentration and relevant-set size vary with the layer/head
 *    index), so layer-specific thresholds genuinely differ;
 *  - key norms vary across keys (exercising the ||K|| factor of the
 *    approximate similarity);
 *  - NLP-style locality: relevant keys are biased towards positions
 *    near the query.
 *
 * Everything is deterministic given the (model, layer, head,
 * input_id) coordinates and a master seed.
 */

#include <cstddef>
#include <cstdint>

#include "attention/exact.h"
#include "workload/model.h"

namespace elsa {

class Rng;

/** Per-(sub-)layer attention statistics the generator synthesizes. */
struct SublayerProfile
{
    /** Score magnitude of the planted relevant keys (softmax "peakiness"). */
    double concentration = 8.0;

    /** Mean number of truly relevant keys per query. */
    double mean_relevant = 4.0;

    /** Strength of the locality bias (0 = none). */
    double locality = 0.5;

    /** Mean key norm (chosen to fit the S5.3 input range). */
    double key_norm_mean = 4.0;

    /** Relative spread of key norms. */
    double key_norm_spread = 0.25;

    /**
     * Strength of the shared context direction mixed into every key
     * (real transformer embeddings are anisotropic: they live in a
     * narrow cone, which produces a continuum of moderate
     * query-key similarities rather than pure noise).
     */
    double key_context = 0.5;

    /** Strength of the shared context direction in the queries. */
    double query_context = 0.5;

    /**
     * Final query scale; sets the softmax temperature (smaller =
     * flatter attention).
     */
    double temperature = 0.55;

    /** Isotropic query noise coefficient. */
    double noise = 0.2;

    /**
     * Exponent shaping the per-key context affinity: affinity ~
     * u^context_decay. 1 = uniform density; larger values thin the
     * upper similarity continuum (fewer borderline keys near the
     * selection threshold).
     */
    double context_decay = 1.0;
};

/**
 * The profile of a given (layer, head) in a model: a deterministic
 * function of the coordinates that makes early/late layers and
 * different heads behave differently, like real transformer heads do.
 */
SublayerProfile sublayerProfile(const ModelConfig& model,
                                std::size_t layer, std::size_t head);

/** Generates synthetic attention inputs for a model. */
class QkvGenerator
{
  public:
    /**
     * @param model       The model whose attention inputs to imitate.
     * @param master_seed Seed from which every (layer, head, input)
     *                    stream is derived.
     */
    QkvGenerator(ModelConfig model, std::uint64_t master_seed);

    /**
     * Generate the Q/K/V of one self-attention invocation.
     *
     * @param layer    Layer index in [0, model.num_layers).
     * @param head     Head index in [0, model.num_heads).
     * @param n_real   Number of real (non-padding) tokens; the
     *                 returned matrices have exactly n_real rows.
     * @param input_id Which input sample this is; different ids give
     *                 independent inputs.
     */
    AttentionInput generate(std::size_t layer, std::size_t head,
                            std::size_t n_real,
                            std::uint64_t input_id) const;

    /**
     * Generate with an explicit profile instead of the model's
     * (layer, head) profile. The stream is still derived from
     * (layer, head, input_id).
     */
    AttentionInput generateWithProfile(const SublayerProfile& profile,
                                       std::size_t layer,
                                       std::size_t head,
                                       std::size_t n_real,
                                       std::uint64_t input_id) const;

    const ModelConfig& model() const { return model_; }

  private:
    ModelConfig model_;
    std::uint64_t master_seed_;
};

/**
 * Sample a real-token count from the dataset's length distribution
 * (Gaussian, clamped to [min_tokens, max_tokens]).
 */
std::size_t sampleSequenceLength(const DatasetSpec& dataset, Rng& rng);

} // namespace elsa

#endif // ELSA_WORKLOAD_GENERATOR_H_
