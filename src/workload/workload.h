#ifndef ELSA_WORKLOAD_WORKLOAD_H_
#define ELSA_WORKLOAD_WORKLOAD_H_

/**
 * @file
 * WorkloadRunner: end-to-end driver of one model-dataset pair.
 *
 * Mirrors the paper's methodology (Sections III-E and V-B):
 *  - learn per-(sub-)layer thresholds from a training set for a
 *    given approximation hyperparameter p;
 *  - evaluate candidate fractions, attention-mass recall, and the
 *    accuracy-loss proxy on an evaluation set;
 *  - pick p per mode (conservative / moderate / aggressive) as the
 *    largest p whose estimated loss stays within the mode's bound.
 *
 * A full BERT-large pass has 24 x 16 = 384 (sub-)layers; evaluating
 * each on every input is unnecessary for the statistics we report, so
 * the runner evaluates an evenly spaced subsample of sublayers
 * (configurable; the profiles vary smoothly across the stack, so the
 * subsample is representative).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "attention/approx.h"
#include "attention/threshold.h"
#include "workload/accuracy.h"
#include "workload/generator.h"
#include "workload/model.h"

namespace elsa {

/** A (layer, head) coordinate. */
struct SublayerCoord
{
    std::size_t layer = 0;
    std::size_t head = 0;
};

/** Knobs of a workload evaluation run. */
struct WorkloadEvalOptions
{
    /** Training inputs used per sublayer for threshold learning. */
    std::size_t num_train_inputs = 3;

    /** Evaluation inputs per sublayer. */
    std::size_t num_eval_inputs = 3;

    /** Sublayers sampled from the model (evenly spaced). */
    std::size_t max_sublayers = 8;
};

/** Aggregate result of evaluating one workload at one p. */
struct WorkloadEvaluation
{
    double p = 0.0;
    double mean_candidate_fraction = 1.0;
    double mean_mass_recall = 1.0;
    double worst_mass_recall = 1.0;
    double mean_output_error = 0.0;
    double estimated_loss_pct = 0.0;
    /** Mean real-token count of the evaluation inputs. */
    double mean_real_tokens = 0.0;
    /** Learned thresholds of the sampled sublayers. */
    std::vector<double> thresholds;
};

/** One attention invocation plus its learned threshold, for the
 *  simulator and the benchmarks. */
struct SimInvocation
{
    SublayerCoord coord;
    AttentionInput input;
    double threshold = 0.0;
    std::size_t n_real = 0;
    std::size_t n_padded = 0;
};

/** Driver of one model-dataset workload. */
class WorkloadRunner
{
  public:
    /**
     * @param spec Model-dataset pair to run.
     * @param seed Master seed; every stream (inputs, lengths, hash
     *             matrices) derives from it.
     */
    WorkloadRunner(WorkloadSpec spec, std::uint64_t seed = 0x5eed);

    const WorkloadSpec& spec() const { return spec_; }

    /** The shared approximate-attention engine (Kronecker hasher). */
    const ApproxSelfAttention& engine() const { return *engine_; }

    /** Evenly spaced sublayer subsample of size <= max_count. */
    std::vector<SublayerCoord>
    representativeSublayers(std::size_t max_count) const;

    /**
     * Learn thresholds on the training stream and evaluate fidelity
     * on the evaluation stream for a given p.
     */
    WorkloadEvaluation evaluate(double p,
                                const WorkloadEvalOptions& options = {})
        const;

    /**
     * Choose p for an operating mode: the largest value from the
     * standard grid {0.5, 1, 2, 3, 4, 6, 8} whose estimated accuracy
     * loss stays within the mode's bound. Base mode returns 0.
     */
    double choosePForMode(ApproxMode mode,
                          const WorkloadEvalOptions& options = {}) const;

    /**
     * Materialize invocations (inputs + learned thresholds) for the
     * cycle-level simulator.
     *
     * @param p           Approximation hyperparameter (0 = exact).
     * @param num_inputs  Evaluation inputs to draw.
     * @param max_sublayers Sublayer subsample size.
     */
    std::vector<SimInvocation>
    simInvocations(double p, std::size_t num_inputs,
                   std::size_t max_sublayers,
                   const WorkloadEvalOptions& options = {}) const;

    /** Sequence length of evaluation input input_id (deterministic). */
    std::size_t evalLength(std::uint64_t input_id) const;

    /** Sequence length of training input input_id (deterministic). */
    std::size_t trainLength(std::uint64_t input_id) const;

    /** The standard p grid used by choosePForMode and Fig. 10. */
    static const std::vector<double>& standardPGrid();

  private:
    /** Learn one sublayer's threshold from the training stream. */
    double learnThreshold(const SublayerCoord& coord, double p,
                          std::size_t num_train_inputs) const;

    WorkloadSpec spec_;
    std::uint64_t seed_;
    QkvGenerator generator_;
    std::shared_ptr<const SrpHasher> hasher_;
    std::unique_ptr<ApproxSelfAttention> engine_;
};

} // namespace elsa

#endif // ELSA_WORKLOAD_WORKLOAD_H_
