#include "attention/topk.h"

#include <algorithm>
#include <cmath>

#include "lsh/bitvector.h"
#include "lsh/candidates.h"
#include "tensor/ops.h"

namespace elsa {

namespace {

/** Indices of the k largest scores (ties to the lower index). */
std::vector<std::uint32_t>
topIndices(const std::vector<double>& scores, std::size_t k)
{
    std::vector<std::uint32_t> order(scores.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<std::uint32_t>(i);
    }
    const std::size_t keep = std::min(k, order.size());
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          if (scores[a] != scores[b]) {
                              return scores[a] > scores[b];
                          }
                          return a < b;
                      });
    order.resize(keep);
    std::sort(order.begin(), order.end());
    return order;
}

} // namespace

TopKSelector::TopKSelector(const ApproxSelfAttention& engine)
    : engine_(engine)
{
}

std::vector<std::vector<std::uint32_t>>
TopKSelector::select(const AttentionInput& input, std::size_t k) const
{
    input.validate();
    ELSA_CHECK(k >= 1, "top-k needs k >= 1");
    const KeyPreprocessing prep = engine_.preprocessKeys(input.key);
    const auto hasher = engine_.hasher();
    const CosineLut& lut = engine_.cosineLut();

    const HashMatrix query_hashes = hasher->hashMatrix(input.query);
    std::vector<std::vector<std::uint32_t>> out(input.n());
    std::vector<double> sims(input.n());
    for (std::size_t i = 0; i < input.n(); ++i) {
        approximateSimilarities(query_hashes[i], prep.hashes, prep.norms,
                                lut, 0, input.n(), sims.data());
        out[i] = topIndices(sims, k);
    }
    return out;
}

std::vector<std::vector<std::uint32_t>>
TopKSelector::selectOracle(const AttentionInput& input, std::size_t k)
{
    input.validate();
    ELSA_CHECK(k >= 1, "top-k needs k >= 1");
    std::vector<std::vector<std::uint32_t>> out(input.n());
    std::vector<double> scores(input.n());
    for (std::size_t i = 0; i < input.n(); ++i) {
        const float* q = input.query.row(i);
        for (std::size_t j = 0; j < input.n(); ++j) {
            scores[j] = dot(q, input.key.row(j), input.d());
        }
        out[i] = topIndices(scores, k);
    }
    return out;
}

double
TopKSelector::sortOpsPerQuery(std::size_t n)
{
    const double nn = static_cast<double>(n);
    return nn * std::log2(std::max(nn, 2.0));
}

} // namespace elsa
