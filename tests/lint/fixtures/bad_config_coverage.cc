// elsa-lint-pretend: src/sim/bad_config_coverage.cc
// Known-bad fixture: config structs that escape validation
// coverage in each of the three ways the rule can fire.
#include "common/logging.h"

namespace elsa {

struct OrphanConfig  // BAD: no validate() anywhere
{
    int depth = 4;
};

struct PartialConfig
{
    int queue_depth = 8;
    int unchecked_limit = 0;    // BAD: unchecked and untested
    int fixture_only_knob = 1;  // BAD: no negative-path test
    void validate() const;
};

void
PartialConfig::validate() const
{
    ELSA_CHECK(queue_depth > 0, "queue_depth must be positive");
    ELSA_CHECK(fixture_only_knob > 0,
               "fixture_only_knob must be positive");
}

} // namespace elsa
