#ifndef ELSA_BENCH_BENCH_COMMON_H_
#define ELSA_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Every bench prints a self-describing table: the paper artifact it
 * regenerates, the workloads/parameters, and the measured series.
 * EXPERIMENTS.md records the paper-vs-measured comparison.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/stats.h"
#include "elsa/system.h"
#include "obs/manifest.h"
#include "workload/model.h"

namespace elsa::bench {

/** Print the standard bench header. */
inline void
printHeader(const char* artifact, const char* description)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("ELSA reproduction | %s\n", artifact);
    std::printf("%s\n", description);
    std::printf("================================================="
                "=============================\n");
}

/** The evaluation settings shared by the Fig. 11 / Fig. 13 benches. */
inline SystemConfig
standardSystemConfig()
{
    SystemConfig config;
    config.eval.max_sublayers = 6;
    config.eval.num_eval_inputs = 3;
    config.eval.num_train_inputs = 3;
    config.sim_sublayers = 6;
    config.sim_inputs = 6;
    return config;
}

/**
 * Run manifest pre-filled with build provenance and the evaluation
 * configuration; the bench adds its headline numbers to the
 * "metrics" section and hands it to emitBenchSummary().
 */
inline obs::RunManifest
makeBenchManifest(const char* artifact, const SystemConfig& config,
                  std::uint64_t seed = 0x5eed)
{
    obs::RunManifest manifest(artifact);
    manifest.addBuildInfo();
    manifest.set("config", "seed", static_cast<std::size_t>(seed));
    manifest.set("config", "d", config.sim.d);
    manifest.set("config", "k", config.sim.k);
    manifest.set("config", "pa", config.sim.pa);
    manifest.set("config", "pc", config.sim.pc);
    manifest.set("config", "mh", config.sim.mh);
    manifest.set("config", "mo", config.sim.mo);
    manifest.set("config", "frequency_ghz",
                 config.sim.frequency_ghz);
    manifest.set("config", "num_accelerators",
                 config.num_accelerators);
    manifest.set("config", "sim_inputs", config.sim_inputs);
    manifest.set("config", "sim_sublayers", config.sim_sublayers);
    return manifest;
}

/**
 * Emit the machine-readable run summary: one `BENCH_JSON {...}` line
 * on stdout. This is the single emission point for the format -- the
 * elsa_bench driver and scripts/bench_compare.py parse these lines,
 * so no bench may print its own variant.
 */
inline void
emitBenchSummary(const obs::RunManifest& manifest)
{
    std::printf("BENCH_JSON %s\n",
                manifest.toJson(/*pretty=*/false).c_str());
}

/**
 * emitBenchSummary() plus, when the bench was invoked with
 * --manifest <path>, the same single-line JSON written to that file
 * (the BENCH_*.json format).
 */
inline void
emitBenchSummary(const obs::RunManifest& manifest,
                 const ArgParser& args)
{
    emitBenchSummary(manifest);
    if (args.has("manifest")) {
        manifest.writeFile(args.get("manifest"), /*pretty=*/false);
    }
}

/** Collects per-workload values and reports the geometric mean. */
class GeomeanTracker
{
  public:
    void
    add(double value)
    {
        values_.push_back(value);
    }

    double
    geomean() const
    {
        return values_.empty() ? 0.0 : elsa::geomean(values_);
    }

  private:
    std::vector<double> values_;
};

} // namespace elsa::bench

#endif // ELSA_BENCH_BENCH_COMMON_H_
