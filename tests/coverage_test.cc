/**
 * @file
 * Coverage tests for smaller API surfaces not exercised elsewhere:
 * mode-selection on the runner, window-edge cases, layer-construction
 * errors, GPU-model argument validation, and facade odds and ends.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "attention/blocked.h"
#include "attention/multihead.h"
#include "baselines/gpu_model.h"
#include "common/rng.h"
#include "elsa/elsa.h"
#include "sim/pipeline_model.h"
#include "workload/workload.h"

namespace elsa {
namespace {

TEST(RunnerModeSelectionTest, ChoosesLargerPForLooserBounds)
{
    WorkloadRunner runner({bert4Rec(), movieLens1M()});
    WorkloadEvalOptions options;
    options.max_sublayers = 2;
    options.num_eval_inputs = 2;
    options.num_train_inputs = 2;
    const double base = runner.choosePForMode(ApproxMode::kBase,
                                              options);
    const double cons =
        runner.choosePForMode(ApproxMode::kConservative, options);
    const double agg =
        runner.choosePForMode(ApproxMode::kAggressive, options);
    EXPECT_DOUBLE_EQ(base, 0.0);
    EXPECT_GE(agg, cons);
    EXPECT_GT(agg, 0.0);
}

TEST(BlockedWindowEdgeTest, ExactMultipleProducesEqualWindows)
{
    BlockedSelfAttention blocked({128});
    const auto ranges = blocked.windows(256);
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[1].second, 256u);
    EXPECT_THROW(blocked.windows(0), Error);
}

TEST(MultiHeadConstructionTest, RejectsZeroDimensions)
{
    Rng rng(1);
    EXPECT_THROW(MultiHeadAttention::makeRandom(0, 2, 64, rng), Error);
    EXPECT_THROW(MultiHeadAttention::makeRandom(128, 0, 64, rng),
                 Error);
    EXPECT_THROW(MultiHeadAttention::makeRandom(128, 2, 0, rng),
                 Error);
}

TEST(GpuModelValidationTest, RejectsNonPositiveScales)
{
    const GpuModel gpu;
    EXPECT_THROW(gpu.layerRuntime(bertLarge(), 384, 0.0, 1.0), Error);
    EXPECT_THROW(gpu.layerRuntime(bertLarge(), 384, 1.0, -1.0),
                 Error);
}

TEST(GpuModelValidationTest, LayerRuntimeComponentsPositive)
{
    const GpuModel gpu;
    const LayerRuntime rt = gpu.layerRuntime(sasRec(), 200);
    EXPECT_GT(rt.attention_s, 0.0);
    EXPECT_GT(rt.projection_s, 0.0);
    EXPECT_GT(rt.ffn_s, 0.0);
    EXPECT_NEAR(rt.total(),
                rt.attention_s + rt.projection_s + rt.ffn_s, 1e-18);
}

TEST(FacadeEdgeTest, ExactAttentionMatchesFreeFunction)
{
    Rng rng(3);
    Matrix q(8, 64);
    Matrix k(8, 64);
    Matrix v(8, 64);
    q.fillGaussian(rng);
    k.fillGaussian(rng);
    v.fillGaussian(rng);
    Elsa engine(64);
    const Matrix a = engine.attention(q, k, v);
    const Matrix b = exactAttention(AttentionInput{q, k, v});
    EXPECT_TRUE(a == b);
}

TEST(PipelineModelEdgeTest, SingleFactorHashIsDenseCost)
{
    // One "Kronecker factor" degenerates to the dense d x d product.
    EXPECT_EQ(hashMultiplications(64, 1), 64u * 64u);
    EXPECT_THROW(hashMultiplications(63, 3), Error);
}

TEST(WorkloadSpecTest, LabelFormat)
{
    const WorkloadSpec spec{bertLarge(), race()};
    EXPECT_EQ(spec.label(), "BERT/RACE");
}

TEST(StandardPGridTest, SortedAndPositive)
{
    const auto& grid = WorkloadRunner::standardPGrid();
    ASSERT_FALSE(grid.empty());
    for (std::size_t i = 1; i < grid.size(); ++i) {
        EXPECT_GT(grid[i], grid[i - 1]);
    }
    EXPECT_GT(grid.front(), 0.0);
}

} // namespace
} // namespace elsa
