#include "tensor/matrix.h"

#include "common/rng.h"

namespace elsa {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    ELSA_CHECK(data_.size() == rows * cols,
               "matrix data size " << data_.size() << " != " << rows << "x"
                                   << cols);
}

void
Matrix::fill(float value)
{
    for (auto& v : data_) {
        v = value;
    }
}

void
Matrix::fillGaussian(Rng& rng, float mean, float stddev)
{
    for (auto& v : data_) {
        v = static_cast<float>(rng.gaussian(mean, stddev));
    }
}

bool
Matrix::operator==(const Matrix& other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_
           && data_ == other.data_;
}

} // namespace elsa
