#ifndef ELSA_BASELINES_IDEAL_H_
#define ELSA_BASELINES_IDEAL_H_

/**
 * @file
 * The "ideal" accelerator of Section V-C: sustains 100% of its peak
 * FP throughput at 1 GHz with the same number of multipliers as one
 * ELSA-base accelerator (528 = 4 attention modules x 2 x 64
 * multipliers + 16 division multipliers). It performs no
 * approximation and no preprocessing, and -- like ELSA -- skips
 * padded rows. This is an upper bound for any matrix-multiplication
 * accelerator without approximation.
 */

#include <cstddef>

namespace elsa {

/** Analytic ideal-accelerator model. */
class IdealAccelerator
{
  public:
    /**
     * @param num_multipliers Multiplier budget (528 to match ELSA).
     * @param frequency_ghz   Clock (1 GHz in the paper).
     */
    explicit IdealAccelerator(std::size_t num_multipliers = 528,
                              double frequency_ghz = 1.0);

    /** Cycles for one self-attention op over n real tokens. */
    double cyclesPerOp(std::size_t n, std::size_t d) const;

    /** Seconds for one self-attention op. */
    double secondsPerOp(std::size_t n, std::size_t d) const;

    std::size_t numMultipliers() const { return num_multipliers_; }

  private:
    std::size_t num_multipliers_;
    double frequency_ghz_;
};

} // namespace elsa

#endif // ELSA_BASELINES_IDEAL_H_
