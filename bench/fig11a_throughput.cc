/**
 * @file
 * EXP-F11a: reproduces Fig. 11(a) of the paper -- normalized
 * self-attention throughput of the twelve-accelerator ELSA array
 * (base / conservative / moderate / aggressive) relative to the V100
 * GPU, for every model-dataset combination, plus the ideal
 * accelerator reference.
 *
 * Paper reference points: ELSA-base 7.99x-43.93x over GPU; geomean
 * speedups 57x (conservative), 73x (moderate), 81x (aggressive).
 */

#include <cstdio>
#include <memory>

#include "baselines/ideal.h"
#include "bench_common.h"
#include "common/args.h"
#include "common/csv.h"
#include "elsa/system.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    const ArgParser args(argc, argv, {"csv", "manifest"});
    std::unique_ptr<CsvWriter> csv;
    if (args.has("csv")) {
        csv = std::make_unique<CsvWriter>(args.get("csv"));
        csv->writeHeader({"workload", "mode", "p",
                          "throughput_vs_gpu", "candidate_fraction"});
    }
    bench::printHeader(
        "Fig. 11(a): normalized self-attention throughput (GPU = 1)",
        "12 ELSA accelerators vs V100; ideal = 528 multipliers at "
        "100% utilization x12.");

    std::printf("\n%-18s %8s %8s %8s %8s %8s\n", "workload", "base",
                "conserv", "moderate", "aggress", "ideal");

    bench::GeomeanTracker base_g;
    bench::GeomeanTracker cons_g;
    bench::GeomeanTracker mod_g;
    bench::GeomeanTracker agg_g;
    const IdealAccelerator ideal;

    for (const auto& spec : evaluationWorkloads()) {
        ElsaSystem system(spec, bench::standardSystemConfig());
        const auto reports = system.evaluateAllModes();

        // Ideal-accelerator throughput normalized to the GPU: twelve
        // replicas, real tokens only (like ELSA).
        RunningStat ideal_seconds;
        for (const auto& inv : system.runner().simInvocations(
                 0.0, system.config().sim_inputs,
                 system.config().sim_sublayers)) {
            ideal_seconds.add(
                ideal.secondsPerOp(inv.n_real, spec.model.head_dim));
        }
        const double ideal_tput = 12.0 / ideal_seconds.mean();
        const double ideal_norm =
            ideal_tput / reports[0].gpu_ops_per_second;

        std::printf("%-18s %7.1fx %7.1fx %7.1fx %7.1fx %7.1fx\n",
                    spec.label().c_str(),
                    reports[0].throughput_vs_gpu,
                    reports[1].throughput_vs_gpu,
                    reports[2].throughput_vs_gpu,
                    reports[3].throughput_vs_gpu, ideal_norm);
        if (csv != nullptr) {
            for (const auto& report : reports) {
                csv->writeRow({spec.label(),
                               approxModeName(report.mode),
                               csvNumber(report.p, 2),
                               csvNumber(report.throughput_vs_gpu, 3),
                               csvNumber(report.candidate_fraction)});
            }
        }
        std::fflush(stdout);
        base_g.add(reports[0].throughput_vs_gpu);
        cons_g.add(reports[1].throughput_vs_gpu);
        mod_g.add(reports[2].throughput_vs_gpu);
        agg_g.add(reports[3].throughput_vs_gpu);
    }

    std::printf("\n%-18s %7.1fx %7.1fx %7.1fx %7.1fx\n", "geomean",
                base_g.geomean(), cons_g.geomean(), mod_g.geomean(),
                agg_g.geomean());
    std::printf("Paper reference: base 7.99-43.93x; geomeans 57x / "
                "73x / 81x (cons/mod/agg).\n");

    obs::RunManifest manifest = bench::makeBenchManifest(
        "fig11a_throughput", bench::standardSystemConfig());
    manifest.set("metrics", "workloads",
                 evaluationWorkloads().size());
    manifest.set("metrics", "throughput_vs_gpu_geomean_base",
                 base_g.geomean());
    manifest.set("metrics", "throughput_vs_gpu_geomean_conservative",
                 cons_g.geomean());
    manifest.set("metrics", "throughput_vs_gpu_geomean_moderate",
                 mod_g.geomean());
    manifest.set("metrics", "throughput_vs_gpu_geomean_aggressive",
                 agg_g.geomean());
    bench::emitBenchSummary(manifest, args);
    return 0;
}
