#include "obs/registry.h"

#include "common/csv.h"
#include "common/logging.h"
#include "obs/json.h"

namespace elsa::obs {

const char*
metricKindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kDistribution: return "distribution";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kDigest: return "digest";
    }
    ELSA_PANIC("unknown MetricKind");
}

bool
isValidMetricName(const std::string& name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.') {
        return false;
    }
    bool prev_dot = false;
    for (const char c : name) {
        if (c == '.') {
            if (prev_dot) {
                return false;
            }
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z')
                        || (c >= '0' && c <= '9') || c == '_';
        if (!ok) {
            return false;
        }
    }
    return true;
}

StatsRegistry::Entry&
StatsRegistry::findOrCreate(const std::string& name, MetricKind kind)
{
    ELSA_CHECK(isValidMetricName(name),
               "invalid metric name '"
                   << name
                   << "' (want dot-separated [a-z0-9_] segments)");
    auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        ELSA_CHECK(it->second.kind == kind,
                   "metric '" << name << "' already registered as "
                              << metricKindName(it->second.kind)
                              << ", requested "
                              << metricKindName(kind));
        return it->second;
    }
    Entry entry;
    entry.kind = kind;
    return metrics_.emplace(name, std::move(entry)).first->second;
}

Counter&
StatsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lk(m_);
    Entry& entry = findOrCreate(name, MetricKind::kCounter);
    if (entry.counter == nullptr) {
        entry.counter = std::make_unique<Counter>();
    }
    return *entry.counter;
}

Distribution&
StatsRegistry::distribution(const std::string& name)
{
    std::lock_guard<std::mutex> lk(m_);
    Entry& entry = findOrCreate(name, MetricKind::kDistribution);
    if (entry.distribution == nullptr) {
        entry.distribution = std::make_unique<Distribution>();
    }
    return *entry.distribution;
}

Histogram&
StatsRegistry::histogram(const std::string& name,
                         const Histogram& prototype)
{
    std::lock_guard<std::mutex> lk(m_);
    Entry& entry = findOrCreate(name, MetricKind::kHistogram);
    if (entry.histogram == nullptr) {
        entry.histogram = std::make_unique<Histogram>(prototype);
        entry.histogram->reset();
    }
    return *entry.histogram;
}

QuantileDigest&
StatsRegistry::digest(const std::string& name)
{
    std::lock_guard<std::mutex> lk(m_);
    Entry& entry = findOrCreate(name, MetricKind::kDigest);
    if (entry.digest == nullptr) {
        entry.digest = std::make_unique<QuantileDigest>();
    }
    return *entry.digest;
}

MetricKind
StatsRegistry::kind(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(m_);
    const auto it = metrics_.find(name);
    ELSA_CHECK(it != metrics_.end(),
               "metric '" << name << "' is not registered");
    return it->second.kind;
}

bool
StatsRegistry::contains(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(m_);
    return metrics_.find(name) != metrics_.end();
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::vector<std::string> out;
    out.reserve(metrics_.size());
    for (const auto& [name, entry] : metrics_) {
        (void)entry;
        out.push_back(name);
    }
    return out;
}

double
StatsRegistry::counterValue(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(m_);
    const auto it = metrics_.find(name);
    ELSA_CHECK(it != metrics_.end(),
               "metric '" << name << "' is not registered");
    ELSA_CHECK(it->second.kind == MetricKind::kCounter,
               "metric '" << name << "' is a "
                          << metricKindName(it->second.kind)
                          << ", not a counter");
    return it->second.counter->get();
}

QuantileDigest
StatsRegistry::digestValue(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(m_);
    const auto it = metrics_.find(name);
    ELSA_CHECK(it != metrics_.end(),
               "metric '" << name << "' is not registered");
    ELSA_CHECK(it->second.kind == MetricKind::kDigest,
               "metric '" << name << "' is a "
                          << metricKindName(it->second.kind)
                          << ", not a digest");
    return *it->second.digest;
}

void
StatsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(m_);
    for (auto& [name, entry] : metrics_) {
        (void)name;
        switch (entry.kind) {
        case MetricKind::kCounter: entry.counter->reset(); break;
        case MetricKind::kDistribution:
            entry.distribution->reset();
            break;
        case MetricKind::kHistogram: entry.histogram->reset(); break;
        case MetricKind::kDigest: entry.digest->reset(); break;
        }
    }
}

void
StatsRegistry::clear()
{
    std::lock_guard<std::mutex> lk(m_);
    metrics_.clear();
}

void
StatsRegistry::dumpJson(std::ostream& os, bool pretty) const
{
    std::lock_guard<std::mutex> lk(m_);
    JsonWriter w(os, pretty);
    w.beginObject();
    for (const auto& [name, entry] : metrics_) {
        w.key(name);
        switch (entry.kind) {
        case MetricKind::kCounter:
            w.value(entry.counter->get());
            break;
        case MetricKind::kDistribution: {
            const RunningStat stat = entry.distribution->stat();
            w.beginObject();
            w.kv("kind", "distribution");
            w.kv("count", stat.count());
            w.kv("mean", stat.mean());
            w.kv("stddev", stat.stddev());
            if (stat.count() > 0) {
                w.kv("min", stat.min());
                w.kv("max", stat.max());
            }
            w.endObject();
            break;
        }
        case MetricKind::kHistogram: {
            const Histogram& h = *entry.histogram;
            w.beginObject();
            w.kv("kind", "histogram");
            w.kv("count", h.count());
            w.kv("sum", h.sum());
            w.kv("underflow", h.underflow());
            w.kv("overflow", h.overflow());
            w.key("edges").beginArray();
            for (const double e : h.edges()) {
                w.value(e);
            }
            w.endArray();
            w.key("counts").beginArray();
            for (std::size_t i = 0; i < h.numBuckets(); ++i) {
                w.value(h.bucketCount(i));
            }
            w.endArray();
            w.endObject();
            break;
        }
        case MetricKind::kDigest: {
            const QuantileDigest& d = *entry.digest;
            w.beginObject();
            w.kv("kind", "digest");
            w.kv("count", d.count());
            if (d.count() > 0) {
                w.kv("min", d.min());
                w.kv("max", d.max());
                w.kv("p50", d.quantile(0.50));
                w.kv("p90", d.quantile(0.90));
                w.kv("p95", d.quantile(0.95));
                w.kv("p99", d.quantile(0.99));
            }
            w.endObject();
            break;
        }
        }
    }
    w.endObject();
    if (pretty) {
        os << '\n';
    }
}

namespace {

void
csvRow(std::ostream& os, const std::string& name, const char* kind,
       const std::string& field, double value)
{
    os << CsvWriter::escape(name) << ',' << kind << ',' << field << ','
       << jsonNumber(value) << '\n';
}

} // namespace

void
StatsRegistry::dumpCsv(std::ostream& os) const
{
    std::lock_guard<std::mutex> lk(m_);
    os << "name,kind,field,value\n";
    for (const auto& [name, entry] : metrics_) {
        switch (entry.kind) {
        case MetricKind::kCounter:
            csvRow(os, name, "counter", "value",
                   entry.counter->get());
            break;
        case MetricKind::kDistribution: {
            const RunningStat stat = entry.distribution->stat();
            csvRow(os, name, "distribution", "count",
                   static_cast<double>(stat.count()));
            csvRow(os, name, "distribution", "mean", stat.mean());
            csvRow(os, name, "distribution", "stddev", stat.stddev());
            if (stat.count() > 0) {
                csvRow(os, name, "distribution", "min", stat.min());
                csvRow(os, name, "distribution", "max", stat.max());
            }
            break;
        }
        case MetricKind::kHistogram: {
            const Histogram& h = *entry.histogram;
            csvRow(os, name, "histogram", "count",
                   static_cast<double>(h.count()));
            csvRow(os, name, "histogram", "sum", h.sum());
            csvRow(os, name, "histogram", "underflow",
                   static_cast<double>(h.underflow()));
            csvRow(os, name, "histogram", "overflow",
                   static_cast<double>(h.overflow()));
            for (std::size_t i = 0; i < h.numBuckets(); ++i) {
                csvRow(os, name, "histogram",
                       "bucket[" + std::to_string(i) + "]",
                       static_cast<double>(h.bucketCount(i)));
            }
            break;
        }
        case MetricKind::kDigest: {
            const QuantileDigest& d = *entry.digest;
            csvRow(os, name, "digest", "count",
                   static_cast<double>(d.count()));
            if (d.count() > 0) {
                csvRow(os, name, "digest", "min", d.min());
                csvRow(os, name, "digest", "max", d.max());
                csvRow(os, name, "digest", "p50", d.quantile(0.50));
                csvRow(os, name, "digest", "p90", d.quantile(0.90));
                csvRow(os, name, "digest", "p95", d.quantile(0.95));
                csvRow(os, name, "digest", "p99", d.quantile(0.99));
            }
            break;
        }
        }
    }
}

StatsRegistry&
globalRegistry()
{
    static StatsRegistry registry;
    return registry;
}

} // namespace elsa::obs
