#include "fault_sweep.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "attention/threshold.h"
#include "common/logging.h"
#include "common/rng.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "sim/accelerator.h"
#include "workload/generator.h"
#include "workload/model.h"

namespace elsa::bench {

std::vector<double>
faultSweepBers(bool quick)
{
    if (quick) {
        return {1e-4, 1e-3};
    }
    return {1e-5, 1e-4, 1e-3, 1e-2};
}

std::string
berLabel(double ber)
{
    const long long exponent = std::llround(-std::log10(ber));
    ELSA_CHECK(exponent > 0
                   && std::abs(ber * std::pow(10.0, exponent) - 1.0)
                          < 1e-9,
               "BER " << ber << " is not a power of ten");
    return "1em" + std::to_string(exponent);
}

FaultSweepResult
runFaultResilienceSweep(bool quick)
{
    // One encoder-regime attention operation with a realistically
    // learned threshold (p = 1, the paper's conservative mode): hash
    // faults must be able to change candidate selection, which a
    // select-everything threshold would hide.
    const std::size_t n = quick ? 96 : 192;
    const ModelConfig model = bertLarge();
    QkvGenerator gen(model, 77);
    const AttentionInput train = gen.generate(0, 0, n, 100);
    const AttentionInput input = gen.generate(0, 0, n, 0);

    ThresholdLearner learner(1.0);
    learner.observe(train.query, train.key);

    Rng rng(9);
    const auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng, true));

    SimConfig config = SimConfig::paperConfig();
    // query_candidates (gated by collect_query_trace) feed
    // measureFidelity; attribution exercises the extended stall
    // conservation invariant (fault_retry) on every faulted run.
    config.collect_query_trace = true;
    config.attribute_stalls = true;
    config.count_saturations = true;

    FaultSweepResult result;
    result.n = n;
    result.threshold = learner.threshold();

    {
        const Accelerator accel(config, hasher, kThetaBias64);
        const RunResult run = accel.run(input, result.threshold);
        result.baseline =
            measureFidelity(input, run.query_candidates, run.output);
        result.baseline_cycles = run.totalCycles();
    }

    const ProtectionMode modes[] = {ProtectionMode::kNone,
                                    ProtectionMode::kParityDetect,
                                    ProtectionMode::kSecdedCorrect};
    for (const ProtectionMode mode : modes) {
        for (const double ber : faultSweepBers(quick)) {
            SimConfig faulted = config;
            faulted.fault.enabled = true;
            faulted.fault.bit_error_rate = ber;
            faulted.fault.protection = mode;
            faulted.validate();

            const Accelerator accel(faulted, hasher, kThetaBias64);
            const RunResult run = accel.run(input, result.threshold);
            ELSA_CHECK(run.fault.enabled,
                       "faulted run reported no injection");
            ELSA_CHECK(run.fault.counts.conserves(),
                       "fault counts violate injected == silent + "
                       "detected + corrected");

            FaultSweepPoint point;
            point.protection = mode;
            point.bit_error_rate = ber;
            point.label = std::string(protectionModeName(mode)) + "_"
                          + berLabel(ber);
            point.fidelity = measureFidelity(
                input, run.query_candidates, run.output);
            point.counts = run.fault.counts;
            point.retry_stall_cycles = run.fault.retry_stall_cycles;
            point.total_cycles = run.totalCycles();
            result.points.push_back(std::move(point));
        }
    }
    return result;
}

void
addFaultSweepMetrics(obs::RunManifest& manifest,
                     const FaultSweepResult& result)
{
    manifest.set("metrics", "sweep_n", result.n);
    manifest.set("metrics", "threshold", result.threshold);
    manifest.set("metrics", "mass_recall_nofault",
                 result.baseline.mass_recall);
    manifest.set("metrics", "output_error_nofault",
                 result.baseline.output_relative_error);
    manifest.set("metrics", "cycles_nofault", result.baseline_cycles);
    for (const FaultSweepPoint& point : result.points) {
        manifest.set("metrics", "mass_recall_" + point.label,
                     point.fidelity.mass_recall);
        manifest.set("metrics", "output_error_" + point.label,
                     point.fidelity.output_relative_error);
        manifest.set("metrics", "fault_injected_" + point.label,
                     static_cast<std::size_t>(point.counts.injected));
        manifest.set("metrics", "fault_silent_" + point.label,
                     static_cast<std::size_t>(point.counts.silent));
        manifest.set("metrics", "fault_detected_" + point.label,
                     static_cast<std::size_t>(point.counts.detected));
        manifest.set("metrics", "fault_corrected_" + point.label,
                     static_cast<std::size_t>(point.counts.corrected));
        manifest.set("metrics", "retry_stall_cycles_" + point.label,
                     static_cast<std::size_t>(
                         point.retry_stall_cycles));
        manifest.set("metrics", "cycles_" + point.label,
                     point.total_cycles);
    }
}

std::string
formatFaultSweepTable(const FaultSweepResult& result)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "  n = %zu, threshold = %.4f; fault-free: mass "
                  "recall %.4f, output error %.4f, %zu cycles\n",
                  result.n, result.threshold,
                  result.baseline.mass_recall,
                  result.baseline.output_relative_error,
                  result.baseline_cycles);
    out += line;
    std::snprintf(line, sizeof line,
                  "  %-8s %-7s %9s %8s %8s %9s %11s %9s %9s\n",
                  "prot", "ber", "injected", "silent", "detected",
                  "corrected", "retry_cyc", "recall", "out_err");
    out += line;
    for (const FaultSweepPoint& point : result.points) {
        std::snprintf(
            line, sizeof line,
            "  %-8s %-7.0e %9llu %8llu %8llu %9llu %11llu %9.4f "
            "%9.4f\n",
            protectionModeName(point.protection),
            point.bit_error_rate,
            static_cast<unsigned long long>(point.counts.injected),
            static_cast<unsigned long long>(point.counts.silent),
            static_cast<unsigned long long>(point.counts.detected),
            static_cast<unsigned long long>(point.counts.corrected),
            static_cast<unsigned long long>(point.retry_stall_cycles),
            point.fidelity.mass_recall,
            point.fidelity.output_relative_error);
        out += line;
    }
    return out;
}

} // namespace elsa::bench
