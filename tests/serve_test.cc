/**
 * @file
 * Serving-engine coverage (src/serve/, docs/SERVING.md):
 *
 *  - a property test asserting the two request-count conservation
 *    invariants (offered == admitted + rejected, admitted ==
 *    completed + shed + failed) plus the dwell/dispatch accounting
 *    identities over randomized admission/deadline/retry/degradation
 *    configurations;
 *  - behavioral tests of deadline shedding, both admission policies,
 *    bounded fault-escalated retries with deterministic exponential
 *    backoff, and the degradation controller stepping down AND back
 *    up;
 *  - the overload acceptance criterion: under 2x offered load the
 *    degradation ladder holds p99 latency under the SLO while
 *    shedding strictly fewer requests than the static policy on the
 *    identical arrival trace;
 *  - byte-identical serve artifacts (stats registry dump and
 *    serve.json) at 1/2/8 worker threads; the forced-scalar CTest
 *    registration replays the whole file under ELSA_SIMD=scalar.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "obs/registry.h"
#include "serve/engine.h"
#include "serve/report.h"
#include "serve/scenario.h"
#include "workload/model.h"

namespace elsa {
namespace {

/** Restores the default global pool size when a test exits. */
struct GlobalThreadsGuard
{
    explicit GlobalThreadsGuard(std::size_t n)
    {
        ThreadPool::setGlobalThreads(n);
    }
    ~GlobalThreadsGuard() { ThreadPool::setGlobalThreads(0); }
};

/**
 * A small two-class mix (short SASRec sequences) whose catalog
 * builds in milliseconds, leaving the event loop under test rather
 * than the accelerator model.
 */
ServeConfig
tinyServeConfig()
{
    ServeConfig config;
    config.num_accelerators = 2;
    config.num_requests = 48;
    config.base_p = 2.0;
    config.queue_capacity = 4;
    config.deadline_cycles = 6000;
    config.arrival.mean_interarrival_cycles = 400.0;
    config.classes.clear();
    RequestClassConfig short_class;
    short_class.model = sasRec();
    short_class.sequence_length = 16;
    short_class.weight = 1.0;
    config.classes.push_back(short_class);
    RequestClassConfig long_class;
    long_class.model = sasRec();
    long_class.sequence_length = 32;
    long_class.weight = 2.0;
    config.classes.push_back(long_class);
    config.retry.max_attempts = 2;
    config.retry.backoff_base_cycles = 64;
    config.retry.backoff_cap_cycles = 256;
    config.seed = 1234;
    return config;
}

/** Every exact accounting identity one serve run must satisfy. */
void
expectAccountingExact(const ServeConfig& config,
                      const ServeResult& result)
{
    EXPECT_TRUE(result.conservesOffered())
        << result.offered << " != " << result.admitted << " + "
        << result.rejected;
    EXPECT_TRUE(result.conservesAdmitted())
        << result.admitted << " != " << result.completed << " + "
        << result.shed << " + " << result.failed;
    EXPECT_EQ(result.offered, config.num_requests);
    EXPECT_EQ(result.shed,
              result.shed_queue_drop + result.shed_deadline);
    EXPECT_LE(result.slo_violations, result.completed);
    EXPECT_EQ(result.latency.count(), result.completed);
    EXPECT_EQ(result.queue_wait.count(), result.completed);

    // Dwell times tile the run span, and every dispatch ends in
    // exactly one of {retry scheduled, failed, completed}.
    std::uint64_t dwell = 0;
    std::uint64_t dispatched = 0;
    for (const ServeLevelStats& level : result.levels) {
        dwell += level.dwell_cycles;
        dispatched += level.dispatched;
    }
    EXPECT_EQ(dwell, result.span_cycles);
    EXPECT_EQ(dispatched, result.completed + result.failed
                              + result.retry_attempts);
}

TEST(ServeTest, ConservationHoldsAcrossRandomConfigs)
{
    Rng rng(0x5e12e57e);
    for (int trial = 0; trial < 8; ++trial) {
        ServeConfig config = tinyServeConfig();
        config.seed = rng.next();
        config.num_requests = 32 + rng.uniformInt(48);
        config.queue_capacity = 1 + rng.uniformInt(6);
        config.deadline_cycles = 500 + rng.uniformInt(8000);
        config.arrival.mean_interarrival_cycles =
            rng.uniform(100.0, 1200.0);
        config.admission = rng.uniformInt(2) == 0
                               ? AdmissionPolicy::kRejectOnFull
                               : AdmissionPolicy::kTailDrop;
        config.deadline_aware_dispatch = rng.uniformInt(2) == 0;
        if (rng.uniformInt(2) == 0) {
            config.arrival.phases = {{3000, 2.0}, {3000, 0.5}};
        }
        if (rng.uniformInt(2) == 0) {
            config.sim.fault.enabled = true;
            config.sim.fault.bit_error_rate = 1e-5;
            config.sim.fault.protection =
                ProtectionMode::kParityDetect;
        }
        if (rng.uniformInt(2) == 0) {
            config.degradation.enabled = true;
            config.degradation.ladder = {8.0};
            config.degradation.ewma_alpha = 0.2;
            config.degradation.min_dwell_cycles = 512;
        }
        const ServeResult result = ServeEngine(config).run();
        expectAccountingExact(config, result);
    }
}

TEST(ServeTest, HopelessRequestsAreShedAtDeadline)
{
    ServeConfig config = tinyServeConfig();
    // No admissible request can finish by its deadline, so
    // deadline-aware dispatch must shed every one of them.
    config.deadline_cycles = 1;
    const ServeResult result = ServeEngine(config).run();
    expectAccountingExact(config, result);
    EXPECT_EQ(result.completed, 0u);
    EXPECT_EQ(result.slo_violations, 0u);
    EXPECT_GT(result.shed_deadline, 0u);
    EXPECT_EQ(result.shed,
              result.shed_deadline + result.shed_queue_drop);
    EXPECT_EQ(result.deadline_miss_rate, 1.0);
}

TEST(ServeTest, AdmissionPoliciesRejectOrDropOldest)
{
    // A burst far beyond queue capacity forces the full-queue path.
    ServeConfig config = tinyServeConfig();
    config.arrival.mean_interarrival_cycles = 20.0;
    config.queue_capacity = 2;

    config.admission = AdmissionPolicy::kRejectOnFull;
    const ServeResult reject = ServeEngine(config).run();
    expectAccountingExact(config, reject);
    EXPECT_GT(reject.rejected, 0u);
    EXPECT_EQ(reject.shed_queue_drop, 0u);

    config.admission = AdmissionPolicy::kTailDrop;
    const ServeResult drop = ServeEngine(config).run();
    expectAccountingExact(config, drop);
    EXPECT_EQ(drop.rejected, 0u);
    EXPECT_GT(drop.shed_queue_drop, 0u);
    EXPECT_EQ(drop.admitted, drop.offered);
}

TEST(ServeTest, FaultFreeRunsNeverRetry)
{
    ServeConfig config = tinyServeConfig();
    ASSERT_FALSE(config.sim.fault.enabled);
    const ServeResult result = ServeEngine(config).run();
    expectAccountingExact(config, result);
    EXPECT_EQ(result.retry_attempts, 0u);
    EXPECT_EQ(result.faulty_attempts, 0u);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.retry_backoff_cycles, 0u);
    EXPECT_GT(result.completed, 0u);
}

TEST(ServeTest, DetectedFaultsEscalateToBoundedRetries)
{
    ServeConfig config = tinyServeConfig();
    config.sim.fault.enabled = true;
    config.sim.fault.bit_error_rate = 2e-4;
    config.sim.fault.protection = ProtectionMode::kParityDetect;
    // Generous deadline so retried requests stay schedulable and
    // the retry path itself is what the test exercises.
    config.deadline_cycles = 60000;
    const ServeResult result = ServeEngine(config).run();
    expectAccountingExact(config, result);
    EXPECT_GT(result.faulty_attempts, 0u);
    EXPECT_GT(result.retry_attempts, 0u);
    // A retry is scheduled only for a faulty attempt with budget
    // left, and with max_attempts = 2 every request retries at most
    // once, always at the base backoff.
    EXPECT_LE(result.retry_attempts, result.faulty_attempts);
    EXPECT_EQ(result.retry_backoff_cycles,
              result.retry_attempts
                  * config.retry.backoff_base_cycles);
}

TEST(ServeTest, BackoffDoublesUpToTheCap)
{
    ServeConfig config = tinyServeConfig();
    config.retry.max_attempts = 5;
    config.retry.backoff_base_cycles = 64;
    config.retry.backoff_cap_cycles = 200;
    config.sim.fault.enabled = true;
    // At this error rate nearly every attempt is detected-faulty,
    // so requests burn their whole retry budget: backoffs 64, 128,
    // 200 (capped), 200 (capped) per failed request.
    config.sim.fault.bit_error_rate = 5e-3;
    config.sim.fault.protection = ProtectionMode::kParityDetect;
    config.deadline_cycles = 200000;
    config.num_requests = 12;
    config.arrival.mean_interarrival_cycles = 4000.0;
    const ServeResult result = ServeEngine(config).run();
    expectAccountingExact(config, result);
    EXPECT_GT(result.failed, 0u);
    const std::uint64_t per_request = 64 + 128 + 200 + 200;
    EXPECT_EQ(result.retry_attempts % 4, 0u)
        << "every failed request retries exactly 4 times";
    EXPECT_EQ(result.retry_backoff_cycles,
              result.retry_attempts / 4 * per_request);
}

TEST(ServeTest, ControllerStepsDownUnderLoadAndBackUp)
{
    const ServeConfig config =
        overloadScenario(/*load_multiplier=*/2.0, /*degraded=*/true,
                         /*quick=*/true);
    const ServeResult result = ServeEngine(config).run();
    expectAccountingExact(config, result);
    ASSERT_EQ(result.levels.size(),
              1 + config.degradation.ladder.size());
    // Stepped down at least once, served real traffic degraded, and
    // recovered at least once (>= 2 transitions means down AND up,
    // since level 0 is the start state).
    EXPECT_GE(result.degradation_transitions, 2u);
    EXPECT_GT(result.levels.back().dispatched, 0u);
    EXPECT_GE(result.levels[0].entries, 2u)
        << "controller never stepped back up to base fidelity";
}

TEST(ServeTest, StaticPolicyNeverChangesLevel)
{
    const ServeConfig config =
        overloadScenario(2.0, /*degraded=*/false, /*quick=*/true);
    const ServeResult result = ServeEngine(config).run();
    expectAccountingExact(config, result);
    ASSERT_EQ(result.levels.size(), 1u);
    EXPECT_EQ(result.degradation_transitions, 0u);
    EXPECT_EQ(result.levels[0].dwell_cycles, result.span_cycles);
}

TEST(ServeTest, DegradationBeatsStaticUnderOverload)
{
    // The acceptance criterion (ISSUE 9): under 2x offered load the
    // ladder holds p99 under the SLO and sheds strictly less than
    // the static policy on the identical arrival trace.
    const ServeConfig static_config =
        overloadScenario(2.0, /*degraded=*/false, /*quick=*/true);
    const ServeConfig degraded_config =
        overloadScenario(2.0, /*degraded=*/true, /*quick=*/true);
    const ServeResult st = ServeEngine(static_config).run();
    const ServeResult dg = ServeEngine(degraded_config).run();
    expectAccountingExact(static_config, st);
    expectAccountingExact(degraded_config, dg);

    ASSERT_EQ(st.offered, dg.offered)
        << "policies must see the identical arrival trace";
    EXPECT_LT(dg.shed, st.shed);
    EXPECT_GT(dg.goodput_qps, st.goodput_qps);
    ASSERT_GT(dg.completed, 0u);
    EXPECT_LE(dg.latency.quantile(0.99),
              static_cast<double>(degraded_config.deadline_cycles));
}

TEST(ServeTest, CatalogMatchesScenarioCapacityCalibration)
{
    // The scenario derives its arrival rate from an assumed mean
    // base-fidelity service time (kBaseMeanServiceCycles in
    // serve/scenario.cc). Recover that assumption from the config
    // (mean_interarrival = mean_service / (servers * load)) and
    // check the real catalog still matches it, so load multipliers
    // keep meaning what they say.
    const ServeConfig config =
        overloadScenario(/*load_multiplier=*/1.0, /*degraded=*/false,
                         /*quick=*/true);
    const ServeEngine engine(config);
    double weight_sum = 0.0;
    double weighted_cycles = 0.0;
    for (std::size_t c = 0; c < config.classes.size(); ++c) {
        weight_sum += config.classes[c].weight;
        weighted_cycles +=
            config.classes[c].weight
            * static_cast<double>(
                engine.catalogEntry(c, 0).service_cycles);
    }
    const double catalog_mean = weighted_cycles / weight_sum;
    const double assumed_mean =
        config.arrival.mean_interarrival_cycles
        * static_cast<double>(config.num_accelerators);
    EXPECT_NEAR(catalog_mean, assumed_mean, 0.10 * assumed_mean)
        << "scenario calibration drifted; re-measure "
        << "kBaseMeanServiceCycles in serve/scenario.cc";
}

TEST(ServeTest, HigherFidelityLevelsServeFaster)
{
    const ServeConfig config =
        overloadScenario(2.0, /*degraded=*/true, /*quick=*/true);
    const ServeEngine engine(config);
    for (std::size_t c = 0; c < config.classes.size(); ++c) {
        for (std::size_t level = 1; level < config.numLevels();
             ++level) {
            EXPECT_LT(engine.catalogEntry(c, level).service_cycles,
                      engine.catalogEntry(c, level - 1)
                          .service_cycles)
                << "class " << c << " level " << level;
        }
    }
}

TEST(ServeTest, ArtifactsByteIdenticalAtAnyThreadCount)
{
    ServeConfig config = tinyServeConfig();
    config.sim.fault.enabled = true;
    config.sim.fault.bit_error_rate = 1e-5;
    config.sim.fault.protection = ProtectionMode::kParityDetect;
    config.degradation.enabled = true;
    config.degradation.ladder = {8.0};
    config.degradation.min_dwell_cycles = 512;
    config.degradation.ewma_alpha = 0.2;

    std::vector<std::string> stats_dumps;
    std::vector<std::string> serve_jsons;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        GlobalThreadsGuard guard(threads);
        const ServeEngine engine(config);
        const ServeResult result = engine.run();
        obs::StatsRegistry registry;
        publishServeStats(result, registry);
        std::ostringstream stats;
        registry.dumpJson(stats);
        stats_dumps.push_back(stats.str());
        std::ostringstream serve;
        writeServeJson(serve, config, result);
        serve_jsons.push_back(serve.str());
    }
    for (std::size_t i = 1; i < stats_dumps.size(); ++i) {
        EXPECT_EQ(stats_dumps[0], stats_dumps[i])
            << "stats dump differs at thread count index " << i;
        EXPECT_EQ(serve_jsons[0], serve_jsons[i])
            << "serve.json differs at thread count index " << i;
    }
}

TEST(ServeTest, RunIsRepeatable)
{
    const ServeConfig config = tinyServeConfig();
    const ServeEngine engine(config);
    const ServeResult a = engine.run();
    const ServeResult b = engine.run();
    std::ostringstream ja;
    std::ostringstream jb;
    writeServeJson(ja, config, a);
    writeServeJson(jb, config, b);
    EXPECT_EQ(ja.str(), jb.str());
}

} // namespace
} // namespace elsa
