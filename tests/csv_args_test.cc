/**
 * @file
 * Tests for the CSV writer and the benchmark flag parser.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/args.h"
#include "common/csv.h"
#include "common/logging.h"

namespace elsa {
namespace {

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

class CsvWriterTest : public ::testing::Test
{
  protected:
    std::string
    tempPath() const
    {
        return ::testing::TempDir() + "elsa_csv_test.csv";
    }

    void TearDown() override { std::remove(tempPath().c_str()); }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows)
{
    {
        CsvWriter writer(tempPath());
        writer.writeHeader({"workload", "p", "value"});
        writer.writeRow({"BERT/SQuADv1.1", "1.0", "0.42"});
        EXPECT_EQ(writer.rowsWritten(), 2u);
    }
    EXPECT_EQ(readFile(tempPath()),
              "workload,p,value\nBERT/SQuADv1.1,1.0,0.42\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters)
{
    {
        CsvWriter writer(tempPath());
        writer.writeRow({"a,b", "say \"hi\"", "line\nbreak", "plain"});
    }
    EXPECT_EQ(readFile(tempPath()),
              "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\",plain\n");
}

TEST_F(CsvWriterTest, EscapeHelper)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

TEST_F(CsvWriterTest, RejectsUnwritablePath)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), Error);
}

TEST(CsvNumberTest, FixedPrecision)
{
    EXPECT_EQ(csvNumber(1.23456789, 3), "1.235");
    EXPECT_EQ(csvNumber(2.0, 1), "2.0");
}

TEST(ArgParserTest, ParsesSeparateAndEqualsForms)
{
    const char* argv[] = {"prog", "--inputs", "6", "--csv=/tmp/x.csv",
                          "--verbose"};
    ArgParser args(5, argv, {"inputs", "csv", "verbose"});
    EXPECT_TRUE(args.has("inputs"));
    EXPECT_EQ(args.getInt("inputs", 0), 6);
    EXPECT_EQ(args.get("csv"), "/tmp/x.csv");
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.getInt("missing", 42), 42);
}

TEST(ArgParserTest, ParsesDoubles)
{
    const char* argv[] = {"prog", "--p", "2.5"};
    ArgParser args(3, argv, {"p"});
    EXPECT_DOUBLE_EQ(args.getDouble("p", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(args.getDouble("q", 1.5), 1.5);
}

TEST(ArgParserTest, RejectsUnknownFlagsAndBadValues)
{
    const char* bad_flag[] = {"prog", "--oops", "1"};
    EXPECT_THROW(ArgParser(3, bad_flag, {"inputs"}), Error);

    const char* bad_int[] = {"prog", "--inputs", "abc"};
    ArgParser args(3, bad_int, {"inputs"});
    EXPECT_THROW(args.getInt("inputs", 0), Error);

    const char* not_flag[] = {"prog", "value"};
    EXPECT_THROW(ArgParser(2, not_flag, {"inputs"}), Error);
}

/** Every malformed-argument error names the flag it rejects. */
TEST(ArgParserTest, MalformedValueErrorsNameTheFlag)
{
    const auto message = [](auto&& fn) -> std::string {
        try {
            fn();
        } catch (const Error& e) {
            return e.what();
        }
        ADD_FAILURE() << "expected elsa::Error";
        return {};
    };

    // Integer with trailing garbage.
    const char* trailing[] = {"prog", "--inputs", "12x"};
    ArgParser trailing_args(3, trailing, {"inputs"});
    EXPECT_NE(message([&] { trailing_args.getInt("inputs", 0); })
                  .find("--inputs"),
              std::string::npos);

    // Non-numeric double, equals form.
    const char* bad_double[] = {"prog", "--p=fast"};
    ArgParser double_args(2, bad_double, {"p"});
    EXPECT_NE(message([&] { double_args.getDouble("p", 0.0); })
                  .find("--p"),
              std::string::npos);

    // Unknown flag in equals form is caught at parse time.
    const char* unknown_eq[] = {"prog", "--oops=3"};
    EXPECT_NE(message([&] { ArgParser(2, unknown_eq, {"inputs"}); })
                  .find("--oops"),
              std::string::npos);

    // Empty value from "--inputs=" is not an integer.
    const char* empty_value[] = {"prog", "--inputs="};
    ArgParser empty_args(2, empty_value, {"inputs"});
    EXPECT_THROW((void)empty_args.getInt("inputs", 0), Error);
}

} // namespace
} // namespace elsa
