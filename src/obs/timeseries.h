#ifndef ELSA_OBS_TIMESERIES_H_
#define ELSA_OBS_TIMESERIES_H_

/**
 * @file
 * Binned cycle-domain time series for simulator telemetry.
 *
 * A TimeSeries holds named channels of fixed-width cycle bins. The
 * simulator attributes spans of work -- "module M spent V lane-
 * cycles between cycle B and cycle E" -- and the recorder spreads V
 * across the bins the span overlaps. Integer spreads use telescoped
 * cumulative rounding: bin b receives
 *
 *     floor(V * (min(E, (b+1)*W) - B) / (E - B)) - previous
 *
 * so the per-bin contributions are integers that sum *exactly* to V
 * (the partial sums telescope), which is what lets telemetry.json
 * conserve bin sums against the stall-attribution totals with no
 * tolerance (see docs/OBSERVABILITY.md). Real-valued spreads use
 * the same telescoping in floating point, so their bins also sum to
 * exactly the recorded value.
 *
 * Channel names follow the metric-name grammar (dotted lowercase
 * [a-z0-9_] segments, checked at registration) and are enforced by
 * the `metric-name` rule of tools/lint/elsa_lint.py just like
 * StatsRegistry names.
 *
 * The recorder is deliberately *not* thread-safe: each accelerator
 * clone records into its own instance on one thread and the array
 * merges the shards serially in invocation-index order, which keeps
 * every bin value bit-identical at any thread count
 * (docs/PARALLELISM.md).
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace elsa::obs {

/** Named channels of fixed-width cycle bins; see file comment. */
class TimeSeries
{
  public:
    /** @param bin_width_cycles Cycles per bin; must be >= 1. */
    explicit TimeSeries(std::uint64_t bin_width_cycles);

    /** Cycles per bin. */
    std::uint64_t binWidth() const { return bin_width_; }

    /**
     * Find-or-create a channel; returns a dense id that stays valid
     * for the recorder's lifetime. Fatal on an invalid name.
     */
    std::size_t channel(const std::string& name);

    /**
     * Spread an integer value over [begin, end) proportionally to
     * bin overlap; the per-bin parts sum exactly to `value`. An
     * empty span books the whole value at `begin`.
     */
    void addSpread(std::size_t ch, std::uint64_t begin,
                   std::uint64_t end, std::uint64_t value);

    /** Real-valued spread; bins sum to exactly `value` as well. */
    void addSpreadReal(std::size_t ch, std::uint64_t begin,
                       std::uint64_t end, double value);

    /** Book `value` entirely in the bin containing `cycle`. */
    void addAt(std::size_t ch, std::uint64_t cycle, double value);

    /**
     * Elementwise-add another recorder (equal bin widths required);
     * channels are united by name. Deterministic for a fixed merge
     * order.
     */
    void merge(const TimeSeries& other);

    /** Bins in the longest channel recorded so far. */
    std::size_t numBins() const { return num_bins_; }

    /** Number of registered channels. */
    std::size_t numChannels() const { return names_.size(); }

    /** Channel names in sorted order. */
    std::vector<std::string> channelNames() const;

    /** True when the channel has been registered. */
    bool hasChannel(const std::string& name) const;

    /**
     * Bins of a channel (fatal when unknown). May be shorter than
     * numBins(); readers treat missing tail bins as zero.
     */
    const std::vector<double>& channelBins(
        const std::string& name) const;

    /** Sum over a channel's bins. */
    double channelTotal(const std::string& name) const;

  private:
    /** Grow channel `ch` to cover `last_cycle`; returns its bins. */
    std::vector<double>& binsFor(std::size_t ch,
                                 std::uint64_t last_cycle);

    std::uint64_t bin_width_;
    /** Sorted name -> dense channel id. */
    std::map<std::string, std::size_t> index_;
    /** Dense channel id -> name. */
    std::vector<std::string> names_;
    /** Dense channel id -> bins. */
    std::vector<std::vector<double>> bins_;
    std::size_t num_bins_ = 0;
};

} // namespace elsa::obs

#endif // ELSA_OBS_TIMESERIES_H_
