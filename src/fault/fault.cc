#include "fault/fault.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "lsh/bitvector.h"

namespace elsa {

const char*
protectionModeName(ProtectionMode mode)
{
    switch (mode) {
      case ProtectionMode::kNone:
        return "none";
      case ProtectionMode::kParityDetect:
        return "parity";
      case ProtectionMode::kSecdedCorrect:
        return "secded";
    }
    ELSA_PANIC("unknown ProtectionMode " << static_cast<int>(mode));
}

ProtectionMode
protectionModeFromName(const std::string& name)
{
    if (name == "none") {
        return ProtectionMode::kNone;
    }
    if (name == "parity") {
        return ProtectionMode::kParityDetect;
    }
    if (name == "secded") {
        return ProtectionMode::kSecdedCorrect;
    }
    ELSA_FATAL("unknown protection mode '"
               << name << "' (expected none, parity, or secded)");
}

void
FaultConfig::validate() const
{
    ELSA_CHECK(std::isfinite(bit_error_rate) && bit_error_rate >= 0.0
                   && bit_error_rate <= 1.0,
               "fault.bit_error_rate must be within [0, 1], got "
                   << bit_error_rate);
    ELSA_CHECK(retry_cycles > 0,
               "fault.retry_cycles must be positive, got " << retry_cycles);
    const int p = static_cast<int>(protection);
    ELSA_CHECK(p >= 0 && p <= static_cast<int>(ProtectionMode::kSecdedCorrect),
               "fault.protection holds an invalid ProtectionMode value " << p);
}

const std::vector<FaultTarget>&
allFaultTargets()
{
    static const std::vector<FaultTarget> targets = {
        FaultTarget::kKeyHashMemory,
        FaultTarget::kKeyNormMemory,
        FaultTarget::kKeyValueMemory,
        FaultTarget::kLutTables,
    };
    return targets;
}

const char*
faultTargetName(FaultTarget target)
{
    switch (target) {
      case FaultTarget::kKeyHashMemory:
        return "key_hash_memory";
      case FaultTarget::kKeyNormMemory:
        return "key_norm_memory";
      case FaultTarget::kKeyValueMemory:
        return "key_value_memory";
      case FaultTarget::kLutTables:
        return "lut_tables";
    }
    ELSA_PANIC("unknown FaultTarget " << static_cast<int>(target));
}

std::size_t
FaultGeometry::words(FaultTarget target) const
{
    switch (target) {
      case FaultTarget::kKeyHashMemory:
        return n;
      case FaultTarget::kKeyNormMemory:
        return n;
      case FaultTarget::kKeyValueMemory:
        // Key matrix plus value matrix, one S5.3 element per word.
        return 2 * n * d;
      case FaultTarget::kLutTables:
        return lut_words;
    }
    ELSA_PANIC("unknown FaultTarget " << static_cast<int>(target));
}

std::size_t
FaultGeometry::bitsPerWord(FaultTarget target) const
{
    switch (target) {
      case FaultTarget::kKeyHashMemory:
        return k;
      case FaultTarget::kKeyNormMemory:
        return 8; // S4.3 key norms.
      case FaultTarget::kKeyValueMemory:
        return 9; // S5.3 elements.
      case FaultTarget::kLutTables:
        return 5; // Mantissa fraction bits of one LUT entry.
    }
    ELSA_PANIC("unknown FaultTarget " << static_cast<int>(target));
}

std::size_t
FaultGeometry::totalBits() const
{
    std::size_t total = 0;
    for (FaultTarget target : allFaultTargets()) {
        total += words(target) * bitsPerWord(target);
    }
    return total;
}

void
FaultCounts::merge(const FaultCounts& other)
{
    injected += other.injected;
    silent += other.silent;
    detected += other.detected;
    corrected += other.corrected;
    retry_events += other.retry_events;
    for (std::size_t i = 0; i < kNumFaultTargets; ++i) {
        injected_per_target[i] += other.injected_per_target[i];
    }
}

FaultOutcome
classifyWordFault(ProtectionMode protection, std::size_t num_flips)
{
    ELSA_ASSERT(num_flips > 0, "a word fault needs at least one flip");
    switch (protection) {
      case ProtectionMode::kNone:
        return FaultOutcome::kSilent;
      case ProtectionMode::kParityDetect:
        // A single parity bit sees the XOR of all data bits: an odd
        // number of flips breaks parity (detected), an even number
        // restores it (silent corruption).
        return (num_flips % 2 == 1) ? FaultOutcome::kDetected
                                    : FaultOutcome::kSilent;
      case ProtectionMode::kSecdedCorrect:
        // SECDED corrects one flip, detects-but-cannot-correct two,
        // and aliases three or more (silent, possibly miscorrected).
        if (num_flips == 1) {
            return FaultOutcome::kCorrected;
        }
        if (num_flips == 2) {
            return FaultOutcome::kDetected;
        }
        return FaultOutcome::kSilent;
    }
    ELSA_PANIC("unknown ProtectionMode " << static_cast<int>(protection));
}

namespace {

/**
 * Sample ascending flip positions over [0, total_bits) where each bit
 * flips independently with probability p. Geometric gap sampling: the
 * distance to the next flipped bit is Geometric(p), so cost scales
 * with the number of flips rather than the number of bits.
 */
std::vector<std::size_t>
samplePositions(Rng& rng, std::size_t total_bits, double p)
{
    std::vector<std::size_t> positions;
    if (total_bits == 0 || p <= 0.0) {
        return positions;
    }
    if (p >= 1.0) {
        positions.resize(total_bits);
        for (std::size_t i = 0; i < total_bits; ++i) {
            positions[i] = i;
        }
        return positions;
    }
    const double log_q = std::log1p(-p);
    std::size_t pos = 0;
    while (true) {
        // uniform() is in [0, 1); 1-u is in (0, 1] so the log is finite.
        const double u = rng.uniform();
        const double gap = std::floor(std::log(1.0 - u) / log_q);
        if (gap >= static_cast<double>(total_bits)) {
            break; // Also covers inf; avoids overflow in the cast.
        }
        pos += static_cast<std::size_t>(gap);
        if (pos >= total_bits) {
            break;
        }
        positions.push_back(pos);
        ++pos;
    }
    return positions;
}

} // namespace

FaultPlan
FaultPlan::build(const FaultConfig& config, const FaultGeometry& geometry)
{
    config.validate();
    FaultPlan plan;
    if (!config.enabled || config.bit_error_rate <= 0.0) {
        return plan;
    }
    const Rng root(config.seed);
    for (FaultTarget target : allFaultTargets()) {
        if (target == FaultTarget::kLutTables && !config.inject_lut) {
            continue;
        }
        const std::size_t bits_per_word = geometry.bitsPerWord(target);
        const std::size_t total_bits = geometry.words(target) * bits_per_word;
        // One independent stream per target: the draw sequence of one
        // memory never shifts when another memory's geometry changes.
        Rng rng = root.fork(static_cast<std::uint64_t>(target));
        const std::vector<std::size_t> positions =
            samplePositions(rng, total_bits, config.bit_error_rate);
        const std::size_t target_index = static_cast<std::size_t>(target);
        std::size_t i = 0;
        while (i < positions.size()) {
            const std::uint32_t word =
                static_cast<std::uint32_t>(positions[i] / bits_per_word);
            WordFault fault;
            fault.target = target;
            fault.word = word;
            while (i < positions.size()
                   && positions[i] / bits_per_word == word) {
                fault.bits.push_back(
                    static_cast<std::uint8_t>(positions[i] % bits_per_word));
                ++i;
            }
            fault.outcome =
                classifyWordFault(config.protection, fault.bits.size());
            const std::uint64_t flips = fault.bits.size();
            plan.counts_.injected += flips;
            plan.counts_.injected_per_target[target_index] += flips;
            switch (fault.outcome) {
              case FaultOutcome::kSilent:
                plan.counts_.silent += flips;
                break;
              case FaultOutcome::kDetected:
                plan.counts_.detected += flips;
                plan.counts_.retry_events += 1;
                break;
              case FaultOutcome::kCorrected:
                plan.counts_.corrected += flips;
                break;
            }
            plan.faults_.push_back(std::move(fault));
        }
    }
    ELSA_ASSERT(plan.counts_.conserves(),
                "fault classification lost flips: injected="
                    << plan.counts_.injected);
    return plan;
}

void
FaultReport::merge(const FaultReport& other)
{
    enabled = enabled || other.enabled;
    counts.merge(other.counts);
    retry_stall_cycles += other.retry_stall_cycles;
}

double
flipFixedPointBit(double value, int int_bits, int frac_bits, int bit)
{
    const int width = 1 + int_bits + frac_bits;
    ELSA_ASSERT(bit >= 0 && bit < width,
                "bit " << bit << " outside " << width << "-bit word");
    const double scale = static_cast<double>(1LL << frac_bits);
    const long long raw = std::llround(value * scale);
    const long long mask = (1LL << width) - 1;
    long long stored = raw & mask;
    stored ^= 1LL << bit;
    // Sign-extend the width-bit two's-complement pattern.
    if (stored & (1LL << (width - 1))) {
        stored -= 1LL << width;
    }
    return static_cast<double>(stored) / scale;
}

double
flipLutFractionBit(double value, int bit)
{
    ELSA_ASSERT(bit >= 0 && bit < 5, "LUT fraction bit " << bit
                                         << " outside the 5-bit mantissa");
    ELSA_ASSERT(std::isfinite(value) && value != 0.0,
                "LUT entries are finite and nonzero, got " << value);
    const double sign = value < 0.0 ? -1.0 : 1.0;
    int exponent = 0;
    // frexp yields mantissa in [0.5, 1); renormalize to [1, 2).
    const double mantissa = 2.0 * std::frexp(std::fabs(value), &exponent);
    exponent -= 1;
    // Entries carry exactly 5 fraction bits (units.cc roundMantissa),
    // so the scaled fraction is integral.
    long long fraction = std::llround((mantissa - 1.0) * 32.0);
    ELSA_ASSERT(fraction >= 0 && fraction < 32,
                "value " << value << " is not a 5-fraction-bit mantissa");
    fraction ^= 1LL << bit;
    return sign
           * std::ldexp(1.0 + static_cast<double>(fraction) / 32.0, exponent);
}

void
flipHashBit(HashValue& hash, std::size_t bit)
{
    ELSA_ASSERT(bit < hash.bits(),
                "bit " << bit << " outside " << hash.bits() << "-bit hash");
    hash.setBit(bit, !hash.bit(bit));
}

} // namespace elsa
