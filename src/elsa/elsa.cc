#include "elsa/elsa.h"

#include "common/rng.h"
#include "lsh/calibration.h"

namespace elsa {

Elsa::Elsa(std::size_t d, std::uint64_t seed) : d_(d)
{
    Rng rng(seed);
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(d, 3, rng,
                                       /*quantize_factors=*/true));
    theta_bias_ = thetaBiasFor(d, hasher->bits(), rng);
    hasher_ = hasher;
    engine_ = std::make_unique<ApproxSelfAttention>(hasher_, theta_bias_);
}

std::size_t
Elsa::hashBits() const
{
    return hasher_->bits();
}

Matrix
Elsa::attention(const Matrix& query, const Matrix& key,
                const Matrix& value) const
{
    return exactAttention(AttentionInput{query, key, value});
}

double
Elsa::learnThreshold(const Matrix& query, const Matrix& key,
                     double p) const
{
    ThresholdLearner learner(p);
    learner.observe(query, key);
    return learner.threshold();
}

ApproxAttentionResult
Elsa::approxAttention(const Matrix& query, const Matrix& key,
                      const Matrix& value, double threshold) const
{
    return engine_->run(AttentionInput{query, key, value}, threshold);
}

} // namespace elsa
