// elsa-lint-pretend: src/lsh/bad_intrinsics.cc
// Known-bad fixture: raw SIMD intrinsics outside src/common/simd/.
// Everything ISA-specific must sit behind the dispatched
// KernelTable (common/simd/simd.h) so bit-identity across levels is
// proven in exactly one place.
#include <immintrin.h> // BAD
#include <arm_neon.h>  // BAD
#include <cstdint>

namespace elsa {

int
badIntrinsics(const std::uint64_t* words)
{
    int total = __builtin_popcountll(words[0]); // BAD
    total += __builtin_popcount(7);             // BAD
    if (__builtin_cpu_supports("avx2")) {       // BAD
        __m256i v = _mm256_loadu_si256(         // BAD
            reinterpret_cast<const __m256i*>(words));
        v = _mm256_xor_si256(v, v); // BAD
        (void)v;
    }
    uint64x2_t n = vld1q_u64(words);  // BAD
    n = veorq_u64(n, n);              // BAD
    total += static_cast<int>(vgetq_lane_u64(n, 0)); // BAD
    // An allowed escape must carry a reason, same as every rule.
    // elsa-lint: allow(no-raw-intrinsics): fixture shows a suppressed site
    total += __builtin_popcountll(words[1]);
    return total;
}

} // namespace elsa
