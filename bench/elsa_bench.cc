/**
 * @file
 * elsa_bench: the benchmark-suite driver behind the regression
 * harness. Runs any subset of the figure/table reproductions
 * in-process, shares the expensive mode evaluations between entries
 * (fig11a/11b/13a/13b all derive from the same simulator runs), and
 * aggregates every entry's BENCH_JSON manifest into one
 * schema-versioned BENCH_RESULTS.json that scripts/bench_compare.py
 * diffs against the committed baseline.
 *
 *   elsa_bench --list
 *   elsa_bench --quick --out BENCH_RESULTS.json
 *   elsa_bench --bench fig11a_throughput,bottleneck_attribution
 *   elsa_bench --quick --threads 8
 *   elsa_bench --quick --report report_dir
 *
 * --report <dir> additionally dumps an observability bundle (stats,
 * cycle-domain telemetry, manifest) from one representative
 * instrumented run; scripts/make_report.py turns it into a
 * self-contained HTML report.
 *
 * --quick shrinks the workload set and evaluation depth so the suite
 * finishes in seconds (the CTest / CI smoke configuration; the
 * committed baseline under bench/baselines/ is recorded with it).
 * Metric names match the standalone bench binaries where both exist,
 * so trend tooling sees one namespace.
 *
 * --threads N sizes the process-wide pool (default: ELSA_THREADS or
 * the hardware concurrency) and runs independent suite entries
 * concurrently on it, sharing the mode-report cache. Entry output is
 * captured per entry and printed in suite order, and every simulated
 * metric is identical at any thread count; only the wall_seconds
 * metrics (advisory in scripts/bench_compare.py) and the
 * kernel_throughput timings (gated, but with the wide
 * kernel-throughput tolerance class) vary.
 */

#include <array>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

#include "baselines/gpu_model.h"
#include "bench_common.h"
#include "common/args.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/simd/simd.h"
#include "elsa/elsa.h"
#include "elsa/system.h"
#include "energy/area_power.h"
#include "fault_sweep.h"
#include "lsh/calibration.h"
#include "lsh/candidates.h"
#include "lsh/srp.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "serve_overload.h"
#include "sim/report.h"
#include "tensor/ops.h"
#include "workload/generator.h"
#include "workload/model.h"

namespace elsa::bench {
namespace {

/**
 * Captured stdout of one suite entry. Entries may run concurrently
 * (--threads), so each formats into its own buffer and main() prints
 * the buffers in suite order -- the printed output is identical at
 * any thread count.
 */
class EntryLog
{
  public:
    /** printf into the buffer (lines longer than 1 KiB truncate). */
    void
    add(const char* fmt, ...)
    {
        char line[1024];
        va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(line, sizeof line, fmt, ap);
        va_end(ap);
        text_ += line;
    }

    const std::string& text() const { return text_; }

  private:
    std::string text_;
};

/**
 * State shared by the suite entries: the evaluation configuration
 * and a lazy cache of per-workload mode reports, so the four
 * figure entries that read the same simulations pay for them once.
 * modes() is safe to call from concurrently running entries:
 * concurrent callers of the same workload share one evaluation.
 */
struct SuiteContext
{
    bool quick = false;
    SystemConfig config;
    std::vector<WorkloadSpec> workloads;

    /**
     * Address-stable cache cells (std::map nodes); cache_m guards
     * only the map structure, the cell fills through its once_flag.
     */
    struct ModeCell
    {
        std::once_flag once;
        std::vector<ModeReport> reports;
    };
    std::mutex cache_m;
    std::map<std::string, ModeCell> mode_cache;

    const std::vector<ModeReport>&
    modes(const WorkloadSpec& spec)
    {
        ModeCell* cell = nullptr;
        {
            std::lock_guard<std::mutex> lk(cache_m);
            cell = &mode_cache[spec.label()];
        }
        std::call_once(cell->once, [&] {
            ElsaSystem system(spec, config);
            cell->reports = system.evaluateAllModes();
        });
        return cell->reports;
    }
};

/** Fill in a (non-movable: it owns a mutex) default-built context. */
void
initContext(SuiteContext& ctx, bool quick)
{
    ctx.quick = quick;
    ctx.config = standardSystemConfig();
    // The bottleneck entry reads the breakdown off the same cached
    // runs; attribution never changes simulated cycle counts.
    ctx.config.sim.attribute_stalls = true;
    if (quick) {
        ctx.config.eval.max_sublayers = 2;
        ctx.config.eval.num_eval_inputs = 2;
        ctx.config.eval.num_train_inputs = 2;
        ctx.config.sim_sublayers = 2;
        ctx.config.sim_inputs = 2;
        // One encoder and one recommender keep both sequence-length
        // regimes in the baseline.
        ctx.workloads = {{bertLarge(), squadV11()},
                         {sasRec(), movieLens1M()}};
    } else {
        ctx.workloads = evaluationWorkloads();
    }
}

obs::RunManifest
makeManifest(const char* artifact, const SuiteContext& ctx)
{
    obs::RunManifest manifest = makeBenchManifest(artifact,
                                                  ctx.config);
    manifest.set("config", "quick", ctx.quick);
    manifest.set("config", "workloads", ctx.workloads.size());
    // Execution environment, so a results file records how it was
    // produced. Simulated metrics never depend on either value.
    manifest.set("config", "threads", ThreadPool::global().threads());
    manifest.set("config", "hardware_concurrency",
                 static_cast<std::size_t>(
                     std::thread::hardware_concurrency()));
    return manifest;
}

/** Geomean of one ModeReport field across the context's workloads. */
template <typename Getter>
std::array<double, 4>
modeGeomeans(SuiteContext& ctx, Getter getter)
{
    std::array<GeomeanTracker, 4> trackers;
    for (const auto& spec : ctx.workloads) {
        const auto& reports = ctx.modes(spec);
        for (std::size_t i = 0; i < 4; ++i) {
            trackers[i].add(getter(reports[i]));
        }
    }
    std::array<double, 4> result{};
    for (std::size_t i = 0; i < 4; ++i) {
        result[i] = trackers[i].geomean();
    }
    return result;
}

const char* const kModeSuffix[4] = {"base", "conservative",
                                    "moderate", "aggressive"};

void
setPerMode(obs::RunManifest& manifest, const char* stem,
           const std::array<double, 4>& values)
{
    for (std::size_t i = 0; i < 4; ++i) {
        manifest.set("metrics",
                     std::string(stem) + "_" + kModeSuffix[i],
                     values[i]);
    }
}

obs::RunManifest
runFig11a(SuiteContext& ctx, EntryLog& log)
{
    const auto g = modeGeomeans(ctx, [](const ModeReport& r) {
        return r.throughput_vs_gpu;
    });
    log.add("  throughput vs GPU (geomean): base %.1fx, "
                "cons %.1fx, mod %.1fx, agg %.1fx\n",
                g[0], g[1], g[2], g[3]);
    obs::RunManifest manifest = makeManifest("fig11a_throughput",
                                             ctx);
    setPerMode(manifest, "throughput_vs_gpu_geomean", g);
    return manifest;
}

obs::RunManifest
runFig11b(SuiteContext& ctx, EntryLog& log)
{
    const auto g = modeGeomeans(ctx, [](const ModeReport& r) {
        return r.latency_vs_ideal;
    });
    log.add("  latency vs ideal (geomean): base %.2fx, "
                "cons %.2fx, mod %.2fx, agg %.2fx\n",
                g[0], g[1], g[2], g[3]);
    obs::RunManifest manifest = makeManifest("fig11b_latency", ctx);
    setPerMode(manifest, "latency_vs_ideal_geomean", g);
    return manifest;
}

obs::RunManifest
runFig13a(SuiteContext& ctx, EntryLog& log)
{
    const auto g = modeGeomeans(ctx, [](const ModeReport& r) {
        return r.energy_eff_vs_gpu;
    });
    log.add("  energy efficiency vs GPU (geomean): base %.0fx, "
                "cons %.0fx, mod %.0fx, agg %.0fx\n",
                g[0], g[1], g[2], g[3]);
    obs::RunManifest manifest =
        makeManifest("fig13a_energy_efficiency", ctx);
    setPerMode(manifest, "energy_eff_vs_gpu_geomean", g);
    return manifest;
}

obs::RunManifest
runFig13b(SuiteContext& ctx, EntryLog& log)
{
    const auto g = modeGeomeans(ctx, [](const ModeReport& r) {
        return r.elsa_energy_per_op_uj;
    });
    log.add("  energy per op (geomean uJ): base %.3f, "
                "cons %.3f, mod %.3f, agg %.3f\n",
                g[0], g[1], g[2], g[3]);
    obs::RunManifest manifest =
        makeManifest("fig13b_energy_breakdown", ctx);
    setPerMode(manifest, "energy_per_op_uj_geomean", g);
    // Shape check the paper argues about: the aggressive mode's
    // approximation-logic share of the total.
    const auto& aggressive = ctx.modes(ctx.workloads.front())[3];
    const EnergyBreakdown& e = aggressive.energy_breakdown;
    manifest.set("metrics", "approximation_logic_share_aggressive",
                 e.totalUj() > 0.0
                     ? e.approximationLogicUj() / e.totalUj()
                     : 0.0);
    return manifest;
}

obs::RunManifest
runTable1(SuiteContext& ctx, EntryLog& log)
{
    const AcceleratorAreaPower total = singleAcceleratorAreaPower();
    log.add("  core area %.3f mm2, peak power %.2f W (x1), "
                "%.2f W (x12)\n",
                total.core_area_mm2,
                total.totalPeakPowerMw() / 1000.0,
                12.0 * total.totalPeakPowerMw() / 1000.0);
    obs::RunManifest manifest = makeManifest("table1_area_power",
                                             ctx);
    manifest.set("metrics", "core_area_mm2", total.core_area_mm2);
    manifest.set("metrics", "external_area_mm2",
                 total.external_area_mm2);
    manifest.set("metrics", "accelerator_peak_power_w",
                 total.totalPeakPowerMw() / 1000.0);
    manifest.set("metrics", "array_peak_power_w",
                 12.0 * total.totalPeakPowerMw() / 1000.0);
    manifest.set("metrics", "key_hash_sram_bytes",
                 keyHashMemoryBytes(512, 64));
    manifest.set("metrics", "key_norm_sram_bytes",
                 keyNormMemoryBytes(512));
    manifest.set("metrics", "matrix_sram_bytes",
                 matrixMemoryBytes(512, 64));
    return manifest;
}

obs::RunManifest
runFig02(SuiteContext& ctx, EntryLog& log)
{
    const GpuModel gpu;
    const std::pair<ModelConfig, std::size_t> cases[] = {
        {bertLarge(), 384},   {robertaLarge(), 384},
        {albertLarge(), 384}, {sasRec(), 200},
        {bert4Rec(), 200},
    };
    struct Variant
    {
        const char* metric;
        double seq_scale;
        double ffn_scale;
    };
    const Variant variants[] = {
        {"attention_portion_mean_default", 1.0, 1.0},
        {"attention_portion_mean_seq4x", 4.0, 1.0},
        {"attention_portion_mean_ffn_quarter", 1.0, 0.25},
        {"attention_portion_mean_seq4x_ffn_quarter", 4.0, 0.25},
    };
    obs::RunManifest manifest =
        makeManifest("fig02_attention_portion", ctx);
    for (const auto& variant : variants) {
        RunningStat portions;
        for (const auto& [model, n] : cases) {
            portions.add(gpu.layerRuntime(model, n,
                                          variant.seq_scale,
                                          variant.ffn_scale)
                             .attentionPortion());
        }
        manifest.set("metrics", variant.metric, portions.mean());
        log.add("  %s: %.1f%%\n", variant.metric,
                    100.0 * portions.mean());
    }
    return manifest;
}

obs::RunManifest
runBottleneck(SuiteContext& ctx, EntryLog& log)
{
    // The tentpole consumer: which module limits the base (p = 0)
    // configuration, straight from the attributed simulator runs.
    const WorkloadSpec& spec = ctx.workloads.front();
    const ModeReport& base = ctx.modes(spec)[0];
    const BottleneckReport report =
        computeBottleneck(base.stall_breakdown);
    ELSA_CHECK(report.valid,
               "bottleneck entry needs attribute_stalls runs");
    log.add("  workload %s:\n%s", spec.label().c_str(),
                formatBottleneckReport(report).c_str());

    obs::RunManifest manifest =
        makeManifest("bottleneck_attribution", ctx);
    manifest.set("metrics", "workload", spec.label());
    manifest.set("metrics", "limiting_module",
                 attributedModuleName(report.limiting));
    manifest.set("metrics", "limiting_busy_fraction",
                 report.busy_fraction);
    manifest.set("metrics", "headroom", report.headroom);
    for (const AttributedModule module : allAttributedModules()) {
        const std::size_t m = static_cast<std::size_t>(module);
        manifest.set("metrics",
                     std::string("busy_fraction_")
                         + attributedModuleMetricName(module),
                     report.module_busy_fraction[m]);
    }
    return manifest;
}

obs::RunManifest
runFaultSweep(SuiteContext& ctx, EntryLog& log)
{
    // Deterministic (fixed workload/hash/fault seeds, single
    // invocations), so the entry is identical at any thread count.
    const FaultSweepResult sweep = runFaultResilienceSweep(ctx.quick);
    log.add("%s", formatFaultSweepTable(sweep).c_str());
    obs::RunManifest manifest = makeManifest("ext_fault_sweep", ctx);
    addFaultSweepMetrics(manifest, sweep);
    return manifest;
}

obs::RunManifest
runServeOverload(SuiteContext& ctx, EntryLog& log)
{
    // Deterministic cycle-domain accounting over the canonical
    // overload scenario (serve/scenario.h); identical at any thread
    // count and SIMD level.
    const ServeOverloadResult sweep =
        runServeOverloadSweep(ctx.quick);
    log.add("%s", formatServeOverloadTable(sweep).c_str());
    obs::RunManifest manifest = makeManifest("serve_overload", ctx);
    addServeOverloadMetrics(manifest, sweep);
    return manifest;
}

/**
 * Mean seconds per fn() call, measured over however many calls fit
 * into min_seconds (at least one, after one untimed warm-up call
 * that faults in code and data).
 */
template <typename Fn>
double
secondsPerCall(Fn&& fn, double min_seconds)
{
    fn();
    std::size_t calls = 0;
    // elsa-lint: allow(no-wallclock): measures host kernel throughput; never feeds a simulated result
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++calls;
        elapsed = std::chrono::duration<double>(
                      // elsa-lint: allow(no-wallclock): measures host kernel throughput; never feeds a simulated result
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);
    return elapsed / static_cast<double>(calls);
}

obs::RunManifest
runKernelThroughput(SuiteContext& ctx, EntryLog& log)
{
    // Measured wall throughput of the dispatched SIMD hot-path
    // kernels (src/common/simd/): the batched Hamming scan, packed
    // SRP hashing, and the fused candidate-selection pass. Unlike
    // every other metric in the suite these are machine-dependent by
    // design -- they exist to catch kernel/dispatch regressions (an
    // accidental fall-back to scalar shows up as a ~5x+ drop), so
    // scripts/bench_compare.py gates them with the wide
    // kernel-throughput tolerance class rather than the advisory
    // wall-time handling. Fixed seeds; the *selected ids and hashes*
    // are identical on every machine, only the timings move.
    const std::size_t n = 512;
    const double min_seconds = ctx.quick ? 0.02 : 0.1;
    Rng rng(2);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    const QkvGenerator generator(bertLarge(), /*master_seed=*/99);
    const AttentionInput input =
        generator.generate(/*layer=*/11, /*head=*/3, n,
                           /*input_id=*/0);

    const HashMatrix hashes = hasher.hashMatrix(input.key);
    const HashValue query = hasher.hash(input.query.row(0));
    const std::vector<double> norms = l2NormRows(input.key);
    const CosineLut lut(hasher.bits(), kThetaBias64);
    // Mid-range cutoff: roughly half the keys pass, so the fused
    // pass pays both the compare and the emit.
    double max_norm = 0.0;
    for (const double norm : norms) {
        max_norm = norm > max_norm ? norm : max_norm;
    }
    const double cutoff = 0.5 * max_norm;

    std::vector<std::uint32_t> distances(n);
    const double hamming_spc = secondsPerCall(
        [&] {
            hammingDistanceBatch(query, hashes, 0, n,
                                 distances.data());
        },
        min_seconds);
    const double key_bytes = static_cast<double>(
        n * hashes.wordsPerRow() * sizeof(std::uint64_t));
    const double hamming_gibps =
        key_bytes / hamming_spc / (1024.0 * 1024.0 * 1024.0);

    HashMatrix hashed;
    const double hash_spc = secondsPerCall(
        [&] { hashed = hasher.hashMatrix(input.key); },
        min_seconds);
    ELSA_CHECK(hashed.rows() == n, "hashMatrix dropped rows");
    const double srp_hashes_per_sec =
        static_cast<double>(n) / hash_spc;

    std::vector<std::uint32_t> selected;
    selected.reserve(n);
    const double select_spc = secondsPerCall(
        [&] {
            selected.clear();
            selectAboveCutoff(query, hashes, norms, lut, cutoff, 0,
                              n, selected);
        },
        min_seconds);
    const double select_keys_per_sec =
        static_cast<double>(n) / select_spc;

    log.add("  simd level: %s\n", simd::kernels().name);
    log.add("  hamming batch: %.2f GiB/s (%zu-bit hashes, "
            "%zu keys)\n",
            hamming_gibps, hashes.bits(), n);
    log.add("  srp hashing: %.3g hashes/s\n", srp_hashes_per_sec);
    log.add("  fused candidate selection: %.3g keys/s "
            "(%zu of %zu selected)\n",
            select_keys_per_sec, selected.size(), n);

    obs::RunManifest manifest = makeManifest("kernel_throughput",
                                             ctx);
    // The level is config, not a metric: bench_compare only diffs
    // the metrics section, and the level legitimately differs
    // between machines (and under ELSA_SIMD=scalar).
    manifest.set("config", "simd_level", simd::kernels().name);
    manifest.set("metrics", "hamming_gibps", hamming_gibps);
    manifest.set("metrics", "srp_hashes_per_sec",
                 srp_hashes_per_sec);
    manifest.set("metrics", "candidate_select_keys_per_sec",
                 select_keys_per_sec);
    // Deterministic companions to the timings: if the kernels ever
    // stopped being bit-identical these would move on some machine.
    manifest.set("metrics", "selected_count", selected.size());
    manifest.set("metrics", "query_hash_popcount",
                 static_cast<std::int64_t>(query.popcount()));
    return manifest;
}

using SuiteFn = obs::RunManifest (*)(SuiteContext&, EntryLog&);

struct SuiteEntry
{
    const char* name;
    const char* description;
    SuiteFn run;
};

const SuiteEntry kSuite[] = {
    {"fig02_attention_portion",
     "Fig. 2: attention share of GPU model runtime", runFig02},
    {"fig11a_throughput",
     "Fig. 11(a): throughput vs GPU, geomean per mode", runFig11a},
    {"fig11b_latency",
     "Fig. 11(b): latency vs ideal accelerator, geomean per mode",
     runFig11b},
    {"fig13a_energy_efficiency",
     "Fig. 13(a): energy efficiency vs GPU, geomean per mode",
     runFig13a},
    {"fig13b_energy_breakdown",
     "Fig. 13(b): energy per op and approximation share", runFig13b},
    {"table1_area_power",
     "Table I: area / peak power / SRAM sizings", runTable1},
    {"bottleneck_attribution",
     "Stall-cause attribution: the limiting pipeline module",
     runBottleneck},
    {"ext_fault_sweep",
     "Extension: fidelity/recovery under SRAM bit flips, "
     "BER x protection",
     runFaultSweep},
    {"serve_overload",
     "Serving engine: offered load x policy, goodput/shedding/p99 "
     "vs SLO",
     runServeOverload},
    {"kernel_throughput",
     "Measured SIMD hot-path kernel throughput "
     "(machine-dependent; wide tolerance)",
     runKernelThroughput},
};

std::vector<std::string>
splitList(const std::string& csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item =
            csv.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (!item.empty()) {
            out.push_back(item);
        }
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    return out;
}

const SuiteEntry&
findEntry(const std::string& name)
{
    for (const SuiteEntry& entry : kSuite) {
        if (name == entry.name) {
            return entry;
        }
    }
    std::string known;
    for (const SuiteEntry& entry : kSuite) {
        known += "\n  ";
        known += entry.name;
    }
    ELSA_FATAL("unknown bench '" << name << "'; known benches:"
                                 << known);
}

/**
 * Assemble the BENCH_RESULTS.json envelope. The per-bench manifests
 * are embedded verbatim (they already are single-line JSON), so the
 * file carries exactly what the BENCH_JSON lines carried.
 */
std::string
assembleResults(
    bool quick,
    const std::vector<std::pair<std::string, std::string>>& benches)
{
    std::string out = "{\"schema_version\":1,"
                      "\"suite\":\"elsa_bench\",\"quick\":";
    out += quick ? "true" : "false";
    const obs::BuildInfo build = obs::buildInfo();
    out += ",\"build\":{\"git_describe\":";
    out += obs::jsonQuote(build.git_describe);
    out += ",\"build_type\":";
    out += obs::jsonQuote(build.build_type);
    out += ",\"compiler\":";
    out += obs::jsonQuote(build.compiler);
    out += "},\"benches\":{";
    bool first = true;
    for (const auto& [name, json] : benches) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += obs::jsonQuote(name);
        out += ':';
        out += json;
    }
    out += "}}";
    // Well-formedness is part of the contract; fail here rather than
    // in the comparison tooling.
    obs::parseJson(out);
    return out;
}

/**
 * --report <dir>: one representative instrumented accelerator run
 * (stall attribution, per-query trace, cycle-domain telemetry, and
 * per-query spans all on) dumped as an observability bundle --
 * stats.json, stats.csv, telemetry.json, spans.json, manifest.json
 * -- in the same schema as `quickstart --obs-dir`
 * (docs/OBSERVABILITY.md): both call writeObsBundle() in
 * sim/report.cc, so the layouts cannot drift apart and
 * scripts/make_report.py can render either into one self-contained
 * HTML run report. Deterministic: fixed seeds, single invocation.
 */
void
writeReportBundle(const SuiteContext& ctx, const std::string& dir)
{
    const WorkloadSpec& spec = ctx.workloads.front();
    const std::size_t n = ctx.quick ? 128 : 256;
    const QkvGenerator generator(spec.model, /*master_seed=*/7);
    const AttentionInput input =
        generator.generate(/*layer=*/0, /*head=*/0, n,
                           /*input_id=*/0);

    Elsa engine(spec.model.head_dim);
    const double threshold =
        engine.learnThreshold(input.query, input.key, /*p=*/2.0);

    SimConfig config = ctx.config.sim;
    config.collect_query_trace = true;
    config.attribute_stalls = true;
    config.telemetry.enabled = true;
    config.query_spans.enabled = true;

    obs::StatsRegistry registry;
    Accelerator accel(config, engine.hasher(), engine.thetaBias());
    accel.attachStats(&registry, "sim.accel0");
    const RunResult result = accel.run(input, threshold);

    ELSA_CHECK(result.telemetry != nullptr,
               "telemetry-enabled run produced no time series");
    ELSA_CHECK(result.spans != nullptr,
               "span-enabled run produced no span set");

    obs::RunManifest manifest("bench_report");
    manifest.addBuildInfo();
    manifest.set("config", "workload", spec.label());
    manifest.set("config", "d", config.d);
    manifest.set("config", "k", config.k);
    manifest.set("config", "pa", config.pa);
    manifest.set("config", "pc", config.pc);
    manifest.set("config", "n", input.n());
    manifest.set("config", "threshold", threshold);
    manifest.set("config", "quick", ctx.quick);
    writeObsBundle(dir, registry, result, config, manifest,
                   "sim.accel0");

    std::printf("\nreport bundle: %s/{stats.json, stats.csv, "
                "telemetry.json, spans.json, manifest.json}\n"
                "explain the tail with: "
                "python3 scripts/explain_tail.py %s\n"
                "render with: python3 scripts/make_report.py %s\n",
                dir.c_str(), dir.c_str(), dir.c_str());
}

} // namespace
} // namespace elsa::bench

namespace {

int
runSuite(int argc, char** argv)
{
    using namespace elsa;
    using namespace elsa::bench;
    const ArgParser args(argc, argv,
                         {"quick", "bench", "list", "out",
                          "threads", "report"});

    if (args.has("list")) {
        for (const SuiteEntry& entry : kSuite) {
            std::printf("%-26s %s\n", entry.name, entry.description);
        }
        return 0;
    }

    std::vector<const SuiteEntry*> selected;
    if (args.has("bench")) {
        for (const std::string& name :
             splitList(args.get("bench"))) {
            selected.push_back(&findEntry(name));
        }
    } else {
        for (const SuiteEntry& entry : kSuite) {
            selected.push_back(&entry);
        }
    }
    ELSA_CHECK(!selected.empty(), "no benches selected");

    const std::int64_t threads_flag = args.getInt("threads", 0);
    ELSA_CHECK(threads_flag >= 0,
               "--threads must be >= 0, got " << threads_flag);
    if (threads_flag > 0) {
        ThreadPool::setGlobalThreads(
            static_cast<std::size_t>(threads_flag));
    }

    const bool quick = args.has("quick");
    printHeader("elsa_bench: benchmark suite driver",
                quick ? "quick configuration (reduced workloads and "
                        "evaluation depth)"
                      : "full evaluation configuration");
    std::printf("threads: %zu (hardware concurrency %u)\n",
                ThreadPool::global().threads(),
                std::thread::hardware_concurrency());

    SuiteContext ctx;
    initContext(ctx, quick);

    // Independent entries fan out over the pool; each entry captures
    // its output and reports its manifest (with its wall time) into
    // its own slot, and everything is printed / assembled serially
    // in suite order below. Simulated metrics are identical at any
    // thread count; only the advisory wall_seconds values move.
    struct EntryResult
    {
        std::string json;
        std::string log;
    };
    const std::vector<EntryResult> entry_results =
        ThreadPool::global().parallelMap<EntryResult>(
            selected.size(), [&](std::size_t i) {
                EntryLog log;
                // elsa-lint: allow(no-wallclock): wall_seconds is the advisory host-time metric; cycle metrics never see it
                const auto start = std::chrono::steady_clock::now();
                obs::RunManifest manifest = selected[i]->run(ctx, log);
                const double wall_seconds =
                    std::chrono::duration<double>(
                        // elsa-lint: allow(no-wallclock): wall_seconds is the advisory host-time metric; cycle metrics never see it
                        std::chrono::steady_clock::now() - start)
                        .count();
                manifest.set("metrics", "wall_seconds", wall_seconds);
                return EntryResult{manifest.toJson(/*pretty=*/false),
                                   log.text()};
            });

    std::vector<std::pair<std::string, std::string>> results;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        std::printf("\n[%s] %s\n", selected[i]->name,
                    selected[i]->description);
        std::fputs(entry_results[i].log.c_str(), stdout);
        // The emitBenchSummary() format (bench_common.h): the
        // manifest was serialized on the worker, so print the line
        // from the stored JSON here.
        std::printf("BENCH_JSON %s\n", entry_results[i].json.c_str());
        std::fflush(stdout);
        results.emplace_back(selected[i]->name, entry_results[i].json);
    }

    const std::string out_path = args.get("out",
                                          "BENCH_RESULTS.json");
    const std::string envelope = assembleResults(quick, results);
    {
        std::ofstream os(out_path);
        ELSA_CHECK(os.good(), "cannot open " << out_path);
        os << envelope << '\n';
    }
    std::printf("\nwrote %s (%zu benches)\n", out_path.c_str(),
                results.size());
    if (args.has("report")) {
        writeReportBundle(ctx, args.get("report"));
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    // Configuration and I/O problems (bad flags, unwritable --out,
    // inconsistent configs) surface as one actionable line, not an
    // uncaught-exception abort.
    try {
        return runSuite(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
