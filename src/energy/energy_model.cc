#include "energy/energy_model.h"

#include "common/logging.h"

namespace elsa {

std::size_t
ActivityCounters::index(HwModule module)
{
    const auto i = static_cast<std::size_t>(module);
    ELSA_ASSERT(i < 9, "module index out of range");
    return i;
}

void
ActivityCounters::add(HwModule module, double cycles)
{
    ELSA_CHECK(cycles >= 0.0, "negative active cycles");
    active_[index(module)] += cycles;
}

double
ActivityCounters::get(HwModule module) const
{
    return active_[index(module)];
}

void
ActivityCounters::merge(const ActivityCounters& other)
{
    for (std::size_t i = 0; i < active_.size(); ++i) {
        active_[i] += other.active_[i];
    }
}

double
EnergyBreakdown::totalUj() const
{
    double total = 0.0;
    for (const double e : module_uj) {
        total += e;
    }
    return total;
}

double
EnergyBreakdown::moduleUj(HwModule module) const
{
    return module_uj[static_cast<std::size_t>(module)];
}

double
EnergyBreakdown::approximationLogicUj() const
{
    return moduleUj(HwModule::kHashComputation)
           + moduleUj(HwModule::kNormComputation)
           + moduleUj(HwModule::kCandidateSelection);
}

double
EnergyBreakdown::attentionComputeUj() const
{
    return moduleUj(HwModule::kAttentionCompute)
           + moduleUj(HwModule::kOutputDivision);
}

double
EnergyBreakdown::internalMemoryUj() const
{
    return moduleUj(HwModule::kKeyHashMemory)
           + moduleUj(HwModule::kKeyNormMemory);
}

double
EnergyBreakdown::externalMemoryUj() const
{
    return moduleUj(HwModule::kKeyValueMemory)
           + moduleUj(HwModule::kQueryOutputMemory);
}

EnergyBreakdown&
EnergyBreakdown::operator+=(const EnergyBreakdown& other)
{
    for (std::size_t i = 0; i < module_uj.size(); ++i) {
        module_uj[i] += other.module_uj[i];
    }
    return *this;
}

PowerScaling
PowerScaling::forPipeline(std::size_t pa, std::size_t pc,
                          std::size_t mh, std::size_t mo)
{
    ELSA_CHECK(pa > 0 && pc > 0 && mh > 0 && mo > 0,
               "pipeline parameters must be positive");
    PowerScaling scaling;
    auto idx = [](HwModule m) { return static_cast<std::size_t>(m); };
    scaling.factor[idx(HwModule::kHashComputation)] = mh / 256.0;
    scaling.factor[idx(HwModule::kCandidateSelection)] =
        static_cast<double>(pa * pc) / 32.0;
    scaling.factor[idx(HwModule::kAttentionCompute)] = pa / 4.0;
    scaling.factor[idx(HwModule::kOutputDivision)] = mo / 16.0;
    return scaling;
}

EnergyModel::EnergyModel(double frequency_ghz)
    : frequency_ghz_(frequency_ghz)
{
    ELSA_CHECK(frequency_ghz > 0.0, "frequency must be positive");
}

EnergyModel::EnergyModel(double frequency_ghz,
                         const PowerScaling& scaling)
    : frequency_ghz_(frequency_ghz), scaling_(scaling)
{
    ELSA_CHECK(frequency_ghz > 0.0, "frequency must be positive");
}

double
EnergyModel::cyclesToSeconds(double cycles) const
{
    return cycles / (frequency_ghz_ * 1e9);
}

EnergyBreakdown
EnergyModel::compute(const ActivityCounters& activity,
                     double total_cycles) const
{
    ELSA_CHECK(total_cycles >= 0.0, "negative total cycles");
    EnergyBreakdown breakdown;
    const double cycle_s = 1.0 / (frequency_ghz_ * 1e9);
    std::size_t i = 0;
    for (const HwModule module : allHwModules()) {
        const ModuleAreaPower& record = moduleAreaPower(module);
        const double scale = scaling_.factor[i];
        // mW * s = mJ; * 1000 = uJ.
        const double dynamic_uj = scale * record.totalDynamicMw()
                                  * activity.get(module) * cycle_s * 1e3;
        const double static_uj = scale * record.totalStaticMw()
                                 * total_cycles * cycle_s * 1e3;
        breakdown.module_uj[i++] = dynamic_uj + static_uj;
    }
    return breakdown;
}

} // namespace elsa
