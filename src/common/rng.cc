#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace elsa {

namespace {

/** splitmix64 step; used to expand a seed into the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    ELSA_CHECK(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

double
Rng::gaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    // Box-Muller transform; u1 is kept away from 0 to avoid log(0).
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::vector<double>
Rng::gaussianVector(std::size_t n)
{
    std::vector<double> out(n);
    for (auto& v : out) {
        v = gaussian();
    }
    return out;
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Mix the parent seed and the stream id through splitmix64 so that
    // children with adjacent ids are statistically independent.
    std::uint64_t s = seed_ ^ (stream_id * 0xd1342543de82ef95ULL
                               + 0x632be59bd9b4e019ULL);
    return Rng(splitmix64(s));
}

} // namespace elsa
