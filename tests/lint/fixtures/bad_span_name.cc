// elsa-lint-pretend: src/sim/bad_span_name.cc
// Known-bad fixture: span field literals at spanMetricName() call
// sites must follow the [a-z0-9_.] grammar and appear in the span
// metric table of docs/OBSERVABILITY.md -- even when single-segment.
#include "sim/report.h"

namespace elsa {

void
badSpanNames(obs::StatsRegistry& registry, const std::string& prefix)
{
    registry.counter(
        spanMetricName(prefix, AttributedModule::kHash,
                       "queue_wait_cycles")).add(1);
    registry.counter(
        spanMetricName(prefix, AttributedModule::kHash,
                       "QueueWait")).add(1);                     // BAD
    registry.counter(
        spanMetricName(prefix, AttributedModule::kHash,
                       "not_a_documented_field")).add(1);        // BAD
}

} // namespace elsa
