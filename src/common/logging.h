#ifndef ELSA_COMMON_LOGGING_H_
#define ELSA_COMMON_LOGGING_H_

/**
 * @file
 * Error-reporting and logging primitives for the ELSA library.
 *
 * Following the gem5 convention, we distinguish two classes of failure:
 *  - fatal(): the caller violated the API contract (bad configuration,
 *    mismatched matrix shapes, out-of-range hyperparameter). Reported as
 *    an elsa::Error exception so that library users and tests can recover.
 *  - panic(): an internal invariant was broken, i.e. a bug in ELSA itself.
 *    Also raised as elsa::Error but tagged as internal.
 *
 * Non-fatal diagnostics go through the leveled ELSA_LOG_* macros
 * (debug < info < warn < error) instead of ad-hoc std::cerr. The
 * threshold defaults to warn and can be changed programmatically
 * with setLogLevel() or via the ELSA_LOG_LEVEL environment variable
 * (one of: debug, info, warn, error, none; read once at startup).
 * Messages below the threshold cost one branch on a cached level.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace elsa {

/** Exception type raised by all ELSA error checks. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/** Severity of a non-fatal diagnostic. */
enum class LogLevel
{
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kNone = 4, ///< Threshold-only value: suppresses everything.
};

/**
 * Current logging threshold: messages with severity >= the threshold
 * are written to stderr. Initialized from ELSA_LOG_LEVEL on first
 * use; defaults to kWarn.
 */
LogLevel logLevel();

/** Override the logging threshold (tests, embedding applications). */
void setLogLevel(LogLevel level);

namespace detail {

/** Raise an elsa::Error with file/line context. */
[[noreturn]] void raiseError(const char* kind, const char* file, int line,
                             const std::string& message);

/** True when a message at this severity should be emitted. */
bool logEnabled(LogLevel level);

/** Write one formatted log line to stderr. */
void logMessage(LogLevel level, const char* file, int line,
                const std::string& message);

} // namespace detail

} // namespace elsa

/** Abort the current operation because the caller misused the API. */
#define ELSA_FATAL(msg)                                                     \
    do {                                                                    \
        std::ostringstream elsa_oss_;                                       \
        elsa_oss_ << msg;                                                   \
        ::elsa::detail::raiseError("fatal", __FILE__, __LINE__,             \
                                   elsa_oss_.str());                        \
    } while (0)

/** Abort because an internal ELSA invariant was violated (a bug). */
#define ELSA_PANIC(msg)                                                     \
    do {                                                                    \
        std::ostringstream elsa_oss_;                                       \
        elsa_oss_ << msg;                                                   \
        ::elsa::detail::raiseError("panic", __FILE__, __LINE__,             \
                                   elsa_oss_.str());                        \
    } while (0)

/** Check a user-facing precondition; raises ELSA_FATAL on failure. */
#define ELSA_CHECK(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ELSA_FATAL("check failed: " #cond ": " << msg);                 \
        }                                                                   \
    } while (0)

/** Check an internal invariant; raises ELSA_PANIC on failure. */
#define ELSA_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ELSA_PANIC("assertion failed: " #cond ": " << msg);             \
        }                                                                   \
    } while (0)

/**
 * Check an internal invariant in debug builds only; compiled out
 * under NDEBUG (i.e. the default Release build). For invariants that
 * are cheap to state but sit on hot paths, e.g. the stall-cause
 * conservation sum of the cycle simulator.
 */
#ifdef NDEBUG
#define ELSA_DASSERT(cond, msg)                                             \
    do {                                                                    \
    } while (0)
#else
#define ELSA_DASSERT(cond, msg) ELSA_ASSERT(cond, msg)
#endif

/** Emit a leveled diagnostic to stderr (see LogLevel). */
#define ELSA_LOG(level, msg)                                                \
    do {                                                                    \
        if (::elsa::detail::logEnabled(level)) {                            \
            std::ostringstream elsa_oss_;                                   \
            elsa_oss_ << msg;                                               \
            ::elsa::detail::logMessage(level, __FILE__, __LINE__,           \
                                       elsa_oss_.str());                    \
        }                                                                   \
    } while (0)

#define ELSA_LOG_DEBUG(msg) ELSA_LOG(::elsa::LogLevel::kDebug, msg)
#define ELSA_LOG_INFO(msg) ELSA_LOG(::elsa::LogLevel::kInfo, msg)
#define ELSA_LOG_WARN(msg) ELSA_LOG(::elsa::LogLevel::kWarn, msg)
#define ELSA_LOG_ERROR(msg) ELSA_LOG(::elsa::LogLevel::kError, msg)

#endif // ELSA_COMMON_LOGGING_H_
