#ifndef ELSA_WORKLOAD_MODEL_H_
#define ELSA_WORKLOAD_MODEL_H_

/**
 * @file
 * Model and dataset descriptions of the paper's evaluation
 * (Section V-A).
 *
 * Five self-attention-oriented models are evaluated: BERT-large,
 * RoBERTa-large, ALBERT-large (NLP), and SASRec / BERT4Rec
 * (sequential recommendation). The datasets define the sequence
 * lengths the models see: SQuADv1.1/v2.0, RACE, IMDB, and
 * MovieLens-1M. Since the real datasets are not available here, each
 * dataset carries an empirical-shape token-length distribution (see
 * DESIGN.md substitutions); the padded length n is the model input
 * length the GPU implementations pad to, while ELSA and the ideal
 * accelerator process only the real tokens.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace elsa {

/** Architecture parameters of one evaluated model. */
struct ModelConfig
{
    std::string name;
    std::size_t num_layers = 0;
    std::size_t num_heads = 0;
    /** Per-head dimension d; 64 for every evaluated model. */
    std::size_t head_dim = 64;
    /** Model hidden size (= num_heads * head_dim for these models). */
    std::size_t hidden_dim = 0;
    /** Feed-forward inner dimension. */
    std::size_t ffn_dim = 0;
    /** True for the NLP models, false for the recommenders. */
    bool is_nlp = true;

    /** Number of self-attention (sub-)layers = layers * heads. */
    std::size_t numSublayers() const { return num_layers * num_heads; }

    void validate() const;
};

/** Sequence-length characteristics of one dataset. */
struct DatasetSpec
{
    std::string name;
    /** Model input length n (GPU implementations pad to this). */
    std::size_t padded_length = 0;
    /** Mean number of real (non-padding) tokens. */
    double mean_tokens = 0.0;
    /** Standard deviation of the real token count. */
    double stddev_tokens = 0.0;
    /** Clamp range of the real token count. */
    std::size_t min_tokens = 0;
    std::size_t max_tokens = 0;
};

/** A model-dataset pairing evaluated in the paper. */
struct WorkloadSpec
{
    ModelConfig model;
    DatasetSpec dataset;

    /** "BERT/SQuADv1.1"-style label used in reports. */
    std::string label() const;
};

/** The five evaluated models. */
ModelConfig bertLarge();
ModelConfig robertaLarge();
ModelConfig albertLarge();
ModelConfig sasRec();
ModelConfig bert4Rec();

/** The five datasets. */
DatasetSpec squadV11();
DatasetSpec squadV20();
DatasetSpec race();
DatasetSpec imdb();
DatasetSpec movieLens1M();

/**
 * The twelve model-dataset combinations of the paper's evaluation:
 * BERT x {SQuADv1.1, SQuADv2.0, RACE},
 * RoBERTa x {SQuADv1.1, SQuADv2.0, RACE, IMDB},
 * ALBERT x {SQuADv1.1, SQuADv2.0, RACE},
 * SASRec x MovieLens-1M, BERT4Rec x MovieLens-1M.
 */
std::vector<WorkloadSpec> evaluationWorkloads();

} // namespace elsa

#endif // ELSA_WORKLOAD_MODEL_H_
