#include "baselines/ideal.h"

#include "common/logging.h"

namespace elsa {

IdealAccelerator::IdealAccelerator(std::size_t num_multipliers,
                                   double frequency_ghz)
    : num_multipliers_(num_multipliers), frequency_ghz_(frequency_ghz)
{
    ELSA_CHECK(num_multipliers > 0, "need >= 1 multiplier");
    ELSA_CHECK(frequency_ghz > 0.0, "frequency must be positive");
}

double
IdealAccelerator::cyclesPerOp(std::size_t n, std::size_t d) const
{
    // 2 n^2 d MACs (Q K^T and S' V), one MAC per multiplier-cycle,
    // perfectly utilized.
    const double macs = 2.0 * static_cast<double>(n)
                        * static_cast<double>(n)
                        * static_cast<double>(d);
    return macs / static_cast<double>(num_multipliers_);
}

double
IdealAccelerator::secondsPerOp(std::size_t n, std::size_t d) const
{
    return cyclesPerOp(n, d) / (frequency_ghz_ * 1e9);
}

} // namespace elsa
