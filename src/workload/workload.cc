#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "attention/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "lsh/calibration.h"

namespace elsa {

namespace {

/** FNV-1a hash so each model/dataset pair gets its own streams. */
std::uint64_t
labelHash(const std::string& label)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

WorkloadRunner::WorkloadRunner(WorkloadSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      seed_(seed ^ labelHash(spec_.label())),
      generator_(spec_.model, seed_ ^ 0xABCDEF)
{
    Rng rng(seed_ ^ 0x5A5A5A5A);
    // The hardware hasher: three-way Kronecker factors, quantized to
    // the S0.5 fixed-point format (Sections III-C and IV-E). d = 64
    // for every evaluated model, so k = d = 64.
    auto hasher = std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(spec_.model.head_dim, 3, rng,
                                       /*quantize_factors=*/true));
    const double bias = thetaBiasFor(spec_.model.head_dim,
                                     hasher->bits(), rng);
    hasher_ = hasher;
    engine_ = std::make_unique<ApproxSelfAttention>(hasher_, bias);
}

std::vector<SublayerCoord>
WorkloadRunner::representativeSublayers(std::size_t max_count) const
{
    const std::size_t total = spec_.model.numSublayers();
    const std::size_t count = std::min(max_count, total);
    ELSA_CHECK(count > 0, "need at least one sublayer");
    std::vector<SublayerCoord> coords;
    coords.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Evenly spaced over the flattened (layer, head) space.
        const std::size_t flat = (i * total) / count;
        coords.push_back({flat / spec_.model.num_heads,
                          flat % spec_.model.num_heads});
    }
    return coords;
}

std::size_t
WorkloadRunner::evalLength(std::uint64_t input_id) const
{
    Rng rng = Rng(seed_ ^ 0x1E46).fork(input_id);
    return sampleSequenceLength(spec_.dataset, rng);
}

std::size_t
WorkloadRunner::trainLength(std::uint64_t input_id) const
{
    Rng rng = Rng(seed_ ^ 0x7124).fork(input_id);
    return sampleSequenceLength(spec_.dataset, rng);
}

const std::vector<double>&
WorkloadRunner::standardPGrid()
{
    static const std::vector<double> grid = {0.5, 1.0, 2.0, 3.0,
                                             4.0, 6.0, 8.0};
    return grid;
}

double
WorkloadRunner::learnThreshold(const SublayerCoord& coord, double p,
                               std::size_t num_train_inputs) const
{
    ThresholdLearner learner(p);
    for (std::uint64_t id = 0; id < num_train_inputs; ++id) {
        const std::size_t n_real = trainLength(id);
        // Training inputs use ids offset from evaluation inputs.
        const AttentionInput input = generator_.generate(
            coord.layer, coord.head, n_real, 1000000 + id);
        learner.observe(input.query, input.key);
    }
    return learner.threshold();
}

WorkloadEvaluation
WorkloadRunner::evaluate(double p,
                         const WorkloadEvalOptions& options) const
{
    WorkloadEvaluation eval;
    eval.p = p;
    const auto coords = representativeSublayers(options.max_sublayers);

    RunningStat fraction_stat;
    RunningStat recall_stat;
    RunningStat error_stat;
    RunningStat tokens_stat;
    double worst_recall = 1.0;

    for (const auto& coord : coords) {
        const double threshold =
            learnThreshold(coord, p, options.num_train_inputs);
        eval.thresholds.push_back(threshold);
        for (std::uint64_t id = 0; id < options.num_eval_inputs; ++id) {
            const std::size_t n_real = evalLength(id);
            tokens_stat.add(static_cast<double>(n_real));
            const AttentionInput input = generator_.generate(
                coord.layer, coord.head, n_real, id);
            const auto candidates =
                engine_->candidatesForAll(input, threshold);
            const ApproxAttentionResult result =
                engine_->run(input, threshold);
            const FidelityReport fidelity =
                measureFidelity(input, candidates, result.output);
            fraction_stat.add(
                result.stats.candidateFraction(input.n()));
            recall_stat.add(fidelity.mass_recall);
            error_stat.add(fidelity.output_relative_error);
            worst_recall =
                std::min(worst_recall, fidelity.mass_recall);
        }
    }
    eval.mean_candidate_fraction = fraction_stat.mean();
    eval.mean_mass_recall = recall_stat.mean();
    eval.worst_mass_recall = worst_recall;
    eval.mean_output_error = error_stat.mean();
    eval.mean_real_tokens = tokens_stat.mean();
    eval.estimated_loss_pct =
        estimateAccuracyLossPct(spec_.model, eval.mean_mass_recall);
    return eval;
}

double
WorkloadRunner::choosePForMode(ApproxMode mode,
                               const WorkloadEvalOptions& options) const
{
    if (mode == ApproxMode::kBase) {
        return 0.0;
    }
    const double bound = accuracyLossBound(spec_.model, mode);
    double best = 0.0;
    for (const double p : standardPGrid()) {
        const WorkloadEvaluation eval = evaluate(p, options);
        if (eval.estimated_loss_pct <= bound) {
            best = std::max(best, p);
        }
    }
    return best;
}

std::vector<SimInvocation>
WorkloadRunner::simInvocations(double p, std::size_t num_inputs,
                               std::size_t max_sublayers,
                               const WorkloadEvalOptions& options) const
{
    const auto coords = representativeSublayers(max_sublayers);
    std::vector<SimInvocation> out;
    out.reserve(coords.size() * num_inputs);
    for (const auto& coord : coords) {
        const double threshold =
            p > 0.0 ? learnThreshold(coord, p, options.num_train_inputs)
                    : -std::numeric_limits<double>::infinity();
        for (std::uint64_t id = 0; id < num_inputs; ++id) {
            SimInvocation inv;
            inv.coord = coord;
            inv.n_real = evalLength(id);
            inv.n_padded = spec_.dataset.padded_length;
            inv.input = generator_.generate(coord.layer, coord.head,
                                            inv.n_real, id);
            inv.threshold = threshold;
            out.push_back(std::move(inv));
        }
    }
    return out;
}

} // namespace elsa
