#ifndef ELSA_TENSOR_MATRIX_H_
#define ELSA_TENSOR_MATRIX_H_

/**
 * @file
 * Dense row-major matrix of floats.
 *
 * ELSA works with small matrices (n <= ~2048, d = 64), so this is a
 * deliberately simple contiguous-storage matrix rather than a
 * full-blown tensor library. Rows of the Q/K/V matrices are the
 * queries/keys/values of the paper.
 */

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace elsa {

class Rng;

/** Dense row-major float matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix initialized to zero. */
    Matrix(std::size_t rows, std::size_t cols);

    /** rows x cols matrix initialized from the given row-major data. */
    Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    /** Element access with bounds checks in debug-style ELSA_ASSERT. */
    float&
    at(std::size_t r, std::size_t c)
    {
        ELSA_ASSERT(r < rows_ && c < cols_,
                    "matrix index (" << r << "," << c << ") out of "
                    << rows_ << "x" << cols_);
        return data_[r * cols_ + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        ELSA_ASSERT(r < rows_ && c < cols_,
                    "matrix index (" << r << "," << c << ") out of "
                    << rows_ << "x" << cols_);
        return data_[r * cols_ + c];
    }

    /** Unchecked element access for hot loops. */
    float& operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    float operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    float* row(std::size_t r) { return data_.data() + r * cols_; }
    const float* row(std::size_t r) const { return data_.data() + r * cols_; }

    /** Raw row-major storage. */
    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /** Set every element to the given value. */
    void fill(float value);

    /** Fill with i.i.d. N(mean, stddev) samples drawn from rng. */
    void fillGaussian(Rng& rng, float mean = 0.0f, float stddev = 1.0f);

    /** Equality with exact float comparison (useful in tests). */
    bool operator==(const Matrix& other) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace elsa

#endif // ELSA_TENSOR_MATRIX_H_
