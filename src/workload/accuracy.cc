#include "workload/accuracy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace elsa {

double
estimateAccuracyLossPct(const ModelConfig& model, double mean_recall)
{
    ELSA_CHECK(mean_recall >= 0.0 && mean_recall <= 1.0 + 1e-9,
               "mass recall out of [0,1]: " << mean_recall);
    const double missed = std::max(0.0, 1.0 - mean_recall);
    // Calibration (see header): a transformer tolerates missing
    // diffuse mid-tail attention mass almost for free (the missed
    // keys are the low-score ones, residual connections and layer
    // norm damp the perturbation, and downstream layers are robust),
    // then the metric degrades super-linearly as high-score keys
    // start being missed. The constants are fit so the synthetic
    // workloads land on the paper's published operating points:
    // at p = 1 these workloads select ~40% of keys and miss ~16% of
    // the softmax mass -> <1% metric loss (Fig. 10's sub-1% point);
    // at p = 2 they select ~26% and miss ~26% -> <2% loss.
    const double scale = model.is_nlp ? 29.0 : 5.0;
    const double exponent = model.is_nlp ? 1.90 : 1.36;
    return scale * std::pow(missed, exponent);
}

const char*
approxModeName(ApproxMode mode)
{
    switch (mode) {
      case ApproxMode::kBase:
        return "ELSA-base";
      case ApproxMode::kConservative:
        return "ELSA-conservative";
      case ApproxMode::kModerate:
        return "ELSA-moderate";
      case ApproxMode::kAggressive:
        return "ELSA-aggressive";
    }
    return "unknown";
}

double
accuracyLossBound(const ModelConfig& model, ApproxMode mode)
{
    switch (mode) {
      case ApproxMode::kBase:
        return 0.0;
      case ApproxMode::kConservative:
        return model.is_nlp ? 1.0 : 0.5;
      case ApproxMode::kModerate:
        return model.is_nlp ? 2.5 : 1.0;
      case ApproxMode::kAggressive:
        return model.is_nlp ? 5.0 : 2.0;
    }
    return 0.0;
}

} // namespace elsa
