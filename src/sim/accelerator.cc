#include "sim/accelerator.h"

#include <algorithm>
#include <string>

#include "common/bits.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/candidate_stage.h"
#include "sim/pipeline_model.h"
#include "sim/report.h"

namespace elsa {

namespace {

/** Trace thread ids: fixed module lanes, then one lane per bank. */
constexpr std::uint32_t kTidHash = 0;
constexpr std::uint32_t kTidNorm = 1;
constexpr std::uint32_t kTidDivision = 2;
constexpr std::uint32_t kTidBank0 = 3;

/** "q<i> <suffix>" without operator+ chains (GCC 12 -Wrestrict). */
std::string
queryEventName(std::size_t query, const char* suffix)
{
    std::string name = "q";
    name += std::to_string(query);
    name += ' ';
    name += suffix;
    return name;
}

} // namespace

double
RunResult::candidateFraction() const
{
    if (candidates_per_query.empty()) {
        return 0.0;
    }
    std::size_t total = 0;
    for (const auto c : candidates_per_query) {
        total += c;
    }
    const double n = static_cast<double>(candidates_per_query.size());
    return static_cast<double>(total) / (n * n);
}

Accelerator::Accelerator(SimConfig config,
                         std::shared_ptr<const SrpHasher> hasher,
                         double theta_bias)
    : config_(config),
      functional_(config, std::move(hasher), theta_bias)
{
    config_.validate();
}

void
Accelerator::attachStats(obs::StatsRegistry* registry,
                         std::string prefix)
{
    stats_ = registry;
    stats_prefix_ = std::move(prefix);
}

void
Accelerator::attachTrace(obs::TraceWriter* trace, std::uint32_t pid)
{
    trace_ = trace;
    trace_pid_ = pid;
    if (trace_ == nullptr || !trace_->enabled()) {
        return;
    }
    std::string process = "elsa.accel";
    process += std::to_string(trace_pid_);
    trace_->processName(trace_pid_, process);
    trace_->threadName(trace_pid_, kTidHash, "hash computation");
    trace_->threadName(trace_pid_, kTidNorm, "norm computation");
    trace_->threadName(trace_pid_, kTidDivision, "output division");
    for (std::size_t b = 0; b < config_.pa; ++b) {
        std::string lane = "bank ";
        lane += std::to_string(b);
        lane += " (candidate scan + attention)";
        trace_->threadName(trace_pid_,
                           kTidBank0 + static_cast<std::uint32_t>(b),
                           lane);
    }
}

RunResult
Accelerator::run(const AttentionInput& input, double threshold) const
{
    input.validate();
    const std::size_t n = input.n();
    const std::size_t d = config_.d;
    const std::size_t pa = config_.pa;
    const std::size_t keys_per_bank = ceilDiv(n, pa);

    RunResult result;
    result.output = Matrix(n, d);
    result.candidates_per_query.resize(n);

    // Pipeline tracing is opt-in twice over (config flag + attached
    // writer) and, when off, costs exactly this branch per run.
    const bool tracing =
        config_.emit_trace && trace_ != nullptr && trace_->enabled();

    // ---- Preprocessing phase (Section IV-C (2)) ----
    const FunctionalContext ctx = functional_.preprocess(input);
    const std::size_t hash_per_vec = hashCyclesPerVector(config_);
    result.preprocess_cycles = preprocessingCycles(config_, n);

    // Hash module: n key hashes + the first query hash.
    result.activity.add(HwModule::kHashComputation,
                        static_cast<double>(hash_per_vec * (n + 1)));
    // Norm module and the attention multipliers it borrows: one key
    // dot product per attention module per cycle.
    const double norm_cycles =
        static_cast<double>(ceilDiv(n, pa));
    result.activity.add(HwModule::kNormComputation,
                        static_cast<double>(n));
    result.activity.add(HwModule::kAttentionCompute, norm_cycles);
    // SRAM traffic of the preprocessing phase: key/value reads for
    // hashing and norms, key hash/norm writes.
    result.activity.add(HwModule::kKeyValueMemory, norm_cycles);
    result.activity.add(HwModule::kKeyHashMemory,
                        static_cast<double>(n) / (pa * config_.pc));
    result.activity.add(HwModule::kKeyNormMemory,
                        static_cast<double>(n) / (pa * config_.pc));

    if (tracing) {
        trace_->completeEvent("preprocess: hash keys+q0", "preprocess",
                              trace_pid_, kTidHash, 0,
                              result.preprocess_cycles);
        trace_->completeEvent("preprocess: key norms", "preprocess",
                              trace_pid_, kTidNorm, 0,
                              static_cast<std::uint64_t>(norm_cycles));
    }

    // ---- Execution phase ----
    const std::size_t division_cycles = divisionCyclesPerQuery(config_);
    std::size_t exec_cycles = 0;
    // Trace-time cursor: start of the current query's interval.
    std::uint64_t cursor = result.preprocess_cycles;

    std::vector<std::vector<std::uint32_t>> bank_grants(pa);
    for (std::size_t i = 0; i < n; ++i) {
        const HashValue& query_hash = ctx.query_hashes[i];

        std::size_t total_candidates = 0;
        std::size_t max_bank_cycles = 0;
        std::size_t query_stalls = 0;
        double scanned_keys = 0.0;
        for (std::size_t b = 0; b < pa; ++b) {
            const std::size_t begin = b * keys_per_bank;
            const std::size_t end =
                std::min(n, begin + keys_per_bank);
            bank_grants[b].clear();
            if (begin >= end) {
                continue;
            }
            const std::vector<bool> hits = functional_.bankHits(
                ctx, query_hash, begin, end, threshold);
            const BankQueryTrace trace =
                simulateBankQuery(hits, config_);
            for (const auto local : trace.grant_order) {
                bank_grants[b].push_back(
                    static_cast<std::uint32_t>(begin + local));
            }
            total_candidates += trace.grant_order.size();
            result.stall_cycles += trace.stall_cycles;
            query_stalls += trace.stall_cycles;
            scanned_keys += static_cast<double>(trace.scan_cycles);
            max_bank_cycles = std::max(max_bank_cycles, trace.cycles);
            if (tracing) {
                trace_->completeEvent(
                    queryEventName(i, "scan"), "execute", trace_pid_,
                    kTidBank0 + static_cast<std::uint32_t>(b), cursor,
                    trace.cycles);
            }
        }

        bool used_fallback = false;
        std::uint32_t fallback_bank = 0;
        if (total_candidates == 0) {
            // Fallback: use the key with the highest approximate
            // similarity so the output row stays defined.
            ++result.empty_selections;
            used_fallback = true;
            const std::uint32_t best = functional_.bestKey(ctx,
                                                           query_hash);
            fallback_bank =
                static_cast<std::uint32_t>(best / keys_per_bank);
            bank_grants[fallback_bank].push_back(best);
            total_candidates = 1;
        }
        result.candidates_per_query[i] = total_candidates;

        // Pipeline interval of this query (Fig. 9): the banked scan
        // plus attention drain, the (overlapped) hash of the next
        // query, and the (overlapped) division of the previous one.
        const std::size_t bank_time =
            max_bank_cycles + config_.attention_pipeline_latency;
        const std::size_t interval =
            std::max({bank_time, hash_per_vec, division_cycles});
        exec_cycles += interval;

        if (tracing) {
            if (used_fallback) {
                trace_->instantEvent("fallback", trace_pid_,
                                     kTidBank0 + fallback_bank,
                                     cursor);
            }
            if (i + 1 < n) {
                // The next query's hash overlaps this interval.
                trace_->completeEvent(queryEventName(i + 1, "hash"),
                                      "execute", trace_pid_, kTidHash,
                                      cursor, hash_per_vec);
            }
            // This query's output division drains during the next
            // interval (or the tail after the last query).
            trace_->completeEvent(queryEventName(i, "divide"),
                                  "execute", trace_pid_, kTidDivision,
                                  cursor + interval, division_cycles);
            trace_->counterEvent("candidates", trace_pid_, cursor,
                                 static_cast<double>(total_candidates));
            trace_->counterEvent("stall cycles", trace_pid_, cursor,
                                 static_cast<double>(query_stalls));
            cursor += interval;
        }

        if (config_.collect_query_trace) {
            result.query_trace.push_back(
                {i, interval, max_bank_cycles, total_candidates,
                 query_stalls, used_fallback});
        }

        // Activity: candidate modules and the hash/norm SRAMs they
        // read run for the scanned keys; the attention modules and
        // the key/value SRAM run one cycle per granted candidate.
        const double group_scan = scanned_keys
                                  / static_cast<double>(pa * config_.pc);
        result.activity.add(HwModule::kCandidateSelection, group_scan);
        result.activity.add(HwModule::kKeyHashMemory, group_scan);
        result.activity.add(HwModule::kKeyNormMemory, group_scan);
        const double attention_cycles =
            static_cast<double>(total_candidates)
            / static_cast<double>(pa);
        result.activity.add(HwModule::kAttentionCompute,
                            attention_cycles);
        result.activity.add(HwModule::kKeyValueMemory, attention_cycles);
        result.activity.add(HwModule::kOutputDivision,
                            static_cast<double>(division_cycles));
        // Query read + output write traffic.
        result.activity.add(HwModule::kQueryOutputMemory,
                            1.0 + static_cast<double>(division_cycles));
        // The hash module computes the next query's hash during this
        // interval.
        if (i + 1 < n) {
            result.activity.add(HwModule::kHashComputation,
                                static_cast<double>(hash_per_vec));
        }

        // ---- Functional output ----
        const QueryOutput out =
            functional_.computeQueryOutput(ctx, i, bank_grants);
        std::copy(out.row.begin(), out.row.end(), result.output.row(i));
    }

    // Tail: the last query's output division drains after the loop.
    result.execute_cycles = exec_cycles + division_cycles;

    // Publish to the attached registry after the timing is final, so
    // instrumentation can never perturb the simulated cycle counts.
    if (stats_ != nullptr) {
        publishRunStats(result, *stats_, stats_prefix_);
    }
    return result;
}

} // namespace elsa
