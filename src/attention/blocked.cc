#include "attention/blocked.h"

#include <algorithm>

namespace elsa {

void
BlockedAttentionConfig::validate() const
{
    ELSA_CHECK(window > 0, "window must be positive");
}

BlockedSelfAttention::BlockedSelfAttention(BlockedAttentionConfig config)
    : config_(config)
{
    config_.validate();
}

std::vector<std::pair<std::size_t, std::size_t>>
BlockedSelfAttention::windows(std::size_t total_tokens) const
{
    ELSA_CHECK(total_tokens > 0, "empty sequence");
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    for (std::size_t begin = 0; begin < total_tokens;
         begin += config_.window) {
        ranges.emplace_back(begin,
                            std::min(total_tokens,
                                     begin + config_.window));
    }
    return ranges;
}

AttentionInput
BlockedSelfAttention::slice(const AttentionInput& input,
                            std::size_t begin, std::size_t end)
{
    const std::size_t rows = end - begin;
    const std::size_t d = input.d();
    AttentionInput out;
    out.query = Matrix(rows, d);
    out.key = Matrix(rows, d);
    out.value = Matrix(rows, d);
    for (std::size_t r = 0; r < rows; ++r) {
        std::copy(input.query.row(begin + r),
                  input.query.row(begin + r) + d, out.query.row(r));
        std::copy(input.key.row(begin + r),
                  input.key.row(begin + r) + d, out.key.row(r));
        std::copy(input.value.row(begin + r),
                  input.value.row(begin + r) + d, out.value.row(r));
    }
    return out;
}

BlockedAttentionResult
BlockedSelfAttention::forward(const AttentionInput& input) const
{
    input.validate();
    const std::size_t d = input.d();
    BlockedAttentionResult result;
    result.output = Matrix(input.n(), d);
    for (const auto& [begin, end] : windows(input.n())) {
        const AttentionInput window = slice(input, begin, end);
        const Matrix out = exactAttention(window);
        for (std::size_t r = 0; r < out.rows(); ++r) {
            std::copy(out.row(r), out.row(r) + d,
                      result.output.row(begin + r));
        }
        ++result.num_windows;
        result.window_macs +=
            exactAttentionMacs(window.n(), d);
    }
    return result;
}

void
BlockedSelfAttention::learnThresholds(
    const AttentionInput& train, double p,
    std::vector<ThresholdLearner>& learners) const
{
    train.validate();
    const auto ranges = windows(train.n());
    if (learners.size() < ranges.size()) {
        learners.resize(ranges.size(), ThresholdLearner(p));
    }
    for (std::size_t w = 0; w < ranges.size(); ++w) {
        const AttentionInput window =
            slice(train, ranges[w].first, ranges[w].second);
        learners[w].observe(window.query, window.key);
    }
}

BlockedAttentionResult
BlockedSelfAttention::forwardApprox(
    const AttentionInput& input, const ApproxSelfAttention& engine,
    const std::vector<double>& thresholds) const
{
    input.validate();
    const auto ranges = windows(input.n());
    ELSA_CHECK(thresholds.size() >= ranges.size(),
               "need a threshold per window: " << thresholds.size()
                                               << " < "
                                               << ranges.size());
    const std::size_t d = input.d();
    BlockedAttentionResult result;
    result.output = Matrix(input.n(), d);
    double fraction_sum = 0.0;
    for (std::size_t w = 0; w < ranges.size(); ++w) {
        const AttentionInput window =
            slice(input, ranges[w].first, ranges[w].second);
        const ApproxAttentionResult out =
            engine.run(window, thresholds[w]);
        for (std::size_t r = 0; r < out.output.rows(); ++r) {
            std::copy(out.output.row(r), out.output.row(r) + d,
                      result.output.row(ranges[w].first + r));
        }
        fraction_sum += out.stats.candidateFraction(window.n());
        ++result.num_windows;
        result.window_macs += exactAttentionMacs(window.n(), d);
    }
    result.mean_candidate_fraction =
        fraction_sum / static_cast<double>(ranges.size());
    return result;
}

} // namespace elsa
