#include "lsh/calibration.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "lsh/angle.h"
#include "lsh/srp.h"
#include "tensor/ops.h"

namespace elsa {

double
calibrateThetaBias(std::size_t d, std::size_t k, Rng& rng,
                   const BiasCalibrationOptions& options)
{
    ELSA_CHECK(options.num_pairs > 0 && options.num_hashers > 0,
               "calibration needs at least one pair and one hasher");
    std::vector<double> errors;
    errors.reserve(options.num_pairs * options.num_hashers);
    const std::size_t pairs_per_hasher =
        (options.num_pairs + options.num_hashers - 1)
        / options.num_hashers;

    std::vector<float> x(d);
    std::vector<float> y(d);
    for (std::size_t hi = 0; hi < options.num_hashers; ++hi) {
        const DenseSrpHasher hasher = DenseSrpHasher::makeRandom(k, d, rng);
        for (std::size_t p = 0; p < pairs_per_hasher; ++p) {
            for (std::size_t i = 0; i < d; ++i) {
                x[i] = static_cast<float>(rng.gaussian());
                y[i] = static_cast<float>(rng.gaussian());
            }
            const double cosine =
                dot(x.data(), y.data(), d)
                / (l2Norm(x.data(), d) * l2Norm(y.data(), d));
            const double truth =
                std::acos(std::clamp(cosine, -1.0, 1.0));
            const int ham = hammingDistance(hasher.hash(x.data()),
                                            hasher.hash(y.data()));
            errors.push_back(estimateAngle(ham, k) - truth);
        }
    }
    return percentile(std::move(errors), options.percentile);
}

double
thetaBiasFor(std::size_t d, std::size_t k, Rng& rng)
{
    if (d == 64 && k == 64) {
        return kThetaBias64;
    }
    return calibrateThetaBias(d, k, rng);
}

} // namespace elsa
