/**
 * @file
 * Unit and property tests for the LSH substrate: bit vectors,
 * Gram-Schmidt orthogonalization, dense and Kronecker SRP hashing,
 * angle estimation, and theta_bias calibration (Section III).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "lsh/angle.h"
#include "lsh/bitvector.h"
#include "lsh/calibration.h"
#include "lsh/orthogonal.h"
#include "lsh/srp.h"
#include "tensor/ops.h"

namespace elsa {
namespace {

TEST(HashValueTest, SetAndGetBits)
{
    HashValue h(70); // spans two words
    EXPECT_EQ(h.bits(), 70u);
    EXPECT_EQ(h.popcount(), 0);
    h.setBit(0, true);
    h.setBit(63, true);
    h.setBit(69, true);
    EXPECT_TRUE(h.bit(0));
    EXPECT_TRUE(h.bit(63));
    EXPECT_TRUE(h.bit(69));
    EXPECT_FALSE(h.bit(1));
    EXPECT_EQ(h.popcount(), 3);
    h.setBit(63, false);
    EXPECT_EQ(h.popcount(), 2);
}

TEST(HashValueTest, HammingDistanceBasics)
{
    HashValue a(64);
    HashValue b(64);
    EXPECT_EQ(hammingDistance(a, b), 0);
    a.setBit(5, true);
    EXPECT_EQ(hammingDistance(a, b), 1);
    b.setBit(5, true);
    EXPECT_EQ(hammingDistance(a, b), 0);
    b.setBit(63, true);
    a.setBit(0, true);
    EXPECT_EQ(hammingDistance(a, b), 2);
}

TEST(HashValueTest, HammingWidthMismatchThrows)
{
    EXPECT_THROW(hammingDistance(HashValue(64), HashValue(32)), Error);
}

TEST(GramSchmidtTest, ProducesOrthonormalRows)
{
    Rng rng(1);
    Matrix m(16, 64);
    m.fillGaussian(rng);
    modifiedGramSchmidt(m);
    EXPECT_LT(orthonormalityError(m), 1e-4);
}

TEST(GramSchmidtTest, FullSquareOrthogonal)
{
    Rng rng(2);
    Matrix m(32, 32);
    m.fillGaussian(rng);
    modifiedGramSchmidt(m);
    EXPECT_LT(orthonormalityError(m), 1e-3);
}

TEST(GramSchmidtTest, RejectsMoreRowsThanCols)
{
    Matrix m(5, 4);
    EXPECT_THROW(modifiedGramSchmidt(m), Error);
}

TEST(OrthogonalTest, ProjectionBatchesWhenKExceedsD)
{
    Rng rng(3);
    const Matrix m = randomOrthogonalProjection(24, 8, rng);
    EXPECT_EQ(m.rows(), 24u);
    EXPECT_EQ(m.cols(), 8u);
    // Each batch of 8 rows is orthonormal.
    for (std::size_t batch = 0; batch < 3; ++batch) {
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                const double g = dot(m.row(batch * 8 + i),
                                     m.row(batch * 8 + j), 8);
                EXPECT_NEAR(g, i == j ? 1.0 : 0.0, 1e-4);
            }
        }
    }
}

TEST(DenseSrpTest, HashIsDeterministic)
{
    Rng rng(4);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    std::vector<float> x(64);
    for (auto& v : x) {
        v = static_cast<float>(rng.gaussian());
    }
    EXPECT_EQ(hasher.hash(x), hasher.hash(x));
}

TEST(DenseSrpTest, OppositeVectorsHaveAllBitsFlipped)
{
    Rng rng(5);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    std::vector<float> x(64);
    std::vector<float> neg(64);
    for (std::size_t i = 0; i < 64; ++i) {
        x[i] = static_cast<float>(rng.gaussian());
        neg[i] = -x[i];
    }
    // sign() maps 0 to 1, but random projections are never exactly 0,
    // so h(-x) is the complement of h(x): Hamming distance = k.
    EXPECT_EQ(hammingDistance(hasher.hash(x), hasher.hash(neg)), 64);
}

TEST(DenseSrpTest, ScalingInvariance)
{
    Rng rng(6);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    std::vector<float> x(64);
    std::vector<float> scaled(64);
    for (std::size_t i = 0; i < 64; ++i) {
        x[i] = static_cast<float>(rng.gaussian());
        scaled[i] = 7.5f * x[i];
    }
    EXPECT_EQ(hasher.hash(x), hasher.hash(scaled));
}

TEST(DenseSrpTest, MultiplicationCount)
{
    Rng rng(7);
    const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
    EXPECT_EQ(hasher.multiplicationsPerHash(), 64u * 64u); // d^2
}

TEST(DenseSrpTest, HashRowsMatchesPerRowHash)
{
    Rng rng(8);
    const auto hasher = DenseSrpHasher::makeRandom(32, 64, rng);
    Matrix m(5, 64);
    m.fillGaussian(rng);
    const auto hashes = hasher.hashRows(m);
    ASSERT_EQ(hashes.size(), 5u);
    for (std::size_t r = 0; r < 5; ++r) {
        EXPECT_EQ(hashes[r], hasher.hash(m.row(r)));
    }
}

TEST(KroneckerSrpTest, ThreeWayProjectionMatchesDense)
{
    Rng rng(9);
    const auto kron = KroneckerSrpHasher::makeRandom(64, 3, rng);
    const Matrix dense = kron.denseProjection();
    ASSERT_EQ(dense.rows(), 64u);
    ASSERT_EQ(dense.cols(), 64u);
    std::vector<float> x(64);
    for (int trial = 0; trial < 20; ++trial) {
        for (auto& v : x) {
            v = static_cast<float>(rng.gaussian());
        }
        const std::vector<float> fast = kron.project(x.data());
        for (std::size_t i = 0; i < 64; ++i) {
            const double exact = dot(dense.row(i), x.data(), 64);
            EXPECT_NEAR(fast[i], exact, 1e-3)
                << "trial " << trial << " component " << i;
        }
    }
}

TEST(KroneckerSrpTest, TwoWayProjectionMatchesDense)
{
    Rng rng(10);
    const auto kron = KroneckerSrpHasher::makeRandom(64, 2, rng);
    const Matrix dense = kron.denseProjection();
    std::vector<float> x(64);
    for (auto& v : x) {
        v = static_cast<float>(rng.gaussian());
    }
    const std::vector<float> fast = kron.project(x.data());
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_NEAR(fast[i], dot(dense.row(i), x.data(), 64), 1e-3);
    }
}

TEST(KroneckerSrpTest, HashMatchesDenseProjectionSigns)
{
    Rng rng(11);
    const auto kron = KroneckerSrpHasher::makeRandom(64, 3, rng);
    const DenseSrpHasher dense(kron.denseProjection());
    std::vector<float> x(64);
    for (int trial = 0; trial < 50; ++trial) {
        for (auto& v : x) {
            v = static_cast<float>(rng.gaussian());
        }
        EXPECT_EQ(kron.hash(x.data()), dense.hash(x.data()));
    }
}

TEST(KroneckerSrpTest, MultiplicationCounts)
{
    Rng rng(12);
    // Section III-C: 2d^{3/2} for two factors, 3d^{4/3} for three.
    const auto two = KroneckerSrpHasher::makeRandom(64, 2, rng);
    EXPECT_EQ(two.multiplicationsPerHash(), 1024u);
    const auto three = KroneckerSrpHasher::makeRandom(64, 3, rng);
    EXPECT_EQ(three.multiplicationsPerHash(), 768u);
    // Both far below the dense d^2 = 4096.
    EXPECT_LT(three.multiplicationsPerHash(), 4096u);
}

TEST(KroneckerSrpTest, DenseProjectionIsOrthogonal)
{
    Rng rng(13);
    const auto kron = KroneckerSrpHasher::makeRandom(64, 3, rng);
    EXPECT_LT(orthonormalityError(kron.denseProjection()), 1e-3);
}

TEST(KroneckerSrpTest, RejectsNonPerfectPower)
{
    Rng rng(14);
    EXPECT_THROW(KroneckerSrpHasher::makeRandom(60, 3, rng), Error);
    EXPECT_THROW(KroneckerSrpHasher::makeRandom(50, 2, rng), Error);
}

TEST(KroneckerSrpTest, QuantizedFactorsStayNearOrthogonal)
{
    Rng rng(15);
    const auto kron = KroneckerSrpHasher::makeRandom(64, 3, rng,
                                                     true);
    // S0.5 quantization perturbs the factors; the product should
    // still be close to orthogonal.
    EXPECT_LT(orthonormalityError(kron.denseProjection()), 0.2);
}

TEST(AngleTest, EstimateEndpoints)
{
    EXPECT_DOUBLE_EQ(estimateAngle(0, 64), 0.0);
    EXPECT_DOUBLE_EQ(estimateAngle(64, 64), M_PI);
    EXPECT_DOUBLE_EQ(estimateAngle(32, 64), M_PI / 2.0);
}

TEST(AngleTest, EstimateRejectsOutOfRange)
{
    EXPECT_THROW(estimateAngle(-1, 64), Error);
    EXPECT_THROW(estimateAngle(65, 64), Error);
}

TEST(AngleTest, BiasCorrectionClampsAtZero)
{
    EXPECT_DOUBLE_EQ(correctedAngle(0, 64, 0.127), 0.0);
    EXPECT_DOUBLE_EQ(correctedAngle(1, 64, 0.127),
                     std::max(0.0, M_PI / 64.0 - 0.127));
    EXPECT_NEAR(correctedAngle(32, 64, 0.127), M_PI / 2.0 - 0.127,
                1e-12);
}

TEST(AngleTest, ApproximateSimilarityFormula)
{
    // hamming = 0 -> angle 0 -> similarity = norm.
    EXPECT_DOUBLE_EQ(approximateSimilarity(4.0, 0, 64, 0.127), 4.0);
    // hamming = k -> angle pi - bias -> cos < 0.
    EXPECT_LT(approximateSimilarity(4.0, 64, 64, 0.127), 0.0);
}

TEST(CosineLutTest, MatchesDirectFormula)
{
    const CosineLut lut(64, 0.127);
    EXPECT_EQ(lut.size(), 65u);
    for (int h = 0; h <= 64; ++h) {
        EXPECT_DOUBLE_EQ(lut.lookup(h),
                         std::cos(correctedAngle(h, 64, 0.127)));
    }
    EXPECT_THROW(lut.lookup(65), Error);
    EXPECT_THROW(lut.lookup(-1), Error);
}

TEST(CosineLutTest, MonotoneDecreasing)
{
    const CosineLut lut(64, 0.127);
    for (int h = 1; h <= 64; ++h) {
        EXPECT_LE(lut.lookup(h), lut.lookup(h - 1) + 1e-12);
    }
}

TEST(SrpEstimatorTest, AngleEstimateIsUnbiased)
{
    // Without bias correction, the mean estimator error over random
    // vector pairs is ~0 (Charikar's unbiasedness).
    Rng rng(16);
    RunningStat errors;
    std::vector<float> x(64);
    std::vector<float> y(64);
    for (int h = 0; h < 4; ++h) {
        const auto hasher = DenseSrpHasher::makeRandom(64, 64, rng);
        for (int i = 0; i < 500; ++i) {
            for (std::size_t c = 0; c < 64; ++c) {
                x[c] = static_cast<float>(rng.gaussian());
                y[c] = static_cast<float>(rng.gaussian());
            }
            const double cosine =
                dot(x.data(), y.data(), 64)
                / (l2Norm(x.data(), 64) * l2Norm(y.data(), 64));
            const double truth =
                std::acos(std::clamp(cosine, -1.0, 1.0));
            const int ham = hammingDistance(hasher.hash(x.data()),
                                            hasher.hash(y.data()));
            errors.add(estimateAngle(ham, 64) - truth);
        }
    }
    EXPECT_NEAR(errors.mean(), 0.0, 0.02);
}

TEST(SrpEstimatorTest, OrthogonalBeatsIndependentProjections)
{
    // Super-bit LSH claim: orthogonalized projections reduce the
    // estimator variance relative to i.i.d. Gaussian projections.
    Rng rng(17);
    RunningStat ortho_err;
    RunningStat iid_err;
    std::vector<float> x(64);
    std::vector<float> y(64);
    for (int h = 0; h < 6; ++h) {
        const auto ortho = DenseSrpHasher::makeRandom(64, 64, rng);
        Matrix iid_proj(64, 64);
        iid_proj.fillGaussian(rng);
        const DenseSrpHasher iid(std::move(iid_proj));
        for (int i = 0; i < 400; ++i) {
            for (std::size_t c = 0; c < 64; ++c) {
                x[c] = static_cast<float>(rng.gaussian());
                y[c] = static_cast<float>(rng.gaussian());
            }
            const double cosine =
                dot(x.data(), y.data(), 64)
                / (l2Norm(x.data(), 64) * l2Norm(y.data(), 64));
            const double truth =
                std::acos(std::clamp(cosine, -1.0, 1.0));
            const int ho = hammingDistance(ortho.hash(x.data()),
                                           ortho.hash(y.data()));
            const int hi = hammingDistance(iid.hash(x.data()),
                                           iid.hash(y.data()));
            const double eo = estimateAngle(ho, 64) - truth;
            const double ei = estimateAngle(hi, 64) - truth;
            ortho_err.add(eo * eo);
            iid_err.add(ei * ei);
        }
    }
    EXPECT_LT(ortho_err.mean(), iid_err.mean());
}

TEST(CalibrationTest, ThetaBiasNearPublishedValue)
{
    // Paper: theta_bias = 0.127 for d = k = 64 (80th percentile).
    Rng rng(18);
    BiasCalibrationOptions options;
    options.num_pairs = 8000;
    options.num_hashers = 4;
    const double bias = calibrateThetaBias(64, 64, rng, options);
    EXPECT_GT(bias, 0.08);
    EXPECT_LT(bias, 0.18);
}

TEST(CalibrationTest, HigherKGivesSmallerBias)
{
    // More hash bits -> lower estimator error -> smaller correction.
    Rng rng(19);
    BiasCalibrationOptions options;
    options.num_pairs = 4000;
    options.num_hashers = 2;
    const double bias_k32 = calibrateThetaBias(64, 32, rng, options);
    const double bias_k128 = calibrateThetaBias(64, 128, rng, options);
    EXPECT_LT(bias_k128, bias_k32);
}

TEST(CalibrationTest, ThetaBiasForUsesPublishedConstant)
{
    Rng rng(20);
    EXPECT_DOUBLE_EQ(thetaBiasFor(64, 64, rng), kThetaBias64);
}

} // namespace
} // namespace elsa
