/**
 * @file
 * Tests of the cycle-domain telemetry layer: exact conservation of
 * the binned stall channels against the run's StallBreakdown across
 * random pipeline configurations and bin widths, activity-channel
 * agreement with the energy activity counters, the guarantee that
 * recording telemetry never changes simulated results, the
 * telemetry-off byte-identity of stats dumps, the telemetry.json
 * document round-tripping through the JSON parser with its
 * conservation invariant intact, and the AcceleratorArray merge
 * equaling the serial sum of per-invocation series.
 *
 * Conservation is asserted here in ALL build types (the TimeSeries
 * unit invariants live in tests/obs_test.cc).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "lsh/srp.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "sim/accelerator.h"
#include "sim/array.h"
#include "sim/report.h"
#include "sim/stall.h"
#include "workload/generator.h"
#include "workload/model.h"

namespace elsa {
namespace {

std::shared_ptr<const SrpHasher>
makeHasher(std::uint64_t seed = 2024)
{
    Rng rng(seed);
    return std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng));
}

AttentionInput
makeInput(std::size_t n, std::uint64_t seed)
{
    QkvGenerator gen(bertLarge(), seed);
    return gen.generate(11, 3, n, 0);
}

std::string
stallChannelName(AttributedModule module, StallCause cause)
{
    std::string name = "stall.";
    name += attributedModuleMetricName(module);
    name += '.';
    name += stallCauseMetricName(cause);
    return name;
}

SimConfig
telemetryConfig(std::uint64_t bin_width)
{
    SimConfig config = SimConfig::paperConfig();
    config.attribute_stalls = true;
    config.telemetry.enabled = true;
    config.telemetry.bin_width_cycles = bin_width;
    return config;
}

// --- Conservation invariant -----------------------------------------

TEST(TelemetryTest, StallBinsConserveAcrossRandomConfigs)
{
    Rng rng(0x7E1E);
    const std::size_t pa_choices[] = {1, 2, 4, 8};
    const std::size_t pc_choices[] = {1, 4, 16};
    const std::uint64_t width_choices[] = {1, 7, 64, 256, 1024};
    const std::size_t n_choices[] = {16, 48, 96};

    auto hasher = makeHasher();
    for (int trial = 0; trial < 12; ++trial) {
        SimConfig config =
            telemetryConfig(width_choices[rng.uniformInt(5)]);
        config.pa = pa_choices[rng.uniformInt(4)];
        config.pc = pc_choices[rng.uniformInt(3)];
        config.validate();
        const AttentionInput input =
            makeInput(n_choices[rng.uniformInt(3)],
                      0x100 + static_cast<std::uint64_t>(trial));

        Accelerator accel(config, hasher, 0.0);
        const RunResult result = accel.run(input, 0.0);
        ASSERT_NE(result.telemetry, nullptr);
        const obs::TimeSeries& ts = *result.telemetry;
        EXPECT_EQ(ts.binWidth(), config.telemetry.bin_width_cycles);
        EXPECT_GE(ts.numBins() * ts.binWidth(),
                  result.totalCycles());

        for (const AttributedModule module :
             allAttributedModules()) {
            for (const StallCause cause : allStallCauses()) {
                if (cause == StallCause::kFaultRetry) {
                    // Channels exist only with fault injection.
                    EXPECT_FALSE(ts.hasChannel(
                        stallChannelName(module, cause)));
                    continue;
                }
                const std::string name =
                    stallChannelName(module, cause);
                ASSERT_TRUE(ts.hasChannel(name)) << name;
                // Integer spans spread with telescoped cumulative
                // rounding: the bin sum is exact, not approximate.
                EXPECT_EQ(ts.channelTotal(name),
                          static_cast<double>(
                              result.stall_breakdown.get(module,
                                                         cause)))
                    << name << " (trial " << trial << ")";
                for (const double bin : ts.channelBins(name)) {
                    EXPECT_GE(bin, 0.0) << name;
                }
            }
        }
    }
}

TEST(TelemetryTest, ActivityBinsSumToActivityCounters)
{
    const SimConfig config = telemetryConfig(128);
    Accelerator accel(config, makeHasher(), 0.0);
    const RunResult result = accel.run(makeInput(64, 0xAC7), 0.0);
    ASSERT_NE(result.telemetry, nullptr);
    for (const HwModule module : allHwModules()) {
        std::string name = "activity.";
        name += hwModuleMetricName(module);
        ASSERT_TRUE(result.telemetry->hasChannel(name)) << name;
        const double total = result.telemetry->channelTotal(name);
        const double expected = result.activity.get(module);
        EXPECT_NEAR(total, expected,
                    1e-9 * std::max(1.0, std::abs(expected)))
            << name;
    }
    EXPECT_TRUE(
        result.telemetry->hasChannel("queue.occupancy_cycles"));
    // One completion mark per query.
    EXPECT_EQ(result.telemetry->channelTotal("queries.completed"),
              static_cast<double>(result.candidates_per_query.size()));
}

// --- Non-perturbation -----------------------------------------------

TEST(TelemetryTest, TelemetryDoesNotChangeSimulatedResults)
{
    SimConfig config = SimConfig::paperConfig();
    config.attribute_stalls = true;
    config.collect_query_trace = true;
    auto hasher = makeHasher();
    const AttentionInput input = makeInput(48, 0xBEE);

    Accelerator plain(config, hasher, 0.0);
    const RunResult off = plain.run(input, 0.0);
    EXPECT_EQ(off.telemetry, nullptr);

    config.telemetry.enabled = true;
    Accelerator instrumented(config, hasher, 0.0);
    const RunResult on = instrumented.run(input, 0.0);
    ASSERT_NE(on.telemetry, nullptr);

    EXPECT_EQ(off.totalCycles(), on.totalCycles());
    EXPECT_EQ(off.preprocess_cycles, on.preprocess_cycles);
    EXPECT_EQ(off.execute_cycles, on.execute_cycles);
    EXPECT_EQ(off.empty_selections, on.empty_selections);
    EXPECT_EQ(off.candidates_per_query, on.candidates_per_query);
    for (const AttributedModule module : allAttributedModules()) {
        for (const StallCause cause : allStallCauses()) {
            EXPECT_EQ(off.stall_breakdown.get(module, cause),
                      on.stall_breakdown.get(module, cause));
        }
    }
    for (const HwModule module : allHwModules()) {
        EXPECT_DOUBLE_EQ(off.activity.get(module),
                         on.activity.get(module));
    }
}

TEST(TelemetryTest, DisabledTelemetryLeavesStatsDumpIdentical)
{
    // The digest family rides the telemetry gate: two telemetry-off
    // runs must dump byte-identically, with no digest metrics at all.
    SimConfig config = SimConfig::paperConfig();
    config.attribute_stalls = true;
    config.collect_query_trace = true;
    auto hasher = makeHasher();
    const AttentionInput input = makeInput(32, 0xD15);

    std::string dumps[2];
    for (std::string& dump : dumps) {
        Accelerator accel(config, hasher, 0.0);
        obs::StatsRegistry registry;
        publishRunStats(accel.run(input, 0.0), registry,
                        "sim.accel0");
        std::ostringstream os;
        registry.dumpJson(os);
        dump = os.str();
    }
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0].find("digest"), std::string::npos);
}

// --- telemetry.json -------------------------------------------------

TEST(TelemetryTest, JsonRoundTripsAndConserves)
{
    SimConfig config = telemetryConfig(256);
    config.collect_query_trace = true;
    Accelerator accel(config, makeHasher(), 0.0);
    const RunResult result = accel.run(makeInput(64, 0x15E), 0.0);
    ASSERT_NE(result.telemetry, nullptr);

    obs::StatsRegistry registry;
    publishRunStats(result, registry, "sim.accel0");
    std::ostringstream os;
    writeTelemetryJson(os, *result.telemetry, registry, "sim.accel0",
                       config, &result.query_trace);

    const obs::JsonValue doc = obs::parseJson(os.str());
    EXPECT_EQ(doc.at("schema_version").number_value, 1.0);
    EXPECT_EQ(doc.at("prefix").string_value, "sim.accel0");
    EXPECT_EQ(doc.at("bin_width_cycles").number_value, 256.0);
    const auto num_bins = static_cast<std::size_t>(
        doc.at("num_bins").number_value);
    EXPECT_EQ(num_bins, result.telemetry->numBins());

    const obs::JsonValue& channels = doc.at("channels");
    ASSERT_TRUE(channels.isObject());
    for (const auto& [name, bins] : channels.object_items) {
        ASSERT_TRUE(bins.isArray()) << name;
        // Every channel is padded onto the one shared time axis.
        EXPECT_EQ(bins.array_items.size(), num_bins) << name;
        if (name.rfind("stall.", 0) != 0) {
            continue;
        }
        double sum = 0.0;
        for (const obs::JsonValue& bin : bins.array_items) {
            sum += bin.number_value;
        }
        EXPECT_EQ(sum,
                  registry.counterValue("sim.accel0." + name))
            << name;
    }
    EXPECT_EQ(doc.at("energy").at("bin_total_uj")
                  .array_items.size(),
              num_bins);
    EXPECT_TRUE(doc.at("digests").has(
        "sim.accel0.latency.cycles_digest"));
    EXPECT_EQ(doc.at("query_intervals").array_items.size(),
              result.query_trace.size());
}

// --- Batch merge ----------------------------------------------------

TEST(TelemetryTest, ArrayMergeEqualsSerialSum)
{
    const SimConfig config = telemetryConfig(64);
    auto hasher = makeHasher();
    const AttentionInput a = makeInput(24, 1);
    const AttentionInput b = makeInput(48, 2);
    const AttentionInput c = makeInput(36, 3);

    Accelerator accel(config, hasher, 0.0);
    const RunResult ra = accel.run(a, 0.0);
    const RunResult rb = accel.run(b, 0.0);
    const RunResult rc = accel.run(c, 0.0);

    AcceleratorArray array(config, 2, hasher, 0.0);
    const ArrayRunResult merged =
        array.run({&a, &b, &c}, {0.0, 0.0, 0.0});
    ASSERT_NE(merged.telemetry, nullptr);

    for (const std::string& name :
         merged.telemetry->channelNames()) {
        double expected = 0.0;
        for (const RunResult* r : {&ra, &rb, &rc}) {
            if (r->telemetry->hasChannel(name)) {
                expected += r->telemetry->channelTotal(name);
            }
        }
        // Stall channels are integer-valued, activity channels are
        // float sums accumulated in the same order; both match the
        // serial per-run totals.
        EXPECT_NEAR(merged.telemetry->channelTotal(name), expected,
                    1e-9 * std::max(1.0, std::abs(expected)))
            << name;
    }
}

} // namespace
} // namespace elsa
