#!/usr/bin/env python3
"""elsa-lint: project-specific static analysis for the ELSA repo.

The repo promises invariants that unit tests can only sample:
bit-identical results at any thread count, exact stall/fault counter
conservation, a datapath model that never leaks unquantized doubles.
This pass pins the *source-level* half of those promises -- the
patterns that, when they appear at all, break an invariant somewhere
downstream -- so violations fail at lint time instead of surfacing as
a flaky metric diff months later.

Design constraints:

 - dependency-free: Python 3 stdlib only, no compiler, no pip;
 - deterministic: output ordering is (path, line, column, rule);
 - token/AST-lite: a small C++ lexer strips comments and string
   literals so rules match code, not prose, plus balanced-delimiter
   scanning for call arguments and switch bodies;
 - suppressable, with receipts: `// elsa-lint: allow(<rule>): <why>`
   on the offending line (or alone on the line above) silences one
   rule at one site.  A missing reason, an unknown rule id, or a
   suppression that never fires is itself a finding, so the
   suppression list cannot rot.

Rules are documented in docs/STATIC_ANALYSIS.md.  Run:

    python3 tools/lint/elsa_lint.py --root . src
    python3 tools/lint/elsa_lint.py --root . --self-test tests/lint

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------
# Lexing: blank out comments and literal contents, keep positions.
# --------------------------------------------------------------------


class Comment:
    __slots__ = ("line", "text", "trailing")

    def __init__(self, line, text, trailing):
        self.line = line          # 1-based line of the `//`
        self.text = text          # comment text without the `//`
        self.trailing = trailing  # code precedes it on the same line


class StringLiteral:
    __slots__ = ("line", "offset", "value")

    def __init__(self, line, offset, value):
        self.line = line      # 1-based
        self.offset = offset  # offset of the opening quote in the file
        self.value = value    # unescaped-enough: raw chars between quotes


def lex(text):
    """Return (code, literals, comments).

    `code` is the input with comment bodies and string/char literal
    contents replaced by spaces (newlines kept), so offsets and line
    numbers in `code` match the original exactly.
    """
    n = len(text)
    out = list(text)
    literals = []
    comments = []
    i = 0
    line = 1
    line_has_code = False

    def blank(j):
        if out[j] != "\n":
            out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            line += 1
            line_has_code = False
            i += 1
            continue
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                j += 1
            comments.append(
                Comment(line, text[i + 2 : j], line_has_code))
            for k in range(i, j):
                blank(k)
            i = j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            for k in range(i, j):
                blank(k)
            line += text.count("\n", i, j)
            i = j
            continue
        if c == '"':
            # Raw string literal?  `R"delim( ... )delim"`.
            if text[i - 1 : i] == "R" and (
                i < 2 or not text[i - 2].isalnum()
            ):
                m = re.match(r'R"([^ ()\\\n]{0,16})\(', text[i - 1 :])
                if m:
                    delim = m.group(1)
                    close = ")" + delim + '"'
                    j = text.find(close, i + len(m.group(0)) - 1)
                    j = n if j < 0 else j + len(close)
                    literals.append(
                        StringLiteral(
                            line, i,
                            text[i + len(m.group(0)) - 1 : j - len(close)],
                        ))
                    for k in range(i + 1, j - 1):
                        blank(k)
                    line += text.count("\n", i, j)
                    i = j
                    line_has_code = True
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            literals.append(StringLiteral(line, i, text[i + 1 : j]))
            for k in range(i + 1, j):
                blank(k)
            i = min(j + 1, n)
            line_has_code = True
            continue
        if c == "'":
            # C++14 digit separator: 1'000'000 is a number, not a char.
            if i > 0 and text[i - 1].isdigit() and nxt.isdigit():
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i + 1, j):
                blank(k)
            i = min(j + 1, n)
            line_has_code = True
            continue
        if not c.isspace():
            line_has_code = True
        i += 1
    return "".join(out), literals, comments


# --------------------------------------------------------------------
# Findings and suppressions.
# --------------------------------------------------------------------


class Finding:
    __slots__ = ("path", "line", "col", "rule", "message")

    def __init__(self, path, line, col, rule, message):
        self.path = path
        self.line = line
        self.col = col
        self.rule = rule
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s" % (
            self.path, self.line, self.rule, self.message)


SUPPRESS_RE = re.compile(
    r"elsa-lint:\s*allow\(\s*([A-Za-z0-9_,\s-]*)\s*\)\s*(?::\s*(\S.*))?")


class Suppression:
    __slots__ = ("line", "rules", "reason", "target_line", "used")

    def __init__(self, line, rules, reason, target_line):
        self.line = line
        self.rules = rules
        self.reason = reason
        self.target_line = target_line  # line the allowance applies to
        self.used = False


def parse_suppressions(src):
    """Suppressions plus the meta-findings they themselves raise."""
    sups = []
    metas = []
    known = {r.rule_id for r in RULES} | set(META_RULES)
    for comment in src.comments:
        m = SUPPRESS_RE.search(comment.text)
        if not m:
            if "elsa-lint:" in comment.text:
                metas.append(Finding(
                    src.display_path, comment.line, 1,
                    "suppression-syntax",
                    "unparsable elsa-lint directive; want "
                    "`elsa-lint: allow(<rule>): <reason>`"))
            continue
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        reason = (m.group(2) or "").strip()
        target = comment.line if comment.trailing else comment.line + 1
        if not rules:
            metas.append(Finding(
                src.display_path, comment.line, 1, "suppression-syntax",
                "allow() names no rule"))
            continue
        for rule in rules:
            if rule not in known:
                metas.append(Finding(
                    src.display_path, comment.line, 1,
                    "suppression-unknown-rule",
                    "allow(%s) names no known rule" % rule))
        if not reason:
            metas.append(Finding(
                src.display_path, comment.line, 1,
                "suppression-missing-reason",
                "allow(%s) carries no reason; every suppression "
                "must say why the site is exempt" % ",".join(rules)))
        sups.append(Suppression(comment.line, rules, reason, target))
    return sups, metas


# --------------------------------------------------------------------
# Per-file context.
# --------------------------------------------------------------------

PRETEND_RE = re.compile(r"elsa-lint-pretend:\s*(\S+)")


class SourceFile:
    def __init__(self, path, rel, text):
        self.path = path
        self.text = text
        self.code, self.literals, self.comments = lex(text)
        self.code_lines = self.code.split("\n")
        # Fixtures under tests/lint/ impersonate a src/ path so the
        # scoping logic (src/fixed/ exemptions etc.) can be tested.
        self.rel = rel
        for comment in self.comments:
            m = PRETEND_RE.search(comment.text)
            if m:
                self.rel = m.group(1)
                break
        self.display_path = rel

    def in_dir(self, prefix):
        return self.rel.startswith(prefix)


def line_offsets(code):
    offsets = [0]
    for i, c in enumerate(code):
        if c == "\n":
            offsets.append(i + 1)
    return offsets


def offset_to_line(offsets, pos):
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def match_balanced(code, open_pos, open_ch="(", close_ch=")"):
    """Offset one past the delimiter matching code[open_pos]."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


# --------------------------------------------------------------------
# Rule framework.
# --------------------------------------------------------------------


class Rule:
    rule_id = ""
    description = ""

    def check(self, src, ctx):
        raise NotImplementedError


META_RULES = (
    "suppression-syntax",
    "suppression-unknown-rule",
    "suppression-missing-reason",
    "suppression-unused",
)


def finding(src, line, col, rule, message):
    return Finding(src.display_path, line, col, rule, message)


def scan_lines(src, pattern, rule, message):
    for lineno, code_line in enumerate(src.code_lines, start=1):
        for m in pattern.finditer(code_line):
            yield finding(src, lineno, m.start() + 1, rule,
                          message % {"match": m.group(0).strip()})


# ---- determinism ----------------------------------------------------


class NoWallclockRule(Rule):
    rule_id = "no-wallclock"
    description = (
        "wall-clock, PRNG-seeding, and environment reads are banned in "
        "src/: simulated results must be a pure function of the config "
        "(docs/PARALLELISM.md determinism contract)")

    PATTERN = re.compile(
        r"(?:\b\w*clock\s*::\s*now\s*\("
        r"|\bstd::time\b|(?<![\w:.])time\s*\("
        r"|\blocaltime\s*\(|\bgmtime\s*\(|\bgettimeofday\s*\("
        r"|\bclock_gettime\s*\("
        r"|\bstd::rand\b|(?<![\w:.])s?rand\s*\("
        r"|\brandom_device\b"
        r"|\bgetenv\s*\()")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        yield from scan_lines(
            src, self.PATTERN, self.rule_id,
            "nondeterministic source `%(match)s` in src/; results "
            "must depend only on SimConfig (suppress with a reason "
            "if this site is genuinely observability-only)")


class NoUnorderedContainerRule(Rule):
    rule_id = "no-unordered-container"
    description = (
        "std::unordered_{map,set} are banned in src/: their iteration "
        "order is implementation-defined and can leak into metrics, "
        "traces, and reduction order")

    PATTERN = re.compile(
        r"(?:\bstd::unordered_(?:multi)?(?:map|set)\b"
        r"|#\s*include\s*<unordered_(?:map|set)>)")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        yield from scan_lines(
            src, self.PATTERN, self.rule_id,
            "`%(match)s` has implementation-defined iteration order; "
            "use std::map / std::vector + sort so dumps stay "
            "bit-identical across platforms and thread counts")


# ---- metrics hygiene ------------------------------------------------


METRIC_CALL_RE = re.compile(
    r"\.\s*(counter|distribution|histogram|counterValue"
    r"|channel|digest|digestValue)\s*\(")
SPAN_CALL_RE = re.compile(r"\bspanMetricName\s*\(")
METRIC_SEGMENT_RE = re.compile(r"[a-z0-9_]+\Z")


class MetricNameRule(Rule):
    """Grammar + documentation + single-registration for metric names.

    Metric names are built as `prefix + ".suffix"`, so the literals at
    a registry call site are *fragments*.  Each fragment must follow
    the [a-z0-9_.] grammar; each dotted fragment (a full metric tail
    such as ".cycles.total") must appear in the metric tables of
    docs/OBSERVABILITY.md and be registered at exactly one site.
    TimeSeries channel names and quantile-digest names live in the
    same namespace, so `.channel(...)` / `.digest(...)` sites are
    held to the same rules.

    Span metric names are composed by `spanMetricName(prefix, module,
    field)`, where the field literal is the whole vocabulary word
    ("queue_wait_cycles"), not a fragment of a longer dotted path.
    Literals at spanMetricName() sites therefore get the grammar
    check *and* the documentation check even when single-segment, and
    are exempt from single-registration bookkeeping (the same field
    legitimately registers once per module).
    """

    rule_id = "metric-name"
    description = (
        "string literals at StatsRegistry / TimeSeries / "
        "spanMetricName call sites must follow the [a-z0-9_.] "
        "grammar, be documented in docs/OBSERVABILITY.md, and (for "
        "registry sites) be registered exactly once")

    REGISTERING = {"counter", "distribution", "histogram", "channel",
                   "digest"}

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        offsets = line_offsets(src.code)
        # spanMetricName() argument spans are carved out of the
        # generic registry scan below: their literals follow the span
        # contract (documented even when single-segment) and would
        # otherwise be skipped as single-segment fragments.
        span_regions = []
        for m in SPAN_CALL_RE.finditer(src.code):
            open_pos = src.code.index("(", m.end() - 1)
            close_pos = match_balanced(src.code, open_pos)
            span_regions.append((open_pos, close_pos))
            for lit in src.literals:
                if not (open_pos < lit.offset < close_pos):
                    continue
                line = offset_to_line(offsets, lit.offset)
                yield from self.check_span_literal(src, ctx, lit, line)
        for m in METRIC_CALL_RE.finditer(src.code):
            method = m.group(1)
            open_pos = src.code.index("(", m.end() - 1)
            close_pos = match_balanced(src.code, open_pos)
            for lit in src.literals:
                if not (open_pos < lit.offset < close_pos):
                    continue
                if any(lo < lit.offset < hi
                       for lo, hi in span_regions):
                    continue  # already held to the span contract
                line = offset_to_line(offsets, lit.offset)
                yield from self.check_literal(
                    src, ctx, method, lit, line)

    def check_span_literal(self, src, ctx, lit, line):
        value = lit.value
        stripped = value.strip(".")
        if stripped == "":
            yield finding(
                src, line, 1, self.rule_id,
                "span name fragment '%s' is empty separators" % value)
            return
        for segment in stripped.split("."):
            if not METRIC_SEGMENT_RE.match(segment):
                yield finding(
                    src, line, 1, self.rule_id,
                    "span name fragment '%s' violates the [a-z0-9_.] "
                    "grammar (segment '%s'); lowercase dotted paths "
                    "only, see docs/OBSERVABILITY.md"
                    % (value, segment))
                return
        if ctx.doc_text is not None and stripped not in ctx.doc_text:
            yield finding(
                src, line, 1, self.rule_id,
                "span field '%s' is not documented in "
                "docs/OBSERVABILITY.md; add it to the span metric "
                "table or fix the name" % stripped)

    def check_literal(self, src, ctx, method, lit, line):
        value = lit.value
        stripped = value.strip(".")
        if stripped == "":
            if value != ".":
                yield finding(
                    src, line, 1, self.rule_id,
                    "metric fragment '%s' is empty separators" % value)
            return
        for segment in stripped.split("."):
            if not METRIC_SEGMENT_RE.match(segment):
                yield finding(
                    src, line, 1, self.rule_id,
                    "metric fragment '%s' violates the [a-z0-9_.] "
                    "grammar (segment '%s'); lowercase dotted paths "
                    "only, see docs/OBSERVABILITY.md" % (value, segment))
                return
        if "." not in stripped:
            return  # single-segment fragment of a computed name
        if ctx.doc_text is not None and stripped not in ctx.doc_text:
            yield finding(
                src, line, 1, self.rule_id,
                "metric '%s' is not documented in "
                "docs/OBSERVABILITY.md; add it to the metric table "
                "or fix the name" % stripped)
        if method in self.REGISTERING:
            site = (src.display_path, line)
            first = ctx.metric_sites.setdefault(stripped, site)
            if first != site:
                yield finding(
                    src, line, 1, self.rule_id,
                    "metric '%s' already registered at %s:%d; declare "
                    "each metric at exactly one site so kind and "
                    "semantics have one owner" % (stripped, *first))


# ---- enum exhaustiveness --------------------------------------------


ENUM_DECL_RE = re.compile(r"\benum\s+(?:class|struct)\s+(\w+)")
SWITCH_RE = re.compile(r"\bswitch\s*\(")
CASE_RE = re.compile(r"\bcase\s+((?:\w+\s*::\s*)+)\w+\s*:")
DEFAULT_RE = re.compile(r"\bdefault\s*:")


class EnumSwitchDefaultRule(Rule):
    rule_id = "enum-switch-default"
    description = (
        "switches over project enums must not carry a `default:` "
        "label: adding an enumerator (a seventh StallCause, a new "
        "fault Protection) must be a -Wswitch compile error at every "
        "dispatch site, not a silent misattribution")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        offsets = line_offsets(src.code)
        yield from self.scan(src, ctx, src.code, 0, offsets)

    def scan(self, src, ctx, code, base, offsets):
        for m in SWITCH_RE.finditer(code):
            open_paren = code.index("(", m.start())
            after_cond = match_balanced(code, open_paren)
            brace = code.find("{", after_cond)
            if brace < 0:
                continue
            end = match_balanced(code, brace, "{", "}")
            body = code[brace + 1 : end - 1]
            yield from self.check_switch(
                src, ctx, body, base + brace + 1, offsets)

    def check_switch(self, src, ctx, body, base, offsets):
        # Blank nested switch statements so their labels don't bleed
        # into this switch's analysis (each nest is scanned on its own).
        flat = body
        for m in SWITCH_RE.finditer(body):
            open_paren = body.index("(", m.start())
            after_cond = match_balanced(body, open_paren)
            brace = body.find("{", after_cond)
            if brace < 0:
                continue
            end = match_balanced(body, brace, "{", "}")
            flat = flat[:brace] + " " * (end - brace) + flat[end:]
            yield from self.check_switch(
                src, ctx, body[brace + 1 : end - 1],
                base + brace + 1, offsets)
        enum_names = set()
        for m in CASE_RE.finditer(flat):
            qualifier = [p for p in re.split(
                r"\s*::\s*", m.group(1)) if p]
            if qualifier and qualifier[-1] in ctx.project_enums:
                enum_names.add(qualifier[-1])
        if not enum_names:
            return
        for m in DEFAULT_RE.finditer(flat):
            line = offset_to_line(offsets, base + m.start())
            yield finding(
                src, line, 1, self.rule_id,
                "`default:` in a switch over project enum %s hides "
                "missing enumerators from -Wswitch; enumerate every "
                "case and panic after the switch instead"
                % "/".join(sorted(enum_names)))


# ---- fixed-point hygiene --------------------------------------------


class FixedPointEscapeRule(Rule):
    rule_id = "fixedpoint-raw-escape"
    description = (
        "raw fixed-point access (.raw()/fromRaw) outside src/fixed/ "
        "and double conversion operators anywhere: the Section IV-E "
        "datapath model is honest only if quantization happens through "
        "the format types' fromReal/toReal boundaries")

    RAW_PATTERN = re.compile(r"(?:\.\s*raw\s*\(|\bfromRaw\s*\()")
    CONV_PATTERN = re.compile(
        r"(?:\boperator\s+(?:double|float)\b"
        r"|(?<!explicit\s)(?<!\w)(?:FixedPoint|CustomFloat)\s*\(\s*"
        r"(?:double|float)\b)")

    def check(self, src, ctx):
        if not src.in_dir("src/"):
            return
        if not src.in_dir("src/fixed/"):
            yield from scan_lines(
                src, self.RAW_PATTERN, self.rule_id,
                "raw fixed-point access `%(match)s` outside "
                "src/fixed/; model datapath behaviour via "
                "fromReal/toReal/quantize<> so rounding and "
                "saturation stay inside the format types")
        yield from scan_lines(
            src, self.CONV_PATTERN, self.rule_id,
            "`%(match)s` enables implicit double<->fixed conversion; "
            "conversions must stay explicit (fromReal/toReal) so "
            "quantization points are visible in the code")


# ---- SIMD containment -----------------------------------------------


class NoRawIntrinsicsRule(Rule):
    rule_id = "no-raw-intrinsics"
    description = (
        "raw SIMD intrinsics (immintrin/arm_neon includes, _mm*/v*q_* "
        "calls, __builtin_popcount*, __builtin_cpu_supports) are "
        "confined to src/common/simd/: the rest of src/ consumes the "
        "dispatched KernelTable, so the bit-identity contract of "
        "common/simd/simd.h is proven in one place")

    PATTERN = re.compile(
        r"(?:#\s*include\s*<(?:immintrin|x86intrin|emmintrin"
        r"|xmmintrin|pmmintrin|smmintrin|tmmintrin|nmmintrin"
        r"|wmmintrin|avxintrin|avx2intrin|arm_neon|arm_sve"
        r"|arm_acle)\.h>"
        r"|\b_mm\d*_\w+\s*\("
        r"|\bv[a-z0-9]+(?:_[a-z0-9]+)*_(?:s|u|f|p)(?:8|16|32|64)\s*\("
        r"|\b__builtin_popcount(?:l|ll)?\s*\("
        r"|\b__builtin_cpu_supports\s*\()")

    def check(self, src, ctx):
        if not src.in_dir("src/") or src.in_dir("src/common/simd/"):
            return
        yield from scan_lines(
            src, self.PATTERN, self.rule_id,
            "raw intrinsic `%(match)s` outside src/common/simd/; go "
            "through simd::kernels() (or std::popcount for single "
            "words) so every ISA-specific path stays behind the "
            "bit-identical dispatch table")


RULES = [
    NoWallclockRule(),
    NoUnorderedContainerRule(),
    MetricNameRule(),
    EnumSwitchDefaultRule(),
    FixedPointEscapeRule(),
    NoRawIntrinsicsRule(),
]


# --------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------


class Context:
    def __init__(self, project_enums, doc_text):
        self.project_enums = project_enums
        self.doc_text = doc_text
        self.metric_sites = {}


CXX_SUFFIXES = (".cc", ".h")


def collect_files(root, paths):
    files = []
    for p in paths:
        absolute = os.path.join(root, p)
        if os.path.isfile(absolute):
            files.append((absolute, p.replace(os.sep, "/")))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CXX_SUFFIXES):
                    full = os.path.join(dirpath, name)
                    rel = os.path.relpath(full, root)
                    files.append((full, rel.replace(os.sep, "/")))
    return files


def discover_enums(sources):
    enums = set()
    for src in sources:
        for m in ENUM_DECL_RE.finditer(src.code):
            enums.add(m.group(1))
    return enums


def lint_sources(sources, ctx):
    all_findings = []
    for src in sources:
        sups, metas = parse_suppressions(src)
        raw = []
        for rule in RULES:
            raw.extend(rule.check(src, ctx))
        kept = []
        for f in raw:
            suppressed = False
            for sup in sups:
                if f.line == sup.target_line and f.rule in sup.rules:
                    sup.used = True
                    suppressed = True
            if not suppressed:
                kept.append(f)
        for sup in sups:
            if not sup.used:
                metas.append(finding(
                    src, sup.line, 1, "suppression-unused",
                    "allow(%s) suppresses nothing on line %d; remove "
                    "it so the allow-list mirrors reality"
                    % (",".join(sup.rules), sup.target_line)))
        all_findings.extend(kept)
        all_findings.extend(metas)
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return all_findings


def build_context(root, sources):
    # Project enums are discovered from the real headers even when only
    # a subset of files is linted, so fixtures see the true enum set.
    headers = collect_files(root, ["src"])
    header_sources = [
        SourceFile(p, rel, read_text(p)) for p, rel in headers
        if p.endswith(".h")
    ]
    enums = discover_enums(header_sources + list(sources))
    doc_path = os.path.join(root, "docs", "OBSERVABILITY.md")
    doc_text = read_text(doc_path) if os.path.exists(doc_path) else None
    return Context(enums, doc_text)


def read_text(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def run_lint(root, paths):
    sources = [
        SourceFile(p, rel, read_text(p))
        for p, rel in collect_files(root, paths)
    ]
    ctx = build_context(root, sources)
    return lint_sources(sources, ctx)


# --------------------------------------------------------------------
# Self-test: every fixture must produce exactly its golden findings.
# --------------------------------------------------------------------


def self_test(root, fixture_dir):
    fixtures = os.path.join(root, fixture_dir, "fixtures")
    expected_dir = os.path.join(root, fixture_dir, "expected")
    names = sorted(
        n for n in os.listdir(fixtures) if n.endswith(CXX_SUFFIXES))
    if not names:
        print("elsa-lint self-test: no fixtures in %s" % fixtures)
        return 2
    failures = 0
    fired_rules = set()
    for name in names:
        path = os.path.join(fixtures, name)
        src = SourceFile(path, fixture_dir + "/fixtures/" + name,
                         read_text(path))
        ctx = build_context(root, [src])
        got = [
            "%d: %s" % (f.line, f.rule)
            for f in lint_sources([src], ctx)
        ]
        fired_rules.update(line.split(": ", 1)[1] for line in got)
        golden_path = os.path.join(
            expected_dir, os.path.splitext(name)[0] + ".expected")
        want = []
        if os.path.exists(golden_path):
            want = [
                line.strip()
                for line in read_text(golden_path).splitlines()
                if line.strip() and not line.startswith("#")
            ]
        if got != want:
            failures += 1
            print("FAIL %s" % name)
            print("  expected: %s" % (want or "(nothing)"))
            print("  got:      %s" % (got or "(nothing)"))
        else:
            print("ok   %s (%d findings)" % (name, len(got)))
    # A rule with no firing fixture could break silently; refuse.
    silent = {r.rule_id for r in RULES} - fired_rules
    meta_silent = set(META_RULES) - fired_rules
    for rule in sorted(silent | meta_silent):
        failures += 1
        print("FAIL rule '%s' fires on no fixture; add a known-bad "
              "snippet so a broken rule cannot pass silently" % rule)
    if failures:
        print("elsa-lint self-test: %d failure(s)" % failures)
        return 1
    print("elsa-lint self-test: all %d fixtures ok, all %d rules "
          "covered" % (len(names), len(RULES) + len(META_RULES)))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="ELSA project-specific static analysis")
    parser.add_argument(
        "--root", default=".",
        help="repository root (default: cwd)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print rule ids and descriptions")
    parser.add_argument(
        "--self-test", metavar="DIR",
        help="run the fixture self-tests under DIR (tests/lint)")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint, relative to --root "
             "(default: src)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print("%-24s %s" % (rule.rule_id, rule.description))
        for rule in META_RULES:
            print("%-24s (suppression bookkeeping)" % rule)
        return 0
    if args.self_test:
        return self_test(args.root, args.self_test)

    findings = run_lint(args.root, args.paths or ["src"])
    for f in findings:
        print(f.render())
    if findings:
        print("elsa-lint: %d finding(s)" % len(findings))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
