/**
 * @file
 * Tests of the per-query lifecycle span layer: exact conservation of
 * every record's queue-wait / service / stall components against its
 * end-to-end cycles across random pipeline configurations, the
 * reconciliation of whole-run span totals against the stall
 * attribution counters, the guarantee that recording spans never
 * changes simulated results (and that spans-off stats dumps stay
 * byte-identical, with no span metrics at all), the spans.json
 * document round-tripping through the JSON parser with its
 * invariants intact, deterministic exemplar selection, the
 * AcceleratorArray merge re-tagging invocations in order, and
 * conservation surviving the fault-retry bubble.
 *
 * Conservation is asserted here in ALL build types via the public
 * API (the ELSA_DASSERT in obs/span.cc compiles out under NDEBUG),
 * so the tests request enough exemplars to retain every record.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"
#include "lsh/srp.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "sim/accelerator.h"
#include "sim/array.h"
#include "sim/report.h"
#include "sim/stall.h"
#include "workload/generator.h"
#include "workload/model.h"

namespace elsa {
namespace {

std::shared_ptr<const SrpHasher>
makeHasher(std::uint64_t seed = 2024)
{
    Rng rng(seed);
    return std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng));
}

AttentionInput
makeInput(std::size_t n, std::uint64_t seed)
{
    QkvGenerator gen(bertLarge(), seed);
    return gen.generate(11, 3, n, 0);
}

/** Paper config with spans on and every record retained (the
 *  exemplar cut would otherwise hide records from the checks). */
SimConfig
spanConfig(std::size_t exemplar_count = 4096)
{
    SimConfig config = SimConfig::paperConfig();
    config.attribute_stalls = true;
    config.query_spans.enabled = true;
    config.query_spans.exemplar_count = exemplar_count;
    return config;
}

std::size_t
stageIndex(AttributedModule module)
{
    return static_cast<std::size_t>(module);
}

std::size_t
causeIndex(StallCause cause)
{
    return static_cast<std::size_t>(cause);
}

// --- Conservation invariant -----------------------------------------

TEST(SpanTest, ComponentsConserveAcrossRandomConfigs)
{
    Rng rng(0x59A7);
    const std::size_t pa_choices[] = {1, 2, 4, 8};
    const std::size_t pc_choices[] = {1, 4, 16};
    const std::size_t n_choices[] = {1, 16, 48, 96};

    auto hasher = makeHasher();
    for (int trial = 0; trial < 12; ++trial) {
        SimConfig config = spanConfig();
        config.pa = pa_choices[rng.uniformInt(4)];
        config.pc = pc_choices[rng.uniformInt(3)];
        config.validate();
        const AttentionInput input =
            makeInput(n_choices[rng.uniformInt(4)],
                      0x200 + static_cast<std::uint64_t>(trial));

        Accelerator accel(config, hasher, 0.0);
        const RunResult result = accel.run(input, 0.0);
        ASSERT_NE(result.spans, nullptr);
        const obs::QuerySpanSet& spans = *result.spans;
        EXPECT_TRUE(spans.finalized());
        EXPECT_EQ(spans.numQueries(), input.n());
        // exemplar_count >= n retains every record.
        ASSERT_EQ(spans.records().size(), input.n());

        std::uint64_t end_to_end_sum = 0;
        for (const obs::QuerySpanRecord& record : spans.records()) {
            EXPECT_TRUE(record.conserves())
                << "query " << record.query << " sums to "
                << record.componentSum() << ", end-to-end is "
                << record.endToEnd() << " (trial " << trial << ")";
            EXPECT_LE(record.exit_cycle, result.totalCycles());
            end_to_end_sum += record.endToEnd();
        }
        // The frozen totals cover the same cycles the records do.
        std::uint64_t total_sum = 0;
        for (std::size_t s = 0; s < spans.numStages(); ++s) {
            total_sum += spans.stageQueueWaitTotal(s)
                         + spans.stageServiceTotal(s)
                         + spans.stageStallTotal(s);
        }
        EXPECT_EQ(total_sum, end_to_end_sum)
            << "stage totals drift from record sums (trial " << trial
            << ")";
        EXPECT_EQ(spans.totalDigest().count(), input.n());
    }
}

// --- Reconciliation against stall attribution ------------------------

TEST(SpanTest, TotalsReconcileAgainstStallCounters)
{
    const SimConfig config = spanConfig();
    Accelerator accel(config, makeHasher(), 0.0);
    const RunResult result = accel.run(makeInput(64, 0x5EC), 0.0);
    ASSERT_NE(result.spans, nullptr);
    const obs::QuerySpanSet& spans = *result.spans;

    // Single-lane output division: every busy lane-cycle is one
    // query's service wall-cycle, so the totals match exactly.
    EXPECT_EQ(spans.stageServiceTotal(
                  stageIndex(AttributedModule::kOutputDivision)),
              result.stall_breakdown.get(AttributedModule::kOutputDivision,
                                         StallCause::kBusy));
    // Each key is hashed once in preprocessing and once per pipeline
    // interval, so the hash unit's busy cycles are exactly twice the
    // per-query hash service.
    EXPECT_EQ(2 * spans.stageServiceTotal(
                      stageIndex(AttributedModule::kHash)),
              result.stall_breakdown.get(AttributedModule::kHash,
                                         StallCause::kBusy));
    // Candidate-selection stalls are wall cycles; attribution counts
    // lane-cycles over pa*pc lanes, so wall can never exceed it.
    EXPECT_LE(spans.stageStallTotal(
                  stageIndex(AttributedModule::kCandidateSelection)),
              result.stall_breakdown.get(
                  AttributedModule::kCandidateSelection,
                  StallCause::kBankConflict));
}

// --- Non-perturbation ------------------------------------------------

TEST(SpanTest, SpansDoNotChangeSimulatedResults)
{
    SimConfig config = SimConfig::paperConfig();
    config.attribute_stalls = true;
    config.collect_query_trace = true;
    auto hasher = makeHasher();
    const AttentionInput input = makeInput(48, 0x0FF);

    Accelerator plain(config, hasher, 0.0);
    const RunResult off = plain.run(input, 0.0);
    EXPECT_EQ(off.spans, nullptr);

    config.query_spans.enabled = true;
    Accelerator instrumented(config, hasher, 0.0);
    const RunResult on = instrumented.run(input, 0.0);
    ASSERT_NE(on.spans, nullptr);

    EXPECT_EQ(off.totalCycles(), on.totalCycles());
    EXPECT_EQ(off.preprocess_cycles, on.preprocess_cycles);
    EXPECT_EQ(off.execute_cycles, on.execute_cycles);
    EXPECT_EQ(off.empty_selections, on.empty_selections);
    EXPECT_EQ(off.candidates_per_query, on.candidates_per_query);
    for (const AttributedModule module : allAttributedModules()) {
        for (const StallCause cause : allStallCauses()) {
            EXPECT_EQ(off.stall_breakdown.get(module, cause),
                      on.stall_breakdown.get(module, cause));
        }
    }
}

TEST(SpanTest, DisabledSpansLeaveStatsDumpIdentical)
{
    // The span metric family rides the query_spans gate: spans-off
    // runs must dump byte-identically with no span metrics at all.
    SimConfig config = SimConfig::paperConfig();
    config.attribute_stalls = true;
    auto hasher = makeHasher();
    const AttentionInput input = makeInput(32, 0x0D5);

    std::string dumps[2];
    for (std::string& dump : dumps) {
        Accelerator accel(config, hasher, 0.0);
        obs::StatsRegistry registry;
        publishRunStats(accel.run(input, 0.0), registry,
                        "sim.accel0");
        std::ostringstream os;
        registry.dumpJson(os);
        dump = os.str();
    }
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0].find(".span."), std::string::npos);
}

// --- spans.json ------------------------------------------------------

TEST(SpanTest, JsonRoundTripsAndConserves)
{
    const SimConfig config = spanConfig(8);
    Accelerator accel(config, makeHasher(), 0.0);
    const RunResult result = accel.run(makeInput(96, 0x15E), 0.0);
    ASSERT_NE(result.spans, nullptr);

    std::ostringstream os;
    writeSpansJson(os, *result.spans, "sim.accel0", config);
    const obs::JsonValue doc = obs::parseJson(os.str());

    EXPECT_EQ(doc.at("schema_version").number_value, 1.0);
    EXPECT_EQ(doc.at("prefix").string_value, "sim.accel0");
    EXPECT_EQ(doc.at("exemplar_count").number_value, 8.0);
    EXPECT_EQ(doc.at("num_queries").number_value, 96.0);

    const obs::JsonValue& stages = doc.at("stages");
    ASSERT_TRUE(stages.isArray());
    ASSERT_EQ(stages.array_items.size(), kNumAttributedModules);
    for (std::size_t s = 0; s < kNumAttributedModules; ++s) {
        EXPECT_EQ(stages.array_items[s].string_value,
                  attributedModuleMetricName(allAttributedModules()[s]));
    }
    const obs::JsonValue& causes = doc.at("stall_causes");
    ASSERT_TRUE(causes.isArray());
    EXPECT_EQ(causes.array_items.size(), kNumStallCauses);

    // Totals round-trip against the in-memory set.
    const obs::JsonValue& totals = doc.at("totals");
    ASSERT_TRUE(totals.isObject());
    for (std::size_t s = 0; s < kNumAttributedModules; ++s) {
        const obs::JsonValue& stage = totals.at(
            attributedModuleMetricName(allAttributedModules()[s]));
        EXPECT_EQ(stage.at("queue_wait_cycles").number_value,
                  static_cast<double>(
                      result.spans->stageQueueWaitTotal(s)));
        EXPECT_EQ(stage.at("service_cycles").number_value,
                  static_cast<double>(
                      result.spans->stageServiceTotal(s)));
        EXPECT_EQ(stage.at("stall_cycles").number_value,
                  static_cast<double>(
                      result.spans->stageStallTotal(s)));
    }

    // Invocation summaries cover every query once.
    const obs::JsonValue& invocations = doc.at("invocations");
    ASSERT_TRUE(invocations.isArray());
    double invocation_queries = 0.0;
    for (const obs::JsonValue& entry : invocations.array_items) {
        invocation_queries += entry.at("queries").number_value;
    }
    EXPECT_EQ(invocation_queries, 96.0);

    // Every serialized exemplar conserves: the component sum of its
    // stage objects equals its end_to_end_cycles exactly.
    const obs::JsonValue& exemplars = doc.at("exemplars");
    ASSERT_TRUE(exemplars.isArray());
    ASSERT_FALSE(exemplars.array_items.empty());
    for (const obs::JsonValue& e : exemplars.array_items) {
        EXPECT_TRUE(e.at("slowest").bool_value
                    || e.at("decile").bool_value);
        EXPECT_EQ(e.at("end_to_end_cycles").number_value,
                  e.at("exit_cycle").number_value
                      - e.at("entry_cycle").number_value);
        double component_sum = 0.0;
        for (const auto& [name, stage] : e.at("stages").object_items) {
            component_sum += stage.at("queue_wait").number_value
                             + stage.at("service").number_value;
            if (stage.has("stall")) {
                for (const auto& [cause, cycles] :
                     stage.at("stall").object_items) {
                    component_sum += cycles.number_value;
                }
            }
        }
        EXPECT_EQ(component_sum, e.at("end_to_end_cycles").number_value)
            << "serialized query "
            << e.at("query").number_value << " does not conserve";
    }
}

// --- Exemplar selection ----------------------------------------------

TEST(SpanTest, ExemplarSelectionIsDeterministicAndBounded)
{
    const SimConfig config = spanConfig(8);
    auto hasher = makeHasher();
    const AttentionInput input = makeInput(96, 0xE8E);

    std::string documents[2];
    for (std::string& document : documents) {
        Accelerator accel(config, hasher, 0.0);
        const RunResult result = accel.run(input, 0.0);
        ASSERT_NE(result.spans, nullptr);

        std::size_t slowest = 0;
        for (const obs::QuerySpanRecord& record :
             result.spans->records()) {
            EXPECT_TRUE(record.slowest_exemplar
                        || record.decile_exemplar);
            if (record.slowest_exemplar) {
                ++slowest;
            }
        }
        EXPECT_EQ(slowest, 8u);
        // At most K slowest + 10 decile representatives survive; the
        // digests still cover every query.
        EXPECT_LE(result.spans->records().size(), 18u);
        EXPECT_EQ(result.spans->totalDigest().count(), 96u);

        std::ostringstream os;
        writeSpansJson(os, *result.spans, "sim.accel0", config);
        document = os.str();
    }
    EXPECT_EQ(documents[0], documents[1]);
}

// --- AcceleratorArray merge ------------------------------------------

TEST(SpanTest, ArrayMergeTagsInvocationsInOrder)
{
    const SimConfig config = spanConfig();
    auto hasher = makeHasher();
    QkvGenerator gen(bertLarge(), 99);
    const AttentionInput in0 = gen.generate(0, 0, 40, 0);
    const AttentionInput in1 = gen.generate(1, 0, 24, 1);
    const AttentionInput in2 = gen.generate(2, 1, 56, 2);
    const std::size_t sizes[] = {40, 24, 56};

    AcceleratorArray array(config, 3, hasher, 0.0);
    const ArrayRunResult merged =
        array.run({&in0, &in1, &in2}, {0.0, 0.0, 0.0});
    ASSERT_NE(merged.spans, nullptr);
    EXPECT_EQ(merged.spans->numQueries(), 120u);

    ASSERT_EQ(merged.spans->invocations().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(merged.spans->invocations()[i].invocation, i);
        EXPECT_EQ(merged.spans->invocations()[i].queries, sizes[i]);
    }
    for (const obs::QuerySpanRecord& record :
         merged.spans->records()) {
        EXPECT_LT(record.invocation, 3u);
        EXPECT_LT(record.query, sizes[record.invocation]);
    }

    // The merged totals equal the serial sum of per-input runs.
    const AttentionInput* inputs[] = {&in0, &in1, &in2};
    std::vector<std::uint64_t> expected(
        kNumAttributedModules * 3, 0);
    for (const AttentionInput* input : inputs) {
        Accelerator accel(config, hasher, 0.0);
        const RunResult result = accel.run(*input, 0.0);
        ASSERT_NE(result.spans, nullptr);
        for (std::size_t s = 0; s < kNumAttributedModules; ++s) {
            expected[3 * s] += result.spans->stageQueueWaitTotal(s);
            expected[3 * s + 1] += result.spans->stageServiceTotal(s);
            expected[3 * s + 2] += result.spans->stageStallTotal(s);
        }
    }
    for (std::size_t s = 0; s < kNumAttributedModules; ++s) {
        EXPECT_EQ(merged.spans->stageQueueWaitTotal(s),
                  expected[3 * s]);
        EXPECT_EQ(merged.spans->stageServiceTotal(s),
                  expected[3 * s + 1]);
        EXPECT_EQ(merged.spans->stageStallTotal(s),
                  expected[3 * s + 2]);
    }
}

// --- Fault-retry bubble ----------------------------------------------

TEST(SpanTest, FaultRetryBubbleKeepsConservation)
{
    SimConfig config = spanConfig();
    config.fault.enabled = true;
    config.fault.bit_error_rate = 2e-4;
    config.fault.protection = ProtectionMode::kParityDetect;
    Accelerator accel(config, makeHasher(), 0.0);
    const RunResult result = accel.run(makeInput(64, 0xFA1), 0.0);
    ASSERT_NE(result.spans, nullptr);

    std::uint64_t span_retry = 0;
    for (const obs::QuerySpanRecord& record :
         result.spans->records()) {
        EXPECT_TRUE(record.conserves())
            << "query " << record.query
            << " does not conserve under fault injection";
        for (std::size_t s = 0; s < result.spans->numStages(); ++s) {
            span_retry += record.stages[s].stall[causeIndex(
                StallCause::kFaultRetry)];
        }
    }
    // The end-of-run bubble is charged to the single-lane output
    // division, where wall cycles and lane cycles coincide.
    EXPECT_LE(span_retry,
              result.stall_breakdown.get(
                  AttributedModule::kOutputDivision,
                  StallCause::kFaultRetry));
}

} // namespace
} // namespace elsa
