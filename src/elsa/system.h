#ifndef ELSA_ELSA_SYSTEM_H_
#define ELSA_ELSA_SYSTEM_H_

/**
 * @file
 * ElsaSystem: the evaluation driver behind the paper's Figures
 * 11 and 13 and the Section V-E comparisons.
 *
 * For one model-dataset workload it
 *  - picks the hyperparameter p per operating mode (conservative /
 *    moderate / aggressive accuracy-loss bounds, Section V-C),
 *  - runs the cycle-level simulator over a sample of attention
 *    invocations,
 *  - and reports throughput / latency / energy, normalized against
 *    the GPU and ideal-accelerator baselines.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/gpu_model.h"
#include "baselines/ideal.h"
#include "energy/energy_model.h"
#include "sim/array.h"
#include "workload/accuracy.h"
#include "workload/workload.h"

namespace elsa {

/** Configuration of one ElsaSystem evaluation. */
struct SystemConfig
{
    /** Per-accelerator pipeline configuration. */
    SimConfig sim = SimConfig::paperConfig();

    /** Batch-parallel replication (12 in the paper). */
    std::size_t num_accelerators = 12;

    /** Fidelity-evaluation knobs (threshold learning + Fig. 10). */
    WorkloadEvalOptions eval;

    /** Inputs per sublayer fed to the cycle simulator. */
    std::size_t sim_inputs = 4;

    /** Sublayer subsample fed to the cycle simulator. */
    std::size_t sim_sublayers = 6;

    void validate() const;
};

/** Everything Fig. 11 / Fig. 13 report for one mode of one workload. */
struct ModeReport
{
    ApproxMode mode = ApproxMode::kBase;
    double p = 0.0;

    /** Mean candidate fraction the simulator observed. */
    double candidate_fraction = 1.0;

    /** Accuracy-loss proxy at this p. */
    double estimated_loss_pct = 0.0;

    /** Steady-state ELSA throughput (ops/s, all accelerators). */
    double elsa_ops_per_second = 0.0;

    /** Mean ELSA per-op latency (s), preprocessing included. */
    double elsa_latency_s = 0.0;

    /** Fraction of per-op time spent preprocessing. */
    double preprocess_fraction = 0.0;

    /** GPU throughput (ops/s) for the same workload. */
    double gpu_ops_per_second = 0.0;

    /** Fig. 11a: ELSA throughput / GPU throughput. */
    double throughput_vs_gpu = 0.0;

    /** Fig. 11b: ELSA latency / ideal-accelerator latency. */
    double latency_vs_ideal = 0.0;

    /** Mean per-op ELSA energy (uJ). */
    double elsa_energy_per_op_uj = 0.0;

    /** Fig. 13a: (ELSA perf/W) / (GPU perf/W). */
    double energy_eff_vs_gpu = 0.0;

    /** Fig. 13b: per-module-group energy breakdown (uJ per op). */
    EnergyBreakdown energy_breakdown;

    /**
     * Merged stall-cause breakdown over the simulated invocations;
     * all-zero unless SystemConfig::sim.attribute_stalls was set.
     * Feed to computeBottleneck() (sim/report.h) to name the
     * limiting pipeline module.
     */
    StallBreakdown stall_breakdown;

    /** Total simulated cycles behind stall_breakdown. */
    std::size_t simulated_cycles = 0;
};

/** Evaluation driver of one workload. */
class ElsaSystem
{
  public:
    ElsaSystem(WorkloadSpec spec, SystemConfig config,
               std::uint64_t seed = 0x5eed);

    const WorkloadRunner& runner() const { return runner_; }
    const SystemConfig& config() const { return config_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Route every simulated run's stats/trace into the given sinks
     * (non-owning; pass nullptr to detach). Counters land under
     * `<prefix>.*`; tracing additionally needs
     * config.sim.emit_trace = true.
     */
    void attachObservability(obs::StatsRegistry* stats,
                             obs::TraceWriter* trace,
                             std::string prefix = "sim.accel0");

    /**
     * Fidelity evaluation at one p (cached: repeated calls with the
     * same p reuse the result). Used for mode selection and Fig. 10.
     * Safe to call from multiple threads: concurrent callers of the
     * same p share one evaluation, and the returned reference stays
     * valid for the system's lifetime.
     */
    const WorkloadEvaluation& fidelityAt(double p);

    /**
     * The p chosen for a mode (largest grid p within the bound).
     * Prefetches the whole standard p grid through the thread pool
     * before the serial scan -- the chosen p (and every cached
     * evaluation) is identical at any thread count because each
     * grid point's evaluation depends only on (p, seed).
     */
    double chooseP(ApproxMode mode);

    /** Full report (simulator + baselines + energy) for one mode. */
    ModeReport evaluateMode(ApproxMode mode);

    /** Reports for base / conservative / moderate / aggressive. */
    std::vector<ModeReport> evaluateAllModes();

  private:
    /** Run the cycle simulator at hyperparameter p. */
    ModeReport simulateAtP(ApproxMode mode, double p);

    /**
     * One fidelity-cache cell. std::map nodes are address-stable, so
     * a cell can be filled through its once_flag without holding
     * fidelity_m_ (which only guards the map structure itself).
     */
    struct FidelityCell
    {
        std::once_flag once;
        WorkloadEvaluation value;
    };

    WorkloadSpec spec_;
    SystemConfig config_;
    std::uint64_t seed_;
    WorkloadRunner runner_;
    std::mutex fidelity_m_;
    std::map<double, FidelityCell> fidelity_cache_;

    /** Observability sinks (non-owning; see attachObservability). */
    obs::StatsRegistry* stats_ = nullptr;
    obs::TraceWriter* trace_ = nullptr;
    std::string stats_prefix_ = "sim.accel0";
};

} // namespace elsa

#endif // ELSA_ELSA_SYSTEM_H_
