/**
 * @file
 * EXP-EXT3 (extension): overload resilience of the serving engine
 * (docs/SERVING.md).
 *
 * ELSA's approximation fidelity `p` is a knob trading accuracy for
 * throughput (Section V-C), which makes *fidelity degradation* a
 * principled overload response: shed accuracy before shedding
 * requests. This bench sweeps offered load x policy (static base-p
 * vs. the graceful-degradation ladder) over the canonical overload
 * scenario -- identical arrival traces per load point -- and
 * reports goodput, shed rate, deadline-miss rate, and p99 latency
 * against the SLO.
 */

#include <cstdio>
#include <exception>

#include "bench_common.h"
#include "serve_overload.h"

int
main(int argc, char** argv)
{
    using namespace elsa;
    try {
        const ArgParser args(argc, argv, {"manifest", "quick"});
        bench::printHeader(
            "Extension: serving overload sweep",
            "Offered load x policy (static vs. degradation ladder) "
            "on the canonical\noverload scenario; goodput, shedding, "
            "and p99 latency vs. the SLO.");

        const bool quick = args.has("quick");
        const bench::ServeOverloadResult result =
            bench::runServeOverloadSweep(quick);
        std::printf("\n%s",
                    bench::formatServeOverloadTable(result).c_str());
        std::printf(
            "\nUnder 2x overload the ladder trades fidelity for "
            "goodput: strictly less\nshedding than the static policy "
            "on the identical arrival trace, with p99\nheld under "
            "the deadline.\n");

        obs::RunManifest manifest = bench::makeBenchManifest(
            "ext_serve_overload", bench::standardSystemConfig());
        manifest.set("config", "quick", quick);
        bench::addServeOverloadMetrics(manifest, result);
        bench::emitBenchSummary(manifest, args);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
