#ifndef ELSA_FIXED_UNITS_H_
#define ELSA_FIXED_UNITS_H_

/**
 * @file
 * Special functional units of the ELSA accelerator (Section IV-E).
 *
 * - ExpUnit computes e^x through the identity
 *   e^x = 2^((log2 e) x) = 2^frac((log2 e) x) * 2^floor((log2 e) x),
 *   where 2^frac(.) comes from a 32-entry lookup table.
 * - ReciprocalUnit computes 1/x for a floating-point value with five
 *   fraction bits through a 32-entry lookup table indexed by the
 *   mantissa's fraction bits.
 * - SqrtUnit computes sqrt(x) with the tabulate-and-multiply scheme
 *   (Takagi; Istoan & Pasca): a table lookup on the mantissa's high
 *   bits followed by one multiplication with a modified operand.
 *
 * Each unit is a bit-faithful functional model: the same LUT contents
 * a synthesized design would hold, the same rounding, and accuracy
 * bounds asserted by the unit tests.
 */

#include <array>
#include <cstdint>

#include "fixed/custom_float.h"

namespace elsa {

/** LUT-based exponent unit: e^x in the ELSA custom float format. */
class ExpUnit
{
  public:
    /** Number of entries in the 2^frac lookup table. */
    static constexpr int kLutSize = 32;

    ExpUnit();

    /**
     * Compute e^x, quantized to the pipeline's custom float format.
     * Saturates at the format's largest magnitude for very large x and
     * flushes to zero for very small results.
     */
    double compute(double x) const;

    /** Raw LUT entry i = round(2^(i/32)) in 5-fraction-bit precision. */
    double lutEntry(int index) const;

    /**
     * Overwrite one LUT entry. Fault-injection support (src/fault):
     * models a bit flip in the hardware table's SRAM. Never called on
     * the pristine unit a simulator owns -- the injector corrupts a
     * private copy per run.
     */
    void corruptEntry(int index, double value);

  private:
    std::array<double, kLutSize> lut_;
};

/** 32-entry lookup-table reciprocal unit for 5-fraction-bit floats. */
class ReciprocalUnit
{
  public:
    static constexpr int kLutSize = 32;

    ReciprocalUnit();

    /**
     * Compute 1/x. x must be nonzero; the sign is preserved.
     * The result carries the precision of a 5-fraction-bit mantissa.
     */
    double compute(double x) const;

    /** Raw LUT entry for mantissa (1 + i/32). */
    double lutEntry(int index) const;

    /** Overwrite one LUT entry (fault injection; see ExpUnit). */
    void corruptEntry(int index, double value);

  private:
    std::array<double, kLutSize> lut_;
};

/** Tabulate-and-multiply square root unit. */
class SqrtUnit
{
  public:
    /** Entries in the mantissa-segment table (6 index bits). */
    static constexpr int kTableSize = 64;

    SqrtUnit();

    /** Compute sqrt(x); x must be >= 0. */
    double compute(double x) const;

  private:
    // Table over mantissa segments of [1, 4): using a [1,4) range lets
    // the unit fold the exponent's parity into the table index, so the
    // remaining exponent is always even and halving it is a shift.
    std::array<double, kTableSize> table_;
};

} // namespace elsa

#endif // ELSA_FIXED_UNITS_H_
