#include "common/logging.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace elsa {

namespace {

/** Parse an ELSA_LOG_LEVEL value; fall back to kWarn on junk. */
LogLevel
parseLogLevel(const char* text)
{
    const std::string s(text);
    if (s == "debug") {
        return LogLevel::kDebug;
    }
    if (s == "info") {
        return LogLevel::kInfo;
    }
    if (s == "warn" || s == "warning") {
        return LogLevel::kWarn;
    }
    if (s == "error") {
        return LogLevel::kError;
    }
    if (s == "none" || s == "off") {
        return LogLevel::kNone;
    }
    std::cerr << "[elsa warn] ignoring unknown ELSA_LOG_LEVEL '" << s
              << "' (want debug|info|warn|error|none)\n";
    return LogLevel::kWarn;
}

LogLevel&
currentLevel()
{
    static LogLevel level = [] {
        // elsa-lint: allow(no-wallclock): ELSA_LOG_LEVEL selects stderr verbosity only; log output is not part of any result or metric
        const char* env = std::getenv("ELSA_LOG_LEVEL");
        return env != nullptr ? parseLogLevel(env) : LogLevel::kWarn;
    }();
    return level;
}

const char*
levelName(LogLevel level)
{
    switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kNone: return "none";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return currentLevel();
}

void
setLogLevel(LogLevel level)
{
    currentLevel() = level;
}

namespace detail {

void
raiseError(const char* kind, const char* file, int line,
           const std::string& message)
{
    std::ostringstream oss;
    oss << "[elsa " << kind << "] " << file << ":" << line << ": "
        << message;
    throw Error(oss.str());
}

bool
logEnabled(LogLevel level)
{
    return level >= currentLevel() && currentLevel() != LogLevel::kNone
           && level != LogLevel::kNone;
}

void
logMessage(LogLevel level, const char* file, int line,
           const std::string& message)
{
    std::cerr << "[elsa " << levelName(level) << "] " << file << ":"
              << line << ": " << message << '\n';
}

} // namespace detail
} // namespace elsa
