/**
 * @file
 * Unit tests for the hardware number formats (Section IV-E):
 * fixed-point quantization, the custom float format, and the LUT
 * functional units (exponent, reciprocal, square root).
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "common/rng.h"
#include "fixed/custom_float.h"
#include "fixed/fixed_point.h"
#include "fixed/units.h"

namespace elsa {
namespace {

// ---------------------------------------------------------------------
// Compile-time pins. The number formats are constexpr, so the Q-format
// widths, the ties-to-even rounding, and the saturation bounds are
// asserted at compile time: a change to any of them fails the build
// here before it can skew a simulation result. Runtime tests below
// additionally pin that constant evaluation and runtime agree.
// ---------------------------------------------------------------------

// S5.3 input format: 9 bits total, scale 8, raw range [-256, 255].
static_assert(InputFixed::kTotalBits == 9);
static_assert(InputFixed::kScale == 8);
static_assert(InputFixed::kRawMax == 255);
static_assert(InputFixed::kRawMin == -256);
static_assert(InputFixed::step() == 0.125);
static_assert(InputFixed::maxReal() == 31.875);
static_assert(InputFixed::minReal() == -32.0);

// S0.5 hash-matrix format: 6 bits total, scale 32.
static_assert(HashMatrixFixed::kTotalBits == 6);
static_assert(HashMatrixFixed::kScale == 32);
static_assert(HashMatrixFixed::kRawMax == 31);
static_assert(HashMatrixFixed::kRawMin == -32);

// Rounding is to nearest with ties to even: 1.0625 scales to raw 8.5
// (rounds down to even 8) while 1.1875 scales to raw 9.5 (rounds up
// to even 10).
static_assert(InputFixed::fromReal(1.0625).raw() == 8);
static_assert(InputFixed::fromReal(1.1875).raw() == 10);
static_assert(InputFixed::fromReal(1.06).toReal() == 1.0);
static_assert(InputFixed::fromReal(1.07).toReal() == 1.125);
static_assert(quantize<5, 3>(1.06) == 1.0);

// Saturation clamps to the raw range in both fromReal and fromRaw.
static_assert(InputFixed::fromReal(100.0).raw() == InputFixed::kRawMax);
static_assert(InputFixed::fromReal(-100.0).raw() == InputFixed::kRawMin);
static_assert(InputFixed::fromRaw(1000).raw() == 255);
static_assert(InputFixed::fromRaw(-1000).raw() == -256);

// Custom float: 10 exponent bits -> bias 511; round-to-nearest-even
// at 5 fraction bits; saturate at maxMagnitude; flush below
// minNormal.
static_assert(kElsaFloatFormat.bias() == 511);
static_assert(kElsaFloatFormat.maxMagnitude() > 1e150);
static_assert(kElsaFloatFormat.minNormal() < 1e-150);
static_assert(quantizeToCustomFloat(1.5) == 1.5);
static_assert(quantizeToCustomFloat(1.0 + 1.0 / 64.0) == 1.0);
static_assert(quantizeToCustomFloat(1.0 + 3.0 / 64.0) == 1.0 + 1.0 / 16.0);
static_assert(quantizeToCustomFloat(kElsaFloatFormat.maxMagnitude() * 4.0)
              == kElsaFloatFormat.maxMagnitude());
static_assert(quantizeToCustomFloat(-kElsaFloatFormat.maxMagnitude() * 4.0)
              == -kElsaFloatFormat.maxMagnitude());
static_assert(quantizeToCustomFloat(kElsaFloatFormat.minNormal() / 4.0)
              == 0.0);
static_assert(CustomFloat::fromReal(1.0)
                  .add(CustomFloat::fromReal(1.0 / 64.0))
                  .toReal()
              == 1.0);
static_assert(CustomFloat::fromReal(1.5)
                  .mul(CustomFloat::fromReal(2.0))
                  .toReal()
              == 3.0);

TEST(FixedPointTest, InputFormatProperties)
{
    // S5.3: 9 bits total, step 1/8, range [-32, 31.875].
    EXPECT_EQ(InputFixed::kTotalBits, 9);
    EXPECT_DOUBLE_EQ(InputFixed::step(), 0.125);
    EXPECT_DOUBLE_EQ(InputFixed::maxReal(), 31.875);
    EXPECT_DOUBLE_EQ(InputFixed::minReal(), -32.0);
}

TEST(FixedPointTest, HashMatrixFormatProperties)
{
    // S0.5: 6 bits total, step 1/32.
    EXPECT_EQ(HashMatrixFixed::kTotalBits, 6);
    EXPECT_DOUBLE_EQ(HashMatrixFixed::step(), 1.0 / 32.0);
}

TEST(FixedPointTest, RoundsToNearest)
{
    EXPECT_DOUBLE_EQ(InputFixed::fromReal(1.0).toReal(), 1.0);
    EXPECT_DOUBLE_EQ(InputFixed::fromReal(1.06).toReal(), 1.0);
    EXPECT_DOUBLE_EQ(InputFixed::fromReal(1.07).toReal(), 1.125);
    EXPECT_DOUBLE_EQ(InputFixed::fromReal(-0.06).toReal(), -0.0625 * 0.0);
}

TEST(FixedPointTest, SaturatesAtRangeLimits)
{
    EXPECT_DOUBLE_EQ(InputFixed::fromReal(100.0).toReal(), 31.875);
    EXPECT_DOUBLE_EQ(InputFixed::fromReal(-100.0).toReal(), -32.0);
}

TEST(FixedPointTest, QuantizationErrorBoundedByHalfStep)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-31.0, 31.0);
        const double q = quantize<5, 3>(x);
        EXPECT_LE(std::abs(q - x), 0.0625 + 1e-12);
    }
}

TEST(FixedPointTest, RawRoundTrip)
{
    const auto fp = InputFixed::fromRaw(17);
    EXPECT_EQ(fp.raw(), 17);
    EXPECT_DOUBLE_EQ(fp.toReal(), 17.0 / 8.0);
}

TEST(CustomFloatTest, FormatRange)
{
    // 10 exponent bits -> bias 511.
    EXPECT_EQ(kElsaFloatFormat.bias(), 511);
    EXPECT_GT(kElsaFloatFormat.maxMagnitude(), 1e150);
    EXPECT_LT(kElsaFloatFormat.minNormal(), 1e-150);
}

TEST(CustomFloatTest, ExactForRepresentableValues)
{
    // 1.0, 2.0, 1.5 and friends are exactly representable with
    // 5 fraction bits.
    for (const double v : {1.0, 2.0, 1.5, 0.75, -3.25, 1024.0}) {
        EXPECT_DOUBLE_EQ(quantizeToCustomFloat(v), v);
    }
}

TEST(CustomFloatTest, RelativeErrorBounded)
{
    // 5 fraction bits -> relative error <= 2^-6.
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const double x = std::exp(rng.uniform(-50.0, 50.0));
        const double q = quantizeToCustomFloat(x);
        EXPECT_LE(std::abs(q - x) / x, std::ldexp(1.0, -6) + 1e-12);
    }
}

TEST(CustomFloatTest, SaturatesAndFlushes)
{
    const double max = kElsaFloatFormat.maxMagnitude();
    EXPECT_DOUBLE_EQ(quantizeToCustomFloat(max * 4.0), max);
    EXPECT_DOUBLE_EQ(quantizeToCustomFloat(-max * 4.0), -max);
    EXPECT_DOUBLE_EQ(
        quantizeToCustomFloat(kElsaFloatFormat.minNormal() / 4.0), 0.0);
    EXPECT_DOUBLE_EQ(quantizeToCustomFloat(0.0), 0.0);
}

TEST(CustomFloatTest, ArithmeticRequantizes)
{
    const CustomFloat a = CustomFloat::fromReal(1.0);
    const CustomFloat b = CustomFloat::fromReal(1.0 / 64.0);
    // 1 + 1/64 is not representable with 5 fraction bits; the sum
    // rounds back to 1.0 (round-to-nearest-even at the half step).
    EXPECT_DOUBLE_EQ(a.add(b).toReal(), 1.0);
    EXPECT_DOUBLE_EQ(a.mul(CustomFloat::fromReal(2.0)).toReal(), 2.0);
}

TEST(CustomFloatTest, CompileTimeAgreesWithRuntime)
{
    // The constexpr implementations branch on is_constant_evaluated():
    // the compile-time path is pure C++, the runtime path is the libm
    // calls the formats have always made. Both are exact, so they
    // must agree bit for bit; pin that on values that exercise the
    // rounding, saturation, and flush branches.
    static constexpr std::array<double, 15> kInputs = {
        0.0,    1.0,    1.5,  1.0 + 1.0 / 64.0, 1.0 + 3.0 / 64.0,
        -3.25,  1024.0, 1e-200, -1e-200,        1e200,
        -1e200, 1e160,  0.3,  -0.7,             123456.789,
    };
    // Materialized during constant evaluation: these take the pure
    // compile-time branches of the fixed_detail helpers.
    static constexpr std::array<double, kInputs.size()> kCompileTime = [] {
        std::array<double, kInputs.size()> out{};
        for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] = quantizeToCustomFloat(kInputs[i]);
        }
        return out;
    }();
    for (std::size_t i = 0; i < kInputs.size(); ++i) {
        volatile double rt_in = kInputs[i]; // force the runtime path
        EXPECT_DOUBLE_EQ(quantizeToCustomFloat(rt_in), kCompileTime[i])
            << "x = " << kInputs[i];
    }

    static constexpr std::array<double, 8> kFixedInputs = {
        0.0, 1.0625, 1.1875, 1.06, 1.07, 100.0, -100.0, -0.06};
    static constexpr std::array<std::int32_t, kFixedInputs.size()>
        kFixedRaw = [] {
        std::array<std::int32_t, kFixedInputs.size()> out{};
        for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] = InputFixed::fromReal(kFixedInputs[i]).raw();
        }
        return out;
    }();
    for (std::size_t i = 0; i < kFixedInputs.size(); ++i) {
        volatile double rt_in = kFixedInputs[i];
        EXPECT_EQ(InputFixed::fromReal(rt_in).raw(), kFixedRaw[i])
            << "x = " << kFixedInputs[i];
    }
}

TEST(ExpUnitTest, LutContentsArePowersOfTwo)
{
    ExpUnit unit;
    EXPECT_DOUBLE_EQ(unit.lutEntry(0), 1.0);
    for (int i = 1; i < ExpUnit::kLutSize; ++i) {
        const double expected = std::exp2(i / 32.0);
        EXPECT_NEAR(unit.lutEntry(i), expected, 0.02);
        EXPECT_GT(unit.lutEntry(i), unit.lutEntry(i - 1) - 1e-9);
    }
    EXPECT_THROW(unit.lutEntry(32), Error);
}

TEST(ExpUnitTest, RelativeErrorBounded)
{
    // 32-entry LUT: segment width 1/32 in the exponent -> worst
    // relative error ~ 2^(1/32) - 1 ~ 2.2%, plus output rounding.
    ExpUnit unit;
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(-20.0, 20.0);
        const double approx = unit.compute(x);
        const double exact = std::exp(x);
        EXPECT_LE(std::abs(approx - exact) / exact, 0.04)
            << "x = " << x;
    }
}

TEST(ExpUnitTest, HandlesLargeNegativeInputs)
{
    ExpUnit unit;
    EXPECT_GE(unit.compute(-600.0), 0.0);
    EXPECT_LE(unit.compute(-600.0), 1e-150);
}

TEST(ExpUnitTest, MonotoneNondecreasing)
{
    ExpUnit unit;
    double prev = 0.0;
    for (double x = -10.0; x <= 10.0; x += 0.05) {
        const double v = unit.compute(x);
        EXPECT_GE(v, prev - 1e-12) << "x = " << x;
        prev = v;
    }
}

TEST(ReciprocalUnitTest, RelativeErrorBounded)
{
    // 32 mantissa segments with midpoint entries: worst relative
    // error ~ 1/64 plus rounding.
    ReciprocalUnit unit;
    Rng rng(9);
    for (int i = 0; i < 2000; ++i) {
        const double x = std::exp(rng.uniform(-30.0, 30.0));
        const double approx = unit.compute(x);
        const double exact = 1.0 / x;
        EXPECT_LE(std::abs(approx - exact) / exact, 0.035)
            << "x = " << x;
    }
}

TEST(ReciprocalUnitTest, PreservesSign)
{
    ReciprocalUnit unit;
    EXPECT_GT(unit.compute(4.0), 0.0);
    EXPECT_LT(unit.compute(-4.0), 0.0);
    EXPECT_NEAR(unit.compute(-2.0), -0.5, 0.02);
}

TEST(ReciprocalUnitTest, RejectsZero)
{
    ReciprocalUnit unit;
    EXPECT_THROW(unit.compute(0.0), Error);
}

TEST(SqrtUnitTest, ExactForZeroAndPowersOfFour)
{
    SqrtUnit unit;
    EXPECT_DOUBLE_EQ(unit.compute(0.0), 0.0);
    for (const double x : {1.0, 4.0, 16.0, 64.0, 256.0}) {
        EXPECT_NEAR(unit.compute(x), std::sqrt(x),
                    std::sqrt(x) * 2e-4);
    }
}

TEST(SqrtUnitTest, RelativeErrorBounded)
{
    // Tabulate-and-multiply with 64 segments over [1, 4): the
    // first-order correction leaves O((3/64)^2 / 8) relative error.
    SqrtUnit unit;
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const double x = std::exp(rng.uniform(-10.0, 10.0));
        const double approx = unit.compute(x);
        const double exact = std::sqrt(x);
        EXPECT_LE(std::abs(approx - exact) / exact, 5e-4)
            << "x = " << x;
    }
}

TEST(SqrtUnitTest, RejectsNegative)
{
    SqrtUnit unit;
    EXPECT_THROW(unit.compute(-1.0), Error);
}

/** Property sweep: quantize-dequantize is idempotent per format. */
template <int I, int F>
void
checkIdempotent()
{
    Rng rng(123);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform(-40.0, 40.0);
        const double once = quantize<I, F>(x);
        const double twice = quantize<I, F>(once);
        EXPECT_DOUBLE_EQ(once, twice);
    }
}

TEST(FixedPointTest, QuantizationIdempotent)
{
    checkIdempotent<5, 3>();
    checkIdempotent<0, 5>();
    checkIdempotent<4, 3>();
    checkIdempotent<8, 8>();
}

} // namespace
} // namespace elsa
