#ifndef ELSA_SIM_REPORT_H_
#define ELSA_SIM_REPORT_H_

/**
 * @file
 * Post-run reporting utilities for the cycle-level simulator:
 * per-query trace records, per-module utilization, and CSV export
 * for offline analysis (the role a stats dump plays in a
 * full-system simulator).
 */

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "sim/accelerator.h"

namespace elsa {

/** Per-module utilization (active cycles / total cycles). */
struct UtilizationReport
{
    /** Utilization in [0, 1] per module, indexed like allHwModules(). */
    std::array<double, 9> utilization{};

    double get(HwModule module) const
    {
        return utilization[static_cast<std::size_t>(module)];
    }
};

/** Compute per-module utilization from a run result. */
UtilizationReport computeUtilization(const RunResult& result);

/** Render a human-readable utilization summary. */
std::string formatUtilization(const UtilizationReport& report);

/**
 * Write per-query trace records as CSV
 * (query,interval,bank,candidates,stalls,fallback).
 */
void writeQueryTraceCsv(std::ostream& os,
                        const std::vector<QueryTraceRecord>& records);

/**
 * Summary statistics over the per-query records: mean/max interval,
 * mean candidates, total stalls, fallback count.
 */
struct QueryTraceSummary
{
    double mean_interval = 0.0;
    std::size_t max_interval = 0;
    double mean_candidates = 0.0;
    std::size_t total_stalls = 0;
    std::size_t fallbacks = 0;
};

QueryTraceSummary
summarizeQueryTrace(const std::vector<QueryTraceRecord>& records);

} // namespace elsa

#endif // ELSA_SIM_REPORT_H_
