/**
 * @file
 * Tests for the workload substrate: model/dataset catalogs, the
 * synthetic Q/K/V generator's statistical properties, sequence-length
 * sampling, the accuracy proxy, and the WorkloadRunner driver.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "attention/exact.h"
#include "common/rng.h"
#include "common/stats.h"
#include "tensor/ops.h"
#include "workload/accuracy.h"
#include "workload/generator.h"
#include "workload/model.h"
#include "workload/workload.h"

namespace elsa {
namespace {

TEST(ModelCatalogTest, PaperModels)
{
    const ModelConfig bert = bertLarge();
    EXPECT_EQ(bert.num_layers, 24u);
    EXPECT_EQ(bert.num_heads, 16u);
    EXPECT_EQ(bert.head_dim, 64u);
    EXPECT_EQ(bert.numSublayers(), 384u); // "384 sub-layers" (paper)
    EXPECT_TRUE(bert.is_nlp);

    const ModelConfig sas = sasRec();
    EXPECT_EQ(sas.num_layers, 3u);
    EXPECT_FALSE(sas.is_nlp);
    const ModelConfig b4r = bert4Rec();
    EXPECT_EQ(b4r.num_heads, 2u);

    // Every model uses d = 64 (Section IV-E).
    for (const auto& m : {bertLarge(), robertaLarge(), albertLarge(),
                          sasRec(), bert4Rec()}) {
        EXPECT_EQ(m.head_dim, 64u) << m.name;
    }
}

TEST(ModelCatalogTest, TwelveEvaluationWorkloads)
{
    const auto workloads = evaluationWorkloads();
    EXPECT_EQ(workloads.size(), 12u);
    std::set<std::string> labels;
    for (const auto& w : workloads) {
        labels.insert(w.label());
    }
    EXPECT_EQ(labels.size(), 12u); // All distinct.
    EXPECT_TRUE(labels.count("BERT/SQuADv1.1"));
    EXPECT_TRUE(labels.count("RoBERTa/IMDB"));
    EXPECT_TRUE(labels.count("SASRec/ML-1M"));
    EXPECT_TRUE(labels.count("BERT4Rec/ML-1M"));
}

TEST(ModelCatalogTest, DatasetLengthsAreConsistent)
{
    for (const auto& ds : {squadV11(), squadV20(), race(), imdb(),
                           movieLens1M()}) {
        EXPECT_GT(ds.padded_length, 0u) << ds.name;
        EXPECT_LE(ds.max_tokens, ds.padded_length) << ds.name;
        EXPECT_LT(ds.min_tokens, ds.max_tokens) << ds.name;
        EXPECT_GE(ds.mean_tokens, static_cast<double>(ds.min_tokens));
        EXPECT_LE(ds.mean_tokens, static_cast<double>(ds.max_tokens));
    }
}

TEST(GeneratorTest, DeterministicPerCoordinates)
{
    QkvGenerator gen(bertLarge(), 42);
    const AttentionInput a = gen.generate(3, 5, 64, 7);
    const AttentionInput b = gen.generate(3, 5, 64, 7);
    EXPECT_TRUE(a.query == b.query);
    EXPECT_TRUE(a.key == b.key);
    EXPECT_TRUE(a.value == b.value);
}

TEST(GeneratorTest, DifferentCoordinatesDiffer)
{
    QkvGenerator gen(bertLarge(), 42);
    const AttentionInput a = gen.generate(3, 5, 64, 7);
    const AttentionInput b = gen.generate(3, 6, 64, 7);
    const AttentionInput c = gen.generate(3, 5, 64, 8);
    EXPECT_FALSE(a.key == b.key);
    EXPECT_FALSE(a.key == c.key);
}

TEST(GeneratorTest, ShapesMatchRequest)
{
    QkvGenerator gen(sasRec(), 1);
    const AttentionInput input = gen.generate(0, 0, 100, 0);
    EXPECT_EQ(input.n(), 100u);
    EXPECT_EQ(input.d(), 64u);
    EXPECT_NO_THROW(input.validate());
}

TEST(GeneratorTest, ElementsFitInputFixedPointRange)
{
    // The hardware quantizes inputs to S5.3 ([-32, 31.875]); the
    // generator must produce values well inside that range.
    QkvGenerator gen(bertLarge(), 9);
    for (std::size_t layer : {0u, 12u, 23u}) {
        const AttentionInput input = gen.generate(layer, 1, 128, 0);
        for (const Matrix* m :
             {&input.query, &input.key, &input.value}) {
            for (std::size_t i = 0; i < m->size(); ++i) {
                ASSERT_LT(std::abs(m->data()[i]), 31.0f);
            }
        }
    }
}

TEST(GeneratorTest, SoftmaxConcentratesOnFewKeys)
{
    // The defining property of attention the approximation exploits:
    // a small fraction of keys holds most of the softmax mass.
    QkvGenerator gen(bertLarge(), 11);
    const std::size_t n = 256;
    const AttentionInput input = gen.generate(11, 3, n, 0);
    const ExactAttentionTrace trace = exactAttentionTrace(input);
    RunningStat top16_mass;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> sorted = trace.scores[i];
        std::sort(sorted.rbegin(), sorted.rend());
        double top = 0.0;
        for (std::size_t j = 0; j < 16; ++j) {
            top += sorted[j];
        }
        top16_mass.add(top);
    }
    // Top 16 of 256 keys (6%) should hold well over half the mass.
    EXPECT_GT(top16_mass.mean(), 0.6);
    // ... but not be a strict one-hot.
    EXPECT_LT(top16_mass.mean(), 0.9999);
}

TEST(GeneratorTest, ProfilesVaryAcrossLayersAndHeads)
{
    const ModelConfig model = bertLarge();
    const SublayerProfile early = sublayerProfile(model, 0, 0);
    const SublayerProfile mid = sublayerProfile(model, 12, 0);
    const SublayerProfile other_head = sublayerProfile(model, 0, 3);
    EXPECT_NE(early.concentration, mid.concentration);
    EXPECT_NE(early.concentration, other_head.concentration);
    EXPECT_THROW(sublayerProfile(model, 24, 0), Error);
}

TEST(GeneratorTest, KeyNormsVary)
{
    QkvGenerator gen(bertLarge(), 13);
    const AttentionInput input = gen.generate(5, 5, 128, 0);
    RunningStat norms;
    for (std::size_t j = 0; j < 128; ++j) {
        norms.add(l2Norm(input.key.row(j), 64));
    }
    EXPECT_NEAR(norms.mean(), 4.0, 1.0);
    EXPECT_GT(norms.stddev(), 0.3); // Spread exercises the ||K|| term.
}

TEST(GeneratorTest, SequenceLengthSamplingRespectsBounds)
{
    const DatasetSpec ds = squadV11();
    Rng rng(17);
    RunningStat lengths;
    for (int i = 0; i < 3000; ++i) {
        const std::size_t len = sampleSequenceLength(ds, rng);
        ASSERT_GE(len, ds.min_tokens);
        ASSERT_LE(len, ds.max_tokens);
        lengths.add(static_cast<double>(len));
    }
    EXPECT_NEAR(lengths.mean(), ds.mean_tokens, 6.0);
}

TEST(AccuracyProxyTest, ZeroMissZeroLoss)
{
    EXPECT_DOUBLE_EQ(estimateAccuracyLossPct(bertLarge(), 1.0), 0.0);
}

TEST(AccuracyProxyTest, MonotoneInMissedMass)
{
    double prev = -1.0;
    for (double recall = 1.0; recall >= 0.5; recall -= 0.05) {
        const double loss = estimateAccuracyLossPct(bertLarge(),
                                                    recall);
        EXPECT_GT(loss, prev);
        prev = loss;
    }
}

TEST(AccuracyProxyTest, CalibratedOperatingPoints)
{
    // The documented calibration: ~16% missed mass (the synthetic
    // workloads' p = 1 point) maps to <=1%, ~26% (p = 2) to <=2.5%.
    EXPECT_LE(estimateAccuracyLossPct(bertLarge(), 0.84), 1.0);
    EXPECT_LE(estimateAccuracyLossPct(bertLarge(), 0.74), 2.5);
    EXPECT_GT(estimateAccuracyLossPct(bertLarge(), 0.60), 2.5);
}

TEST(AccuracyProxyTest, RejectsOutOfRangeRecall)
{
    EXPECT_THROW(estimateAccuracyLossPct(bertLarge(), -0.1), Error);
    EXPECT_THROW(estimateAccuracyLossPct(bertLarge(), 1.2), Error);
}

TEST(AccuracyProxyTest, ModeBoundsMatchSectionVC)
{
    const ModelConfig nlp = bertLarge();
    const ModelConfig rec = sasRec();
    EXPECT_DOUBLE_EQ(accuracyLossBound(nlp, ApproxMode::kConservative),
                     1.0);
    EXPECT_DOUBLE_EQ(accuracyLossBound(nlp, ApproxMode::kModerate),
                     2.5);
    EXPECT_DOUBLE_EQ(accuracyLossBound(nlp, ApproxMode::kAggressive),
                     5.0);
    EXPECT_DOUBLE_EQ(accuracyLossBound(rec, ApproxMode::kConservative),
                     0.5);
    EXPECT_DOUBLE_EQ(accuracyLossBound(rec, ApproxMode::kModerate),
                     1.0);
    EXPECT_DOUBLE_EQ(accuracyLossBound(rec, ApproxMode::kAggressive),
                     2.0);
    EXPECT_DOUBLE_EQ(accuracyLossBound(nlp, ApproxMode::kBase), 0.0);
}

TEST(AccuracyProxyTest, ModeNames)
{
    EXPECT_STREQ(approxModeName(ApproxMode::kBase), "ELSA-base");
    EXPECT_STREQ(approxModeName(ApproxMode::kAggressive),
                 "ELSA-aggressive");
}

TEST(WorkloadRunnerTest, RepresentativeSublayersAreValidAndSpread)
{
    WorkloadRunner runner({bertLarge(), squadV11()});
    const auto coords = runner.representativeSublayers(8);
    ASSERT_EQ(coords.size(), 8u);
    std::set<std::size_t> layers;
    for (const auto& c : coords) {
        EXPECT_LT(c.layer, 24u);
        EXPECT_LT(c.head, 16u);
        layers.insert(c.layer);
    }
    EXPECT_GT(layers.size(), 4u); // Spread across the stack.
}

TEST(WorkloadRunnerTest, SublayerSubsampleCappedByModelSize)
{
    WorkloadRunner runner({sasRec(), movieLens1M()});
    // SASRec has 3 sublayers in total.
    EXPECT_EQ(runner.representativeSublayers(8).size(), 3u);
}

TEST(WorkloadRunnerTest, CandidateFractionDecreasesWithP)
{
    WorkloadRunner runner({bertLarge(), squadV11()});
    WorkloadEvalOptions options;
    options.max_sublayers = 3;
    options.num_eval_inputs = 2;
    options.num_train_inputs = 2;
    double prev_fraction = 1.1;
    double prev_recall = 1.1;
    for (const double p : {0.5, 2.0, 8.0}) {
        const WorkloadEvaluation eval = runner.evaluate(p, options);
        EXPECT_LT(eval.mean_candidate_fraction, prev_fraction);
        EXPECT_LT(eval.mean_mass_recall, prev_recall);
        prev_fraction = eval.mean_candidate_fraction;
        prev_recall = eval.mean_mass_recall;
    }
}

TEST(WorkloadRunnerTest, PaperOperatingPoints)
{
    // Fig. 10's published shape: p = 1 selects < 40% of entities
    // with sub-1%-ish loss; p = 2 about 26% with sub-2.5% loss.
    WorkloadRunner runner({bertLarge(), squadV11()});
    WorkloadEvalOptions options;
    options.max_sublayers = 6;
    const WorkloadEvaluation p1 = runner.evaluate(1.0, options);
    EXPECT_LT(p1.mean_candidate_fraction, 0.50);
    EXPECT_GT(p1.mean_candidate_fraction, 0.15);
    EXPECT_LE(p1.estimated_loss_pct, 1.5);
    const WorkloadEvaluation p2 = runner.evaluate(2.0, options);
    EXPECT_LT(p2.mean_candidate_fraction,
              p1.mean_candidate_fraction);
    EXPECT_LE(p2.estimated_loss_pct, 3.0);
}

TEST(WorkloadRunnerTest, SimInvocationsCarryThresholdAndLengths)
{
    WorkloadRunner runner({bert4Rec(), movieLens1M()});
    const auto invocations = runner.simInvocations(1.0, 2, 4);
    ASSERT_FALSE(invocations.empty());
    for (const auto& inv : invocations) {
        EXPECT_EQ(inv.input.n(), inv.n_real);
        EXPECT_EQ(inv.n_padded, 200u);
        EXPECT_LE(inv.n_real, inv.n_padded);
        EXPECT_TRUE(std::isfinite(inv.threshold));
    }
    // Base mode: threshold = -inf.
    const auto base = runner.simInvocations(0.0, 1, 2);
    for (const auto& inv : base) {
        EXPECT_TRUE(std::isinf(inv.threshold));
    }
}

TEST(WorkloadRunnerTest, EvalLengthsDeterministic)
{
    WorkloadRunner a({bertLarge(), race()});
    WorkloadRunner b({bertLarge(), race()});
    for (std::uint64_t id = 0; id < 8; ++id) {
        EXPECT_EQ(a.evalLength(id), b.evalLength(id));
    }
}

} // namespace
} // namespace elsa
