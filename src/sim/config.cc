#include "sim/config.h"

#include <cmath>

#include "common/logging.h"

namespace elsa {

void
SimConfig::validate() const
{
    ELSA_CHECK(d > 0 && k > 0, "d and k must be positive");
    ELSA_CHECK(pa > 0 && pc > 0, "P_a and P_c must be positive");
    ELSA_CHECK(mh > 0 && mo > 0, "m_h and m_o must be positive");
    ELSA_CHECK(num_hash_factors >= 1, "need >= 1 hash factor");
    ELSA_CHECK(queue_depth >= 1, "queue depth must be >= 1");
    ELSA_CHECK(frequency_ghz > 0.0, "frequency must be positive");
    // d must be a perfect num_hash_factors-th power for the
    // Kronecker-structured hash matrices.
    const double root = std::pow(static_cast<double>(d),
                                 1.0 / static_cast<double>(
                                     num_hash_factors));
    const auto s = static_cast<std::size_t>(std::lround(root));
    std::size_t check = 1;
    for (std::size_t i = 0; i < num_hash_factors; ++i) {
        check *= s;
    }
    ELSA_CHECK(check == d,
               "d = " << d << " is not a perfect " << num_hash_factors
                      << "-th power, required by the Kronecker hash");
}

SimConfig
SimConfig::paperConfig()
{
    return SimConfig{}; // Defaults are the paper's configuration.
}

} // namespace elsa
