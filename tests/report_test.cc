/**
 * @file
 * Tests for the simulator reporting utilities: per-query trace
 * collection, utilization computation, CSV export, and summaries.
 */

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "lsh/calibration.h"
#include "lsh/srp.h"
#include "sim/accelerator.h"
#include "sim/pipeline_model.h"
#include "sim/report.h"

namespace elsa {
namespace {

AttentionInput
randomInput(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    AttentionInput input;
    input.query = Matrix(n, 64);
    input.key = Matrix(n, 64);
    input.value = Matrix(n, 64);
    input.query.fillGaussian(rng);
    input.key.fillGaussian(rng);
    input.value.fillGaussian(rng);
    return input;
}

std::shared_ptr<const SrpHasher>
makeHasher()
{
    Rng rng(3);
    return std::make_shared<KroneckerSrpHasher>(
        KroneckerSrpHasher::makeRandom(64, 3, rng));
}

RunResult
tracedRun(double threshold, std::size_t n = 96)
{
    SimConfig config = SimConfig::paperConfig();
    config.collect_query_trace = true;
    Accelerator accel(config, makeHasher(), kThetaBias64);
    return accel.run(randomInput(n, 7), threshold);
}

TEST(ReportTest, TraceDisabledByDefault)
{
    Accelerator accel(SimConfig::paperConfig(), makeHasher(),
                      kThetaBias64);
    const RunResult result = accel.run(randomInput(32, 1), 0.2);
    EXPECT_TRUE(result.query_trace.empty());
}

TEST(ReportTest, TraceHasOneRecordPerQuery)
{
    const RunResult result = tracedRun(0.2);
    ASSERT_EQ(result.query_trace.size(), 96u);
    std::size_t interval_sum = 0;
    for (std::size_t i = 0; i < result.query_trace.size(); ++i) {
        const QueryTraceRecord& r = result.query_trace[i];
        EXPECT_EQ(r.query_id, i);
        EXPECT_GE(r.interval_cycles, r.max_bank_cycles);
        EXPECT_EQ(r.candidates, result.candidates_per_query[i]);
        interval_sum += r.interval_cycles;
    }
    // Intervals plus the final division drain = execute cycles.
    EXPECT_EQ(interval_sum + divisionCyclesPerQuery(
                                 SimConfig::paperConfig()),
              result.execute_cycles);
}

TEST(ReportTest, FallbackFlagMatchesEmptySelections)
{
    const RunResult result = tracedRun(1e9); // Nothing passes.
    std::size_t fallbacks = 0;
    for (const auto& r : result.query_trace) {
        fallbacks += r.used_fallback ? 1 : 0;
        EXPECT_EQ(r.candidates, 1u);
    }
    EXPECT_EQ(fallbacks, result.empty_selections);
    EXPECT_EQ(fallbacks, 96u);
}

TEST(ReportTest, UtilizationWithinUnitInterval)
{
    const RunResult result = tracedRun(
        -std::numeric_limits<double>::infinity());
    const UtilizationReport util = computeUtilization(result);
    for (const HwModule module : allHwModules()) {
        EXPECT_GE(util.get(module), 0.0);
        EXPECT_LE(util.get(module), 1.0);
    }
    // In base mode, the attention modules are the busiest compute.
    EXPECT_GT(util.get(HwModule::kAttentionCompute), 0.5);
    const std::string text = formatUtilization(util);
    EXPECT_NE(text.find("Attention"), std::string::npos);
}

TEST(ReportTest, CsvRoundTripShape)
{
    const RunResult result = tracedRun(0.2, 16);
    std::ostringstream oss;
    writeQueryTraceCsv(oss, result.query_trace);
    const std::string csv = oss.str();
    // Header + one line per query.
    std::size_t lines = 0;
    for (const char c : csv) {
        lines += (c == '\n') ? 1 : 0;
    }
    EXPECT_EQ(lines, 17u);
    EXPECT_NE(csv.find("query,interval_cycles"), std::string::npos);
}

TEST(ReportTest, SummaryStatistics)
{
    std::vector<QueryTraceRecord> records = {
        {0, 10, 8, 4, 0, false},
        {1, 20, 18, 12, 3, false},
        {2, 30, 28, 1, 0, true},
    };
    const QueryTraceSummary summary = summarizeQueryTrace(records);
    EXPECT_DOUBLE_EQ(summary.mean_interval, 20.0);
    EXPECT_EQ(summary.max_interval, 30u);
    EXPECT_NEAR(summary.mean_candidates, 17.0 / 3.0, 1e-12);
    EXPECT_EQ(summary.total_stalls, 3u);
    EXPECT_EQ(summary.fallbacks, 1u);
}

TEST(ReportTest, EmptySummaryIsZero)
{
    const QueryTraceSummary summary = summarizeQueryTrace({});
    EXPECT_DOUBLE_EQ(summary.mean_interval, 0.0);
    EXPECT_EQ(summary.fallbacks, 0u);
}

} // namespace
} // namespace elsa
