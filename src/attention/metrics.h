#ifndef ELSA_ATTENTION_METRICS_H_
#define ELSA_ATTENTION_METRICS_H_

/**
 * @file
 * Fidelity metrics of the approximation.
 *
 * The paper evaluates end-to-end model accuracy (F1 / accuracy /
 * NDCG@10) of real pretrained models; this repository instead
 * measures how faithfully the candidate-restricted attention
 * reproduces the exact attention, which is the quantity that drives
 * model accuracy (see DESIGN.md, substitutions):
 *
 *  - attention-mass recall: the fraction of the exact softmax
 *    probability mass that falls on selected candidates, averaged
 *    over queries (1.0 = nothing relevant was filtered out);
 *  - output error: relative Frobenius error between the exact and
 *    approximate output matrices.
 */

#include <cstdint>
#include <vector>

#include "attention/exact.h"
#include "tensor/matrix.h"

namespace elsa {

/** Fidelity measurements of one approximate attention run. */
struct FidelityReport
{
    /** Mean over queries of candidate softmax mass (in [0, 1]). */
    double mass_recall = 1.0;

    /** Minimum over queries of candidate softmax mass. */
    double worst_query_recall = 1.0;

    /** ||O_exact - O_approx||_F / ||O_exact||_F. */
    double output_relative_error = 0.0;
};

/**
 * Mean and worst-case softmax-mass recall of the candidate lists with
 * respect to the exact attention scores.
 */
FidelityReport
measureFidelity(const AttentionInput& input,
                const std::vector<std::vector<std::uint32_t>>& candidates,
                const Matrix& approx_output);

/**
 * Softmax-mass recall only (no output error), useful when only
 * candidate quality matters.
 */
double attentionMassRecall(
    const AttentionInput& input,
    const std::vector<std::vector<std::uint32_t>>& candidates);

} // namespace elsa

#endif // ELSA_ATTENTION_METRICS_H_
