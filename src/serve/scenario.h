#ifndef ELSA_SERVE_SCENARIO_H_
#define ELSA_SERVE_SCENARIO_H_

/**
 * @file
 * The canonical overload scenario shared by tests/serve_test.cc,
 * bench/serve_overload.cc, and the quickstart --serve demo, so the
 * acceptance comparison ("under 2x overload the degradation ladder
 * holds p99 under the SLO with strictly less shedding than the
 * static policy at identical offered load") is asserted and
 * benchmarked on exactly the same configuration.
 */

#include "serve/config.h"

namespace elsa {

/**
 * The canonical mixed-model overload scenario.
 *
 * @param load_multiplier Offered load relative to the array's
 *        base-fidelity service capacity (1.0 = critically loaded,
 *        2.0 = the acceptance overload point).
 * @param degraded With true the graceful-degradation ladder is
 *        enabled; with false the engine serves at base_p only.
 *        Arrivals are identical either way (same seed and rate),
 *        which is what makes the policy comparison apples-to-apples.
 * @param quick Fewer requests for smoke tests and the quick bench.
 */
ServeConfig overloadScenario(double load_multiplier, bool degraded,
                             bool quick);

} // namespace elsa

#endif // ELSA_SERVE_SCENARIO_H_
