#!/usr/bin/env python3
"""check_format: formatting drift gate for the ELSA repo.

Two layers, so the gate works in every environment:

 1. Always-on hygiene checks (stdlib only): no trailing whitespace,
    no tab indentation, LF line endings, exactly one final newline,
    and a 79-column limit for C++ and Python sources.  Lines carrying
    an `elsa-lint:` suppression directive are exempt from the column
    limit -- the directive grammar requires rule and reason on one
    line so the linter can pair them.

 2. When a `clang-format` binary of the pinned major version (see
    PINNED_CLANG_FORMAT_MAJOR) is on PATH, every C++ source is
    additionally checked against the committed .clang-format config
    with `--dry-run -Werror`.  The pin matters: different
    clang-format majors disagree about edge cases, so an unpinned
    gate would flip-flop between contributors.  Environments without
    the pinned major skip this layer with a notice (CI installs the
    pinned version and the layer is blocking there).  Lint fixtures
    under tests/lint/fixtures/ are exempt: they are lexer food for
    elsa_lint's self-test, not style-clean sources.

`--fix` repairs the mechanical violations in place (trailing
whitespace, CRLF, final newline); column-limit and clang-format
violations are reported only.

Exit codes: 0 clean, 1 violations, 2 internal error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

CXX_SUFFIXES = (".cc", ".h")
TEXT_SUFFIXES = CXX_SUFFIXES + (
    ".py", ".md", ".txt", ".yml", ".yaml", ".json", ".expected",
    ".clang-format", ".clang-tidy", ".cmake",
)
COLUMN_LIMIT = 79
COLUMN_CHECKED = CXX_SUFFIXES + (".py",)
# The clang-format layer only runs with this major version: style
# output drifts between majors, and a gate must be reproducible.
# Bump deliberately, reformatting the tree in the same commit.
PINNED_CLANG_FORMAT_MAJOR = 18
# Known-bad lint fixtures impersonate src/ files for elsa_lint's
# self-test; they are parsed, never compiled, and not style targets.
CLANG_FORMAT_EXEMPT = ("tests/lint/fixtures/",)
DEFAULT_ROOTS = (
    "src", "tests", "bench", "examples", "tools", "scripts", "docs",
    ".github",
)
SKIP_DIRS = {"build", "build-asan", "build-tsan", ".git"}


def repo_files(root):
    files = []
    for entry in sorted(os.listdir(root)):
        full = os.path.join(root, entry)
        if os.path.isfile(full) and (
            entry.endswith(TEXT_SUFFIXES) or entry == "CMakeLists.txt"
        ):
            files.append(full)
    for top in DEFAULT_ROOTS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(TEXT_SUFFIXES) \
                        or name == "CMakeLists.txt":
                    files.append(os.path.join(dirpath, name))
    return files


def check_hygiene(path, rel, fix):
    problems = []
    with open(path, "rb") as f:
        blob = f.read()
    if not blob:
        return problems
    text = blob.decode("utf-8", errors="replace")
    fixed = text
    if "\r" in text:
        problems.append("%s: CRLF/CR line endings" % rel)
        fixed = fixed.replace("\r\n", "\n").replace("\r", "\n")
    lines = fixed.split("\n")
    for i, line in enumerate(lines, start=1):
        if line != line.rstrip():
            problems.append(
                "%s:%d: trailing whitespace" % (rel, i))
        if "\t" in line:
            problems.append("%s:%d: tab character" % (rel, i))
        if (
            rel.endswith(COLUMN_CHECKED)
            and len(line) > COLUMN_LIMIT
            and "elsa-lint" not in line
        ):
            problems.append(
                "%s:%d: %d columns exceeds the %d-column limit"
                % (rel, i, len(line), COLUMN_LIMIT))
    if not fixed.endswith("\n"):
        problems.append("%s: missing final newline" % rel)
        fixed += "\n"
    while fixed.endswith("\n\n"):
        problems.append("%s: multiple trailing newlines" % rel)
        fixed = fixed[:-1]
    if fix:
        fixed = "\n".join(l.rstrip() for l in fixed.split("\n"))
        if fixed != text:
            with open(path, "w", encoding="utf-8", newline="\n") as f:
                f.write(fixed)
    return problems


def find_clang_format():
    """The pinned-major clang-format, or None with a printed notice.

    Prefers a versioned binary name (`clang-format-18`) so a machine
    with several majors installed picks the right one; falls back to
    plain `clang-format` if its --version reports the pinned major.
    """
    pinned = PINNED_CLANG_FORMAT_MAJOR
    exe = shutil.which("clang-format-%d" % pinned)
    if exe is not None:
        return exe
    exe = shutil.which("clang-format")
    if exe is None:
        print("check_format: clang-format-%d not on PATH; "
              "style-config layer skipped (hygiene layer still "
              "enforced)" % pinned)
        return None
    try:
        out = subprocess.run(
            [exe, "--version"], capture_output=True,
            text=True).stdout
    except OSError:
        out = ""
    m = re.search(r"clang-format version (\d+)", out)
    if m is None or int(m.group(1)) != pinned:
        print("check_format: clang-format on PATH is %s, not the "
              "pinned major %d; style-config layer skipped so the "
              "gate stays reproducible (hygiene layer still "
              "enforced)" % ((m.group(1) if m else "unknown"),
                             pinned))
        return None
    return exe


def run_clang_format(root, files):
    exe = find_clang_format()
    if exe is None:
        return []
    cxx = [
        f for f in files
        if f.endswith(CXX_SUFFIXES) and not os.path.relpath(
            f, root).replace(os.sep, "/").startswith(
                CLANG_FORMAT_EXEMPT)
    ]
    problems = []
    for path in cxx:
        proc = subprocess.run(
            [exe, "--dry-run", "-Werror", "--style=file", path],
            cwd=root, capture_output=True, text=True)
        if proc.returncode != 0:
            rel = os.path.relpath(path, root)
            problems.append(
                "%s: clang-format drift (run clang-format -i)" % rel)
    return problems


def main(argv):
    parser = argparse.ArgumentParser(
        description="ELSA formatting drift gate")
    parser.add_argument("--root", default=".")
    parser.add_argument(
        "--fix", action="store_true",
        help="repair mechanical violations in place")
    parser.add_argument(
        "--no-clang-format", action="store_true",
        help="skip the clang-format layer even when available")
    args = parser.parse_args(argv)

    files = repo_files(args.root)
    problems = []
    for path in files:
        rel = os.path.relpath(path, args.root).replace(os.sep, "/")
        problems.extend(check_hygiene(path, rel, args.fix))
    if not args.no_clang_format:
        problems.extend(run_clang_format(args.root, files))
    for p in problems:
        print(p)
    if problems:
        verb = "fixed where mechanical" if args.fix else "found"
        print("check_format: %d problem(s) %s in %d files scanned"
              % (len(problems), verb, len(files)))
        return 0 if args.fix else 1
    print("check_format: %d files clean" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
