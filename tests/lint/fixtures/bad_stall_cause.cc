// elsa-lint-pretend: src/sim/bad_stall_cause.cc
// Known-bad fixture: a taxonomy enumerator mapped to a metric
// segment the checker scripts and docs have never heard of.
#include "sim/stall.h"

namespace elsa {

enum class StallCause
{
    kBusy,
    kPhantomWait,
};

const char*
stallCauseMetricName(StallCause cause)
{
    switch (cause) {
        case StallCause::kBusy:
            return "busy_cycles";
        case StallCause::kPhantomWait:
            return "phantom_wait_cycles";  // BAD: unknown segment
    }
    return "";
}

} // namespace elsa
